//! Observability tour: run a four-stream faulted session with the
//! metrics registry and span tracer attached, print the metrics
//! snapshot, and export a Chrome trace.
//!
//! Run with: `cargo run --release --example observability`
//!
//! Then open `chrome://tracing` (or <https://ui.perfetto.dev>) and load
//! the printed `trace.json` path: each stream is a named track with
//! complete spans per stage and frame, plus instant markers for plans,
//! repartitions, faults and retries.

use triple_c::prelude::*;
use triple_c::runtime::faults::{FaultPlan, FaultPlanConfig};
use triple_c::xray::NoiseConfig;

fn seq(seed: u64, frames: usize) -> SequenceConfig {
    SequenceConfig {
        width: 128,
        height: 128,
        frames,
        seed,
        noise: NoiseConfig {
            quantum_scale: 0.3,
            electronic_std: 2.0,
        },
        ..Default::default()
    }
}

fn trained_model() -> TripleC {
    let profile = run_sequence(
        seq(100, 10),
        &AppConfig::default(),
        &ExecutionPolicy::default(),
    );
    let cfg = TripleCConfig {
        geometry: triple_c::triplec::FrameGeometry {
            width: 128,
            height: 128,
        },
        ..Default::default()
    };
    TripleC::train(&profile.task_series(), &profile.scenarios, cfg)
}

fn main() -> Result<()> {
    println!("training the model on a 10-frame profile...");
    let model = trained_model();

    // Four streams against an 8-core budget; two of them run under a
    // seeded fault plan (worker panics + transient channel errors), so
    // the trace also shows retries and recovery.
    let plan = FaultPlan::new(
        42,
        FaultPlanConfig {
            panic_rate: 0.3,
            channel_rate: 0.2,
            ..Default::default()
        },
    );
    let specs: Vec<StreamSpec> = (0..4)
        .map(|i| {
            let b = StreamSpec::builder(seq(500 + i, 12), AppConfig::default(), model.clone())
                .budget(LatencyBudget::new(5.0, 0.1));
            if i % 2 == 0 {
                b.faults(std::sync::Arc::new(plan)).build()
            } else {
                b.build()
            }
        })
        .collect();

    let obs = Observability::new();
    let cfg = SessionConfig::builder().total_cores(8).build();
    println!("running 4 streams x 12 frames (2 streams under fault injection)...");
    let report = SessionScheduler::new(cfg)
        .with_observability(obs.clone())
        .run(specs);

    println!(
        "\nsession: {} frames, {:.1} fps aggregate, {} failures",
        report.total_frames,
        report.aggregate_fps,
        report.failures.len()
    );

    // The metrics snapshot is also embedded in the report itself
    // (`report.metrics`); here we read it off the live registry.
    let snapshot = obs.snapshot();
    println!("\n--- metrics snapshot ---\n{snapshot}");
    println!(
        "metrics self-overhead: {:.3} ms total",
        obs.self_overhead_ms()
    );

    let out = std::env::temp_dir().join("triple_c_trace.json");
    std::fs::write(&out, obs.chrome_trace_json())?;
    println!(
        "\nwrote {} ({} spans) — load it in chrome://tracing or ui.perfetto.dev",
        out.display(),
        obs.spans().len()
    );
    Ok(())
}
