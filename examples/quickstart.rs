//! Quickstart: generate a synthetic angiography sequence, run the dynamic
//! pipeline, train Triple-C on the profile, and predict the next frame's
//! resource usage.
//!
//! Run with: `cargo run --release --example quickstart`

use triple_c::prelude::*;

fn main() {
    const SIZE: usize = 256;

    // 1. A synthetic X-ray sequence (the substitute for clinical data).
    let sequence = SequenceConfig {
        width: SIZE,
        height: SIZE,
        frames: 60,
        seed: 2024,
        ..Default::default()
    };

    // 2. Profile the dynamic pipeline over it (serial execution).
    println!(
        "profiling {} frames of the stent-enhancement pipeline...",
        sequence.frames
    );
    let profile = run_sequence(sequence, &AppConfig::default(), &ExecutionPolicy::default());
    let summary = profile.trace.latency_summary();
    println!(
        "  serial latency: mean {:.1} ms, band [{:.1}, {:.1}] ms",
        summary.mean, summary.min, summary.max
    );
    let hist = profile.trace.scenario_histogram();
    println!(
        "  scenario occupancy (of 8 switch combinations): {:?}",
        hist
    );

    // 3. Train the Triple-C model on the profile.
    let cfg = TripleCConfig {
        geometry: triple_c::triplec::FrameGeometry {
            width: SIZE,
            height: SIZE,
        },
        ..Default::default()
    };
    let model = TripleC::train(&profile.task_series(), &profile.scenarios, cfg);
    println!("\ntrained models (Table 2(b) style):");
    for (task, kind, name) in model.model_summary() {
        println!("  {task:<10} {kind:?}: {name}");
    }

    // 4. Predict the next frame's resources for the worst-case scenario.
    let ctx = PredictContext {
        roi_kpixels: (SIZE * SIZE) as f64 / 1000.0,
    };
    let prediction = model.predict_frame(Scenario::worst_case(), &ctx, 0.25);
    println!("\nworst-case scenario prediction:");
    for (task, ms) in &prediction.task_times {
        println!("  {task:<10} {ms:>7.2} ms");
    }
    println!("  total      {:>7.2} ms", prediction.total_ms);
    println!(
        "  inter-task bandwidth {:>8.1} MB/s",
        prediction.inter_task_bw / 1e6
    );
    println!(
        "  intra-task bandwidth {:>8.1} MB/s",
        prediction.intra_task_bw / 1e6
    );
    println!(
        "\nframe period at 30 Hz is {:.1} ms -> {}",
        model.frame_period_ms(),
        if prediction.total_ms > model.frame_period_ms() {
            "parallelization required (see examples/runtime_adaptation.rs)"
        } else {
            "fits a single core"
        }
    );
}
