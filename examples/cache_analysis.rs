//! The cache-memory and communication-bandwidth side of Triple-C
//! (Section 5 of the paper): derive Table 1, predict the intra-task swap
//! traffic of the overflow tasks with the space-time model, cross-check
//! against a trace-driven two-level cache simulation, and size the bus
//! loads of each application scenario against the platform of Fig. 4.
//!
//! Run with: `cargo run --release --example cache_analysis`

use triple_c::platform::arch::MB;
use triple_c::platform::bandwidth::{add_intra_task, inter_task_load};
use triple_c::platform::hierarchy::CacheHierarchy;
use triple_c::platform::mapping::{Mapping, Partition};
use triple_c::platform::spacetime::simulate_traffic;
use triple_c::prelude::*;
use triple_c::triplec::bandwidth_model::{
    intra_task_traffic, rdg_access_model, scenario_edges, FRAME_RATE_HZ,
};
use triple_c::triplec::memory_model::{implementation_table, FrameGeometry};

fn main() -> Result<()> {
    let arch = ArchModel::default();
    let geom = FrameGeometry::PAPER;
    println!(
        "platform: {} cores @ {:.2} GHz, L1 {} KB x{}, L2 {} MB x{}, buses {:.0}/{:.0}/{:.0} GB/s\n",
        arch.cores,
        arch.clock_hz / 1e9,
        arch.l1.capacity / 1024,
        arch.cores,
        arch.l2.capacity / MB,
        arch.l2_domains(),
        arch.bus_cpu_cache / 1e9,
        arch.bus_cache / 1e9,
        arch.bus_memory / 1e9,
    );

    // --- Table 1: which tasks overflow the L2? -------------------------
    println!("task memory requirements at 1024x1024 (Table 1):");
    for m in implementation_table(geom, 512) {
        println!(
            "  {:<10} in {:>6} KB  inter {:>6} KB  out {:>6} KB   {}",
            m.task,
            m.input / 1024,
            m.intermediate / 1024,
            m.output / 1024,
            if m.overflows(arch.l2.capacity) {
                "OVERFLOWS L2"
            } else {
                "fits L2"
            }
        );
    }

    // --- Fig. 5: RDG swap traffic, model vs. simulation -----------------
    let model = rdg_access_model(geom, 3);
    let predicted = intra_task_traffic(&model, arch.l2.capacity);
    let simulated = simulate_traffic(&model, arch.l2);
    println!(
        "\nRDG FULL swap traffic: model {:.1} MB/frame, line-level simulation {:.1} MB/frame",
        predicted.total_bytes() as f64 / 1e6,
        simulated.total_bytes() as f64 / 1e6
    );
    println!(
        "  -> intra-task bandwidth at 30 Hz: {:.2} GB/s on the memory bus ({:.0}% of its {:.0} GB/s)",
        predicted.bandwidth(FRAME_RATE_HZ) / 1e9,
        predicted.bandwidth(FRAME_RATE_HZ) / arch.bus_memory * 100.0,
        arch.bus_memory / 1e9
    );

    // --- two-level view: how much the L1 filters ------------------------
    let mut hierarchy = CacheHierarchy::paper();
    hierarchy.linear_scan(0, geom.frame_bytes(), false);
    hierarchy.linear_scan(0, geom.frame_bytes(), false);
    let t = hierarchy.traffic();
    println!(
        "\ntwo passes over one frame through L1+L2: cpu->L1 {:.1} MB, L1->L2 {:.1} MB, L2->mem {:.1} MB",
        t.cpu_to_l1 as f64 / 1e6,
        t.l1_to_l2 as f64 / 1e6,
        t.l2_to_mem as f64 / 1e6
    );

    // --- per-scenario bus loads under a mapping -------------------------
    let mut mapping = Mapping::new();
    mapping.assign("RDG_FULL", Partition::Striped { cores: vec![0, 1] });
    mapping.assign("RDG_ROI", Partition::Striped { cores: vec![0, 1] });
    mapping.assign("MKX_EXT", Partition::Serial { core: 2 });
    mapping.assign("CPLS_SEL", Partition::Serial { core: 2 });
    mapping.assign("REG", Partition::Serial { core: 3 });
    mapping.assign("ROI_EST", Partition::Serial { core: 3 });
    mapping.assign("GW_EXT", Partition::Serial { core: 3 });
    mapping.assign("ENH", Partition::Serial { core: 4 });
    mapping.assign("ZOOM", Partition::Serial { core: 5 });
    mapping.validate(&arch)?;

    println!("\nper-scenario bus loads under a 6-core mapping (ROI fraction 0.1):");
    println!("  id  cache-bus MB/s  memory-bus MB/s  feasible");
    for s in Scenario::all() {
        let edges = scenario_edges(s, geom, 0.1);
        let mut load = inter_task_load(&arch, &mapping, &edges, FRAME_RATE_HZ);
        if s.rdg_active && !s.roi_estimated {
            load = add_intra_task(load, predicted.total_bytes(), FRAME_RATE_HZ);
        }
        println!(
            "  {}   {:>12.1}  {:>15.1}  {}",
            s.id(),
            load.cache_bus / 1e6,
            load.memory_bus / 1e6,
            load.feasible(&arch)
        );
    }
    println!("\n(the paper's point: the worst-case scenario costs multiples of the");
    println!(" best case — reserving for it permanently wastes most of the platform)");
    Ok(())
}
