//! Alternative application domain (the paper's conclusion: "the techniques
//! described in this paper can potentially be used for alternative
//! applications using image analysis, such as in surveillance systems").
//!
//! A minimal surveillance pipeline — background maintenance, motion
//! segmentation, object (blob) detection — whose computation time depends
//! on the amount of motion in the scene. Triple-C's EWMA+Markov predictor
//! is trained on the profiled task times and evaluated one-step-ahead.
//!
//! Run with: `cargo run --release --example surveillance`

use rand::{Rng, SeedableRng};
use triple_c::imaging::hessian::{blob_response, hessian_at_scale, HessianImages, HessianScratch};
use triple_c::platform::profile::time_ms;
use triple_c::prelude::*;
use triple_c::triplec::accuracy::evaluate;
use triple_c::triplec::predictor::{EwmaMarkovPredictor, Predictor};
use triple_c::xray::canvas::Canvas;

const SIZE: usize = 256;
const FRAMES: usize = 160;

/// Renders a surveillance frame: static background plus `n_objects` dark
/// moving blobs (their count follows a slow daily-traffic curve).
fn render_frame(t: usize, n_objects: usize, rng: &mut impl Rng) -> ImageU16 {
    let mut canvas = Canvas::new(SIZE, SIZE, 1800.0);
    canvas.add_shading(80.0, 120.0);
    // static scene structure: two "lane markings"
    canvas.draw_line(0.0, 90.0, SIZE as f64, 90.0, 120.0, 1.2);
    canvas.draw_line(0.0, 170.0, SIZE as f64, 170.0, 120.0, 1.2);
    // moving objects
    for k in 0..n_objects {
        let speed = 1.5 + (k % 3) as f64;
        let lane = 70.0 + 50.0 * (k % 3) as f64;
        let x = ((t as f64 * speed + k as f64 * 37.0) % (SIZE as f64 + 40.0)) - 20.0;
        let jitter: f64 = rng.gen_range(-1.0..1.0);
        canvas.stamp_absorber(x, lane + jitter, 600.0, 4.0);
    }
    canvas.to_u16()
}

/// Motion segmentation + blob detection: the data-dependent analysis task.
/// Cost grows with the number of moving pixels (flood evaluation of the
/// changed region).
fn detect_motion_objects(
    frame: &ImageU16,
    background: &mut ImageF32,
    hessian: &mut HessianImages,
    scratch: &mut HessianScratch,
) -> usize {
    // background update + change mask
    let mut changed: Vec<(usize, usize)> = Vec::new();
    for y in 0..SIZE {
        for x in 0..SIZE {
            let v = frame.get(x, y) as f32;
            let b = background.get(x, y);
            let diff = (v - b).abs();
            background.set(x, y, b + 0.05 * (v - b));
            if diff > 150.0 {
                changed.push((x, y));
            }
        }
    }
    if changed.is_empty() {
        return 0;
    }
    // bounding box of changed pixels; blob-detect inside it only
    // (this is what makes the cost content-dependent)
    let x0 = changed.iter().map(|&(x, _)| x).min().unwrap();
    let x1 = changed.iter().map(|&(x, _)| x).max().unwrap();
    let y0 = changed.iter().map(|&(_, y)| y).min().unwrap();
    let y1 = changed.iter().map(|&(_, y)| y).max().unwrap();
    let roi = triple_c::imaging::image::Roi::new(x0, y0, x1 - x0 + 1, y1 - y0 + 1);

    let f32_frame = frame.to_f32();
    hessian_at_scale(&f32_frame, hessian, scratch, roi, 4.0);
    let mut peaks = 0usize;
    for y in roi.y.max(1)..roi.bottom().min(SIZE - 1) {
        for x in roi.x.max(1)..roi.right().min(SIZE - 1) {
            let r = blob_response(
                hessian.ixx.get(x, y),
                hessian.iyy.get(x, y),
                hessian.ixy.get(x, y),
            );
            if r > 15.0 {
                let mut is_max = true;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let n = blob_response(
                            hessian
                                .ixx
                                .get((x as i64 + dx) as usize, (y as i64 + dy) as usize),
                            hessian
                                .iyy
                                .get((x as i64 + dx) as usize, (y as i64 + dy) as usize),
                            hessian
                                .ixy
                                .get((x as i64 + dx) as usize, (y as i64 + dy) as usize),
                        );
                        if n > r {
                            is_max = false;
                        }
                    }
                }
                if is_max {
                    peaks += 1;
                }
            }
        }
    }
    peaks
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(606);
    let mut background: ImageF32 = Image::filled(SIZE, SIZE, 1800.0);
    let mut hessian = HessianImages {
        ixx: ImageF32::new(SIZE, SIZE),
        iyy: ImageF32::new(SIZE, SIZE),
        ixy: ImageF32::new(SIZE, SIZE),
    };
    let mut scratch = HessianScratch::new(SIZE, SIZE);

    // traffic intensity: slow sinusoid (rush hours) + noise
    let traffic = |t: usize, rng: &mut rand::rngs::StdRng| -> usize {
        let base = 4.0 + 3.5 * (std::f64::consts::TAU * t as f64 / 120.0).sin();
        (base + rng.gen_range(-1.0..1.0)).max(0.0) as usize
    };

    println!("profiling the surveillance analysis task over {FRAMES} frames...");
    let mut series = Vec::with_capacity(FRAMES);
    let mut detections = Vec::with_capacity(FRAMES);
    for t in 0..FRAMES {
        let n = traffic(t, &mut rng);
        let frame = render_frame(t, n, &mut rng);
        let (found, ms) =
            time_ms(|| detect_motion_objects(&frame, &mut background, &mut hessian, &mut scratch));
        series.push(ms);
        detections.push(found);
    }

    let split = FRAMES * 2 / 3;
    let (train, test) = series.split_at(split);
    let mut predictor = EwmaMarkovPredictor::train(train, 0.2, 24, "SURV");
    let ctx = PredictContext::default();
    for &x in &train[train.len() - 10..] {
        predictor.observe(x, &ctx);
    }
    let pairs: Vec<(f64, f64)> = test
        .iter()
        .map(|&x| {
            let p = predictor.predict(&ctx).mean_ms;
            predictor.observe(x, &ctx);
            (p, x)
        })
        .collect();
    let report = evaluate(&pairs);

    let mean_det = detections.iter().sum::<usize>() as f64 / FRAMES as f64;
    println!("  mean objects detected/frame: {mean_det:.1}");
    println!(
        "  analysis time: mean {:.2} ms, min {:.2}, max {:.2}",
        triple_c::triplec::stats::mean(&series),
        series.iter().copied().fold(f64::INFINITY, f64::min),
        series.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    );
    println!(
        "\nTriple-C one-step prediction on held-out frames: {:.1}% mean accuracy, max error {:.0}%",
        report.mean_accuracy * 100.0,
        report.max_error * 100.0
    );
    println!("(same model family as the medical application: Eq. 1 EWMA + Markov chain)");
}
