//! Semi-automatic parallelization in action (the Fig. 7 mechanism):
//! a straightforward serial mapping vs. the Triple-C-managed run over a
//! dynamic sequence with scenario switching.
//!
//! Run with: `cargo run --release --example runtime_adaptation`

use triple_c::pipeline::latency::{jitter, jitter_reduction, DelayLine};
use triple_c::prelude::*;
use triple_c::runtime::run::run_managed_sequence;
use triple_c::xray::{HiddenEpisode, ScenarioConfig};

fn dynamic_sequence(size: usize, frames: usize, seed: u64) -> SequenceConfig {
    SequenceConfig {
        width: size,
        height: size,
        frames,
        seed,
        scenario: ScenarioConfig {
            bolus: vec![HiddenEpisode {
                start: frames / 4,
                len: frames / 6,
            }],
            panning: vec![HiddenEpisode {
                start: frames / 2,
                len: 3,
            }],
            ..Default::default()
        },
        ..Default::default()
    }
}

fn main() {
    const SIZE: usize = 256;
    const FRAMES: usize = 80;
    let app = AppConfig::default();

    // training corpus: same content family, disjoint seeds
    println!("training Triple-C on 3 x 40 frames...");
    let corpus: Vec<SequenceConfig> = (0..3)
        .map(|i| dynamic_sequence(SIZE, 40, 700 + i))
        .collect();
    let profile = run_corpus(corpus, &app, &ExecutionPolicy::default());
    let cfg = TripleCConfig {
        geometry: triple_c::triplec::FrameGeometry {
            width: SIZE,
            height: SIZE,
        },
        ..Default::default()
    };
    let mut model = TripleC::train(&profile.task_series(), &profile.scenarios, cfg);
    // Section 6 deployment mode: the model keeps adapting to the live
    // stream (a frozen model would drift away from the measured times)
    model.set_online_training(true);

    // baseline: straightforward serial mapping
    println!("running the straightforward (serial) mapping...");
    let test = dynamic_sequence(SIZE, FRAMES, 999);
    let baseline = run_sequence(test.clone(), &app, &ExecutionPolicy::default());
    let base_lat = baseline.trace.latencies();

    // managed: Triple-C predictions drive per-frame repartitioning
    println!("running the Triple-C-managed (semi-auto parallel) mapping...");
    let mut manager = ResourceManager::new(model, ManagerConfig::default());
    let managed = run_managed_sequence(test, &app, &mut manager);
    let managed_lat = managed.trace.latencies();

    // the clinically relevant number is the *output* latency: the delay
    // line holds early frames at the budget (frame 0 initializes it)
    let budget = manager.budget().expect("budget set after first frame");
    let delay = DelayLine::new(budget.target_ms);
    let output_lat: Vec<f64> = managed_lat
        .iter()
        .skip(1)
        .map(|&c| delay.output_latency(c))
        .collect();

    let b = platform_summary(&base_lat);
    let m = platform_summary(&output_lat);
    println!("\n                      mean      min      max   (max-mean)/mean");
    println!(
        "straightforward  {:>8.1} {:>8.1} {:>8.1}   {:>6.0}%",
        b.0,
        b.1,
        b.2,
        b.3 * 100.0
    );
    println!(
        "semi-auto output {:>8.1} {:>8.1} {:>8.1}   {:>6.0}%",
        m.0,
        m.1,
        m.2,
        m.3 * 100.0
    );

    let red = jitter_reduction(&jitter(&base_lat), &jitter(&output_lat));
    println!(
        "\njitter (std) reduction: {:.0}% (paper reports ~70%)",
        red * 100.0
    );
    println!(
        "prediction accuracy over the run: {:.1}% (paper reports 97%)",
        manager.accuracy().mean_accuracy * 100.0
    );
    println!("latency budget held at {:.1} ms", budget.target_ms);
    println!("\nper-frame stripe choices: {:?}", managed.stripes);
}

fn platform_summary(lat: &[f64]) -> (f64, f64, f64, f64) {
    let s = triple_c::platform::trace::summary_of(lat);
    (s.mean, s.min, s.max, s.worst_vs_avg)
}
