//! The paper's medical application end-to-end: motion-compensated stent
//! enhancement on a synthetic angioplasty sequence, writing before/after
//! images as PGM files (viewable with any image tool).
//!
//! Run with: `cargo run --release --example stent_enhancement`

use triple_c::imaging::io::write_pgm8;
use triple_c::pipeline::executor::process_frame;
use triple_c::prelude::*;

fn main() -> Result<()> {
    const SIZE: usize = 384;
    let sequence = SequenceConfig {
        width: SIZE,
        height: SIZE,
        frames: 48,
        seed: 31,
        ..Default::default()
    };

    let app = AppConfig::default();
    let policy = ExecutionPolicy {
        rdg_stripes: 2,
        aux_stripes: 2,
        cores: 8,
    };
    let mut state = AppState::new(SIZE, SIZE);

    let out_dir = std::env::temp_dir().join("triple_c_stent");
    std::fs::create_dir_all(&out_dir)?;

    let mut first_frame: Option<ImageU16> = None;
    let mut last_display: Option<ImageU16> = None;
    let mut acquisitions = 0;
    let mut enhanced_frames = 0;

    println!("processing {} frames at {SIZE}x{SIZE}...", sequence.frames);
    for frame in SequenceGenerator::new(sequence) {
        if first_frame.is_none() {
            first_frame = Some(frame.image.clone());
        }
        let out = process_frame(frame.index, &frame.image, &mut state, &app, &policy);
        if out.couple_found {
            acquisitions += 1;
        }
        if let Some(display) = out.display {
            enhanced_frames += 1;
            last_display = Some(display);
        }
        println!(
            "  frame {:>2}: scenario {} (RDG {}, ROI {}, REG {}), latency {:>6.1} ms{}",
            frame.index,
            out.scenario.id(),
            u8::from(out.scenario.rdg_active),
            u8::from(out.scenario.roi_estimated),
            u8::from(out.scenario.reg_successful),
            out.record.latency_ms,
            if out.couple_found {
                "  [markers locked]"
            } else {
                ""
            }
        );
    }

    println!("\nmarkers found in {acquisitions} frames; {enhanced_frames} enhanced output frames");
    if let Some(raw) = &first_frame {
        let p = out_dir.join("input.pgm");
        write_pgm8(&p, raw, None)?;
        println!("wrote {}", p.display());
    }
    match &last_display {
        Some(display) => {
            let p = out_dir.join("enhanced_stent.pgm");
            write_pgm8(&p, display, None)?;
            println!(
                "wrote {} (motion-compensated, temporally integrated, zoomed)",
                p.display()
            );
        }
        None => println!("no enhanced output was produced (registration never succeeded)"),
    }
    Ok(())
}
