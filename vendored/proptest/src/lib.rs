//! Offline vendored subset of the `proptest` 1.x API.
//!
//! Supports the surface this workspace uses: the `proptest!` macro over
//! functions whose arguments are `ident in strategy` bindings, range
//! strategies for ints and floats, `any::<bool>()`, tuple strategies, and
//! `prop::collection::vec`. Each test runs `PROPTEST_CASES` (default 64)
//! deterministic seeded cases. Failing inputs are reported via `Debug`;
//! there is no shrinking, and `.proptest-regressions` seed files are not
//! replayed — regressions worth pinning are promoted to explicit unit
//! tests instead (see `tests/proptest_invariants.rs`).

use rand::rngs::StdRng;
use rand::Rng;
pub use rand::SeedableRng;

/// A generator of values of `Value`.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy for "any value of T"; only the types the tests draw are wired.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Failure raised by `prop_assert!`/`prop_assert_eq!`; carries the message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

pub mod test_runner {
    use super::{Strategy, TestCaseResult};
    use rand::{rngs::StdRng, SeedableRng};

    pub struct TestRunner {
        cases: u64,
        seed: u64,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            TestRunner {
                cases,
                // Fixed base seed: deterministic across runs and machines.
                seed: 0x7419_13C0_DE00_0001,
            }
        }
    }

    impl TestRunner {
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> TestCaseResult,
        ) -> Result<(), String> {
            for case in 0..self.cases {
                let mut rng =
                    StdRng::seed_from_u64(self.seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                let value = strategy.generate(&mut rng);
                let shown = format!("{value:?}");
                if let Err(e) = test(value) {
                    return Err(format!(
                        "proptest case {case}/{} failed: {}\n  input: {}",
                        self.cases, e.0, shown
                    ));
                }
            }
            Ok(())
        }
    }
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};

    /// Mirror of upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a proptest body; on failure returns a `TestCaseError`
/// from the enclosing generated closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// The `proptest!` block macro: wraps each `fn name(arg in strategy, ..)`
/// into a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                let mut runner = $crate::test_runner::TestRunner::default();
                let result = runner.run(&strategy, |($($arg,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
                if let Err(msg) = result {
                    panic!("{}", msg);
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_strategy_len(v in prop::collection::vec(0u64..1u64 << 16, 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&x| x < (1 << 16)));
        }

        #[test]
        fn tuple_in_vec(addrs in prop::collection::vec((0u64..256, any::<bool>()), 1..20)) {
            for &(a, _w) in &addrs {
                prop_assert!(a < 256);
            }
            prop_assert_eq!(addrs.len(), addrs.len());
        }
    }

    #[test]
    fn failing_property_reports_input() {
        let mut runner = crate::test_runner::TestRunner::default();
        let err = runner
            .run(&(0usize..10,), |(x,)| {
                crate::prop_assert!(x < 5, "x = {x}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.contains("input:"), "{err}");
    }
}
