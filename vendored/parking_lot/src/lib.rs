//! Offline vendored subset of the `parking_lot` 0.12 API.
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's ergonomics:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and a
//! poisoned std lock is recovered rather than propagated — parking_lot has
//! no poisoning at all, so swallowing it preserves its semantics.

use std::fmt;
use std::sync::{self, PoisonError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Condition variable paired with [`Mutex`]; only the `wait` form used in
/// this workspace is provided.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's API is move-based while parking_lot's is by-&mut; bridge by
        // replacing the guard in place.
        take_mut(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(slot);
        // `f` here is a condvar wait; if it panics (it cannot in practice —
        // poison is recovered), abort rather than risk a double drop.
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut guard = lock.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }
}
