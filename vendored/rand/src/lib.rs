//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access, so the workspace vendors the
//! slice of `rand` it actually uses: `Rng` (`gen`, `gen_range`, `gen_bool`),
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `distributions::Distribution`. The generator core is xoshiro256++ seeded
//! via SplitMix64 — statistically strong enough for every test in this repo
//! (moment checks on 20k-sample normals, Markov-chain convergence, quantile
//! mass balance), though not the ChaCha12 stream of upstream `StdRng`.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range: empty range");
        T::sample_in(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Wrapping arithmetic keeps signed ranges correct; the modulo
                // bias is < span / 2^64, far below anything the tests resolve.
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                ((lo as i128) + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + (hi - lo) * unit_f64(rng.next_u64());
        if v < hi {
            v
        } else {
            lo.max(prev_down_f64(hi))
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + (hi - lo) * unit_f32(rng.next_u64());
        if v < hi {
            v
        } else {
            lo.max(f32::from_bits(hi.to_bits().wrapping_sub(1)))
        }
    }
}

#[inline]
fn prev_down_f64(x: f64) -> f64 {
    f64::from_bits(x.to_bits().wrapping_sub(1))
}

pub mod distributions {
    use super::{unit_f32, unit_f64, Rng};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution: `[0, 1)` for floats, full range
    /// for bools. Backs `Rng::gen`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f32(rng.next_u64())
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same generator family upstream `rand` ships as
    /// `Xoshiro256PlusPlus`; stands in for `StdRng` here.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: u8 = rng.gen_range(0..4u8);
            assert!(n < 4);
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn uniform_f64_moments() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
