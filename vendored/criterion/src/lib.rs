//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! Implements the slice the workspace benches use: `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros. Measurement is plain wall-clock sampling
//! (median of N samples, auto-scaled iteration counts) — no statistics
//! engine or HTML reports. Set `CRITERION_JSON=<path>` to append one JSON
//! line per benchmark (`{"name": ..., "median_ns": ..., ...}`), which is
//! how `BENCH_convolve.json` baselines are produced.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterised benchmark, `name/param`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), param),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone)]
struct Sample {
    name: String,
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    results: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            results: Vec::new(),
        }
    }
}

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);
const MAX_CALIBRATION_TIME: Duration = Duration::from_millis(250);

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) -> Sample {
    // Calibrate: grow the per-sample iteration count until one sample takes
    // a measurable slice of time (or the routine is clearly slow).
    let mut iters = 1u64;
    let calibration_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || calibration_start.elapsed() >= MAX_CALIBRATION_TIME {
            break;
        }
        let grow = if b.elapsed.as_nanos() == 0 {
            100
        } else {
            (TARGET_SAMPLE_TIME.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 100) as u64
        };
        iters = iters.saturating_mul(grow).min(1 << 24);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let s = Sample {
        name: name.to_string(),
        median_ns,
        mean_ns,
        samples: sample_size,
        iters_per_sample: iters,
    };
    report(&s);
    s
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(s: &Sample) {
    println!(
        "{:<48} time: [{}]  (median of {} samples x {} iters)",
        s.name,
        human(s.median_ns),
        s.samples,
        s.iters_per_sample
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                f,
                "{{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                s.name, s.median_ns, s.mean_ns, s.samples, s.iters_per_sample
            );
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let s = run_bench(name, self.default_sample_size, f);
        self.results.push(s);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks; supports a per-group sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.parent.default_sample_size)
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let s = run_bench(&full, self.effective_sample_size(), f);
        self.parent.results.push(s);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        let s = run_bench(&full, self.effective_sample_size(), |b| f(b, input));
        self.parent.results.push(s);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sized", 32), &32u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|s| s.median_ns > 0.0));
        assert_eq!(c.results[1].name, "t/sized/32");
    }
}
