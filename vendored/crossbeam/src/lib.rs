//! Offline vendored subset of the `crossbeam` 0.8 API.
//!
//! Only `crossbeam::channel` is provided: an unbounded MPMC queue built on
//! `Mutex<VecDeque>` + `Condvar`, with the crossbeam semantics the workspace
//! relies on — `Sender`/`Receiver` are `Clone + Send + Sync`, `recv` blocks
//! until a message arrives or every sender is dropped, and `send` fails once
//! every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by `send` when all receivers have disconnected;
    /// carries the unsent message like the crossbeam original.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by `recv` when the channel is empty and all senders
    /// have disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn is_empty(&self) -> bool {
            self.shared.state.lock().unwrap().queue.is_empty()
        }

        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cross_thread_roundtrip() {
            let (tx, rx) = unbounded();
            let (done_tx, done_rx) = unbounded();
            let h = std::thread::spawn(move || {
                while let Ok(v) = rx.recv() {
                    done_tx.send(v * 2).unwrap();
                }
            });
            for i in 0..50u64 {
                tx.send(i).unwrap();
            }
            let mut sum = 0;
            for _ in 0..50 {
                sum += done_rx.recv().unwrap();
            }
            assert_eq!(sum, 2 * (49 * 50 / 2));
            drop(tx);
            h.join().unwrap();
        }
    }
}
