//! REG — temporal registration.
//!
//! Aligns the markers of the current frame with a reference couple using a
//! rigid (rotation + translation) transform, and validates the alignment
//! with a motion criterion based on the temporal difference between two
//! succeeding images of the sequence (Section 3). The registration outcome
//! drives the "REG. SUCCESSFUL" switch of the flow graph: only on success
//! do the enhancement and zoom stages run.

use crate::couples::Couple;
use crate::image::{ImageU16, Roi};

/// A 2-D rigid transform `p' = R(theta) * (p - c) + c + t` about center `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigidTransform {
    /// Rotation angle, radians.
    pub theta: f64,
    /// Rotation center (reference couple center).
    pub cx: f64,
    pub cy: f64,
    /// Translation after rotation.
    pub tx: f64,
    pub ty: f64,
}

impl RigidTransform {
    /// Identity transform about the origin.
    pub fn identity() -> Self {
        Self {
            theta: 0.0,
            cx: 0.0,
            cy: 0.0,
            tx: 0.0,
            ty: 0.0,
        }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        let (s, c) = self.theta.sin_cos();
        let dx = x - self.cx;
        let dy = y - self.cy;
        (
            c * dx - s * dy + self.cx + self.tx,
            s * dx + c * dy + self.cy + self.ty,
        )
    }

    /// Applies the inverse transform to a point (for inverse warping).
    pub fn apply_inverse(&self, x: f64, y: f64) -> (f64, f64) {
        let (s, c) = self.theta.sin_cos();
        let dx = x - self.cx - self.tx;
        let dy = y - self.cy - self.ty;
        (c * dx + s * dy + self.cx, -s * dx + c * dy + self.cy)
    }

    /// Magnitude of the translation component.
    pub fn translation_magnitude(&self) -> f64 {
        (self.tx * self.tx + self.ty * self.ty).sqrt()
    }
}

/// Configuration of the registration task.
#[derive(Debug, Clone)]
pub struct RegConfig {
    /// Maximum plausible marker motion between frames, pixels; larger
    /// estimated motions mark the registration as failed (mis-tracking).
    pub max_motion: f64,
    /// Maximum residual marker mismatch after alignment, pixels.
    pub max_residual: f64,
    /// Maximum mean absolute temporal difference (after registration, on a
    /// decimated grid) accepted as "same anatomy"; larger values indicate a
    /// scene change (contrast bolus, panning) and fail the registration.
    pub max_temporal_diff: f64,
    /// Decimation step of the temporal-difference probe.
    pub probe_step: usize,
}

impl Default for RegConfig {
    fn default() -> Self {
        Self {
            max_motion: 40.0,
            max_residual: 6.0,
            max_temporal_diff: 220.0,
            probe_step: 8,
        }
    }
}

/// Result of the registration task.
#[derive(Debug, Clone)]
pub struct RegOutput {
    /// Estimated transform mapping current-frame coordinates onto the
    /// reference frame.
    pub transform: RigidTransform,
    /// Whether the registration passed all validity gates (drives the
    /// "REG. SUCCESSFUL" switch).
    pub success: bool,
    /// Residual marker mismatch after alignment, pixels.
    pub residual: f64,
    /// Mean absolute temporal difference on the probe grid.
    pub temporal_diff: f64,
}

/// Estimates the rigid transform that maps `current` onto `reference`.
///
/// The two marker pairs give an exact rotation (axis angles) and
/// translation (center displacement); the residual measures how well the
/// inter-marker distances agree (a proxy for mis-detection).
pub fn estimate_transform(current: &Couple, reference: &Couple) -> (RigidTransform, f64) {
    // Orient both couples consistently: order endpoints so the pairing
    // minimizes total endpoint distance.
    let direct = current.a.distance(&reference.a) + current.b.distance(&reference.b);
    let swapped = current.a.distance(&reference.b) + current.b.distance(&reference.a);
    let (ca, cb) = if direct <= swapped {
        (current.a, current.b)
    } else {
        (current.b, current.a)
    };

    let cur_angle = (cb.y - ca.y).atan2(cb.x - ca.x);
    let ref_angle = (reference.b.y - reference.a.y).atan2(reference.b.x - reference.a.x);
    let mut theta = ref_angle - cur_angle;
    // wrap to (-pi, pi]
    while theta > std::f64::consts::PI {
        theta -= 2.0 * std::f64::consts::PI;
    }
    while theta <= -std::f64::consts::PI {
        theta += 2.0 * std::f64::consts::PI;
    }

    let (ccx, ccy) = ((ca.x + cb.x) * 0.5, (ca.y + cb.y) * 0.5);
    let (rcx, rcy) = reference.center();
    let t = RigidTransform {
        theta,
        cx: ccx,
        cy: ccy,
        tx: rcx - ccx,
        ty: rcy - ccy,
    };

    // residual: how far the transformed current markers land from reference
    let (ax, ay) = t.apply(ca.x, ca.y);
    let (bx, by) = t.apply(cb.x, cb.y);
    let residual = (((ax - reference.a.x).powi(2) + (ay - reference.a.y).powi(2)).sqrt()
        + ((bx - reference.b.x).powi(2) + (by - reference.b.y).powi(2)).sqrt())
        * 0.5;
    (t, residual)
}

/// Mean absolute difference between `a` (warped by `t`) and `b` on a
/// decimated grid inside `roi`. Cheap motion criterion of the paper.
pub fn temporal_difference(
    a: &ImageU16,
    b: &ImageU16,
    t: &RigidTransform,
    roi: Roi,
    step: usize,
) -> f64 {
    assert!(step > 0);
    let roi = roi.clamp_to(a.width().min(b.width()), a.height().min(b.height()));
    let mut total = 0.0f64;
    let mut count = 0usize;
    // Hoisted `apply_inverse`: sin_cos once per call, the dy-dependent terms
    // once per row. Same association as the per-pixel form, so `sx`/`sy` are
    // bit-identical to calling `t.apply_inverse` at every grid point.
    let (s, c) = t.theta.sin_cos();
    let ns = -s;
    let mut y = roi.y;
    while y < roi.bottom() {
        let dy = y as f64 - t.cy - t.ty;
        let (t1, t2) = (s * dy, c * dy);
        let mut x = roi.x;
        while x < roi.right() {
            let dx = x as f64 - t.cx - t.tx;
            let sx = (c * dx + t1) + t.cx;
            let sy = (ns * dx + t2) + t.cy;
            let v = a.get_clamped(sx.round() as isize, sy.round() as isize) as f64;
            total += (v - b.get(x, y) as f64).abs();
            count += 1;
            x += step;
        }
        y += step;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Full registration: transform estimation + validity gates.
pub fn register(
    current_frame: &ImageU16,
    reference_frame: &ImageU16,
    current: &Couple,
    reference: &Couple,
    roi: Roi,
    cfg: &RegConfig,
) -> RegOutput {
    let (transform, residual) = estimate_transform(current, reference);
    let temporal_diff = temporal_difference(
        current_frame,
        reference_frame,
        &transform,
        roi,
        cfg.probe_step,
    );
    let success = residual <= cfg.max_residual
        && transform.translation_magnitude() <= cfg.max_motion
        && temporal_diff <= cfg.max_temporal_diff;
    RegOutput {
        transform,
        success,
        residual,
        temporal_diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use crate::markers::Marker;

    fn mk(x: f64, y: f64) -> Marker {
        Marker {
            x,
            y,
            strength: 100.0,
            scale: 2.0,
        }
    }

    fn couple(ax: f64, ay: f64, bx: f64, by: f64) -> Couple {
        Couple {
            a: mk(ax, ay),
            b: mk(bx, by),
            score: 0.0,
        }
    }

    #[test]
    fn identity_when_couples_coincide() {
        let c = couple(10.0, 10.0, 30.0, 10.0);
        let (t, residual) = estimate_transform(&c, &c);
        assert!(t.theta.abs() < 1e-12);
        assert!(t.translation_magnitude() < 1e-12);
        assert!(residual < 1e-12);
    }

    #[test]
    fn pure_translation_recovered() {
        let cur = couple(10.0, 10.0, 30.0, 10.0);
        let refc = couple(15.0, 13.0, 35.0, 13.0);
        let (t, residual) = estimate_transform(&cur, &refc);
        assert!((t.tx - 5.0).abs() < 1e-9);
        assert!((t.ty - 3.0).abs() < 1e-9);
        assert!(residual < 1e-9);
        let (x, y) = t.apply(10.0, 10.0);
        assert!((x - 15.0).abs() < 1e-9 && (y - 13.0).abs() < 1e-9);
    }

    #[test]
    fn pure_rotation_recovered() {
        let cur = couple(-10.0, 0.0, 10.0, 0.0);
        // rotate by 90 degrees about origin
        let refc = couple(0.0, -10.0, 0.0, 10.0);
        let (t, residual) = estimate_transform(&cur, &refc);
        assert!(
            (t.theta.abs() - std::f64::consts::FRAC_PI_2).abs() < 1e-9,
            "theta {}",
            t.theta
        );
        assert!(residual < 1e-9);
    }

    #[test]
    fn endpoint_swap_handled() {
        let cur = couple(10.0, 10.0, 30.0, 10.0);
        let refc = couple(30.0, 10.0, 10.0, 10.0); // same couple, swapped
        let (t, residual) = estimate_transform(&cur, &refc);
        assert!(residual < 1e-9, "residual {}", residual);
        assert!(t.translation_magnitude() < 1e-9);
    }

    #[test]
    fn inverse_round_trips() {
        let t = RigidTransform {
            theta: 0.3,
            cx: 50.0,
            cy: 40.0,
            tx: 7.0,
            ty: -3.0,
        };
        let (x, y) = t.apply(12.0, 34.0);
        let (bx, by) = t.apply_inverse(x, y);
        assert!((bx - 12.0).abs() < 1e-9 && (by - 34.0).abs() < 1e-9);
    }

    #[test]
    fn length_mismatch_raises_residual() {
        let cur = couple(0.0, 0.0, 20.0, 0.0);
        let refc = couple(0.0, 0.0, 30.0, 0.0); // different marker spacing
        let (_, residual) = estimate_transform(&cur, &refc);
        assert!(residual > 2.0, "residual {}", residual);
    }

    #[test]
    fn registration_succeeds_on_consistent_frames() {
        let img = Image::from_fn(64, 64, |x, y| ((x * 3 + y * 5) % 997) as u16);
        let cur = couple(20.0, 20.0, 40.0, 20.0);
        let out = register(
            &img,
            &img,
            &cur,
            &cur,
            img.full_roi(),
            &RegConfig::default(),
        );
        assert!(out.success);
        assert!(out.temporal_diff < 1.0);
    }

    #[test]
    fn registration_fails_on_excessive_motion() {
        let img = Image::from_fn(64, 64, |x, y| ((x + y) % 100) as u16);
        let cur = couple(0.0, 0.0, 20.0, 0.0);
        let refc = couple(100.0, 100.0, 120.0, 100.0);
        let cfg = RegConfig {
            max_motion: 10.0,
            ..Default::default()
        };
        let out = register(&img, &img, &cur, &refc, img.full_roi(), &cfg);
        assert!(!out.success);
    }

    #[test]
    fn registration_fails_on_scene_change() {
        let a = Image::from_fn(64, 64, |_, _| 0u16);
        let b = Image::from_fn(64, 64, |_, _| 4000u16);
        let cur = couple(20.0, 20.0, 40.0, 20.0);
        let cfg = RegConfig {
            max_temporal_diff: 100.0,
            ..Default::default()
        };
        let out = register(&a, &b, &cur, &cur, a.full_roi(), &cfg);
        assert!(!out.success);
        assert!(out.temporal_diff > 1000.0);
    }
}
