//! Display overlays: annotating frames with analysis results.
//!
//! The clinical viewer draws the tracked ROI and the detected markers over
//! the live image; these helpers do the same on u16 frames (used by the
//! examples and for visual debugging of the pipeline).

use crate::couples::Couple;
use crate::image::{ImageU16, Roi};

/// Draws a 1-pixel rectangle outline of `roi` with the given intensity.
pub fn draw_roi(img: &mut ImageU16, roi: Roi, value: u16) {
    let roi = roi.clamp_to(img.width(), img.height());
    if roi.is_empty() {
        return;
    }
    for x in roi.x..roi.right() {
        img.set(x, roi.y, value);
        img.set(x, roi.bottom() - 1, value);
    }
    for y in roi.y..roi.bottom() {
        img.set(roi.x, y, value);
        img.set(roi.right() - 1, y, value);
    }
}

/// Draws a cross of half-length `arm` centered at `(cx, cy)`.
pub fn draw_cross(img: &mut ImageU16, cx: f64, cy: f64, arm: usize, value: u16) {
    let (w, h) = img.dims();
    if w == 0 || h == 0 {
        return;
    }
    let cx = cx.round().clamp(0.0, (w - 1) as f64) as usize;
    let cy = cy.round().clamp(0.0, (h - 1) as f64) as usize;
    let x0 = cx.saturating_sub(arm);
    let x1 = (cx + arm).min(w - 1);
    for x in x0..=x1 {
        img.set(x, cy, value);
    }
    let y0 = cy.saturating_sub(arm);
    let y1 = (cy + arm).min(h - 1);
    for y in y0..=y1 {
        img.set(cx, y, value);
    }
}

/// Draws a marker couple: a cross at each marker plus a connecting line.
pub fn draw_couple(img: &mut ImageU16, couple: &Couple, value: u16) {
    draw_cross(img, couple.a.x, couple.a.y, 4, value);
    draw_cross(img, couple.b.x, couple.b.y, 4, value);
    // Bresenham-ish line via parameter stepping
    let steps = couple.length().ceil().max(1.0) as usize;
    let (w, h) = img.dims();
    for i in 0..=steps {
        let t = i as f64 / steps as f64;
        let x = couple.a.x + (couple.b.x - couple.a.x) * t;
        let y = couple.a.y + (couple.b.y - couple.a.y) * t;
        if x >= 0.0 && y >= 0.0 && (x as usize) < w && (y as usize) < h {
            img.set(x as usize, y as usize, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use crate::markers::Marker;

    #[test]
    fn roi_outline_marks_borders_only() {
        let mut img: ImageU16 = Image::new(16, 16);
        draw_roi(&mut img, Roi::new(4, 4, 8, 8), 999);
        assert_eq!(img.get(4, 4), 999);
        assert_eq!(img.get(11, 11), 999);
        assert_eq!(img.get(4, 11), 999);
        assert_eq!(img.get(7, 7), 0, "interior must stay untouched");
        assert_eq!(img.get(0, 0), 0);
    }

    #[test]
    fn roi_outline_clips_at_image_border() {
        let mut img: ImageU16 = Image::new(8, 8);
        draw_roi(&mut img, Roi::new(6, 6, 10, 10), 5);
        assert_eq!(img.get(7, 7), 5);
        // no panic is the main assertion
    }

    #[test]
    fn cross_centered_and_clipped() {
        let mut img: ImageU16 = Image::new(16, 16);
        draw_cross(&mut img, 8.0, 8.0, 3, 7);
        assert_eq!(img.get(8, 8), 7);
        assert_eq!(img.get(5, 8), 7);
        assert_eq!(img.get(11, 8), 7);
        assert_eq!(img.get(8, 5), 7);
        assert_eq!(img.get(4, 8), 0);
        // near the border
        draw_cross(&mut img, 0.0, 0.0, 5, 9);
        assert_eq!(img.get(0, 0), 9);
    }

    #[test]
    fn couple_line_connects_markers() {
        let mut img: ImageU16 = Image::new(32, 32);
        let c = Couple {
            a: Marker {
                x: 4.0,
                y: 4.0,
                strength: 1.0,
                scale: 2.0,
            },
            b: Marker {
                x: 24.0,
                y: 24.0,
                strength: 1.0,
                scale: 2.0,
            },
            score: 0.0,
        };
        draw_couple(&mut img, &c, 100);
        assert_eq!(img.get(4, 4), 100);
        assert_eq!(img.get(24, 24), 100);
        assert_eq!(img.get(14, 14), 100, "midpoint of the connecting line");
    }

    #[test]
    fn empty_roi_is_a_no_op() {
        let mut img: ImageU16 = Image::new(8, 8);
        draw_roi(&mut img, Roi::new(0, 0, 0, 0), 5);
        assert_eq!(img.min_max(), (0, 0));
    }
}
