//! RDG — ridge detection and filtering.
//!
//! The first stage of the flow graph (Fig. 2): a multi-scale Hessian ridge
//! filter detects elongated dark structures (vessels, guide wires) so that
//! they can be *removed* from the image, leaving only punctual dark zones
//! (the candidate balloon markers) for the marker-extraction stage.
//!
//! The task exists in two granularities, `RDG FULL` (whole frame) and
//! `RDG ROI` (region-of-interest only), matching Table 1 of the paper. Its
//! computation time is linear in the processed area (Fig. 6) with
//! content-dependent fluctuations on top, caused by the ridge-tracing pass
//! whose cost grows with the amount of curvilinear structure in the frame —
//! exactly the structural + stochastic split Triple-C models.

use crate::hessian::{
    accumulate_max_response, hessian_at_scale, ridge_response, HessianImages, HessianScratch,
};
use crate::image::{ImageF32, ImageU16, Roi};

/// Configuration of the ridge-detection task.
#[derive(Debug, Clone)]
pub struct RdgConfig {
    /// Base Gaussian scales (sigma, pixels) of the multi-scale filter,
    /// always processed.
    pub scales: Vec<f32>,
    /// Fine refinement scales, processed only when `fine_enabled` — the
    /// coarse-to-fine adaptation that makes RDG cost content-dependent
    /// ("depending on the image content ... the analysis algorithm may
    /// switch", Section 1).
    pub fine_scales: Vec<f32>,
    /// Whether the fine scales run this frame. The pipeline derives this
    /// per frame from the structure probe; standalone callers keep the
    /// default (enabled), which processes the full scale set.
    pub fine_enabled: bool,
    /// Threshold on the ridge response, as a fraction of the response
    /// standard deviation, above which a pixel is considered ridge.
    pub threshold_factor: f32,
    /// Weak (hysteresis) threshold factor: the flood fill seeded by strong
    /// pixels expands through everything above `mean + weak_factor * std`.
    pub weak_factor: f32,
    /// Absolute response floor for both thresholds, calibrated above the
    /// quantum-noise response of the detector. Purely relative thresholds
    /// would adapt away the contrast dependence (and flood noise regions
    /// on quiet frames); the floor keeps the traced work proportional to
    /// the amount of real structure.
    pub response_floor: f32,
    /// Strength of ridge suppression in the filtered output: suppressed
    /// intensity = original + `suppression` * ridgeness (brightening dark
    /// ridges back to background level).
    pub suppression: f32,
}

impl Default for RdgConfig {
    fn default() -> Self {
        Self {
            scales: vec![1.5, 2.5],
            fine_scales: vec![4.0],
            fine_enabled: true,
            threshold_factor: 2.0,
            weak_factor: 0.25,
            response_floor: 32.0,
            suppression: 1.0,
        }
    }
}

/// Reusable working memory of the RDG task. These buffers are the
/// "intermediate" storage of Table 1 and the A/B/C buffers of Fig. 5.
#[derive(Debug)]
pub struct RdgBuffers {
    /// A: the input frame converted to f32.
    src_f32: ImageF32,
    /// B: the three Hessian component images of the current scale.
    hessian: HessianImages,
    /// Separable-convolution scratch.
    scratch: HessianScratch,
    /// C: the multi-scale ridge-response accumulator.
    acc: ImageF32,
    /// Generation-stamped visited mask of the tracing pass: a pixel counts
    /// as visited when its stamp equals `visit_gen`, so clearing between
    /// frames is a counter bump instead of a full rewrite.
    visited: Vec<u32>,
    visit_gen: u32,
    /// Reusable flood-fill work stack of the tracing pass.
    trace_stack: Vec<(usize, usize)>,
    /// Recycled output images (see [`RdgBuffers::recycle`]).
    u16_pool: Vec<ImageU16>,
    f32_pool: Vec<ImageF32>,
    /// Image allocations performed by the output pool; stays constant once
    /// the pool is warm (asserted by tests).
    allocations: usize,
}

impl RdgBuffers {
    /// Allocates buffers for `width x height` frames.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            src_f32: ImageF32::new(width, height),
            hessian: HessianImages {
                ixx: ImageF32::new(width, height),
                iyy: ImageF32::new(width, height),
                ixy: ImageF32::new(width, height),
            },
            scratch: HessianScratch::new(width, height),
            acc: ImageF32::new(width, height),
            visited: vec![0; width * height],
            visit_gen: 0,
            trace_stack: Vec::new(),
            u16_pool: Vec::new(),
            f32_pool: Vec::new(),
            allocations: 0,
        }
    }

    /// Total intermediate storage in bytes (Table 1 accounting), including
    /// any recycled output images currently parked in the pool.
    pub fn byte_size(&self) -> usize {
        self.src_f32.byte_size()
            + self.hessian.ixx.byte_size()
            + self.hessian.iyy.byte_size()
            + self.hessian.ixy.byte_size()
            + self.scratch.byte_size()
            + self.acc.byte_size()
            + self.visited.len() * std::mem::size_of::<u32>()
            + self.u16_pool.iter().map(|i| i.byte_size()).sum::<usize>()
            + self.f32_pool.iter().map(|i| i.byte_size()).sum::<usize>()
    }

    /// Returns a finished output's images for reuse by the next frame: the
    /// steady-state sequence path performs zero per-frame heap allocation.
    pub fn recycle(&mut self, out: RdgOutput) {
        if self.u16_pool.len() < 2 {
            self.u16_pool.push(out.filtered);
        }
        if self.f32_pool.len() < 2 {
            self.f32_pool.push(out.ridgeness);
        }
    }

    /// Number of output-image allocations performed so far; a warmed-up
    /// buffer set stops allocating (asserted by tests).
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    fn dims(&self) -> (usize, usize) {
        self.src_f32.dims()
    }

    /// A pooled copy of `src` for the filtered output.
    fn take_filtered(&mut self, src: &ImageU16) -> ImageU16 {
        match self.u16_pool.pop() {
            Some(mut img) if img.dims() == src.dims() => {
                img.copy_from(src);
                img
            }
            _ => {
                self.allocations += 1;
                src.clone()
            }
        }
    }

    /// A pooled zeroed ridgeness image.
    fn take_ridgeness(&mut self, width: usize, height: usize) -> ImageF32 {
        match self.f32_pool.pop() {
            Some(mut img) if img.dims() == (width, height) => {
                img.fill(0.0);
                img
            }
            _ => {
                self.allocations += 1;
                ImageF32::new(width, height)
            }
        }
    }
}

/// Result of the RDG task.
#[derive(Debug, Clone)]
pub struct RdgOutput {
    /// The ridge-suppressed frame handed to marker extraction.
    pub filtered: ImageU16,
    /// The multi-scale ridge-response map (also consumed by GW EXT).
    pub ridgeness: ImageF32,
    /// Number of pixels classified as ridge (content-dependent load proxy).
    pub ridge_pixels: usize,
    /// Number of connected ridge segments traced.
    pub segments: usize,
}

impl RdgOutput {
    /// Output storage in bytes (Table 1 accounting).
    pub fn byte_size(&self) -> usize {
        self.filtered.byte_size() + self.ridgeness.byte_size()
    }
}

/// Runs ridge detection on the full frame.
pub fn rdg_full(src: &ImageU16, cfg: &RdgConfig, bufs: &mut RdgBuffers) -> RdgOutput {
    rdg_roi(src, src.full_roi(), cfg, bufs)
}

/// Runs ridge detection restricted to `roi`. Pixels outside the ROI pass
/// through unfiltered with zero ridgeness.
pub fn rdg_roi(src: &ImageU16, roi: Roi, cfg: &RdgConfig, bufs: &mut RdgBuffers) -> RdgOutput {
    assert_eq!(
        src.dims(),
        bufs.dims(),
        "buffer geometry must match the frame"
    );
    assert!(!cfg.scales.is_empty(), "at least one scale required");
    let roi = roi.clamp_to(src.width(), src.height());

    // Stage A: integer-to-float conversion (streaming pass over the input).
    let active_scales: Vec<f32> = cfg
        .scales
        .iter()
        .chain(if cfg.fine_enabled {
            cfg.fine_scales.iter()
        } else {
            [].iter()
        })
        .copied()
        .collect();
    let halo = active_scales
        .iter()
        .map(|&s| (3.0 * s).ceil() as usize)
        .max()
        .unwrap_or(0);
    let conv_roi = roi.inflate(halo, src.width(), src.height());
    for y in conv_roi.y..conv_roi.bottom() {
        let s = src.row(y);
        let d = bufs.src_f32.row_mut(y);
        for x in conv_roi.x..conv_roi.right() {
            d[x] = s[x] as f32;
        }
    }

    // Stage B: multi-scale Hessian ridge response, max over scales.
    for y in roi.y..roi.bottom() {
        bufs.acc.row_mut(y)[roi.x..roi.right()].fill(0.0);
    }
    for &sigma in &active_scales {
        hessian_at_scale(
            &bufs.src_f32,
            &mut bufs.hessian,
            &mut bufs.scratch,
            roi,
            sigma,
        );
        accumulate_max_response(&bufs.hessian, &mut bufs.acc, roi, ridge_response);
    }

    // Stage C: hysteresis thresholding — strong seeds expand through the
    // weak-threshold region (data-dependent cost) — and synthesis of the
    // ridge-suppressed output.
    let (mean, std) = response_stats(&bufs.acc, roi);
    let weak_threshold = (mean + cfg.weak_factor * std).max(cfg.response_floor);
    let threshold = (mean + cfg.threshold_factor * std).max(weak_threshold);
    // Bump the visited generation (clearing the mask only on counter wrap),
    // so the tracing pass needs no per-frame mask allocation or reset.
    bufs.visit_gen = bufs.visit_gen.wrapping_add(1);
    if bufs.visit_gen == 0 {
        bufs.visited.fill(0);
        bufs.visit_gen = 1;
    }
    let (ridge_pixels, segments) = trace_segments(
        &bufs.acc,
        roi,
        threshold,
        weak_threshold,
        &mut bufs.visited,
        bufs.visit_gen,
        &mut bufs.trace_stack,
    );

    let mut filtered = bufs.take_filtered(src);
    let mut ridgeness = bufs.take_ridgeness(src.width(), src.height());
    for y in roi.y..roi.bottom() {
        let acc_row = bufs.acc.row(y);
        let out_row = filtered.row_mut(y);
        let rid_row = ridgeness.row_mut(y);
        for x in roi.x..roi.right() {
            let r = acc_row[x];
            rid_row[x] = r;
            if r > threshold {
                // brighten the dark ridge back toward background
                let v = out_row[x] as f32 + cfg.suppression * r;
                out_row[x] = v.clamp(0.0, u16::MAX as f32) as u16;
            }
        }
    }

    RdgOutput {
        filtered,
        ridgeness,
        ridge_pixels,
        segments,
    }
}

/// Mean and standard deviation of the response inside `roi`.
pub(crate) fn response_stats(acc: &ImageF32, roi: Roi) -> (f32, f32) {
    let n = roi.area();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mut sum = 0.0f64;
    let mut sum2 = 0.0f64;
    for y in roi.y..roi.bottom() {
        for &v in &acc.row(y)[roi.x..roi.right()] {
            sum += v as f64;
            sum2 += (v as f64) * (v as f64);
        }
    }
    let mean = sum / n as f64;
    let var = (sum2 / n as f64 - mean * mean).max(0.0);
    (mean as f32, var.sqrt() as f32)
}

/// Local orientation coherence of the ridge response at a traced pixel:
/// a windowed structure-tensor evaluation followed by a short walk along
/// the dominant orientation checking ridge continuity — the linking
/// criterion real ridge detectors apply per candidate pixel. Its
/// per-pixel cost is what makes the RDG stage-C time grow with the amount
/// of structure in the frame.
fn local_coherence(acc: &ImageF32, cx: usize, cy: usize, half_window: isize) -> f32 {
    let mut jxx = 0.0f32;
    let mut jyy = 0.0f32;
    let mut jxy = 0.0f32;
    let (cxi, cyi) = (cx as isize, cy as isize);
    for dy in -half_window..=half_window {
        for dx in -half_window..=half_window {
            let gx =
                acc.get_clamped(cxi + dx + 1, cyi + dy) - acc.get_clamped(cxi + dx - 1, cyi + dy);
            let gy =
                acc.get_clamped(cxi + dx, cyi + dy + 1) - acc.get_clamped(cxi + dx, cyi + dy - 1);
            jxx += gx * gx;
            jyy += gy * gy;
            jxy += gx * gy;
        }
    }
    let tr = jxx + jyy;
    if tr <= 1e-12 {
        return 0.0;
    }
    let diff = jxx - jyy;
    let disc = (diff * diff + 4.0 * jxy * jxy).sqrt();
    let coherence = disc / tr;

    // continuity walk along the dominant (ridge) orientation: the
    // eigenvector of the larger structure-tensor eigenvalue
    let theta = 0.5 * (2.0 * jxy).atan2(diff);
    let (sin_t, cos_t) = theta.sin_cos();
    let mut continuity = 0.0f32;
    for step in 1..=6 {
        let fx = cx as f32 + cos_t * step as f32;
        let fy = cy as f32 + sin_t * step as f32;
        // bilinear sample of the response along the walk
        let x0 = fx.floor() as isize;
        let y0 = fy.floor() as isize;
        let tx = fx - x0 as f32;
        let ty = fy - y0 as f32;
        let v00 = acc.get_clamped(x0, y0);
        let v10 = acc.get_clamped(x0 + 1, y0);
        let v01 = acc.get_clamped(x0, y0 + 1);
        let v11 = acc.get_clamped(x0 + 1, y0 + 1);
        continuity += v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty;
    }
    coherence + 1e-6 * continuity
}

/// Hysteresis tracing of ridge pixels: pixels above the strong threshold
/// seed a flood fill that expands through everything above the weak
/// threshold (Canny-style linking), with a per-pixel orientation-coherence
/// analysis (the linking criterion).
///
/// This is the content-dependent part of RDG: a frame full of vessels and
/// wires costs far more than a quiet frame, which is the "structural
/// fluctuation caused by the dependency of the processing time on the video
/// content" that the paper's EWMA + Markov decomposition targets.
fn trace_segments(
    acc: &ImageF32,
    roi: Roi,
    threshold: f32,
    weak: f32,
    visited: &mut [u32],
    gen: u32,
    stack: &mut Vec<(usize, usize)>,
) -> (usize, usize) {
    let weak = weak.min(threshold);
    let (w, h) = acc.dims();
    debug_assert_eq!(visited.len(), w * h);
    let _ = h;
    let mut ridge_pixels = 0usize;
    let mut segments = 0usize;
    stack.clear();
    let mut coherence = 0.0f32;
    for y in roi.y..roi.bottom() {
        for x in roi.x..roi.right() {
            if visited[y * w + x] == gen || acc.get(x, y) <= threshold {
                continue;
            }
            segments += 1;
            stack.push((x, y));
            visited[y * w + x] = gen;
            while let Some((cx, cy)) = stack.pop() {
                ridge_pixels += 1;
                coherence += local_coherence(acc, cx, cy, 4);
                // 8-connected neighbourhood, clipped to the ROI
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let nx = cx as i64 + dx;
                        let ny = cy as i64 + dy;
                        if nx < roi.x as i64
                            || ny < roi.y as i64
                            || nx >= roi.right() as i64
                            || ny >= roi.bottom() as i64
                        {
                            continue;
                        }
                        let (nx, ny) = (nx as usize, ny as usize);
                        if visited[ny * w + nx] != gen && acc.get(nx, ny) > weak {
                            visited[ny * w + nx] = gen;
                            stack.push((nx, ny));
                        }
                    }
                }
            }
        }
    }
    // the accumulated coherence is a byproduct (kept from being optimized
    // away); linking decisions themselves are not needed downstream
    std::hint::black_box(coherence);
    (ridge_pixels, segments)
}

/// Cheap structure probe driving the "RDG DETECTION" switch of Fig. 2.
///
/// Measures mean absolute horizontal+vertical gradient on a decimated grid;
/// a frame with dominant curvilinear structures scores high and enables the
/// full ridge-detection stage, a quiet frame skips it.
pub fn quick_structure_probe(src: &ImageU16, step: usize) -> f64 {
    assert!(step > 0, "probe step must be positive");
    let (w, h) = src.dims();
    if w < 2 || h < 2 {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut y = 0;
    while y + 1 < h {
        let row = src.row(y);
        let next = src.row(y + 1);
        let mut x = 0;
        while x + 1 < w {
            let gx = (row[x + 1] as f64 - row[x] as f64).abs();
            let gy = (next[x] as f64 - row[x] as f64).abs();
            total += gx + gy;
            count += 1;
            x += step;
        }
        y += step;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Runs RDG on a cropped sub-frame with halo and pastes the result back.
///
/// This is the unit of work of the data-parallel (striped) RDG execution:
/// each worker processes one stripe of the frame independently on local
/// buffers, which is possible because the filter support is bounded by the
/// largest kernel radius.
pub fn rdg_stripe(src: &ImageU16, stripe: Roi, cfg: &RdgConfig) -> (Roi, ImageU16, ImageF32) {
    let halo = cfg
        .scales
        .iter()
        .chain(if cfg.fine_enabled {
            cfg.fine_scales.iter()
        } else {
            [].iter()
        })
        .map(|&s| (3.0 * s).ceil() as usize)
        .max()
        .unwrap_or(0);
    let ext = stripe.inflate(halo, src.width(), src.height());
    let sub = src.crop(ext);
    let mut bufs = RdgBuffers::new(sub.width(), sub.height());
    // The stripe's position inside the cropped sub-image.
    let local = Roi::new(
        stripe.x - ext.x,
        stripe.y - ext.y,
        stripe.width,
        stripe.height,
    );
    let out = rdg_roi(&sub, local, cfg, &mut bufs);
    (stripe, out.filtered.crop(local), out.ridgeness.crop(local))
}

/// Assembles per-stripe results into full-frame outputs. The per-stripe
/// segment statistics are not preserved (stripe tracing is local), so the
/// assembled output reports pixel counts only.
pub fn assemble_stripes(
    src: &ImageU16,
    parts: Vec<(Roi, ImageU16, ImageF32)>,
    threshold_hint: f32,
) -> RdgOutput {
    let mut filtered = src.clone();
    let mut ridgeness = ImageF32::new(src.width(), src.height());
    let mut ridge_pixels = 0usize;
    for (roi, f, r) in parts {
        filtered.paste(&f, roi.x, roi.y);
        ridgeness.paste(&r, roi.x, roi.y);
        for y in 0..r.height() {
            for x in 0..r.width() {
                if r.get(x, y) > threshold_hint {
                    ridge_pixels += 1;
                }
            }
        }
    }
    RdgOutput {
        filtered,
        ridgeness,
        ridge_pixels,
        segments: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    /// Synthesizes a frame with a dark diagonal wire and a dark blob pair.
    fn test_frame(w: usize, h: usize) -> ImageU16 {
        Image::from_fn(w, h, |x, y| {
            let mut v = 2000.0f32;
            // diagonal wire
            let d = (x as f32 - y as f32).abs() / 1.5;
            v -= 900.0 * (-d * d / 2.0).exp();
            // two blobs
            for &(cx, cy) in &[
                (w as f32 * 0.25, h as f32 * 0.75),
                (w as f32 * 0.75, h as f32 * 0.25),
            ] {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                v -= 1100.0 * (-(dx * dx + dy * dy) / 8.0).exp();
            }
            v.max(0.0) as u16
        })
    }

    #[test]
    fn rdg_detects_and_suppresses_the_wire() {
        let src = test_frame(64, 64);
        let cfg = RdgConfig::default();
        let mut bufs = RdgBuffers::new(64, 64);
        let out = rdg_full(&src, &cfg, &mut bufs);
        assert!(out.ridge_pixels > 20, "ridge pixels {}", out.ridge_pixels);
        assert!(out.segments >= 1);
        // the wire center must be brightened (suppressed)
        let before = src.get(32, 32);
        let after = out.filtered.get(32, 32);
        assert!(
            after > before,
            "wire not suppressed: {} -> {}",
            before,
            after
        );
    }

    #[test]
    fn rdg_leaves_blobs_mostly_intact() {
        let src = test_frame(64, 64);
        let out = rdg_full(&src, &RdgConfig::default(), &mut RdgBuffers::new(64, 64));
        let (bx, by) = (16, 48);
        let before = src.get(bx, by) as i64;
        let after = out.filtered.get(bx, by) as i64;
        // blob brightening must stay small relative to its depth (~1100)
        assert!(
            (after - before).abs() < 550,
            "blob altered too much: {} -> {}",
            before,
            after
        );
    }

    #[test]
    fn rdg_roi_leaves_outside_untouched() {
        let src = test_frame(64, 64);
        let roi = Roi::new(16, 16, 32, 32);
        let out = rdg_roi(
            &src,
            roi,
            &RdgConfig::default(),
            &mut RdgBuffers::new(64, 64),
        );
        assert_eq!(out.filtered.get(0, 0), src.get(0, 0));
        assert_eq!(out.ridgeness.get(0, 0), 0.0);
        assert_eq!(out.filtered.get(63, 63), src.get(63, 63));
    }

    #[test]
    fn quiet_frame_has_few_ridge_pixels() {
        let src: ImageU16 = Image::filled(64, 64, 2000);
        let out = rdg_full(&src, &RdgConfig::default(), &mut RdgBuffers::new(64, 64));
        assert_eq!(out.ridge_pixels, 0);
        assert_eq!(out.segments, 0);
    }

    #[test]
    fn structure_probe_separates_busy_from_quiet() {
        let busy = test_frame(64, 64);
        let quiet: ImageU16 = Image::filled(64, 64, 2000);
        let pb = quick_structure_probe(&busy, 4);
        let pq = quick_structure_probe(&quiet, 4);
        assert!(pb > 10.0 * (pq + 1.0), "busy {} quiet {}", pb, pq);
    }

    #[test]
    fn striped_rdg_matches_full_frame_filter() {
        let src = test_frame(96, 96);
        let cfg = RdgConfig::default();
        let mut bufs = RdgBuffers::new(96, 96);
        let full = rdg_full(&src, &cfg, &mut bufs);

        let parts: Vec<_> = src
            .full_roi()
            .stripes(3)
            .into_iter()
            .map(|s| rdg_stripe(&src, s, &cfg))
            .collect();

        // The ridgeness maps must agree exactly pixel-for-pixel (halo is
        // sufficient). The filtered image can differ slightly because the
        // suppression threshold is computed from per-region statistics, so
        // compare the raw ridge response instead.
        for (roi, _f, r) in &parts {
            for y in 0..r.height() {
                for x in 0..r.width() {
                    let fx = roi.x + x;
                    let fy = roi.y + y;
                    let a = full.ridgeness.get(fx, fy);
                    let b = r.get(x, y);
                    assert!(
                        (a - b).abs() <= 1e-3 * a.abs().max(1.0),
                        "ridgeness mismatch at ({fx},{fy}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn warm_buffers_do_not_allocate_per_frame() {
        // The output pool must make the steady-state RDG path allocation
        // free: after the first frame warms the pool, the image-allocation
        // count stays constant no matter how many frames run.
        let src = test_frame(64, 64);
        let cfg = RdgConfig::default();
        let mut bufs = RdgBuffers::new(64, 64);
        let first = rdg_full(&src, &cfg, &mut bufs);
        bufs.recycle(first);
        let warm = bufs.allocations();
        assert_eq!(
            warm, 2,
            "first frame allocates exactly filtered + ridgeness"
        );
        for _ in 0..3 {
            let out = rdg_full(&src, &cfg, &mut bufs);
            bufs.recycle(out);
        }
        assert_eq!(
            bufs.allocations(),
            warm,
            "steady-state frames must not allocate"
        );
    }

    #[test]
    fn buffer_accounting_scales_with_geometry() {
        let small = RdgBuffers::new(64, 64).byte_size();
        let large = RdgBuffers::new(128, 128).byte_size();
        assert_eq!(large, small * 4);
    }

    #[test]
    fn more_structure_means_more_traced_pixels() {
        // content-dependence of the stage-C cost proxy
        let quiet = Image::from_fn(64, 64, |x, y| {
            let d = (x as f32 - y as f32).abs() / 1.5;
            (2000.0 - 400.0 * (-d * d / 2.0).exp()) as u16
        });
        let busy = Image::from_fn(64, 64, |x, y| {
            let mut v = 2000.0f32;
            for k in 0..4 {
                let off = (k * 16) as f32;
                let d = (x as f32 - y as f32 + off).abs() / 1.5;
                v -= 800.0 * (-d * d / 2.0).exp();
            }
            v as u16
        });
        let cfg = RdgConfig::default();
        let q = rdg_full(&quiet, &cfg, &mut RdgBuffers::new(64, 64));
        let b = rdg_full(&busy, &cfg, &mut RdgBuffers::new(64, 64));
        assert!(
            b.ridge_pixels > q.ridge_pixels,
            "busy {} quiet {}",
            b.ridge_pixels,
            q.ridge_pixels
        );
    }
}
