//! RDG — ridge detection and filtering.
//!
//! The first stage of the flow graph (Fig. 2): a multi-scale Hessian ridge
//! filter detects elongated dark structures (vessels, guide wires) so that
//! they can be *removed* from the image, leaving only punctual dark zones
//! (the candidate balloon markers) for the marker-extraction stage.
//!
//! The task exists in two granularities, `RDG FULL` (whole frame) and
//! `RDG ROI` (region-of-interest only), matching Table 1 of the paper. Its
//! computation time is linear in the processed area (Fig. 6) with
//! content-dependent fluctuations on top, caused by the ridge-tracing pass
//! whose cost grows with the amount of curvilinear structure in the frame —
//! exactly the structural + stochastic split Triple-C models.

use crate::fused::{fused_ridge_scale, fused_ridge_scale_init, FusedScratch};
use crate::hessian::{
    accumulate_max_response, hessian_at_scale, ridge_response, HessianImages, HessianScratch,
    KernelCache,
};
use crate::image::{ImageF32, ImageU16, Roi};
use crate::simd::{F32x8, SimdF32};

/// Which multi-scale Hessian core the RDG task runs.
///
/// Both engines are bit-identical (property-tested); they differ only in
/// speed and intermediate footprint. The reference engine stays compiled
/// so benches and tests can always diff the fused path against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RdgEngine {
    /// Fused, tiled, SIMD row+column+response sweep ([`crate::fused`]):
    /// one read of the source per scale, tile-ring intermediates only.
    #[default]
    Fused,
    /// Unfused reference: three `convolve_rows` + three `convolve_cols`
    /// passes per scale through full-frame intermediates, then a separate
    /// response/accumulate pass.
    Reference,
}

/// Configuration of the ridge-detection task.
#[derive(Debug, Clone)]
pub struct RdgConfig {
    /// Base Gaussian scales (sigma, pixels) of the multi-scale filter,
    /// always processed.
    pub scales: Vec<f32>,
    /// Fine refinement scales, processed only when `fine_enabled` — the
    /// coarse-to-fine adaptation that makes RDG cost content-dependent
    /// ("depending on the image content ... the analysis algorithm may
    /// switch", Section 1).
    pub fine_scales: Vec<f32>,
    /// Whether the fine scales run this frame. The pipeline derives this
    /// per frame from the structure probe; standalone callers keep the
    /// default (enabled), which processes the full scale set.
    pub fine_enabled: bool,
    /// Threshold on the ridge response, as a fraction of the response
    /// standard deviation, above which a pixel is considered ridge.
    pub threshold_factor: f32,
    /// Weak (hysteresis) threshold factor: the flood fill seeded by strong
    /// pixels expands through everything above `mean + weak_factor * std`.
    pub weak_factor: f32,
    /// Absolute response floor for both thresholds, calibrated above the
    /// quantum-noise response of the detector. Purely relative thresholds
    /// would adapt away the contrast dependence (and flood noise regions
    /// on quiet frames); the floor keeps the traced work proportional to
    /// the amount of real structure.
    pub response_floor: f32,
    /// Strength of ridge suppression in the filtered output: suppressed
    /// intensity = original + `suppression` * ridgeness (brightening dark
    /// ridges back to background level).
    pub suppression: f32,
    /// Which Hessian core runs stage B (bit-identical either way).
    pub engine: RdgEngine,
}

impl Default for RdgConfig {
    fn default() -> Self {
        Self {
            scales: vec![1.5, 2.5],
            fine_scales: vec![4.0],
            fine_enabled: true,
            threshold_factor: 2.0,
            weak_factor: 0.25,
            response_floor: 32.0,
            suppression: 1.0,
            engine: RdgEngine::Fused,
        }
    }
}

/// Full-frame working set of the *reference* (unfused) engine: the three
/// Hessian component images plus the separable-convolution scratch.
/// Allocated lazily on the first reference-engine frame, so the default
/// (fused) path never pays for it — the fused path's only stage-B
/// intermediates are the tile ring in [`FusedScratch`].
#[derive(Debug)]
struct ReferenceScratch {
    hessian: HessianImages,
    conv: HessianScratch,
}

impl ReferenceScratch {
    fn new(width: usize, height: usize) -> Self {
        Self {
            hessian: HessianImages {
                ixx: ImageF32::new(width, height),
                iyy: ImageF32::new(width, height),
                ixy: ImageF32::new(width, height),
            },
            conv: HessianScratch::new(width, height),
        }
    }

    fn byte_size(&self) -> usize {
        self.hessian.ixx.byte_size()
            + self.hessian.iyy.byte_size()
            + self.hessian.ixy.byte_size()
            + self.conv.byte_size()
    }
}

/// Reusable working memory of the RDG task. These buffers are the
/// "intermediate" storage of Table 1 and the A/B/C buffers of Fig. 5.
#[derive(Debug)]
pub struct RdgBuffers {
    /// A: the input frame converted to f32.
    src_f32: ImageF32,
    /// B: the fused engine's tile-ring scratch (row-filtered ring +
    /// Hessian row slices) — the only stage-B intermediate on the
    /// default path.
    fused: FusedScratch,
    /// Per-sigma `(G, G', G'')` cache shared by the fused engine.
    kernels: KernelCache,
    /// Full-frame intermediates of the reference engine, `None` until a
    /// reference-engine frame runs.
    reference: Option<Box<ReferenceScratch>>,
    /// C: the multi-scale ridge-response accumulator.
    acc: ImageF32,
    /// Generation-stamped visited mask of the tracing pass: a pixel counts
    /// as visited when its stamp equals `visit_gen`, so clearing between
    /// frames is a counter bump instead of a full rewrite.
    visited: Vec<u32>,
    visit_gen: u32,
    /// Reusable flood-fill work stack of the tracing pass.
    trace_stack: Vec<(usize, usize)>,
    /// Recycled output images (see [`RdgBuffers::recycle`]).
    u16_pool: Vec<ImageU16>,
    f32_pool: Vec<ImageF32>,
    /// Image allocations performed by the output pool; stays constant once
    /// the pool is warm (asserted by tests).
    allocations: usize,
}

impl RdgBuffers {
    /// Allocates buffers for `width x height` frames.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            src_f32: ImageF32::new(width, height),
            fused: FusedScratch::new(),
            kernels: KernelCache::new(),
            reference: None,
            acc: ImageF32::new(width, height),
            visited: vec![0; width * height],
            visit_gen: 0,
            trace_stack: Vec::new(),
            u16_pool: Vec::new(),
            f32_pool: Vec::new(),
            allocations: 0,
        }
    }

    /// Total intermediate storage in bytes (Table 1 accounting), including
    /// any recycled output images currently parked in the pool and — if a
    /// reference-engine frame ever ran — the reference engine's full-frame
    /// intermediates.
    pub fn byte_size(&self) -> usize {
        self.src_f32.byte_size()
            + self.fused.byte_size()
            + self.kernels.byte_size()
            + self.reference.as_ref().map_or(0, |r| r.byte_size())
            + self.acc.byte_size()
            + self.visited.len() * std::mem::size_of::<u32>()
            + self.u16_pool.iter().map(|i| i.byte_size()).sum::<usize>()
            + self.f32_pool.iter().map(|i| i.byte_size()).sum::<usize>()
    }

    /// Returns a finished output's images for reuse by the next frame: the
    /// steady-state sequence path performs zero per-frame heap allocation.
    pub fn recycle(&mut self, out: RdgOutput) {
        if self.u16_pool.len() < 2 {
            self.u16_pool.push(out.filtered);
        }
        if self.f32_pool.len() < 2 {
            self.f32_pool.push(out.ridgeness);
        }
    }

    /// Number of output-image allocations performed so far; a warmed-up
    /// buffer set stops allocating (asserted by tests).
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    fn dims(&self) -> (usize, usize) {
        self.src_f32.dims()
    }

    /// A pooled copy of `src` for the filtered output.
    fn take_filtered(&mut self, src: &ImageU16) -> ImageU16 {
        match self.u16_pool.pop() {
            Some(mut img) if img.dims() == src.dims() => {
                img.copy_from(src);
                img
            }
            _ => {
                self.allocations += 1;
                src.clone()
            }
        }
    }

    /// A pooled ridgeness image, zeroed everywhere `rdg_roi`'s synthesis
    /// loop will not overwrite (i.e. outside `roi`). The interior is left
    /// as stale pool data — cheaper than a full-frame clear, and the
    /// caller copies the response over every interior pixel.
    fn take_ridgeness(&mut self, width: usize, height: usize, roi: Roi) -> ImageF32 {
        match self.f32_pool.pop() {
            Some(mut img) if img.dims() == (width, height) => {
                let roi = roi.clamp_to(width, height);
                for y in 0..height {
                    let row = img.row_mut(y);
                    if y < roi.y || y >= roi.bottom() {
                        row.fill(0.0);
                    } else {
                        row[..roi.x].fill(0.0);
                        row[roi.right()..].fill(0.0);
                    }
                }
                img
            }
            _ => {
                self.allocations += 1;
                ImageF32::new(width, height)
            }
        }
    }
}

/// Result of the RDG task.
#[derive(Debug, Clone)]
pub struct RdgOutput {
    /// The ridge-suppressed frame handed to marker extraction.
    pub filtered: ImageU16,
    /// The multi-scale ridge-response map (also consumed by GW EXT).
    pub ridgeness: ImageF32,
    /// Number of pixels classified as ridge (content-dependent load proxy).
    pub ridge_pixels: usize,
    /// Number of connected ridge segments traced.
    pub segments: usize,
}

impl RdgOutput {
    /// Output storage in bytes (Table 1 accounting).
    pub fn byte_size(&self) -> usize {
        self.filtered.byte_size() + self.ridgeness.byte_size()
    }
}

/// Runs ridge detection on the full frame.
pub fn rdg_full(src: &ImageU16, cfg: &RdgConfig, bufs: &mut RdgBuffers) -> RdgOutput {
    rdg_roi(src, src.full_roi(), cfg, bufs)
}

/// Runs full-frame ridge detection on the unfused reference engine,
/// regardless of `cfg.engine`. Kept exported so benches and property
/// tests can always diff the fused pipeline against the original
/// three-pass implementation.
pub fn rdg_full_reference(src: &ImageU16, cfg: &RdgConfig, bufs: &mut RdgBuffers) -> RdgOutput {
    let mut cfg = cfg.clone();
    cfg.engine = RdgEngine::Reference;
    rdg_roi(src, src.full_roi(), &cfg, bufs)
}

/// Runs ridge detection restricted to `roi`. Pixels outside the ROI pass
/// through unfiltered with zero ridgeness.
pub fn rdg_roi(src: &ImageU16, roi: Roi, cfg: &RdgConfig, bufs: &mut RdgBuffers) -> RdgOutput {
    assert_eq!(
        src.dims(),
        bufs.dims(),
        "buffer geometry must match the frame"
    );
    assert!(!cfg.scales.is_empty(), "at least one scale required");
    let roi = roi.clamp_to(src.width(), src.height());

    // Stage A: integer-to-float conversion (streaming pass over the input).
    let active_scales: Vec<f32> = cfg
        .scales
        .iter()
        .chain(if cfg.fine_enabled {
            cfg.fine_scales.iter()
        } else {
            [].iter()
        })
        .copied()
        .collect();
    let halo = active_scales
        .iter()
        .map(|&s| (3.0 * s).ceil() as usize)
        .max()
        .unwrap_or(0);
    let conv_roi = roi.inflate(halo, src.width(), src.height());
    for y in conv_roi.y..conv_roi.bottom() {
        // Slice-wise widening lets the compiler emit packed u16→f32
        // conversions (no per-element bounds checks to defeat it).
        let s = &src.row(y)[conv_roi.x..conv_roi.right()];
        let d = &mut bufs.src_f32.row_mut(y)[conv_roi.x..conv_roi.right()];
        for (d, &s) in d.iter_mut().zip(s) {
            *d = s as f32;
        }
    }

    // Stage B: multi-scale Hessian ridge response, max over scales.
    match cfg.engine {
        RdgEngine::Fused => {
            // Destructure for disjoint borrows of the scratch fields.
            let RdgBuffers {
                src_f32,
                fused,
                kernels,
                acc,
                ..
            } = &mut *bufs;
            // The first scale initializes the accumulator (bit-identical
            // to zeroing + accumulating, without the extra pass); the
            // remaining scales fold in with `max`.
            for (i, &sigma) in active_scales.iter().enumerate() {
                let (g, d1, d2) = kernels.get(sigma);
                if i == 0 {
                    fused_ridge_scale_init(src_f32, acc, fused, g, d1, d2, roi);
                } else {
                    fused_ridge_scale(src_f32, acc, fused, g, d1, d2, roi);
                }
            }
        }
        RdgEngine::Reference => {
            for y in roi.y..roi.bottom() {
                bufs.acc.row_mut(y)[roi.x..roi.right()].fill(0.0);
            }
            let (w, h) = src.dims();
            let RdgBuffers {
                src_f32,
                reference,
                acc,
                ..
            } = &mut *bufs;
            let rs = reference.get_or_insert_with(|| Box::new(ReferenceScratch::new(w, h)));
            for &sigma in &active_scales {
                hessian_at_scale(src_f32, &mut rs.hessian, &mut rs.conv, roi, sigma);
                accumulate_max_response(&rs.hessian, acc, roi, ridge_response);
            }
        }
    }

    // Stage C: hysteresis thresholding — strong seeds expand through the
    // weak-threshold region (data-dependent cost) — and synthesis of the
    // ridge-suppressed output.
    let (mean, std) = response_stats(&bufs.acc, roi);
    let weak_threshold = (mean + cfg.weak_factor * std).max(cfg.response_floor);
    let threshold = (mean + cfg.threshold_factor * std).max(weak_threshold);
    // Bump the visited generation (clearing the mask only on counter wrap),
    // so the tracing pass needs no per-frame mask allocation or reset.
    bufs.visit_gen = bufs.visit_gen.wrapping_add(1);
    if bufs.visit_gen == 0 {
        bufs.visited.fill(0);
        bufs.visit_gen = 1;
    }
    let (ridge_pixels, segments) = trace_segments(
        &bufs.acc,
        roi,
        threshold,
        weak_threshold,
        &mut bufs.visited,
        bufs.visit_gen,
        &mut bufs.trace_stack,
    );

    let mut filtered = bufs.take_filtered(src);
    let mut ridgeness = bufs.take_ridgeness(src.width(), src.height(), roi);
    for y in roi.y..roi.bottom() {
        let acc_row = &bufs.acc.row(y)[roi.x..roi.right()];
        let rid_row = &mut ridgeness.row_mut(y)[roi.x..roi.right()];
        // Copy the response into the ridgeness output while tracking the
        // row maximum in the same SIMD pass; rows whose response never
        // exceeds the strong threshold (the common case) skip the
        // brighten scan entirely. Same per-pixel results as the original
        // interleaved loop.
        let mut vmax = F32x8::splat(f32::NEG_INFINITY);
        let lanes = F32x8::WIDTH;
        let n = acc_row.len() - acc_row.len() % lanes;
        let mut row_max = f32::NEG_INFINITY;
        let mut x = 0;
        while x < n {
            let a = F32x8::load(&acc_row[x..x + lanes]);
            a.store(&mut rid_row[x..x + lanes]);
            vmax = F32x8::select_gt(a, vmax, a, vmax);
            x += lanes;
        }
        let mut folded = [0.0f32; 8];
        vmax.store(&mut folded);
        for &m in &folded[..if n > 0 { lanes } else { 0 }] {
            row_max = row_max.max(m);
        }
        for x in n..acc_row.len() {
            rid_row[x] = acc_row[x];
            row_max = row_max.max(acc_row[x]);
        }
        if row_max > threshold {
            let out_row = &mut filtered.row_mut(y)[roi.x..roi.right()];
            brighten_row(out_row, acc_row, threshold, cfg.suppression);
        }
    }

    RdgOutput {
        filtered,
        ridgeness,
        ridge_pixels,
        segments,
    }
}

/// Ridge-suppression synthesis of one output row: pixels whose response
/// exceeds `threshold` are brightened by `suppression * response` and
/// clamped; the rest pass through unchanged.
///
/// SIMD form of the scalar `if r > threshold { o = clamp(o + s*r) }`
/// loop: both branches are computed in f32 and lane-selected on the
/// same strict-`>` test. u16→f32→u16 round-trips exactly (all u16
/// values are representable), the select-based clamp reproduces scalar
/// `clamp(0.0, 65535.0)` bits, so the result is bit-identical.
#[inline(always)]
fn brighten_row_body<V: SimdF32>(out: &mut [u16], resp: &[f32], threshold: f32, suppression: f32) {
    assert_eq!(out.len(), resp.len());
    let n = out.len();
    let thr = V::splat(threshold);
    let sup = V::splat(suppression);
    let zero = V::splat(0.0);
    let hi = V::splat(u16::MAX as f32);
    let mut buf = [0.0f32; 16];
    let mut i = 0;
    while i + V::WIDTH <= n {
        for (b, &o) in buf[..V::WIDTH].iter_mut().zip(&out[i..]) {
            *b = o as f32;
        }
        let of = V::load(&buf);
        // SAFETY: the loop bound keeps `i + WIDTH` within `resp`.
        let r = unsafe { V::load_at(resp, i) };
        let v = of + sup * r;
        let lo = V::select_gt(zero, v, zero, v);
        let clamped = V::select_gt(lo, hi, hi, lo);
        let res = V::select_gt(r, thr, clamped, of);
        res.store(&mut buf);
        for (o, &b) in out[i..i + V::WIDTH].iter_mut().zip(&buf[..V::WIDTH]) {
            *o = b as u16;
        }
        i += V::WIDTH;
    }
    for j in i..n {
        let r = resp[j];
        if r > threshold {
            // brighten the dark ridge back toward background
            let v = out[j] as f32 + suppression * r;
            out[j] = v.clamp(0.0, u16::MAX as f32) as u16;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn brighten_row_avx2(out: &mut [u16], resp: &[f32], threshold: f32, suppression: f32) {
    brighten_row_body::<F32x8>(out, resp, threshold, suppression);
}

fn brighten_row(out: &mut [u16], resp: &[f32], threshold: f32, suppression: f32) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 requirement is checked at runtime above.
            unsafe { brighten_row_avx2(out, resp, threshold, suppression) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        brighten_row_body::<crate::simd::NeonF32x4>(out, resp, threshold, suppression);
        return;
    }
    #[cfg(not(target_arch = "aarch64"))]
    brighten_row_body::<F32x8>(out, resp, threshold, suppression);
}

/// Mean and standard deviation of the response inside `roi`.
pub(crate) fn response_stats(acc: &ImageF32, roi: Roi) -> (f32, f32) {
    let n = roi.area();
    if n == 0 {
        return (0.0, 0.0);
    }
    // Four independent accumulator chains per moment hide the f64 add
    // latency; the chains are folded once at the end.
    let mut s = [0.0f64; 4];
    let mut q = [0.0f64; 4];
    for y in roi.y..roi.bottom() {
        let row = &acc.row(y)[roi.x..roi.right()];
        let mut chunks = row.chunks_exact(4);
        for c in &mut chunks {
            for k in 0..4 {
                let v = c[k] as f64;
                s[k] += v;
                q[k] += v * v;
            }
        }
        for &v in chunks.remainder() {
            let v = v as f64;
            s[0] += v;
            q[0] += v * v;
        }
    }
    let sum = (s[0] + s[1]) + (s[2] + s[3]);
    let sum2 = (q[0] + q[1]) + (q[2] + q[3]);
    let mean = sum / n as f64;
    let var = (sum2 / n as f64 - mean * mean).max(0.0);
    (mean as f32, var.sqrt() as f32)
}

/// Local orientation coherence of the ridge response at a traced pixel:
/// a windowed structure-tensor evaluation followed by a short walk along
/// the dominant orientation checking ridge continuity — the linking
/// criterion real ridge detectors apply per candidate pixel. Its
/// per-pixel cost is what makes the RDG stage-C time grow with the amount
/// of structure in the frame.
fn local_coherence(acc: &ImageF32, cx: usize, cy: usize, half_window: isize) -> f32 {
    let hw = half_window.max(0) as usize;
    let (w, h) = acc.dims();
    // A single interior margin covers both the structure-tensor window
    // (hw + 1 gradient reach) and the continuity walk (≤ 6 px + 1 px of
    // bilinear support): inside it every sample is in bounds, so both
    // loops run direct-indexed (the window additionally in SIMD). The
    // thin border band keeps the clamped scalar walk.
    let margin = (hw + 1).max(WALK_STEPS + 2);
    let interior = cx >= margin && cy >= margin && cx + margin < w && cy + margin < h;
    let (jxx, jyy, jxy) = if interior {
        structure_tensor_interior(acc, cx, cy, hw)
    } else {
        structure_tensor_clamped(acc, cx, cy, half_window)
    };
    let tr = jxx + jyy;
    if tr <= 1e-12 {
        return 0.0;
    }
    let diff = jxx - jyy;
    let disc = (diff * diff + 4.0 * jxy * jxy).sqrt();
    let coherence = disc / tr;

    // Continuity walk along the dominant (ridge) orientation: the
    // eigenvector of the larger structure-tensor eigenvalue. The
    // direction θ = ½·atan2(2jxy, diff) is recovered algebraically via
    // the half-angle identities (cos 2θ = diff/disc, sin 2θ = 2jxy/disc;
    // cos θ ≥ 0 and sin θ carries the sign of jxy over θ ∈ (−π/2, π/2]),
    // skipping the libm atan2/sin_cos calls entirely.
    let (sin_t, cos_t) = if disc > 0.0 {
        let c2 = diff / disc;
        let ct = ((1.0 + c2) * 0.5).max(0.0).sqrt();
        let st = ((1.0 - c2) * 0.5).max(0.0).sqrt();
        (if jxy < 0.0 { -st } else { st }, ct)
    } else {
        (0.0, 1.0)
    };
    let continuity = if interior {
        continuity_walk_interior(acc, cx, cy, sin_t, cos_t)
    } else {
        continuity_walk_clamped(acc, cx, cy, sin_t, cos_t)
    };
    coherence + 1e-6 * continuity
}

/// Length of the orientation-continuity walk, in pixels.
const WALK_STEPS: usize = 6;

/// Continuity walk for interior pixels: the walk cannot leave the image
/// (margin ≥ steps + bilinear support), so samples are direct-indexed and
/// `floor` degenerates to integer truncation (coordinates stay positive).
fn continuity_walk_interior(acc: &ImageF32, cx: usize, cy: usize, sin_t: f32, cos_t: f32) -> f32 {
    let w = acc.width();
    let data = acc.as_slice();
    let mut continuity = 0.0f32;
    for step in 1..=WALK_STEPS {
        let fx = cx as f32 + cos_t * step as f32;
        let fy = cy as f32 + sin_t * step as f32;
        let x0 = fx as usize;
        let y0 = fy as usize;
        let tx = fx - x0 as f32;
        let ty = fy - y0 as f32;
        let i = y0 * w + x0;
        let v00 = data[i];
        let v10 = data[i + 1];
        let v01 = data[i + w];
        let v11 = data[i + w + 1];
        continuity += v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty;
    }
    continuity
}

/// Continuity walk with replicate-clamped bilinear sampling, for pixels
/// whose walk may cross the image border.
fn continuity_walk_clamped(acc: &ImageF32, cx: usize, cy: usize, sin_t: f32, cos_t: f32) -> f32 {
    let mut continuity = 0.0f32;
    for step in 1..=WALK_STEPS {
        let fx = cx as f32 + cos_t * step as f32;
        let fy = cy as f32 + sin_t * step as f32;
        // bilinear sample of the response along the walk
        let x0 = fx.floor() as isize;
        let y0 = fy.floor() as isize;
        let tx = fx - x0 as f32;
        let ty = fy - y0 as f32;
        let v00 = acc.get_clamped(x0, y0);
        let v10 = acc.get_clamped(x0 + 1, y0);
        let v01 = acc.get_clamped(x0, y0 + 1);
        let v11 = acc.get_clamped(x0 + 1, y0 + 1);
        continuity += v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty;
    }
    continuity
}

/// Structure tensor of an interior window: every sample is in bounds, so
/// rows are direct-indexed slices and the per-row gradient products run
/// in 8-lane SIMD (window width 2·hw+1 ≤ 9 for the default hw = 4; the
/// first 8 columns go wide, the remainder scalar).
fn structure_tensor_interior(acc: &ImageF32, cx: usize, cy: usize, hw: usize) -> (f32, f32, f32) {
    // Recompile the window loop with AVX2 where available so the 8-lane
    // gradient products run on single 256-bit ops. Codegen only: the
    // tensor entries come out identical either way.
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 requirement is checked at runtime above.
            return unsafe { structure_tensor_interior_avx2(acc, cx, cy, hw) };
        }
    }
    structure_tensor_interior_impl(acc, cx, cy, hw)
}

/// AVX2 clone of [`structure_tensor_interior_impl`] (see dispatch above).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn structure_tensor_interior_avx2(
    acc: &ImageF32,
    cx: usize,
    cy: usize,
    hw: usize,
) -> (f32, f32, f32) {
    structure_tensor_interior_impl(acc, cx, cy, hw)
}

#[inline(always)]
fn structure_tensor_interior_impl(
    acc: &ImageF32,
    cx: usize,
    cy: usize,
    hw: usize,
) -> (f32, f32, f32) {
    let w = acc.width();
    let data = acc.as_slice();
    let side = 2 * hw + 1;
    let wide = if side >= F32x8::WIDTH {
        F32x8::WIDTH
    } else {
        0
    };
    let zero = F32x8::splat(0.0);
    let (mut vxx, mut vyy, mut vxy) = (zero, zero, zero);
    let (mut sxx, mut syy, mut sxy) = (0.0f32, 0.0f32, 0.0f32);
    for yy in (cy - hw)..=(cy + hw) {
        let base = yy * w + cx - hw;
        // mid spans x-hw-1 ..= x+hw+1 (horizontal gradient needs ±1).
        let mid = &data[base - 1..base + side + 1];
        let up = &data[base - w..base - w + side];
        let dn = &data[base + w..base + w + side];
        if wide != 0 {
            // SAFETY: side + 1 ≥ 9 ≥ WIDTH + 1, so lanes 0..8 of each
            // of these loads stay inside the slices taken above.
            let gx = unsafe { F32x8::load_at(mid, 2) - F32x8::load_at(mid, 0) };
            let gy = unsafe { F32x8::load_at(dn, 0) - F32x8::load_at(up, 0) };
            vxx = vxx + gx * gx;
            vyy = vyy + gy * gy;
            vxy = vxy + gx * gy;
        }
        for i in wide..side {
            let gx = mid[i + 2] - mid[i];
            let gy = dn[i] - up[i];
            sxx += gx * gx;
            syy += gy * gy;
            sxy += gx * gy;
        }
    }
    let mut lanes = [0.0f32; 8];
    vxx.store(&mut lanes);
    sxx += lanes.iter().sum::<f32>();
    vyy.store(&mut lanes);
    syy += lanes.iter().sum::<f32>();
    vxy.store(&mut lanes);
    sxy += lanes.iter().sum::<f32>();
    (sxx, syy, sxy)
}

/// Structure tensor with replicate-clamped sampling, for windows touching
/// the image border.
fn structure_tensor_clamped(
    acc: &ImageF32,
    cx: usize,
    cy: usize,
    half_window: isize,
) -> (f32, f32, f32) {
    let mut jxx = 0.0f32;
    let mut jyy = 0.0f32;
    let mut jxy = 0.0f32;
    let (cxi, cyi) = (cx as isize, cy as isize);
    for dy in -half_window..=half_window {
        for dx in -half_window..=half_window {
            let gx =
                acc.get_clamped(cxi + dx + 1, cyi + dy) - acc.get_clamped(cxi + dx - 1, cyi + dy);
            let gy =
                acc.get_clamped(cxi + dx, cyi + dy + 1) - acc.get_clamped(cxi + dx, cyi + dy - 1);
            jxx += gx * gx;
            jyy += gy * gy;
            jxy += gx * gy;
        }
    }
    (jxx, jyy, jxy)
}

/// Hysteresis tracing of ridge pixels: pixels above the strong threshold
/// seed a flood fill that expands through everything above the weak
/// threshold (Canny-style linking), with a per-pixel orientation-coherence
/// analysis (the linking criterion).
///
/// This is the content-dependent part of RDG: a frame full of vessels and
/// wires costs far more than a quiet frame, which is the "structural
/// fluctuation caused by the dependency of the processing time on the video
/// content" that the paper's EWMA + Markov decomposition targets.
fn trace_segments(
    acc: &ImageF32,
    roi: Roi,
    threshold: f32,
    weak: f32,
    visited: &mut [u32],
    gen: u32,
    stack: &mut Vec<(usize, usize)>,
) -> (usize, usize) {
    let weak = weak.min(threshold);
    let (w, h) = acc.dims();
    debug_assert_eq!(visited.len(), w * h);
    let _ = h;
    let mut ridge_pixels = 0usize;
    let mut segments = 0usize;
    stack.clear();
    let mut coherence = 0.0f32;
    for y in roi.y..roi.bottom() {
        for x in roi.x..roi.right() {
            if visited[y * w + x] == gen || acc.get(x, y) <= threshold {
                continue;
            }
            segments += 1;
            stack.push((x, y));
            visited[y * w + x] = gen;
            while let Some((cx, cy)) = stack.pop() {
                ridge_pixels += 1;
                coherence += local_coherence(acc, cx, cy, 4);
                // 8-connected neighbourhood, clipped to the ROI
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let nx = cx as i64 + dx;
                        let ny = cy as i64 + dy;
                        if nx < roi.x as i64
                            || ny < roi.y as i64
                            || nx >= roi.right() as i64
                            || ny >= roi.bottom() as i64
                        {
                            continue;
                        }
                        let (nx, ny) = (nx as usize, ny as usize);
                        if visited[ny * w + nx] != gen && acc.get(nx, ny) > weak {
                            visited[ny * w + nx] = gen;
                            stack.push((nx, ny));
                        }
                    }
                }
            }
        }
    }
    // the accumulated coherence is a byproduct (kept from being optimized
    // away); linking decisions themselves are not needed downstream
    std::hint::black_box(coherence);
    (ridge_pixels, segments)
}

/// Cheap structure probe driving the "RDG DETECTION" switch of Fig. 2.
///
/// Measures mean absolute horizontal+vertical gradient on a decimated grid;
/// a frame with dominant curvilinear structures scores high and enables the
/// full ridge-detection stage, a quiet frame skips it.
pub fn quick_structure_probe(src: &ImageU16, step: usize) -> f64 {
    assert!(step > 0, "probe step must be positive");
    let (w, h) = src.dims();
    if w < 2 || h < 2 {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut y = 0;
    while y + 1 < h {
        let row = src.row(y);
        let next = src.row(y + 1);
        let mut x = 0;
        while x + 1 < w {
            let gx = (row[x + 1] as f64 - row[x] as f64).abs();
            let gy = (next[x] as f64 - row[x] as f64).abs();
            total += gx + gy;
            count += 1;
            x += step;
        }
        y += step;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Runs RDG on a cropped sub-frame with halo and pastes the result back.
///
/// This is the unit of work of the data-parallel (striped) RDG execution:
/// each worker processes one stripe of the frame independently on local
/// buffers, which is possible because the filter support is bounded by the
/// largest kernel radius.
pub fn rdg_stripe(src: &ImageU16, stripe: Roi, cfg: &RdgConfig) -> (Roi, ImageU16, ImageF32) {
    let halo = cfg
        .scales
        .iter()
        .chain(if cfg.fine_enabled {
            cfg.fine_scales.iter()
        } else {
            [].iter()
        })
        .map(|&s| (3.0 * s).ceil() as usize)
        .max()
        .unwrap_or(0);
    let ext = stripe.inflate(halo, src.width(), src.height());
    let sub = src.crop(ext);
    let mut bufs = RdgBuffers::new(sub.width(), sub.height());
    // The stripe's position inside the cropped sub-image.
    let local = Roi::new(
        stripe.x - ext.x,
        stripe.y - ext.y,
        stripe.width,
        stripe.height,
    );
    let out = rdg_roi(&sub, local, cfg, &mut bufs);
    (stripe, out.filtered.crop(local), out.ridgeness.crop(local))
}

/// Assembles per-stripe results into full-frame outputs. The per-stripe
/// segment statistics are not preserved (stripe tracing is local), so the
/// assembled output reports pixel counts only.
pub fn assemble_stripes(
    src: &ImageU16,
    parts: Vec<(Roi, ImageU16, ImageF32)>,
    threshold_hint: f32,
) -> RdgOutput {
    let mut filtered = src.clone();
    let mut ridgeness = ImageF32::new(src.width(), src.height());
    let mut ridge_pixels = 0usize;
    for (roi, f, r) in parts {
        filtered.paste(&f, roi.x, roi.y);
        ridgeness.paste(&r, roi.x, roi.y);
        for y in 0..r.height() {
            for x in 0..r.width() {
                if r.get(x, y) > threshold_hint {
                    ridge_pixels += 1;
                }
            }
        }
    }
    RdgOutput {
        filtered,
        ridgeness,
        ridge_pixels,
        segments: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    /// Synthesizes a frame with a dark diagonal wire and a dark blob pair.
    fn test_frame(w: usize, h: usize) -> ImageU16 {
        Image::from_fn(w, h, |x, y| {
            let mut v = 2000.0f32;
            // diagonal wire
            let d = (x as f32 - y as f32).abs() / 1.5;
            v -= 900.0 * (-d * d / 2.0).exp();
            // two blobs
            for &(cx, cy) in &[
                (w as f32 * 0.25, h as f32 * 0.75),
                (w as f32 * 0.75, h as f32 * 0.25),
            ] {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                v -= 1100.0 * (-(dx * dx + dy * dy) / 8.0).exp();
            }
            v.max(0.0) as u16
        })
    }

    #[test]
    fn rdg_detects_and_suppresses_the_wire() {
        let src = test_frame(64, 64);
        let cfg = RdgConfig::default();
        let mut bufs = RdgBuffers::new(64, 64);
        let out = rdg_full(&src, &cfg, &mut bufs);
        assert!(out.ridge_pixels > 20, "ridge pixels {}", out.ridge_pixels);
        assert!(out.segments >= 1);
        // the wire center must be brightened (suppressed)
        let before = src.get(32, 32);
        let after = out.filtered.get(32, 32);
        assert!(
            after > before,
            "wire not suppressed: {} -> {}",
            before,
            after
        );
    }

    #[test]
    fn rdg_leaves_blobs_mostly_intact() {
        let src = test_frame(64, 64);
        let out = rdg_full(&src, &RdgConfig::default(), &mut RdgBuffers::new(64, 64));
        let (bx, by) = (16, 48);
        let before = src.get(bx, by) as i64;
        let after = out.filtered.get(bx, by) as i64;
        // blob brightening must stay small relative to its depth (~1100)
        assert!(
            (after - before).abs() < 550,
            "blob altered too much: {} -> {}",
            before,
            after
        );
    }

    #[test]
    fn rdg_roi_leaves_outside_untouched() {
        let src = test_frame(64, 64);
        let roi = Roi::new(16, 16, 32, 32);
        let out = rdg_roi(
            &src,
            roi,
            &RdgConfig::default(),
            &mut RdgBuffers::new(64, 64),
        );
        assert_eq!(out.filtered.get(0, 0), src.get(0, 0));
        assert_eq!(out.ridgeness.get(0, 0), 0.0);
        assert_eq!(out.filtered.get(63, 63), src.get(63, 63));
    }

    #[test]
    fn quiet_frame_has_few_ridge_pixels() {
        let src: ImageU16 = Image::filled(64, 64, 2000);
        let out = rdg_full(&src, &RdgConfig::default(), &mut RdgBuffers::new(64, 64));
        assert_eq!(out.ridge_pixels, 0);
        assert_eq!(out.segments, 0);
    }

    #[test]
    fn structure_probe_separates_busy_from_quiet() {
        let busy = test_frame(64, 64);
        let quiet: ImageU16 = Image::filled(64, 64, 2000);
        let pb = quick_structure_probe(&busy, 4);
        let pq = quick_structure_probe(&quiet, 4);
        assert!(pb > 10.0 * (pq + 1.0), "busy {} quiet {}", pb, pq);
    }

    #[test]
    fn striped_rdg_matches_full_frame_filter() {
        let src = test_frame(96, 96);
        let cfg = RdgConfig::default();
        let mut bufs = RdgBuffers::new(96, 96);
        let full = rdg_full(&src, &cfg, &mut bufs);

        let parts: Vec<_> = src
            .full_roi()
            .stripes(3)
            .into_iter()
            .map(|s| rdg_stripe(&src, s, &cfg))
            .collect();

        // The ridgeness maps must agree exactly pixel-for-pixel (halo is
        // sufficient). The filtered image can differ slightly because the
        // suppression threshold is computed from per-region statistics, so
        // compare the raw ridge response instead.
        for (roi, _f, r) in &parts {
            for y in 0..r.height() {
                for x in 0..r.width() {
                    let fx = roi.x + x;
                    let fy = roi.y + y;
                    let a = full.ridgeness.get(fx, fy);
                    let b = r.get(x, y);
                    assert!(
                        (a - b).abs() <= 1e-3 * a.abs().max(1.0),
                        "ridgeness mismatch at ({fx},{fy}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn warm_buffers_do_not_allocate_per_frame() {
        // The output pool must make the steady-state RDG path allocation
        // free: after the first frame warms the pool, the image-allocation
        // count stays constant no matter how many frames run.
        let src = test_frame(64, 64);
        let cfg = RdgConfig::default();
        let mut bufs = RdgBuffers::new(64, 64);
        let first = rdg_full(&src, &cfg, &mut bufs);
        bufs.recycle(first);
        let warm = bufs.allocations();
        assert_eq!(
            warm, 2,
            "first frame allocates exactly filtered + ridgeness"
        );
        for _ in 0..3 {
            let out = rdg_full(&src, &cfg, &mut bufs);
            bufs.recycle(out);
        }
        assert_eq!(
            bufs.allocations(),
            warm,
            "steady-state frames must not allocate"
        );
    }

    #[test]
    fn buffer_accounting_scales_with_geometry() {
        let small = RdgBuffers::new(64, 64).byte_size();
        let large = RdgBuffers::new(128, 128).byte_size();
        assert_eq!(large, small * 4);
    }

    #[test]
    fn more_structure_means_more_traced_pixels() {
        // content-dependence of the stage-C cost proxy
        let quiet = Image::from_fn(64, 64, |x, y| {
            let d = (x as f32 - y as f32).abs() / 1.5;
            (2000.0 - 400.0 * (-d * d / 2.0).exp()) as u16
        });
        let busy = Image::from_fn(64, 64, |x, y| {
            let mut v = 2000.0f32;
            for k in 0..4 {
                let off = (k * 16) as f32;
                let d = (x as f32 - y as f32 + off).abs() / 1.5;
                v -= 800.0 * (-d * d / 2.0).exp();
            }
            v as u16
        });
        let cfg = RdgConfig::default();
        let q = rdg_full(&quiet, &cfg, &mut RdgBuffers::new(64, 64));
        let b = rdg_full(&busy, &cfg, &mut RdgBuffers::new(64, 64));
        assert!(
            b.ridge_pixels > q.ridge_pixels,
            "busy {} quiet {}",
            b.ridge_pixels,
            q.ridge_pixels
        );
    }
}
