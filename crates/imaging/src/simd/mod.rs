//! Explicit-width SIMD vectors with multi-arch dispatch.
//!
//! The hot stages of the frame path (fused RDG sweeps, ENH integration,
//! ZOOM interpolation, guide-wire scoring) run their inner loops over
//! fixed-width lane chunks so the compiler has an explicit,
//! dependency-free shape to vectorize. Every operation is IEEE-exact per
//! lane — no FMA contraction, no reassociation — so lane results are
//! bit-identical to the equivalent scalar expression *at any width*.
//! That invariant is what lets each stage pick its vector type per CPU
//! and still reproduce its exported reference implementation bit for
//! bit (enforced by the `*_identity` proptest suites).
//!
//! # Dispatch matrix
//!
//! | Target | Vector type | Selection |
//! |---|---|---|
//! | `x86_64` + AVX-512F | [`F32x8`] under `#[target_feature(enable = "avx512f")]` | runtime (`is_x86_feature_detected!`) |
//! | `x86_64` + AVX2 | [`F32x8`] under `#[target_feature(enable = "avx2")]` | runtime (`is_x86_feature_detected!`) |
//! | `aarch64` | `NeonF32x4` (NEON intrinsics) | compile time — NEON is baseline on aarch64 |
//! | anything else | [`F32x8`] (portable array lanes) | fallback |
//!
//! The portable types ([`F32x8`], [`F32x4`]) are plain aligned arrays
//! whose ops are straight per-lane maps — a `wide`-style fallback
//! without the external crate — that LLVM lowers to packed instructions
//! on any SIMD target and to scalar code otherwise. On x86 the stage
//! kernels monomorphize the same generic body under
//! `#[target_feature]` clones, following the arch-gated module layout
//! `jxl-oxide` uses for its SIMD paths. On aarch64 the `NeonF32x4`
//! type wraps `core::arch::aarch64` intrinsics directly; NEON is part
//! of the aarch64 baseline so no runtime detection is needed.

use std::ops::{Add, Div, Mul, Sub};

mod portable;
pub use portable::{F32x4, F32x8, F64x4};

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "aarch64")]
pub use neon::NeonF32x4;

/// Lane count of [`F32x8`]. Inner loops chunk by this and fall back to
/// scalar code (same per-pixel op order) for the remainder.
pub const LANES: usize = 8;

/// The operations the stage kernels need from a fixed-width f32 vector,
/// all IEEE-exact per lane. Implemented by the portable [`F32x8`] /
/// [`F32x4`] and by `NeonF32x4` on aarch64; each kernel is generic
/// over this so one body serves every dispatch width.
pub trait SimdF32:
    Copy + Add<Output = Self> + Sub<Output = Self> + Mul<Output = Self> + Div<Output = Self>
{
    /// Lane count of the implementing vector.
    const WIDTH: usize;

    /// All lanes set to `v`.
    fn splat(v: f32) -> Self;
    /// Loads `WIDTH` consecutive lanes from `s` (panics if short).
    fn load(s: &[f32]) -> Self;
    /// Stores the lanes into `d` (panics if short).
    fn store(self, d: &mut [f32]);
    /// Loads `WIDTH` lanes from `s` at `i` without a bounds check.
    ///
    /// # Safety
    /// `i + WIDTH <= s.len()` must hold.
    unsafe fn load_at(s: &[f32], i: usize) -> Self;
    /// Stores the lanes into `d` at `i` without a bounds check.
    ///
    /// # Safety
    /// `i + WIDTH <= d.len()` must hold.
    unsafe fn store_at(self, d: &mut [f32], i: usize);
    /// Per-lane `sqrt` (IEEE-exact, identical to scalar `f32::sqrt`).
    fn sqrt(self) -> Self;
    /// Per-lane absolute value.
    fn abs(self) -> Self;
    /// Per-lane `f32::min` (propagates the non-NaN operand, like scalar).
    fn min(self, rhs: Self) -> Self;
    /// Per-lane select: `if a > b { t } else { f }`.
    fn select_gt(a: Self, b: Self, t: Self, f: Self) -> Self;
}
