//! Portable explicit-width `f32` vectors on plain aligned arrays.
//!
//! Every op is a straight per-lane map that LLVM lowers to packed
//! instructions on any target with SIMD, and to scalar code otherwise —
//! a `wide`-style fallback without the external crate. These are the
//! shapes monomorphized under `#[target_feature]` clones on x86_64 and
//! the fallback on targets without a dedicated intrinsics backend.

use super::SimdF32;
use std::ops::{Add, Div, Mul, Sub};

macro_rules! simd_f32 {
    ($name:ident, $lanes:literal, $align:literal) => {
        #[doc = concat!("A ", stringify!($lanes), "-lane `f32` vector.")]
        #[derive(Debug, Clone, Copy, PartialEq)]
        #[repr(align($align))]
        pub struct $name(pub [f32; $lanes]);

        impl $name {
            /// All lanes set to `v`.
            #[inline(always)]
            pub fn splat(v: f32) -> Self {
                Self([v; $lanes])
            }

            /// Loads consecutive lanes from `s` (panics if short).
            #[inline(always)]
            pub fn load(s: &[f32]) -> Self {
                Self(s[..$lanes].try_into().expect("enough lanes"))
            }

            /// Stores the lanes into `d` (panics if short).
            #[inline(always)]
            pub fn store(self, d: &mut [f32]) {
                d[..$lanes].copy_from_slice(&self.0);
            }

            /// Loads lanes from `s` starting at `i` without a bounds
            /// check.
            ///
            /// # Safety
            /// `i + LANES <= s.len()` must hold. Used only in the
            /// fused-sweep inner loops, where the chunked trip counts
            /// establish the bound once per row instead of once per load.
            #[inline(always)]
            pub unsafe fn load_at(s: &[f32], i: usize) -> Self {
                debug_assert!(i + $lanes <= s.len());
                Self(*(s.as_ptr().add(i) as *const [f32; $lanes]))
            }

            /// Stores the lanes into `d` at `i` without a bounds check.
            ///
            /// # Safety
            /// `i + LANES <= d.len()` must hold (see `load_at`).
            #[inline(always)]
            pub unsafe fn store_at(self, d: &mut [f32], i: usize) {
                debug_assert!(i + $lanes <= d.len());
                *(d.as_mut_ptr().add(i) as *mut [f32; $lanes]) = self.0;
            }

            /// Per-lane `sqrt` (IEEE-exact, identical to scalar).
            #[inline(always)]
            pub fn sqrt(self) -> Self {
                let mut o = self.0;
                for v in &mut o {
                    *v = v.sqrt();
                }
                Self(o)
            }

            /// Per-lane absolute value.
            #[inline(always)]
            pub fn abs(self) -> Self {
                let mut o = self.0;
                for v in &mut o {
                    *v = v.abs();
                }
                Self(o)
            }

            /// Per-lane `f32::min` (propagates the non-NaN operand).
            #[inline(always)]
            pub fn min(self, rhs: Self) -> Self {
                let mut o = self.0;
                for (v, b) in o.iter_mut().zip(rhs.0) {
                    *v = v.min(b);
                }
                Self(o)
            }

            /// Per-lane select: `if a > b { t } else { f }`.
            #[inline(always)]
            pub fn select_gt(a: Self, b: Self, t: Self, f: Self) -> Self {
                let mut o = [0.0f32; $lanes];
                for i in 0..$lanes {
                    o[i] = if a.0[i] > b.0[i] { t.0[i] } else { f.0[i] };
                }
                Self(o)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                let mut o = self.0;
                for (v, b) in o.iter_mut().zip(rhs.0) {
                    *v += b;
                }
                Self(o)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                let mut o = self.0;
                for (v, b) in o.iter_mut().zip(rhs.0) {
                    *v -= b;
                }
                Self(o)
            }
        }

        impl Mul for $name {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                let mut o = self.0;
                for (v, b) in o.iter_mut().zip(rhs.0) {
                    *v *= b;
                }
                Self(o)
            }
        }

        impl Div for $name {
            type Output = Self;
            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                let mut o = self.0;
                for (v, b) in o.iter_mut().zip(rhs.0) {
                    *v /= b;
                }
                Self(o)
            }
        }

        impl SimdF32 for $name {
            const WIDTH: usize = $lanes;

            #[inline(always)]
            fn splat(v: f32) -> Self {
                $name::splat(v)
            }
            #[inline(always)]
            fn load(s: &[f32]) -> Self {
                $name::load(s)
            }
            #[inline(always)]
            fn store(self, d: &mut [f32]) {
                $name::store(self, d)
            }
            #[inline(always)]
            unsafe fn load_at(s: &[f32], i: usize) -> Self {
                $name::load_at(s, i)
            }
            #[inline(always)]
            unsafe fn store_at(self, d: &mut [f32], i: usize) {
                $name::store_at(self, d, i)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                $name::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                $name::abs(self)
            }
            #[inline(always)]
            fn min(self, rhs: Self) -> Self {
                $name::min(self, rhs)
            }
            #[inline(always)]
            fn select_gt(a: Self, b: Self, t: Self, f: Self) -> Self {
                $name::select_gt(a, b, t, f)
            }
        }
    };
}

simd_f32!(F32x8, 8, 32);
simd_f32!(F32x4, 4, 16);

/// A 4-lane `f64` vector for the coordinate-warp arithmetic of the ENH
/// interior path, where the geometry runs in double precision before
/// narrowing to `f32` blend weights. Only the ops that loop needs are
/// provided; all of them are per-lane IEEE-exact, so the lane results
/// match the scalar warp bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(32))]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; 4])
    }

    /// Per-lane `floor` (exact — `vroundpd` on x86, `frintm` on NEON).
    #[inline(always)]
    pub fn floor(self) -> Self {
        let mut o = self.0;
        for v in &mut o {
            *v = v.floor();
        }
        Self(o)
    }

    /// Per-lane narrowing to `f32` (round-to-nearest, identical to the
    /// scalar `as f32` cast).
    #[inline(always)]
    pub fn narrow(self) -> [f32; 4] {
        [
            self.0[0] as f32,
            self.0[1] as f32,
            self.0[2] as f32,
            self.0[3] as f32,
        ]
    }

    /// Per-lane truncation to `i32` without the saturating-cast range
    /// checks that defeat vectorization (`vcvttpd2dq` on x86).
    ///
    /// # Safety
    /// Every lane must be finite and in `(-1.0, i32::MAX + 1.0)` after
    /// truncation — out-of-range lanes are immediate UB, exactly like
    /// `f64::to_int_unchecked`.
    #[inline(always)]
    pub unsafe fn trunc_unchecked(self) -> [i32; 4] {
        [
            self.0[0].to_int_unchecked(),
            self.0[1].to_int_unchecked(),
            self.0[2].to_int_unchecked(),
            self.0[3].to_int_unchecked(),
        ]
    }
}

impl Add for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut o = self.0;
        for (v, b) in o.iter_mut().zip(rhs.0) {
            *v += b;
        }
        Self(o)
    }
}

impl Sub for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        let mut o = self.0;
        for (v, b) in o.iter_mut().zip(rhs.0) {
            *v -= b;
        }
        Self(o)
    }
}

impl Mul for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut o = self.0;
        for (v, b) in o.iter_mut().zip(rhs.0) {
            *v *= b;
        }
        Self(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_independent_and_exact() {
        let a = F32x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(0.5);
        let s = a * b + b;
        for i in 0..8 {
            assert_eq!(s.0[i].to_bits(), (a.0[i] * 0.5 + 0.5).to_bits());
        }
    }

    #[test]
    fn sqrt_abs_min_match_scalar_bits() {
        let a = F32x8([0.0, 1.5, 2.0, 1e-20, 1e20, 3.75, 0.1, 9.0]);
        let s = a.sqrt();
        for i in 0..8 {
            assert_eq!(s.0[i].to_bits(), a.0[i].sqrt().to_bits());
        }
        let n = F32x8([-1.0, 1.0, -0.0, 0.0, -3.5, 3.5, -1e9, 1e-9]);
        let ab = n.abs();
        for i in 0..8 {
            assert_eq!(ab.0[i].to_bits(), n.0[i].abs().to_bits());
        }
        let m = n.min(F32x8::splat(0.25));
        for i in 0..8 {
            assert_eq!(m.0[i].to_bits(), n.0[i].min(0.25).to_bits());
        }
    }

    #[test]
    fn select_gt_picks_per_lane() {
        let a = F32x8([1.0, -1.0, 0.0, 2.0, -2.0, 5.0, -5.0, 0.5]);
        let z = F32x8::splat(0.0);
        let t = F32x8::splat(7.0);
        let r = F32x8::select_gt(a, z, t, z);
        assert_eq!(r.0, [7.0, 0.0, 0.0, 7.0, 0.0, 7.0, 0.0, 7.0]);
    }

    #[test]
    fn load_store_round_trip() {
        let src = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let v = F32x8::load(&src);
        let mut dst = [0.0f32; 9];
        v.store(&mut dst);
        assert_eq!(&dst[..8], &src[..8]);
        assert_eq!(dst[8], 0.0);
    }

    #[test]
    fn unchecked_load_store_round_trip() {
        let src: Vec<f32> = (0..40).map(|i| i as f32 * 0.5).collect();
        let mut dst = vec![0.0f32; 40];
        // SAFETY: offsets keep LANES elements in range.
        unsafe {
            F32x8::load_at(&src, 3).store_at(&mut dst, 5);
        }
        assert_eq!(&dst[5..13], &src[3..11]);
        assert_eq!(dst[0], 0.0);
        assert_eq!(dst[13], 0.0);
    }
}
