//! aarch64 NEON backend: a 4-lane `f32` vector on a `float32x4_t`
//! register.
//!
//! NEON is part of the aarch64 baseline, so this backend is selected at
//! compile time (`#[cfg(target_arch = "aarch64")]`) with no runtime
//! feature detection — the arithmetic intrinsics are callable from safe
//! code on this target. Only the raw-pointer loads/stores need
//! `unsafe`, same as the portable types.
//!
//! Bit-exactness notes: NEON `vaddq/vsubq/vmulq/vdivq/vsqrtq_f32` are
//! IEEE-754 single-precision ops, identical per lane to their scalar
//! equivalents; no FMA intrinsics are used anywhere so no contraction
//! can occur. `min` uses `vminnmq_f32` (IEEE `minNum`) rather than
//! `vminq_f32`, because `minNum` propagates the non-NaN operand exactly
//! like Rust's scalar `f32::min`, whereas `vminq_f32` would return NaN.
//! `select_gt` uses `vcgtq_f32` + `vbslq_f32`; a NaN operand compares
//! false and selects the `f` lane, matching the scalar `if a > b`.

use super::SimdF32;
use core::arch::aarch64::{
    float32x4_t, vabsq_f32, vaddq_f32, vbslq_f32, vcgtq_f32, vdivq_f32, vdupq_n_f32, vld1q_f32,
    vminnmq_f32, vmulq_f32, vsqrtq_f32, vst1q_f32, vsubq_f32,
};
use std::ops::{Add, Div, Mul, Sub};

/// A 4-lane `f32` vector held in a NEON register.
#[derive(Debug, Clone, Copy)]
pub struct NeonF32x4(pub float32x4_t);

impl Add for NeonF32x4 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self(vaddq_f32(self.0, rhs.0))
    }
}

impl Sub for NeonF32x4 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self(vsubq_f32(self.0, rhs.0))
    }
}

impl Mul for NeonF32x4 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self(vmulq_f32(self.0, rhs.0))
    }
}

impl Div for NeonF32x4 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        Self(vdivq_f32(self.0, rhs.0))
    }
}

impl SimdF32 for NeonF32x4 {
    const WIDTH: usize = 4;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        Self(vdupq_n_f32(v))
    }

    #[inline(always)]
    fn load(s: &[f32]) -> Self {
        assert!(s.len() >= 4, "enough lanes");
        // SAFETY: length checked above.
        unsafe { Self(vld1q_f32(s.as_ptr())) }
    }

    #[inline(always)]
    fn store(self, d: &mut [f32]) {
        assert!(d.len() >= 4, "enough lanes");
        // SAFETY: length checked above.
        unsafe { vst1q_f32(d.as_mut_ptr(), self.0) }
    }

    #[inline(always)]
    unsafe fn load_at(s: &[f32], i: usize) -> Self {
        debug_assert!(i + 4 <= s.len());
        Self(vld1q_f32(s.as_ptr().add(i)))
    }

    #[inline(always)]
    unsafe fn store_at(self, d: &mut [f32], i: usize) {
        debug_assert!(i + 4 <= d.len());
        vst1q_f32(d.as_mut_ptr().add(i), self.0);
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        Self(vsqrtq_f32(self.0))
    }

    #[inline(always)]
    fn abs(self) -> Self {
        Self(vabsq_f32(self.0))
    }

    #[inline(always)]
    fn min(self, rhs: Self) -> Self {
        Self(vminnmq_f32(self.0, rhs.0))
    }

    #[inline(always)]
    fn select_gt(a: Self, b: Self, t: Self, f: Self) -> Self {
        Self(vbslq_f32(vcgtq_f32(a.0, b.0), t.0, f.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_array(v: NeonF32x4) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        v.store(&mut out);
        out
    }

    #[test]
    fn ops_match_scalar_bits() {
        let a = NeonF32x4::load(&[1.5, -2.0, 1e-20, 9.0]);
        let b = NeonF32x4::load(&[0.5, 3.0, 1e20, -0.0]);
        let (aa, ba) = (to_array(a), to_array(b));
        for (i, v) in to_array(a + b).iter().enumerate() {
            assert_eq!(v.to_bits(), (aa[i] + ba[i]).to_bits());
        }
        for (i, v) in to_array(a * b).iter().enumerate() {
            assert_eq!(v.to_bits(), (aa[i] * ba[i]).to_bits());
        }
        for (i, v) in to_array(a / b).iter().enumerate() {
            assert_eq!(v.to_bits(), (aa[i] / ba[i]).to_bits());
        }
        for (i, v) in to_array(a.abs().sqrt()).iter().enumerate() {
            assert_eq!(v.to_bits(), aa[i].abs().sqrt().to_bits());
        }
        for (i, v) in to_array(a.min(b)).iter().enumerate() {
            assert_eq!(v.to_bits(), aa[i].min(ba[i]).to_bits());
        }
    }

    #[test]
    fn min_propagates_non_nan_like_scalar() {
        let a = NeonF32x4::load(&[f32::NAN, 1.0, f32::NAN, -2.0]);
        let b = NeonF32x4::load(&[3.0, f32::NAN, f32::NAN, -5.0]);
        let m = to_array(a.min(b));
        assert_eq!(m[0], 3.0);
        assert_eq!(m[1], 1.0);
        assert!(m[2].is_nan());
        assert_eq!(m[3], -5.0);
    }

    #[test]
    fn select_gt_picks_per_lane() {
        let a = NeonF32x4::load(&[1.0, -1.0, f32::NAN, 2.0]);
        let z = NeonF32x4::splat(0.0);
        let t = NeonF32x4::splat(7.0);
        let r = to_array(NeonF32x4::select_gt(a, z, t, z));
        assert_eq!(r, [7.0, 0.0, 0.0, 7.0]);
    }
}
