//! Separable convolution kernels (Gaussian and Gaussian derivatives).
//!
//! The ridge filter needs second-order Gaussian derivatives; the marker
//! extractor needs a Laplacian-of-Gaussian response. Both are built from
//! 1-D kernels applied separably (row pass + column pass), which is what
//! gives the RDG task its linear-scan memory access pattern modelled in
//! Fig. 5 of the paper.

use crate::image::{ImageF32, Roi};

/// A 1-D convolution kernel with odd length, centered at `radius`.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel1D {
    taps: Vec<f32>,
}

impl Kernel1D {
    /// Builds a kernel from raw taps. Panics if the length is even or zero.
    pub fn new(taps: Vec<f32>) -> Self {
        assert!(
            !taps.is_empty() && taps.len() % 2 == 1,
            "kernel length must be odd"
        );
        Self { taps }
    }

    /// Normalized Gaussian kernel `G(x; sigma)` truncated at `3 sigma`.
    pub fn gaussian(sigma: f32) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        let radius = (3.0 * sigma).ceil().max(1.0) as isize;
        let mut taps = Vec::with_capacity((2 * radius + 1) as usize);
        let s2 = 2.0 * sigma * sigma;
        for i in -radius..=radius {
            let x = i as f32;
            taps.push((-x * x / s2).exp());
        }
        let sum: f32 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Self { taps }
    }

    /// First Gaussian derivative `G'(x; sigma)`, scale-normalized by `sigma`.
    pub fn gaussian_d1(sigma: f32) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        let g = Self::gaussian(sigma);
        let radius = g.radius() as isize;
        let s2 = sigma * sigma;
        let taps = (-radius..=radius)
            .zip(g.taps.iter())
            .map(|(i, &t)| {
                let x = i as f32;
                // d/dx G = -x/sigma^2 * G ; scale-normalize by sigma
                -x / s2 * t * sigma
            })
            .collect();
        Self { taps }
    }

    /// Second Gaussian derivative `G''(x; sigma)`, scale-normalized by
    /// `sigma^2` (Lindeberg gamma-normalization so responses are comparable
    /// across scales).
    pub fn gaussian_d2(sigma: f32) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        let g = Self::gaussian(sigma);
        let radius = g.radius() as isize;
        let s2 = sigma * sigma;
        let mut taps: Vec<f32> = (-radius..=radius)
            .zip(g.taps.iter())
            .map(|(i, &t)| {
                let x = i as f32;
                ((x * x - s2) / (s2 * s2)) * t * s2
            })
            .collect();
        // Truncation and discretization leave a small DC residual; remove it
        // so the kernel responds zero on constant signals, as the continuous
        // operator does.
        let dc = taps.iter().sum::<f32>() / taps.len() as f32;
        for t in &mut taps {
            *t -= dc;
        }
        Self { taps }
    }

    /// Kernel half-length.
    pub fn radius(&self) -> usize {
        self.taps.len() / 2
    }

    /// Kernel taps, center at index `radius()`.
    pub fn taps(&self) -> &[f32] {
        &self.taps
    }

    /// Sum of taps (≈1 for smoothing kernels, ≈0 for derivative kernels).
    pub fn sum(&self) -> f32 {
        self.taps.iter().sum()
    }
}

/// Convolves the rows of `src` within `roi`, writing into `dst` at the same
/// coordinates. Pixels outside the image are border-replicated; pixels
/// outside the ROI but inside the image are read normally, so stripe
/// processing with halos is exact.
///
/// Each row is split once into (left boundary | interior | right boundary)
/// segments, so the interior runs taps-outer over contiguous stride-1 slices
/// — a vectorizable elementwise FMA instead of a per-pixel horizontal
/// reduction. The per-pixel accumulation order (`0 + t0*s0 + t1*s1 + ...`)
/// is unchanged, so results are bit-identical to [`convolve_rows_reference`].
pub fn convolve_rows(src: &ImageF32, dst: &mut ImageF32, roi: Roi, k: &Kernel1D) {
    assert_eq!(src.dims(), dst.dims(), "src/dst dims must match");
    let roi = roi.clamp_to(src.width(), src.height());
    if roi.is_empty() {
        return;
    }
    let r = k.radius();
    let taps = k.taps();
    let w = src.width();
    // x is interior iff x - r >= 0 and x + r < w.
    let int_lo = r.min(w);
    let int_hi = w.saturating_sub(r);
    let (lo, hi) = (roi.x, roi.right());
    let bl_end = lo.max(hi.min(int_lo));
    let ii_end = bl_end.max(hi.min(int_hi));
    for y in roi.y..roi.bottom() {
        let row = src.row(y);
        let out = dst.row_mut(y);
        for seg in [lo..bl_end, ii_end..hi] {
            for x in seg {
                let mut acc = 0.0f32;
                for (j, &t) in taps.iter().enumerate() {
                    let sx = (x + j).saturating_sub(r).min(w - 1);
                    acc += t * row[sx];
                }
                out[x] = acc;
            }
        }
        if bl_end < ii_end {
            let out_seg = &mut out[bl_end..ii_end];
            out_seg.fill(0.0);
            for (j, &t) in taps.iter().enumerate() {
                let src_seg = &row[bl_end + j - r..ii_end + j - r];
                for (o, &s) in out_seg.iter_mut().zip(src_seg) {
                    *o += t * s;
                }
            }
        }
    }
}

/// Reference (pre-optimisation) row convolution: per-pixel tap-inner loop
/// with the boundary test inside the hot loop. Kept as the bit-exactness
/// oracle for [`convolve_rows`] and as the "before" side of `bench_convolve`.
#[doc(hidden)]
#[allow(clippy::needless_range_loop)] // ROI-offset indexing is clearer here
pub fn convolve_rows_reference(src: &ImageF32, dst: &mut ImageF32, roi: Roi, k: &Kernel1D) {
    assert_eq!(src.dims(), dst.dims(), "src/dst dims must match");
    let roi = roi.clamp_to(src.width(), src.height());
    let r = k.radius() as isize;
    let taps = k.taps();
    let w = src.width() as isize;
    for y in roi.y..roi.bottom() {
        let row = src.row(y);
        let out = dst.row_mut(y);
        for x in roi.x..roi.right() {
            let mut acc = 0.0f32;
            let xi = x as isize;
            // fast path: fully interior
            if xi - r >= 0 && xi + r < w {
                let base = (xi - r) as usize;
                for (j, &t) in taps.iter().enumerate() {
                    acc += t * row[base + j];
                }
            } else {
                for (j, &t) in taps.iter().enumerate() {
                    let sx = (xi + j as isize - r).clamp(0, w - 1) as usize;
                    acc += t * row[sx];
                }
            }
            out[x] = acc;
        }
    }
}

/// Convolves the columns of `src` within `roi`, writing into `dst`.
/// Iterates row-major over the output so memory access stays streaming.
///
/// Runs taps-outer for every output row: the source row index is clamped
/// once per (y, tap) — a no-op for interior rows — so the inner loop is
/// always a contiguous stride-1 accumulate over row slices and boundary
/// rows vectorize identically to interior ones. Per-pixel accumulation
/// order matches [`convolve_cols_reference`] bit for bit.
pub fn convolve_cols(src: &ImageF32, dst: &mut ImageF32, roi: Roi, k: &Kernel1D) {
    assert_eq!(src.dims(), dst.dims(), "src/dst dims must match");
    let roi = roi.clamp_to(src.width(), src.height());
    if roi.is_empty() {
        return;
    }
    let r = k.radius();
    let taps = k.taps();
    let h = src.height();
    let (lo, hi) = (roi.x, roi.right());
    for y in roi.y..roi.bottom() {
        let out_seg = &mut dst.row_mut(y)[lo..hi];
        out_seg.fill(0.0);
        for (j, &t) in taps.iter().enumerate() {
            let sy = (y + j).saturating_sub(r).min(h - 1);
            let src_seg = &src.row(sy)[lo..hi];
            for (o, &s) in out_seg.iter_mut().zip(src_seg) {
                *o += t * s;
            }
        }
    }
}

/// Reference (pre-optimisation) column convolution: taps-outer on interior
/// rows, per-pixel gather on boundary rows. Kept as the bit-exactness
/// oracle for [`convolve_cols`] and as the "before" side of `bench_convolve`.
#[doc(hidden)]
#[allow(clippy::needless_range_loop)] // ROI-offset indexing is clearer here
pub fn convolve_cols_reference(src: &ImageF32, dst: &mut ImageF32, roi: Roi, k: &Kernel1D) {
    assert_eq!(src.dims(), dst.dims(), "src/dst dims must match");
    let roi = roi.clamp_to(src.width(), src.height());
    let r = k.radius() as isize;
    let taps = k.taps();
    let h = src.height() as isize;
    for y in roi.y..roi.bottom() {
        let yi = y as isize;
        let interior = yi - r >= 0 && yi + r < h;
        let out = dst.row_mut(y);
        if interior {
            for x in roi.x..roi.right() {
                out[x] = 0.0;
            }
            let base = (yi - r) as usize;
            for (j, &t) in taps.iter().enumerate() {
                let srow = src.row(base + j);
                for x in roi.x..roi.right() {
                    out[x] += t * srow[x];
                }
            }
        } else {
            for x in roi.x..roi.right() {
                let mut acc = 0.0f32;
                for (j, &t) in taps.iter().enumerate() {
                    let sy = (yi + j as isize - r).clamp(0, h - 1) as usize;
                    acc += t * src.get(x, sy);
                }
                out[x] = acc;
            }
        }
    }
}

/// Separable convolution: row kernel `kx` then column kernel `ky`,
/// restricted to `roi`. `scratch` must have the same dimensions as `src`
/// and is clobbered; reusing it across calls avoids per-frame allocation.
///
/// The row pass runs on an inflated ROI so the column pass reads valid
/// neighbours above/below the ROI (halo handling for stripe parallelism).
pub fn convolve_separable(
    src: &ImageF32,
    dst: &mut ImageF32,
    scratch: &mut ImageF32,
    roi: Roi,
    kx: &Kernel1D,
    ky: &Kernel1D,
) {
    assert_eq!(src.dims(), scratch.dims(), "scratch dims must match src");
    let halo = ky.radius();
    let row_roi = roi.inflate(halo, src.width(), src.height());
    // Only the vertical inflation matters for the column pass, but inflating
    // uniformly keeps the helper simple and the extra columns are cheap.
    convolve_rows(src, scratch, row_roi, kx);
    convolve_cols(scratch, dst, roi, ky);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    fn close(a: f32, b: f32, eps: f32) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn gaussian_is_normalized_and_symmetric() {
        for &sigma in &[0.8f32, 1.5, 3.0] {
            let k = Kernel1D::gaussian(sigma);
            assert!(
                close(k.sum(), 1.0, 1e-5),
                "sum {} for sigma {}",
                k.sum(),
                sigma
            );
            let taps = k.taps();
            let n = taps.len();
            for i in 0..n / 2 {
                assert!(close(taps[i], taps[n - 1 - i], 1e-7));
            }
        }
    }

    #[test]
    fn derivative_kernels_have_zero_dc() {
        let d1 = Kernel1D::gaussian_d1(1.2);
        let d2 = Kernel1D::gaussian_d2(1.2);
        assert!(d1.sum().abs() < 1e-4, "d1 sum {}", d1.sum());
        assert!(d2.sum().abs() < 1e-3, "d2 sum {}", d2.sum());
    }

    #[test]
    fn d1_is_antisymmetric_d2_symmetric() {
        let d1 = Kernel1D::gaussian_d1(1.0);
        let t = d1.taps();
        let n = t.len();
        for i in 0..n / 2 {
            assert!(close(t[i], -t[n - 1 - i], 1e-6));
        }
        assert!(close(t[n / 2], 0.0, 1e-7));
        let d2 = Kernel1D::gaussian_d2(1.0);
        let t = d2.taps();
        for i in 0..n / 2 {
            assert!(close(t[i], t[n - 1 - i], 1e-6));
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = Kernel1D::new(vec![0.5, 0.5]);
    }

    #[test]
    fn smoothing_constant_image_is_identity() {
        let src: ImageF32 = Image::filled(16, 16, 42.0);
        let mut dst: ImageF32 = Image::new(16, 16);
        let mut scratch: ImageF32 = Image::new(16, 16);
        let g = Kernel1D::gaussian(1.5);
        convolve_separable(&src, &mut dst, &mut scratch, src.full_roi(), &g, &g);
        for y in 0..16 {
            for x in 0..16 {
                assert!(
                    close(dst.get(x, y), 42.0, 1e-3),
                    "pixel ({x},{y}) = {}",
                    dst.get(x, y)
                );
            }
        }
    }

    #[test]
    fn identity_kernel_copies() {
        let src = Image::from_fn(8, 8, |x, y| (x * y) as f32);
        let mut dst: ImageF32 = Image::new(8, 8);
        let mut scratch: ImageF32 = Image::new(8, 8);
        let id = Kernel1D::new(vec![0.0, 1.0, 0.0]);
        convolve_separable(&src, &mut dst, &mut scratch, src.full_roi(), &id, &id);
        assert_eq!(src, dst);
    }

    #[test]
    fn second_derivative_of_parabola_is_constant() {
        // f(x) = x^2 => f'' = 2; the gamma-normalized kernel returns
        // sigma^2 * f''(x) in its scale normalization, i.e. 2*sigma^2.
        let sigma = 1.5f32;
        let w = 41;
        let src = Image::from_fn(w, 5, |x, _| {
            let c = x as f32 - 20.0;
            c * c
        });
        let mut dst: ImageF32 = Image::new(w, 5);
        let d2 = Kernel1D::gaussian_d2(sigma);
        convolve_rows(&src, &mut dst, src.full_roi(), &d2);
        let expected = 2.0 * sigma * sigma;
        // interior pixel, away from borders
        assert!(
            close(dst.get(20, 2), expected, 0.05 * expected),
            "got {} expected {}",
            dst.get(20, 2),
            expected
        );
    }

    #[test]
    fn roi_convolution_only_touches_roi() {
        let src: ImageF32 = Image::filled(16, 16, 1.0);
        let mut dst: ImageF32 = Image::filled(16, 16, -1.0);
        let g = Kernel1D::gaussian(1.0);
        convolve_rows(&src, &mut dst, Roi::new(4, 4, 4, 4), &g);
        assert!(close(dst.get(5, 5), 1.0, 1e-4));
        assert_eq!(dst.get(0, 0), -1.0);
        assert_eq!(dst.get(12, 12), -1.0);
    }

    #[test]
    fn optimized_convolution_bit_identical_to_reference() {
        // The cache-aware rewrite must not change a single bit: per-pixel
        // FP accumulation order is preserved, so optimized and reference
        // paths agree exactly — including borders, narrow images (width or
        // height below the kernel support) and off-centre ROIs.
        let kernels = [
            Kernel1D::gaussian(0.8),
            Kernel1D::gaussian(2.5),
            Kernel1D::gaussian_d1(1.5),
            Kernel1D::gaussian_d2(4.0),
        ];
        let shapes = [(64usize, 48usize), (7, 64), (64, 7), (5, 5), (33, 1)];
        for k in &kernels {
            for &(w, h) in &shapes {
                let src =
                    Image::from_fn(w, h, |x, y| ((x * 31 + y * 17) % 101) as f32 * 0.37 - 12.5);
                let rois = [
                    src.full_roi(),
                    Roi::new(0, 0, (w / 2).max(1), (h / 2).max(1)),
                    Roi::new(w / 3, h / 3, (w / 2).max(1), (h / 2).max(1)),
                ];
                for &roi in &rois {
                    let mut a: ImageF32 = Image::filled(w, h, f32::NAN);
                    let mut b: ImageF32 = Image::filled(w, h, f32::NAN);
                    convolve_rows(&src, &mut a, roi, k);
                    convolve_rows_reference(&src, &mut b, roi, k);
                    let roi_c = roi.clamp_to(w, h);
                    for y in roi_c.y..roi_c.bottom() {
                        for x in roi_c.x..roi_c.right() {
                            assert_eq!(
                                a.get(x, y).to_bits(),
                                b.get(x, y).to_bits(),
                                "rows {w}x{h} roi {roi:?} at ({x},{y}): {} vs {}",
                                a.get(x, y),
                                b.get(x, y)
                            );
                        }
                    }
                    convolve_cols(&src, &mut a, roi, k);
                    convolve_cols_reference(&src, &mut b, roi, k);
                    for y in roi_c.y..roi_c.bottom() {
                        for x in roi_c.x..roi_c.right() {
                            assert_eq!(
                                a.get(x, y).to_bits(),
                                b.get(x, y).to_bits(),
                                "cols {w}x{h} roi {roi:?} at ({x},{y}): {} vs {}",
                                a.get(x, y),
                                b.get(x, y)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stripe_convolution_matches_full_frame() {
        // Convolving stripe-by-stripe (with the built-in halo) must produce
        // exactly the same result as one full-frame convolution: this is the
        // invariant that makes data-parallel RDG correct.
        let src = Image::from_fn(32, 32, |x, y| ((x * 7 + y * 13) % 31) as f32);
        let g = Kernel1D::gaussian(1.4);
        let d2 = Kernel1D::gaussian_d2(1.4);

        let mut full: ImageF32 = Image::new(32, 32);
        let mut scratch: ImageF32 = Image::new(32, 32);
        convolve_separable(&src, &mut full, &mut scratch, src.full_roi(), &g, &d2);

        let mut striped: ImageF32 = Image::new(32, 32);
        for roi in src.full_roi().stripes(4) {
            let mut scratch2: ImageF32 = Image::new(32, 32);
            convolve_separable(&src, &mut striped, &mut scratch2, roi, &g, &d2);
        }
        for y in 0..32 {
            for x in 0..32 {
                assert!(
                    close(full.get(x, y), striped.get(x, y), 1e-5),
                    "mismatch at ({x},{y}): {} vs {}",
                    full.get(x, y),
                    striped.get(x, y)
                );
            }
        }
    }
}
