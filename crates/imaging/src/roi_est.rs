//! ROI EST — region-of-interest estimation.
//!
//! Once a marker couple is found, a region of interest is estimated around
//! it in the original image (Section 3). The ROI size is data-dependent —
//! it scales with the marker separation and the recent motion — which is
//! dynamic aspect (1) of the application and the independent variable of
//! the paper's Fig. 6 (processing time vs. ROI size).

use crate::couples::Couple;
use crate::image::Roi;

/// Configuration of ROI estimation.
#[derive(Debug, Clone)]
pub struct RoiEstConfig {
    /// Margin around the marker couple as a multiple of the couple length.
    pub margin_factor: f64,
    /// Additional absolute margin, pixels.
    pub margin_pixels: f64,
    /// Extra margin per pixel of recent motion (motion-adaptive growth).
    pub motion_factor: f64,
    /// Minimum ROI edge length, pixels.
    pub min_size: usize,
    /// Maximum ROI edge length, pixels (caps degenerate detections).
    pub max_size: usize,
}

impl Default for RoiEstConfig {
    fn default() -> Self {
        Self {
            margin_factor: 1.0,
            margin_pixels: 16.0,
            motion_factor: 2.0,
            min_size: 48,
            max_size: 640,
        }
    }
}

/// Estimates the ROI for a marker couple inside a `width x height` frame.
///
/// `recent_motion` is the magnitude of the last registered displacement
/// (pixels/frame); faster-moving anatomy gets a larger safety margin.
pub fn estimate_roi(
    couple: &Couple,
    recent_motion: f64,
    width: usize,
    height: usize,
    cfg: &RoiEstConfig,
) -> Roi {
    let (cx, cy) = couple.center();
    let len = couple.length();
    let half = (len * (0.5 + cfg.margin_factor)
        + cfg.margin_pixels
        + cfg.motion_factor * recent_motion.max(0.0))
    .max(cfg.min_size as f64 / 2.0)
    .min(cfg.max_size as f64 / 2.0);

    let x0 = (cx - half).floor().max(0.0) as usize;
    let y0 = (cy - half).floor().max(0.0) as usize;
    let x1 = ((cx + half).ceil() as usize).min(width);
    let y1 = ((cy + half).ceil() as usize).min(height);
    Roi::new(x0, y0, x1.saturating_sub(x0), y1.saturating_sub(y0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers::Marker;

    fn couple(ax: f64, ay: f64, bx: f64, by: f64) -> Couple {
        Couple {
            a: Marker {
                x: ax,
                y: ay,
                strength: 1.0,
                scale: 2.0,
            },
            b: Marker {
                x: bx,
                y: by,
                strength: 1.0,
                scale: 2.0,
            },
            score: 0.0,
        }
    }

    #[test]
    fn roi_contains_both_markers() {
        let c = couple(100.0, 100.0, 140.0, 120.0);
        let roi = estimate_roi(&c, 0.0, 512, 512, &RoiEstConfig::default());
        assert!(roi.contains(100, 100));
        assert!(roi.contains(140, 120));
    }

    #[test]
    fn roi_is_centered_on_couple() {
        let c = couple(200.0, 200.0, 240.0, 200.0);
        let roi = estimate_roi(&c, 0.0, 512, 512, &RoiEstConfig::default());
        let rcx = roi.x as f64 + roi.width as f64 / 2.0;
        let rcy = roi.y as f64 + roi.height as f64 / 2.0;
        assert!((rcx - 220.0).abs() <= 1.5, "center x {}", rcx);
        assert!((rcy - 200.0).abs() <= 1.5, "center y {}", rcy);
    }

    #[test]
    fn roi_grows_with_motion() {
        let c = couple(200.0, 200.0, 240.0, 200.0);
        let cfg = RoiEstConfig::default();
        let still = estimate_roi(&c, 0.0, 512, 512, &cfg);
        let moving = estimate_roi(&c, 10.0, 512, 512, &cfg);
        assert!(moving.area() > still.area());
    }

    #[test]
    fn roi_grows_with_couple_length() {
        let cfg = RoiEstConfig::default();
        let short = estimate_roi(&couple(200.0, 200.0, 220.0, 200.0), 0.0, 512, 512, &cfg);
        let long = estimate_roi(&couple(200.0, 200.0, 280.0, 200.0), 0.0, 512, 512, &cfg);
        assert!(long.area() > short.area());
    }

    #[test]
    fn roi_clamps_at_frame_border() {
        let c = couple(5.0, 5.0, 25.0, 5.0);
        let roi = estimate_roi(&c, 0.0, 512, 512, &RoiEstConfig::default());
        assert_eq!(roi.x, 0);
        assert_eq!(roi.y, 0);
        assert!(roi.right() <= 512 && roi.bottom() <= 512);
    }

    #[test]
    fn roi_respects_min_and_max_size() {
        let cfg = RoiEstConfig {
            min_size: 100,
            max_size: 120,
            ..Default::default()
        };
        let tiny = estimate_roi(&couple(256.0, 256.0, 258.0, 256.0), 0.0, 512, 512, &cfg);
        assert!(tiny.width >= 100, "width {}", tiny.width);
        let huge = estimate_roi(&couple(100.0, 256.0, 400.0, 256.0), 50.0, 512, 512, &cfg);
        assert!(huge.width <= 121, "width {}", huge.width);
    }
}
