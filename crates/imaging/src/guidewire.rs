//! GW EXT — guide-wire extraction.
//!
//! Verifies a marker couple by searching for a ridge (the guide wire)
//! joining the two markers (Section 3): a dynamic-programming path search
//! over lateral offsets around the marker axis, maximizing accumulated
//! ridge response under a smoothness constraint. A couple whose markers sit
//! on a connecting ridge is considered a stable detection.
//!
//! The task cost grows with the marker separation (path length) and with
//! the search corridor width, so the computation time is data-dependent —
//! the paper models GW EXT with a Markov chain.

use crate::couples::Couple;
use crate::image::ImageF32;
use crate::simd::{F32x8, SimdF32};

/// Configuration of guide-wire extraction.
#[derive(Debug, Clone)]
pub struct GwConfig {
    /// Half-width of the search corridor perpendicular to the marker axis,
    /// in samples.
    pub corridor_half_width: usize,
    /// Lateral sample spacing, pixels.
    pub lateral_step: f64,
    /// Longitudinal sample spacing along the axis, pixels.
    pub along_step: f64,
    /// Maximum lateral offset change between consecutive samples (the
    /// smoothness constraint), in lateral samples.
    pub max_kink: usize,
    /// Minimum mean ridge response along the best path for the wire to
    /// count as found, as a fraction of the corridor's peak response.
    pub min_mean_rel: f32,
}

impl Default for GwConfig {
    fn default() -> Self {
        Self {
            corridor_half_width: 8,
            lateral_step: 1.0,
            along_step: 1.0,
            max_kink: 1,
            min_mean_rel: 0.2,
        }
    }
}

/// Result of guide-wire extraction.
#[derive(Debug, Clone)]
pub struct GwOutput {
    /// Whether a connecting ridge was found (drives couple validation).
    pub wire_found: bool,
    /// The extracted wire path, image coordinates.
    pub path: Vec<(f64, f64)>,
    /// Mean ridge response along the path.
    pub mean_response: f32,
    /// Number of DP cells evaluated (content-dependent load proxy).
    pub cells_evaluated: usize,
}

/// Reusable working memory of the DP path search, so steady-state frames
/// perform no per-frame heap allocation (the corridor geometry is stable
/// while tracking, so the vectors keep their capacity).
#[derive(Debug, Default)]
pub struct GwScratch {
    resp: Vec<f32>,
    best: Vec<f32>,
    back: Vec<usize>,
    offsets: Vec<usize>,
}

impl GwScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch bytes currently held (memory accounting).
    pub fn byte_size(&self) -> usize {
        self.resp.capacity() * std::mem::size_of::<f32>()
            + self.best.capacity() * std::mem::size_of::<f32>()
            + self.back.capacity() * std::mem::size_of::<usize>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
    }
}

/// Samples the ridge map with bilinear interpolation.
fn sample_bilinear(map: &ImageF32, x: f64, y: f64) -> f32 {
    let (w, h) = map.dims();
    if w == 0 || h == 0 {
        return 0.0;
    }
    let xf = x.clamp(0.0, (w - 1) as f64);
    let yf = y.clamp(0.0, (h - 1) as f64);
    let x0 = xf.floor() as usize;
    let y0 = yf.floor() as usize;
    let x1 = (x0 + 1).min(w - 1);
    let y1 = (y0 + 1).min(h - 1);
    let fx = (xf - x0 as f64) as f32;
    let fy = (yf - y0 as f64) as f32;
    let v00 = map.get(x0, y0);
    let v10 = map.get(x1, y0);
    let v01 = map.get(x0, y1);
    let v11 = map.get(x1, y1);
    v00 * (1.0 - fx) * (1.0 - fy) + v10 * fx * (1.0 - fy) + v01 * (1.0 - fx) * fy + v11 * fx * fy
}

/// Searches for the guide wire joining the two markers of `couple` in the
/// ridge-response map produced by RDG.
///
/// Convenience wrapper over [`gw_extract_with`] with one-shot scratch;
/// per-frame callers should hold a [`GwScratch`] and reuse it.
pub fn gw_extract(ridgeness: &ImageF32, couple: &Couple, cfg: &GwConfig) -> GwOutput {
    gw_extract_with(ridgeness, couple, cfg, &mut GwScratch::new())
}

/// [`gw_extract`] with caller-owned reusable scratch.
pub fn gw_extract_with(
    ridgeness: &ImageF32,
    couple: &Couple,
    cfg: &GwConfig,
    scratch: &mut GwScratch,
) -> GwOutput {
    let (ax, ay) = (couple.a.x, couple.a.y);
    let (bx, by) = (couple.b.x, couple.b.y);
    let len = couple.length();
    if len < 1e-9 {
        return GwOutput {
            wire_found: false,
            path: Vec::new(),
            mean_response: 0.0,
            cells_evaluated: 0,
        };
    }
    // unit vectors along and across the axis
    let ux = (bx - ax) / len;
    let uy = (by - ay) / len;
    let (nx, ny) = (-uy, ux);

    let n_along = ((len / cfg.along_step).ceil() as usize).max(2);
    let n_lat = 2 * cfg.corridor_half_width + 1;

    // sample corridor responses (every cell is overwritten before being
    // read, so the resized scratch carries no stale data)
    let GwScratch {
        resp,
        best,
        back,
        offsets,
    } = scratch;
    resp.clear();
    resp.resize(n_along * n_lat, 0.0);
    best.clear();
    best.resize(n_along * n_lat, 0.0);
    back.clear();
    back.resize(n_along * n_lat, 0);
    offsets.clear();
    offsets.resize(n_along, 0);
    let mut peak = 0.0f32;
    for i in 0..n_along {
        let t = i as f64 / (n_along - 1) as f64;
        let px = ax + ux * t * len;
        let py = ay + uy * t * len;
        for j in 0..n_lat {
            let off = (j as f64 - cfg.corridor_half_width as f64) * cfg.lateral_step;
            let v = sample_bilinear(ridgeness, px + nx * off, py + ny * off);
            resp[i * n_lat + j] = v;
            peak = peak.max(v);
        }
    }

    // DP: best[i][j] = resp[i][j] + max over |j'-j|<=max_kink of best[i-1][j']
    best[..n_lat].copy_from_slice(&resp[..n_lat]);
    let mut cells_evaluated = n_lat;
    for i in 1..n_along {
        let (done, cur) = best.split_at_mut(i * n_lat);
        let prev = &done[(i - 1) * n_lat..];
        cells_evaluated += dp_row(
            prev,
            &resp[i * n_lat..(i + 1) * n_lat],
            cfg.max_kink,
            &mut cur[..n_lat],
            &mut back[i * n_lat..(i + 1) * n_lat],
        );
    }

    // endpoints are the markers: the path must start and end at the center
    // of the corridor (offset 0), so trace back from the center cell.
    let center = cfg.corridor_half_width;
    let mut j = center;
    offsets[n_along - 1] = j;
    for i in (1..n_along).rev() {
        j = back[i * n_lat + j];
        offsets[i - 1] = j;
    }

    let mut path = Vec::with_capacity(n_along);
    let mut sum = 0.0f32;
    for (i, &jj) in offsets.iter().enumerate() {
        let t = i as f64 / (n_along - 1) as f64;
        let off = (jj as f64 - center as f64) * cfg.lateral_step;
        let px = ax + ux * t * len + nx * off;
        let py = ay + uy * t * len + ny * off;
        path.push((px, py));
        sum += resp[i * n_lat + jj];
    }
    let mean_response = sum / n_along as f32;
    let wire_found = peak > 0.0 && mean_response >= cfg.min_mean_rel * peak;

    GwOutput {
        wire_found,
        path,
        mean_response,
        cells_evaluated,
    }
}

/// Scalar reference for [`gw_extract`]: the plain per-cell DP loop the
/// SIMD row kernel must reproduce exactly (same windowed strict-`>`
/// argmax with lowest-index tie-break, same evaluation count).
pub fn gw_extract_reference(ridgeness: &ImageF32, couple: &Couple, cfg: &GwConfig) -> GwOutput {
    let (ax, ay) = (couple.a.x, couple.a.y);
    let (bx, by) = (couple.b.x, couple.b.y);
    let len = couple.length();
    if len < 1e-9 {
        return GwOutput {
            wire_found: false,
            path: Vec::new(),
            mean_response: 0.0,
            cells_evaluated: 0,
        };
    }
    let ux = (bx - ax) / len;
    let uy = (by - ay) / len;
    let (nx, ny) = (-uy, ux);

    let n_along = ((len / cfg.along_step).ceil() as usize).max(2);
    let n_lat = 2 * cfg.corridor_half_width + 1;

    let mut resp = vec![0.0f32; n_along * n_lat];
    let mut best = vec![0.0f32; n_along * n_lat];
    let mut back = vec![0usize; n_along * n_lat];
    let mut peak = 0.0f32;
    for i in 0..n_along {
        let t = i as f64 / (n_along - 1) as f64;
        let px = ax + ux * t * len;
        let py = ay + uy * t * len;
        for j in 0..n_lat {
            let off = (j as f64 - cfg.corridor_half_width as f64) * cfg.lateral_step;
            let v = sample_bilinear(ridgeness, px + nx * off, py + ny * off);
            resp[i * n_lat + j] = v;
            peak = peak.max(v);
        }
    }

    best[..n_lat].copy_from_slice(&resp[..n_lat]);
    let mut cells_evaluated = n_lat;
    for i in 1..n_along {
        for j in 0..n_lat {
            let lo = j.saturating_sub(cfg.max_kink);
            let hi = (j + cfg.max_kink).min(n_lat - 1);
            let mut arg = lo;
            let mut val = best[(i - 1) * n_lat + lo];
            for k in (lo + 1)..=hi {
                cells_evaluated += 1;
                let v = best[(i - 1) * n_lat + k];
                if v > val {
                    val = v;
                    arg = k;
                }
            }
            cells_evaluated += 1;
            best[i * n_lat + j] = resp[i * n_lat + j] + val;
            back[i * n_lat + j] = arg;
        }
    }

    let center = cfg.corridor_half_width;
    let mut j = center;
    let mut offsets = vec![0usize; n_along];
    offsets[n_along - 1] = j;
    for i in (1..n_along).rev() {
        j = back[i * n_lat + j];
        offsets[i - 1] = j;
    }

    let mut path = Vec::with_capacity(n_along);
    let mut sum = 0.0f32;
    for (i, &jj) in offsets.iter().enumerate() {
        let t = i as f64 / (n_along - 1) as f64;
        let off = (jj as f64 - center as f64) * cfg.lateral_step;
        let px = ax + ux * t * len + nx * off;
        let py = ay + uy * t * len + ny * off;
        path.push((px, py));
        sum += resp[i * n_lat + jj];
    }
    let mean_response = sum / n_along as f32;
    let wire_found = peak > 0.0 && mean_response >= cfg.min_mean_rel * peak;

    GwOutput {
        wire_found,
        path,
        mean_response,
        cells_evaluated,
    }
}

/// One DP row update: for every lateral cell `j`,
/// `best[j] = resp[j] + max(prev[j-kink..=j+kink])` with the argmax
/// index recorded in `back[j]`. Returns the number of window cells
/// evaluated (the content-dependent load proxy).
///
/// Interior columns run SIMD: the windowed argmax is a chain of
/// strict-`>` selects over shifted loads of `prev`, with lane indices
/// carried as f32 (exact — corridor widths are far below 2^24). The
/// scan runs `lo..=hi` exactly like the scalar loop, so the
/// lowest-index tie-break is preserved.
#[inline(always)]
fn dp_row_body<V: SimdF32>(
    prev: &[f32],
    resp_row: &[f32],
    kink: usize,
    best_row: &mut [f32],
    back_row: &mut [usize],
) -> usize {
    let n = prev.len();
    let mut cells = 0usize;
    let scalar_cell =
        |j: usize, cells: &mut usize, best_row: &mut [f32], back_row: &mut [usize]| {
            let lo = j.saturating_sub(kink);
            let hi = (j + kink).min(n - 1);
            let mut arg = lo;
            let mut val = prev[lo];
            for (k, &v) in prev.iter().enumerate().take(hi + 1).skip(lo + 1) {
                *cells += 1;
                if v > val {
                    val = v;
                    arg = k;
                }
            }
            *cells += 1;
            best_row[j] = resp_row[j] + val;
            back_row[j] = arg;
        };
    // Columns whose window clamps against either corridor edge run the
    // scalar cell; the clamp-free interior runs SIMD.
    if n <= 2 * kink + V::WIDTH {
        for j in 0..n {
            scalar_cell(j, &mut cells, best_row, back_row);
        }
        return cells;
    }
    for j in 0..kink {
        scalar_cell(j, &mut cells, best_row, back_row);
    }
    let win = 2 * kink + 1;
    let mut iota = [0.0f32; 16];
    for (l, v) in iota[..V::WIDTH].iter_mut().enumerate() {
        *v = l as f32;
    }
    let base = V::load(&iota);
    let mut argbuf = [0.0f32; 16];
    let mut j = kink;
    while j + V::WIDTH <= n - kink {
        // SAFETY: max load index is (j + WIDTH - 1) + kink <= n - 1 by
        // the loop bound; stores stay within the row likewise.
        unsafe {
            let lo = j - kink;
            let mut val = V::load_at(prev, lo);
            let mut arg = base + V::splat(lo as f32);
            for k in 1..win {
                let v = V::load_at(prev, lo + k);
                let cand = base + V::splat((lo + k) as f32);
                arg = V::select_gt(v, val, cand, arg);
                val = V::select_gt(v, val, v, val);
            }
            (V::load_at(resp_row, j) + val).store_at(best_row, j);
            arg.store(&mut argbuf);
            for (l, &a) in argbuf[..V::WIDTH].iter().enumerate() {
                back_row[j + l] = a as usize;
            }
        }
        cells += win * V::WIDTH;
        j += V::WIDTH;
    }
    for jj in j..n {
        scalar_cell(jj, &mut cells, best_row, back_row);
    }
    cells
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dp_row_avx2(
    prev: &[f32],
    resp_row: &[f32],
    kink: usize,
    best_row: &mut [f32],
    back_row: &mut [usize],
) -> usize {
    dp_row_body::<F32x8>(prev, resp_row, kink, best_row, back_row)
}

fn dp_row(
    prev: &[f32],
    resp_row: &[f32],
    kink: usize,
    best_row: &mut [f32],
    back_row: &mut [usize],
) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 requirement is checked at runtime above.
            return unsafe { dp_row_avx2(prev, resp_row, kink, best_row, back_row) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return dp_row_body::<crate::simd::NeonF32x4>(prev, resp_row, kink, best_row, back_row);
    }
    #[cfg(not(target_arch = "aarch64"))]
    dp_row_body::<F32x8>(prev, resp_row, kink, best_row, back_row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use crate::markers::Marker;

    fn couple(ax: f64, ay: f64, bx: f64, by: f64) -> Couple {
        Couple {
            a: Marker {
                x: ax,
                y: ay,
                strength: 1.0,
                scale: 2.0,
            },
            b: Marker {
                x: bx,
                y: by,
                strength: 1.0,
                scale: 2.0,
            },
            score: 0.0,
        }
    }

    /// Ridge map with a bright horizontal line at y=32.
    fn line_map(w: usize, h: usize, y0: f64) -> ImageF32 {
        Image::from_fn(w, h, |x, y| {
            let _ = x;
            let d = y as f64 - y0;
            (100.0 * (-d * d / 2.0).exp()) as f32
        })
    }

    #[test]
    fn finds_wire_on_straight_ridge() {
        let map = line_map(64, 64, 32.0);
        let c = couple(10.0, 32.0, 54.0, 32.0);
        let out = gw_extract(&map, &c, &GwConfig::default());
        assert!(out.wire_found, "mean {} ", out.mean_response);
        assert!(out.mean_response > 50.0);
        // path stays near the ridge
        for &(_, y) in &out.path {
            assert!((y - 32.0).abs() < 2.0, "path strays to y={}", y);
        }
    }

    #[test]
    fn no_wire_on_empty_map() {
        let map: ImageF32 = Image::new(64, 64);
        let c = couple(10.0, 32.0, 54.0, 32.0);
        let out = gw_extract(&map, &c, &GwConfig::default());
        assert!(!out.wire_found);
        assert_eq!(out.mean_response, 0.0);
    }

    #[test]
    fn wire_with_gap_rejected() {
        // ridge exists only on the left half: mean response along the
        // corridor drops below the threshold
        let map = Image::from_fn(64, 64, |x, y| {
            if x < 24 {
                let d = y as f64 - 32.0;
                (100.0 * (-d * d / 2.0).exp()) as f32
            } else {
                0.0
            }
        });
        let c = couple(10.0, 32.0, 54.0, 32.0);
        let cfg = GwConfig {
            min_mean_rel: 0.5,
            ..Default::default()
        };
        let out = gw_extract(&map, &c, &cfg);
        assert!(!out.wire_found, "mean {}", out.mean_response);
    }

    #[test]
    fn path_follows_gentle_curve() {
        // ridge drifts from y=30 to y=34 across the image
        let map = Image::from_fn(64, 64, |x, y| {
            let yc = 30.0 + 4.0 * (x as f64 / 63.0);
            let d = y as f64 - yc;
            (100.0 * (-d * d / 2.0).exp()) as f32
        });
        let c = couple(2.0, 30.0, 62.0, 34.0);
        let out = gw_extract(&map, &c, &GwConfig::default());
        assert!(out.wire_found);
        // midpoint of the path should sit near the curve midpoint (y=32)
        let (_, my) = out.path[out.path.len() / 2];
        assert!((my - 32.0).abs() < 2.5, "mid y {}", my);
    }

    #[test]
    fn cost_grows_with_marker_separation() {
        let map = line_map(128, 64, 32.0);
        let near = gw_extract(&map, &couple(10.0, 32.0, 30.0, 32.0), &GwConfig::default());
        let far = gw_extract(&map, &couple(10.0, 32.0, 120.0, 32.0), &GwConfig::default());
        assert!(far.cells_evaluated > 2 * near.cells_evaluated);
    }

    #[test]
    fn degenerate_couple_is_rejected() {
        let map = line_map(64, 64, 32.0);
        let c = couple(20.0, 32.0, 20.0, 32.0);
        let out = gw_extract(&map, &c, &GwConfig::default());
        assert!(!out.wire_found);
        assert!(out.path.is_empty());
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // reused scratch (including across corridor-geometry changes) must
        // give bit-identical results to one-shot extraction
        let map = line_map(128, 64, 32.0);
        let mut scratch = GwScratch::new();
        let long = couple(10.0, 32.0, 120.0, 32.0);
        let short = couple(30.0, 32.0, 60.0, 32.0);
        for c in [&long, &short, &long] {
            let reused = gw_extract_with(&map, c, &GwConfig::default(), &mut scratch);
            let fresh = gw_extract(&map, c, &GwConfig::default());
            assert_eq!(reused.wire_found, fresh.wire_found);
            assert_eq!(
                reused.mean_response.to_bits(),
                fresh.mean_response.to_bits()
            );
            assert_eq!(reused.cells_evaluated, fresh.cells_evaluated);
            assert_eq!(reused.path, fresh.path);
        }
    }

    #[test]
    fn simd_dp_matches_reference() {
        // wide corridors exercise the SIMD interior; narrow ones stay
        // fully scalar — both must match the reference bit for bit
        let map = Image::from_fn(96, 64, |x, y| {
            let yc = 28.0 + 6.0 * ((x as f64 / 95.0) * 3.1).sin();
            let d = y as f64 - yc;
            (90.0 * (-d * d / 3.0).exp()) as f32 + ((x * 31 + y * 17) % 13) as f32
        });
        let mut scratch = GwScratch::new();
        for half_width in [2usize, 8, 13] {
            for kink in [1usize, 2, 3] {
                let cfg = GwConfig {
                    corridor_half_width: half_width,
                    max_kink: kink,
                    ..Default::default()
                };
                let c = couple(5.0, 30.0, 90.0, 31.0);
                let fast = gw_extract_with(&map, &c, &cfg, &mut scratch);
                let reference = gw_extract_reference(&map, &c, &cfg);
                assert_eq!(
                    fast.wire_found, reference.wire_found,
                    "hw={half_width} k={kink}"
                );
                assert_eq!(
                    fast.mean_response.to_bits(),
                    reference.mean_response.to_bits(),
                    "hw={half_width} k={kink}"
                );
                assert_eq!(fast.cells_evaluated, reference.cells_evaluated);
                assert_eq!(fast.path, reference.path);
            }
        }
    }

    #[test]
    fn diagonal_wire_found() {
        let map = Image::from_fn(64, 64, |x, y| {
            let d = (x as f64 - y as f64) / std::f64::consts::SQRT_2;
            (100.0 * (-d * d / 2.0).exp()) as f32
        });
        let c = couple(10.0, 10.0, 50.0, 50.0);
        let out = gw_extract(&map, &c, &GwConfig::default());
        assert!(out.wire_found, "mean {}", out.mean_response);
    }
}
