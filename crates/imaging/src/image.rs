//! Image buffers, regions of interest and stripe decomposition.
//!
//! The application processes 1024x1024 16-bit grayscale X-ray frames
//! (2 bytes/pixel, 30 Hz in the paper). Intermediate results of the filter
//! stages use `f32` buffers. Both share the generic [`Image`] container.

use std::fmt;

/// Pixel type of acquired X-ray frames (the paper uses 2 bytes/pixel).
pub type Pixel = u16;

/// A rectangular region of interest in pixel coordinates.
///
/// `x`/`y` is the top-left corner (inclusive); `width`/`height` the extent.
/// A `Roi` is always interpreted relative to the image it is applied to and
/// must be validated with [`Roi::clamp_to`] before indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Roi {
    pub x: usize,
    pub y: usize,
    pub width: usize,
    pub height: usize,
}

impl Roi {
    /// Creates a new ROI.
    pub const fn new(x: usize, y: usize, width: usize, height: usize) -> Self {
        Self {
            x,
            y,
            width,
            height,
        }
    }

    /// ROI spanning a full `width x height` image.
    pub const fn full(width: usize, height: usize) -> Self {
        Self {
            x: 0,
            y: 0,
            width,
            height,
        }
    }

    /// Number of pixels covered.
    pub const fn area(&self) -> usize {
        self.width * self.height
    }

    /// Whether the ROI covers zero pixels.
    pub const fn is_empty(&self) -> bool {
        self.width == 0 || self.height == 0
    }

    /// Exclusive right edge.
    pub const fn right(&self) -> usize {
        self.x + self.width
    }

    /// Exclusive bottom edge.
    pub const fn bottom(&self) -> usize {
        self.y + self.height
    }

    /// Whether `(x, y)` lies inside the ROI.
    pub const fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x && x < self.x + self.width && y >= self.y && y < self.y + self.height
    }

    /// Clamps the ROI so it fits within a `width x height` image.
    ///
    /// Returns an empty ROI at the origin if there is no overlap at all.
    pub fn clamp_to(&self, width: usize, height: usize) -> Roi {
        if self.x >= width || self.y >= height {
            return Roi::new(0, 0, 0, 0);
        }
        let w = self.width.min(width - self.x);
        let h = self.height.min(height - self.y);
        Roi::new(self.x, self.y, w, h)
    }

    /// Grows the ROI by `margin` pixels on every side, clamped to the image.
    pub fn inflate(&self, margin: usize, width: usize, height: usize) -> Roi {
        let x = self.x.saturating_sub(margin);
        let y = self.y.saturating_sub(margin);
        let right = (self.x + self.width + margin).min(width);
        let bottom = (self.y + self.height + margin).min(height);
        Roi::new(x, y, right.saturating_sub(x), bottom.saturating_sub(y))
    }

    /// Intersection of two ROIs; empty if disjoint.
    pub fn intersect(&self, other: &Roi) -> Roi {
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if right <= x || bottom <= y {
            Roi::new(0, 0, 0, 0)
        } else {
            Roi::new(x, y, right - x, bottom - y)
        }
    }

    /// Smallest ROI containing both (union bounding box).
    pub fn union(&self, other: &Roi) -> Roi {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let right = self.right().max(other.right());
        let bottom = self.bottom().max(other.bottom());
        Roi::new(x, y, right - x, bottom - y)
    }

    /// Splits the ROI into `n` horizontal stripes of near-equal height.
    ///
    /// The first `area_remainder` stripes get one extra row, so the stripes
    /// tile the ROI exactly. Stripes of zero height are omitted, so fewer
    /// than `n` entries may be returned for very thin ROIs.
    pub fn stripes(&self, n: usize) -> Vec<Roi> {
        assert!(n > 0, "stripe count must be positive");
        let base = self.height / n;
        let rem = self.height % n;
        let mut out = Vec::with_capacity(n);
        let mut y = self.y;
        for i in 0..n {
            let h = base + usize::from(i < rem);
            if h > 0 {
                out.push(Roi::new(self.x, y, self.width, h));
                y += h;
            }
        }
        out
    }
}

impl fmt::Display for Roi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}+{}+{}", self.width, self.height, self.x, self.y)
    }
}

/// A dense, row-major 2-D image with element type `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

/// A 16-bit grayscale image, the acquisition format of the X-ray detector.
pub type ImageU16 = Image<Pixel>;
/// A 32-bit float image used for filter intermediates and ridge maps.
pub type ImageF32 = Image<f32>;

impl<T: Copy + Default> Image<T> {
    /// Creates an image filled with `T::default()`.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            data: vec![T::default(); width * height],
        }
    }
}

impl<T: Copy> Image<T> {
    /// Creates an image filled with `value`.
    pub fn filled(width: usize, height: usize, value: T) -> Self {
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates an image from a generator function `f(x, y)`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Wraps an existing row-major buffer. Panics if the length mismatches.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            width * height,
            "buffer length must be width*height"
        );
        Self {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Full-image ROI.
    pub fn full_roi(&self) -> Roi {
        Roi::full(self.width, self.height)
    }

    /// Buffer size in bytes (used for the Table-1 memory accounting).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Reads pixel `(x, y)`. Panics on out-of-bounds in debug builds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Writes pixel `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Reads with coordinates clamped to the image border (replicate
    /// boundary handling for the filters).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> T {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Immutable view of row `y`.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Mutable view of row `y`.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// The whole buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The whole buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Overwrites every pixel with `value`.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Overwrites this image with `src`'s pixels (same geometry required);
    /// lets pooled buffers be refreshed without reallocating.
    pub fn copy_from(&mut self, src: &Image<T>) {
        assert_eq!(
            self.dims(),
            src.dims(),
            "copy_from requires matching geometry"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Copies the ROI into a new, tightly packed image.
    pub fn crop(&self, roi: Roi) -> Image<T> {
        let roi = roi.clamp_to(self.width, self.height);
        let mut data = Vec::with_capacity(roi.area());
        for y in roi.y..roi.bottom() {
            data.extend_from_slice(&self.row(y)[roi.x..roi.right()]);
        }
        Image {
            width: roi.width,
            height: roi.height,
            data,
        }
    }

    /// Pastes `src` with its top-left corner at `(x, y)`, clipping at the
    /// destination border.
    pub fn paste(&mut self, src: &Image<T>, x: usize, y: usize) {
        let w = src.width.min(self.width.saturating_sub(x));
        let h = src.height.min(self.height.saturating_sub(y));
        for row in 0..h {
            let dst_off = (y + row) * self.width + x;
            self.data[dst_off..dst_off + w].copy_from_slice(&src.row(row)[..w]);
        }
    }

    /// Applies `f` to every pixel, producing a new image of type `U`.
    pub fn map<U: Copy>(&self, mut f: impl FnMut(T) -> U) -> Image<U> {
        Image {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Splits the image into disjoint horizontal stripe views for parallel
    /// processing. Each entry is `(roi, rows)` where `rows` are the mutable
    /// rows of that stripe.
    pub fn stripes_mut(&mut self, n: usize) -> Vec<(Roi, &mut [T])> {
        let rois = self.full_roi().stripes(n);
        let mut out = Vec::with_capacity(rois.len());
        let mut rest: &mut [T] = &mut self.data;
        let width = self.width;
        for roi in rois {
            let (head, tail) = rest.split_at_mut(roi.height * width);
            out.push((roi, head));
            rest = tail;
        }
        out
    }
}

impl ImageU16 {
    /// Mean pixel value as `f64` (used by tests and the noise model).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Minimum and maximum pixel values; `(0, 0)` for an empty image.
    pub fn min_max(&self) -> (Pixel, Pixel) {
        let mut lo = Pixel::MAX;
        let mut hi = Pixel::MIN;
        if self.data.is_empty() {
            return (0, 0);
        }
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Converts to `f32` for the filter stages.
    pub fn to_f32(&self) -> ImageF32 {
        self.map(|v| v as f32)
    }
}

impl ImageF32 {
    /// Converts to `u16` with clamping to the pixel range.
    pub fn to_u16(&self) -> ImageU16 {
        self.map(|v| v.clamp(0.0, Pixel::MAX as f32) as Pixel)
    }

    /// Maximum value; `0.0` for an empty image.
    pub fn max_value(&self) -> f32 {
        self.data.iter().copied().fold(0.0_f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roi_area_and_edges() {
        let r = Roi::new(10, 20, 30, 40);
        assert_eq!(r.area(), 1200);
        assert_eq!(r.right(), 40);
        assert_eq!(r.bottom(), 60);
        assert!(r.contains(10, 20));
        assert!(r.contains(39, 59));
        assert!(!r.contains(40, 59));
        assert!(!r.contains(9, 20));
    }

    #[test]
    fn roi_clamp_inside_and_outside() {
        let r = Roi::new(100, 100, 50, 50).clamp_to(120, 200);
        assert_eq!(r, Roi::new(100, 100, 20, 50));
        let r = Roi::new(300, 0, 10, 10).clamp_to(120, 200);
        assert!(r.is_empty());
    }

    #[test]
    fn roi_inflate_clamps_at_borders() {
        let r = Roi::new(2, 3, 10, 10).inflate(5, 100, 100);
        assert_eq!(r, Roi::new(0, 0, 17, 18));
        let r = Roi::new(90, 90, 10, 10).inflate(5, 100, 100);
        assert_eq!(r, Roi::new(85, 85, 15, 15));
    }

    #[test]
    fn roi_intersect_and_union() {
        let a = Roi::new(0, 0, 10, 10);
        let b = Roi::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Roi::new(5, 5, 5, 5));
        assert_eq!(a.union(&b), Roi::new(0, 0, 15, 15));
        let c = Roi::new(20, 20, 5, 5);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn roi_union_with_empty_is_identity() {
        let a = Roi::new(3, 4, 5, 6);
        let empty = Roi::new(0, 0, 0, 0);
        assert_eq!(a.union(&empty), a);
        assert_eq!(empty.union(&a), a);
    }

    #[test]
    fn stripes_tile_roi_exactly() {
        let r = Roi::new(0, 7, 64, 33);
        let stripes = r.stripes(4);
        assert_eq!(stripes.len(), 4);
        let total: usize = stripes.iter().map(|s| s.height).sum();
        assert_eq!(total, 33);
        // contiguous
        let mut y = r.y;
        for s in &stripes {
            assert_eq!(s.y, y);
            assert_eq!(s.width, r.width);
            y += s.height;
        }
        assert_eq!(y, r.bottom());
    }

    #[test]
    fn stripes_more_than_rows() {
        let r = Roi::new(0, 0, 8, 3);
        let stripes = r.stripes(8);
        assert_eq!(stripes.len(), 3);
        assert!(stripes.iter().all(|s| s.height == 1));
    }

    #[test]
    fn image_from_fn_and_get() {
        let img = Image::from_fn(4, 3, |x, y| (10 * y + x) as u16);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(3, 2), 23);
        assert_eq!(img.row(1), &[10, 11, 12, 13]);
    }

    #[test]
    fn image_get_clamped_replicates_border() {
        let img = Image::from_fn(3, 3, |x, y| (y * 3 + x) as u16);
        assert_eq!(img.get_clamped(-5, -5), 0);
        assert_eq!(img.get_clamped(10, 10), 8);
        assert_eq!(img.get_clamped(-1, 1), 3);
    }

    #[test]
    fn crop_extracts_roi() {
        let img = Image::from_fn(8, 8, |x, y| (y * 8 + x) as u16);
        let c = img.crop(Roi::new(2, 3, 3, 2));
        assert_eq!(c.dims(), (3, 2));
        assert_eq!(c.get(0, 0), 26);
        assert_eq!(c.get(2, 1), 36);
    }

    #[test]
    fn paste_clips_at_border() {
        let mut dst: ImageU16 = Image::new(4, 4);
        let src = Image::filled(3, 3, 7u16);
        dst.paste(&src, 2, 2);
        assert_eq!(dst.get(2, 2), 7);
        assert_eq!(dst.get(3, 3), 7);
        assert_eq!(dst.get(1, 1), 0);
    }

    #[test]
    fn byte_size_accounts_element_width() {
        let a: ImageU16 = Image::new(16, 16);
        let b: ImageF32 = Image::new(16, 16);
        assert_eq!(a.byte_size(), 16 * 16 * 2);
        assert_eq!(b.byte_size(), 16 * 16 * 4);
    }

    #[test]
    fn stripes_mut_are_disjoint_and_complete() {
        let mut img: ImageU16 = Image::new(4, 10);
        let stripes = img.stripes_mut(3);
        assert_eq!(stripes.len(), 3);
        for (i, (_, rows)) in stripes.into_iter().enumerate() {
            rows.fill(i as u16 + 1);
        }
        // rows 0..4 -> 1, 4..7 -> 2, 7..10 -> 3
        assert_eq!(img.get(0, 0), 1);
        assert_eq!(img.get(0, 3), 1);
        assert_eq!(img.get(0, 4), 2);
        assert_eq!(img.get(0, 6), 2);
        assert_eq!(img.get(0, 7), 3);
        assert_eq!(img.get(0, 9), 3);
    }

    #[test]
    fn min_max_and_mean() {
        let img = Image::from_vec(2, 2, vec![1u16, 5, 3, 7]);
        assert_eq!(img.min_max(), (1, 7));
        assert!((img.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn f32_round_trip_clamps() {
        let img = Image::from_vec(2, 1, vec![-5.0f32, 70000.0]);
        let u = img.to_u16();
        assert_eq!(u.get(0, 0), 0);
        assert_eq!(u.get(1, 0), u16::MAX);
    }
}
