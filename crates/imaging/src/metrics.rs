//! Image-quality metrics.
//!
//! Used to verify the enhancement substrate quantitatively: temporal
//! integration of registered frames must raise the stent's
//! contrast-to-noise ratio roughly with `sqrt(N)` — the clinical point of
//! the paper's application ("the enhanced images enable an improved
//! control of the good expansion of the stents", Section 3).

use crate::image::{ImageU16, Roi};

/// Mean intensity of a region.
pub fn region_mean(img: &ImageU16, roi: Roi) -> f64 {
    let roi = roi.clamp_to(img.width(), img.height());
    if roi.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for y in roi.y..roi.bottom() {
        for &v in &img.row(y)[roi.x..roi.right()] {
            sum += v as f64;
        }
    }
    sum / roi.area() as f64
}

/// Standard deviation of a region.
pub fn region_std(img: &ImageU16, roi: Roi) -> f64 {
    let roi = roi.clamp_to(img.width(), img.height());
    if roi.area() < 2 {
        return 0.0;
    }
    let mean = region_mean(img, roi);
    let mut sum2 = 0.0;
    for y in roi.y..roi.bottom() {
        for &v in &img.row(y)[roi.x..roi.right()] {
            let d = v as f64 - mean;
            sum2 += d * d;
        }
    }
    (sum2 / roi.area() as f64).sqrt()
}

/// Contrast-to-noise ratio between a feature region and a background
/// region: `|mean_f - mean_b| / std_b`.
pub fn cnr(img: &ImageU16, feature: Roi, background: Roi) -> f64 {
    let sb = region_std(img, background);
    if sb < 1e-12 {
        return f64::INFINITY;
    }
    (region_mean(img, feature) - region_mean(img, background)).abs() / sb
}

/// Peak signal-to-noise ratio between two equal-sized images, dB, with the
/// given peak value (e.g. 4095 for 12-bit detectors).
pub fn psnr(a: &ImageU16, b: &ImageU16, peak: f64) -> f64 {
    assert_eq!(a.dims(), b.dims(), "images must have equal dimensions");
    let n = (a.width() * a.height()) as f64;
    if n == 0.0 {
        return f64::INFINITY;
    }
    let mse: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / n;
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (peak * peak / mse).log10()
    }
}

/// Mean absolute difference between two equal-sized images.
pub fn mad(a: &ImageU16, b: &ImageU16) -> f64 {
    assert_eq!(a.dims(), b.dims(), "images must have equal dimensions");
    let n = (a.width() * a.height()) as f64;
    if n == 0.0 {
        return 0.0;
    }
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .sum::<f64>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn region_stats_basics() {
        let img = Image::from_vec(2, 2, vec![10u16, 20, 30, 40]);
        let roi = Roi::full(2, 2);
        assert!((region_mean(&img, roi) - 25.0).abs() < 1e-12);
        assert!((region_std(&img, roi) - 125.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn cnr_rises_with_contrast() {
        let mk = |depth: u16| {
            Image::from_fn(32, 32, move |x, y| {
                if (8..12).contains(&x) && (8..12).contains(&y) {
                    1000 - depth
                } else {
                    1000 + ((x * 7 + y * 13) % 11) as u16
                }
            })
        };
        let feature = Roi::new(8, 8, 4, 4);
        let bg = Roi::new(20, 20, 10, 10);
        let low = cnr(&mk(50), feature, bg);
        let high = cnr(&mk(500), feature, bg);
        assert!(high > 5.0 * low, "low {low} high {high}");
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let img = Image::from_fn(8, 8, |x, y| (x + y) as u16);
        assert!(psnr(&img, &img, 4095.0).is_infinite());
    }

    #[test]
    fn psnr_drops_with_noise() {
        use rand::{Rng, SeedableRng};
        let clean = Image::filled(32, 32, 2000u16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mk_noisy = |std: f64, rng: &mut rand::rngs::StdRng| {
            Image::from_fn(32, 32, |_, _| (2000.0 + rng.gen_range(-std..std)) as u16)
        };
        let slightly = mk_noisy(20.0, &mut rng);
        let very = mk_noisy(200.0, &mut rng);
        let p1 = psnr(&clean, &slightly, 4095.0);
        let p2 = psnr(&clean, &very, 4095.0);
        assert!(p1 > p2 + 10.0, "p1 {p1} p2 {p2}");
    }

    #[test]
    fn mad_is_mean_abs_difference() {
        let a = Image::from_vec(2, 1, vec![10u16, 20]);
        let b = Image::from_vec(2, 1, vec![13u16, 16]);
        assert!((mad(&a, &b) - 3.5).abs() < 1e-12);
    }

    /// The core claim of the ENH substrate: integrating N registered noisy
    /// frames raises the marker CNR roughly like sqrt(N).
    #[test]
    fn temporal_integration_raises_cnr_like_sqrt_n() {
        use crate::enhance::{EnhConfig, EnhState};
        use crate::registration::RigidTransform;
        use rand::{Rng, SeedableRng};

        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let render = |rng: &mut rand::rngs::StdRng| {
            Image::from_fn(48, 48, |x, y| {
                let dx = x as f64 - 24.0;
                let dy = y as f64 - 24.0;
                let signal = 2000.0 - 300.0 * (-(dx * dx + dy * dy) / 8.0).exp();
                (signal + rng.gen_range(-120.0..120.0)).max(0.0) as u16
            })
        };
        let feature = Roi::new(22, 22, 4, 4);
        let bg = Roi::new(2, 2, 14, 14);

        let single = render(&mut rng);
        let cnr1 = cnr(&single, feature, bg);

        let cfg = EnhConfig {
            alpha: 0.01,
            gain: 1.0,
        }; // ~true running mean
        let mut state = EnhState::new(48, 48);
        let mut out = single.clone();
        for _ in 0..16 {
            let frame = render(&mut rng);
            out = crate::enhance::enh_integrate(
                &frame,
                &RigidTransform::identity(),
                frame.full_roi(),
                &cfg,
                &mut state,
            );
        }
        let cnr16 = cnr(&out, feature, bg);
        // sqrt(16) = 4; accept anything clearly in that regime
        assert!(
            cnr16 > 2.5 * cnr1,
            "integration CNR gain too small: {cnr1:.2} -> {cnr16:.2}"
        );
    }
}
