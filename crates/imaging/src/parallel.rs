//! Data-parallel (striped) task execution.
//!
//! The RDG tasks have a streaming nature and can be data-partitioned
//! (Section 6): the frame is split into horizontal stripes and each stripe
//! is filtered independently (the bounded filter support makes stripes with
//! halo exact). Feature-level tasks (CPLS SEL, GW EXT) are partitioned
//! functionally instead, because they operate on extracted features rather
//! than image data.

use crate::image::{ImageF32, ImageU16, Roi};
use crate::ridge::{assemble_stripes, rdg_stripe, RdgConfig, RdgOutput};

/// Runs `work` once per stripe of `roi` on scoped worker threads and
/// collects the results in stripe order.
///
/// With `stripes == 1` the work runs inline on the calling thread, so the
/// serial and parallel paths share one code path.
pub fn for_each_stripe<R: Send>(
    roi: Roi,
    stripes: usize,
    work: impl Fn(Roi) -> R + Sync,
) -> Vec<R> {
    assert!(stripes > 0, "stripe count must be positive");
    let parts = roi.stripes(stripes);
    if parts.len() <= 1 {
        return parts.into_iter().map(&work).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(parts.len());
    results.resize_with(parts.len(), || None);
    std::thread::scope(|scope| {
        for (slot, part) in results.iter_mut().zip(parts.iter()) {
            let work = &work;
            let part = *part;
            scope.spawn(move || {
                *slot = Some(work(part));
            });
        }
    });
    results.into_iter().map(|r| r.expect("stripe worker completed")).collect()
}

/// Data-parallel ridge detection: `stripes`-way striped RDG over `roi`.
///
/// Equivalent to [`crate::ridge::rdg_roi`] up to the per-stripe threshold
/// statistics; the ridge-response map is bit-identical to the full-frame
/// computation (verified by tests).
pub fn rdg_parallel(src: &ImageU16, roi: Roi, cfg: &RdgConfig, stripes: usize) -> RdgOutput {
    let roi = roi.clamp_to(src.width(), src.height());
    let parts = for_each_stripe(roi, stripes, |stripe| rdg_stripe(src, stripe, cfg));
    // A global threshold hint from the assembled response keeps the pixel
    // count comparable with the serial path.
    let threshold_hint = estimate_threshold(&parts, cfg.threshold_factor);
    assemble_stripes(src, parts, threshold_hint)
}

fn estimate_threshold(parts: &[(Roi, ImageU16, ImageF32)], factor: f32) -> f32 {
    let mut sum = 0.0f64;
    let mut sum2 = 0.0f64;
    let mut n = 0usize;
    for (_, _, r) in parts {
        for y in 0..r.height() {
            for &v in r.row(y) {
                sum += v as f64;
                sum2 += (v as f64) * (v as f64);
                n += 1;
            }
        }
    }
    if n == 0 {
        return 0.0;
    }
    let mean = sum / n as f64;
    let std = ((sum2 / n as f64 - mean * mean).max(0.0)).sqrt();
    (mean + factor as f64 * std) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn for_each_stripe_covers_roi_in_order() {
        let roi = Roi::new(0, 0, 8, 20);
        let results = for_each_stripe(roi, 4, |s| s);
        assert_eq!(results.len(), 4);
        let mut y = 0;
        for s in &results {
            assert_eq!(s.y, y);
            y += s.height;
        }
        assert_eq!(y, 20);
    }

    #[test]
    fn single_stripe_runs_inline() {
        let roi = Roi::new(0, 0, 8, 8);
        let results = for_each_stripe(roi, 1, |s| s.area());
        assert_eq!(results, vec![64]);
    }

    #[test]
    fn stripe_results_can_be_heavy() {
        // results larger than Copy types work (ownership transfer)
        let roi = Roi::new(0, 0, 4, 16);
        let results = for_each_stripe(roi, 4, |s| vec![s.y; s.height]);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0], vec![0; 4]);
        assert_eq!(results[3], vec![12; 4]);
    }

    #[test]
    fn parallel_rdg_response_matches_serial() {
        let src = Image::from_fn(96, 96, |x, y| {
            let mut v = 2000.0f32;
            let d = (x as f32 - y as f32).abs() / 1.5;
            v -= 900.0 * (-d * d / 2.0).exp();
            v as u16
        });
        let cfg = RdgConfig::default();
        let mut bufs = crate::ridge::RdgBuffers::new(96, 96);
        let serial = crate::ridge::rdg_full(&src, &cfg, &mut bufs);
        for stripes in [2usize, 3, 4] {
            let par = rdg_parallel(&src, src.full_roi(), &cfg, stripes);
            for y in 0..96 {
                for x in 0..96 {
                    let a = serial.ridgeness.get(x, y);
                    let b = par.ridgeness.get(x, y);
                    assert!(
                        (a - b).abs() <= 1e-3 * a.abs().max(1.0),
                        "{stripes} stripes: mismatch at ({x},{y}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_rdg_pixel_count_close_to_serial() {
        let src = Image::from_fn(96, 96, |x, y| {
            let mut v = 2000.0f32;
            for k in 0..3 {
                let d = (x as f32 - y as f32 + (k * 20) as f32).abs() / 1.5;
                v -= 700.0 * (-d * d / 2.0).exp();
            }
            v as u16
        });
        let cfg = RdgConfig::default();
        let serial = crate::ridge::rdg_full(&src, &cfg, &mut crate::ridge::RdgBuffers::new(96, 96));
        let par = rdg_parallel(&src, src.full_roi(), &cfg, 3);
        // serial counts hysteresis-expanded (weak-threshold) pixels while
        // the assembled count uses the strong threshold only, so allow a
        // generous band
        let lo = serial.ridge_pixels / 6;
        let hi = serial.ridge_pixels * 6 + 16;
        assert!(
            (lo..=hi).contains(&par.ridge_pixels),
            "serial {} parallel {}",
            serial.ridge_pixels,
            par.ridge_pixels
        );
    }
}
