//! Data-parallel (striped) task execution on a persistent worker pool.
//!
//! The RDG tasks have a streaming nature and can be data-partitioned
//! (Section 6): the frame is split into horizontal stripes and each stripe
//! is filtered independently (the bounded filter support makes stripes with
//! halo exact). Feature-level tasks (CPLS SEL, GW EXT) are partitioned
//! functionally instead, because they operate on extracted features rather
//! than image data.
//!
//! Earlier revisions spawned fresh `std::thread::scope` workers for every
//! stripe of every frame; at 30 Hz that is hundreds of thread spawns per
//! second on the hottest path the paper models. [`StripePool`] keeps a set
//! of long-lived workers fed over crossbeam channels, so a whole sequence
//! run creates threads exactly once and per-frame dispatch is two channel
//! hops per stripe.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use crate::image::{ImageF32, ImageU16, Roi};
use crate::ridge::{assemble_stripes, rdg_roi, rdg_stripe, RdgBuffers, RdgConfig, RdgOutput};

/// A lifetime-erased unit of work executed on a pool worker.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Why a pooled batch did not complete cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// One or more jobs panicked; the collected panic messages. The
    /// workers survive and the pool stays usable.
    JobPanicked(Vec<String>),
    /// A job could not be submitted, or its completion signal never
    /// arrived (worker channel torn down mid-batch).
    Disconnected,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::JobPanicked(msgs) => {
                write!(f, "stripe worker panicked: {}", msgs.join("; "))
            }
            PoolError::Disconnected => write!(f, "stripe pool channel disconnected"),
        }
    }
}

impl std::error::Error for PoolError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

struct Item {
    job: Task,
    done: Sender<bool>,
}

/// A persistent pool of stripe workers.
///
/// Workers are spawned once (per pool) and live until the pool is dropped;
/// jobs are round-robined over per-worker channels. [`StripePool::run`]
/// accepts non-`'static` closures: it blocks until every submitted job has
/// signalled completion, so borrows held by the jobs cannot outlive the
/// call (the same guarantee `std::thread::scope` gives, without the
/// per-call thread spawn/join).
pub struct StripePool {
    workers: Vec<Sender<Item>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    panics: std::sync::Arc<Mutex<Vec<String>>>,
}

impl StripePool {
    /// Spawns a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let panics = std::sync::Arc::new(Mutex::new(Vec::new()));
        let mut workers = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = unbounded::<Item>();
            let panics = std::sync::Arc::clone(&panics);
            let handle = std::thread::Builder::new()
                .name(format!("stripe-worker-{i}"))
                .spawn(move || {
                    while let Ok(Item { job, done }) = rx.recv() {
                        let result = catch_unwind(AssertUnwindSafe(job));
                        let panicked = result.is_err();
                        if let Err(payload) = result {
                            panics.lock().push(panic_message(payload.as_ref()));
                        }
                        // The dispatcher may have given up (itself panicked);
                        // a dead done-channel is not an error for the worker.
                        let _ = done.send(panicked);
                    }
                })
                .expect("spawn stripe worker");
            workers.push(tx);
            handles.push(handle);
        }
        Self {
            workers,
            handles,
            panics,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Number of worker threads still running. A healthy pool keeps this
    /// equal to [`StripePool::threads`] for its whole life — job panics
    /// are caught inside the worker loop and must never kill a thread
    /// (asserted by the fault-recovery tests).
    pub fn live_threads(&self) -> usize {
        self.handles.iter().filter(|h| !h.is_finished()).count()
    }

    /// The process-wide shared pool, sized to the available hardware
    /// parallelism and spawned on first use.
    pub fn global() -> &'static StripePool {
        static GLOBAL: OnceLock<StripePool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            StripePool::new(threads)
        })
    }

    /// Runs `jobs[i]` on worker `i % threads`, blocking until all complete.
    ///
    /// If any job panics, the panic message is re-raised here after the
    /// whole batch has drained (workers survive and stay reusable).
    pub fn run<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        self.run_on(jobs.into_iter().enumerate().collect());
    }

    /// Like [`StripePool::run`], with an explicit worker index per job
    /// (wrapped modulo the pool size). Jobs given the same index always
    /// run on the same worker thread, which models per-core assignment.
    pub fn run_on<'scope>(&self, jobs: Vec<(usize, Box<dyn FnOnce() + Send + 'scope>)>) {
        if let Err(e) = self.try_run_on(jobs) {
            panic!("{e}");
        }
    }

    /// Non-panicking [`StripePool::run`]: a job panic (or a torn-down
    /// worker channel) is returned as a [`PoolError`] after the whole
    /// batch has drained, so the caller — not the pool — decides whether
    /// the failure unwinds. The recovery runtime's retry/fallback
    /// policies are built on this.
    pub fn try_run<'scope>(
        &self,
        jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>,
    ) -> Result<(), PoolError> {
        self.try_run_on(jobs.into_iter().enumerate().collect())
    }

    /// Non-panicking [`StripePool::run_on`] (see [`StripePool::try_run`]).
    pub fn try_run_on<'scope>(
        &self,
        jobs: Vec<(usize, Box<dyn FnOnce() + Send + 'scope>)>,
    ) -> Result<(), PoolError> {
        if jobs.is_empty() {
            return Ok(());
        }
        let (done_tx, done_rx) = unbounded::<bool>();
        let mut submitted = 0usize;
        let mut disconnected = false;
        for (i, job) in jobs {
            // SAFETY: the loop below blocks until every *submitted* job has
            // signalled completion (the done sender is dropped only after
            // the job ran or was dropped unexecuted by a dying worker), so
            // all 'scope borrows captured by a job strictly outlive its
            // execution. Jobs that fail to submit are dropped unexecuted
            // right here, releasing their borrows immediately.
            let job: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(job) };
            if self.workers[i % self.workers.len()]
                .send(Item {
                    job,
                    done: done_tx.clone(),
                })
                .is_err()
            {
                disconnected = true;
                break;
            }
            submitted += 1;
        }
        drop(done_tx);
        let mut panicked = false;
        for _ in 0..submitted {
            match done_rx.recv() {
                Ok(flag) => panicked |= flag,
                // A worker died without running the job (only possible if
                // its thread was torn down).
                Err(_) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if panicked {
            let msgs = std::mem::take(&mut *self.panics.lock());
            return Err(PoolError::JobPanicked(msgs));
        }
        if disconnected {
            return Err(PoolError::Disconnected);
        }
        Ok(())
    }
}

impl Drop for StripePool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops.
        self.workers.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs `work` once per stripe of `roi` on the shared worker pool and
/// collects the results in stripe order.
///
/// With `stripes == 1` the work runs inline on the calling thread, so the
/// serial and parallel paths share one code path.
pub fn for_each_stripe<R: Send>(
    roi: Roi,
    stripes: usize,
    work: impl Fn(Roi) -> R + Sync,
) -> Vec<R> {
    for_each_stripe_on(StripePool::global(), roi, stripes, work)
}

/// [`for_each_stripe`] on an explicit pool.
pub fn for_each_stripe_on<R: Send>(
    pool: &StripePool,
    roi: Roi,
    stripes: usize,
    work: impl Fn(Roi) -> R + Sync,
) -> Vec<R> {
    assert!(stripes > 0, "stripe count must be positive");
    let parts = roi.stripes(stripes);
    if parts.len() <= 1 {
        return parts.into_iter().map(&work).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(parts.len());
    results.resize_with(parts.len(), || None);
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = results
        .iter_mut()
        .zip(parts.iter())
        .map(|(slot, &part)| {
            let work = &work;
            Box::new(move || {
                *slot = Some(work(part));
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.run(jobs);
    results
        .into_iter()
        .map(|r| r.expect("stripe worker completed"))
        .collect()
}

/// Per-stripe reusable working set of the pooled parallel RDG path.
struct StripeScratch {
    /// The stripe's halo-extended sub-frame (copied from the source frame).
    sub: ImageU16,
    /// Full RDG working buffers sized to the sub-frame.
    bufs: RdgBuffers,
}

/// Frame-persistent buffers of [`rdg_parallel_pooled`]: per-stripe scratch
/// plus recycled full-frame output images. After the first frame of a
/// steady-state sequence no heap allocation happens on this path.
#[derive(Default)]
pub struct ParallelRdgBuffers {
    scratches: Vec<Option<StripeScratch>>,
    filtered_pool: Vec<ImageU16>,
    ridgeness_pool: Vec<ImageF32>,
    stripe_ms: Vec<f64>,
    allocations: usize,
}

impl ParallelRdgBuffers {
    pub fn new() -> Self {
        Self::default()
    }

    /// Wall-clock milliseconds each stripe of the most recent
    /// [`rdg_parallel_pooled`] call spent inside its worker, in stripe
    /// order. Feeds the executor's virtual schedule.
    pub fn stripe_times_ms(&self) -> &[f64] {
        &self.stripe_ms
    }

    /// Number of image allocations this buffer set has performed; constant
    /// across frames once warmed up (asserted by tests).
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Total bytes held (scratch + pooled outputs) — the data-parallel
    /// side of the Table 1 "intermediate" storage accounting.
    pub fn byte_size(&self) -> usize {
        let scratch: usize = self
            .scratches
            .iter()
            .flatten()
            .map(|s| s.sub.byte_size() + s.bufs.byte_size())
            .sum();
        let pooled: usize = self
            .filtered_pool
            .iter()
            .map(|i| i.byte_size())
            .sum::<usize>()
            + self
                .ridgeness_pool
                .iter()
                .map(|i| i.byte_size())
                .sum::<usize>();
        scratch + pooled
    }

    /// Returns a finished output's images to the pool for reuse.
    pub fn recycle(&mut self, out: RdgOutput) {
        if self.filtered_pool.len() < 2 {
            self.filtered_pool.push(out.filtered);
        }
        if self.ridgeness_pool.len() < 2 {
            self.ridgeness_pool.push(out.ridgeness);
        }
    }

    fn take_filtered(&mut self, src: &ImageU16) -> ImageU16 {
        match self.filtered_pool.pop() {
            Some(mut img) if img.dims() == src.dims() => {
                img.copy_from(src);
                img
            }
            _ => {
                self.allocations += 1;
                src.clone()
            }
        }
    }

    fn take_ridgeness(&mut self, width: usize, height: usize) -> ImageF32 {
        match self.ridgeness_pool.pop() {
            Some(mut img) if img.dims() == (width, height) => {
                img.fill(0.0);
                img
            }
            _ => {
                self.allocations += 1;
                ImageF32::new(width, height)
            }
        }
    }

    /// Ensures stripe `i`'s scratch matches the halo-extended dims,
    /// (re)allocating only when the geometry changes.
    fn ensure_scratch(&mut self, i: usize, ext: Roi) -> &mut StripeScratch {
        if self.scratches.len() <= i {
            self.scratches.resize_with(i + 1, || None);
        }
        let slot = &mut self.scratches[i];
        let fits = matches!(slot, Some(s) if s.sub.dims() == (ext.width, ext.height));
        if !fits {
            self.allocations += 1;
            *slot = Some(StripeScratch {
                sub: ImageU16::new(ext.width, ext.height),
                bufs: RdgBuffers::new(ext.width, ext.height),
            });
        }
        slot.as_mut().expect("scratch just ensured")
    }
}

/// Splits `data` (a `width`-pixel-per-row image buffer) into one disjoint
/// mutable row band per stripe, so workers can write their results straight
/// into the shared full-frame output without crops or pastes.
fn row_bands<'a, T>(data: &'a mut [T], width: usize, parts: &[Roi]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(parts.len());
    let mut consumed = 0usize;
    let mut rest = data;
    for p in parts {
        let start = p.y * width;
        let (_, tail) = rest.split_at_mut(start - consumed);
        let (band, tail) = tail.split_at_mut(p.height * width);
        out.push(band);
        rest = tail;
        consumed = (p.y + p.height) * width;
    }
    out
}

/// Data-parallel ridge detection: `stripes`-way striped RDG over `roi`.
///
/// The ridge-response map *and* the ridge-suppressed filtered image are
/// bit-identical to [`crate::ridge::rdg_roi`] for every stripe count
/// (verified by tests): suppression is re-synthesized from the assembled
/// response with the global serial thresholds, so downstream pixel results
/// never depend on the partitioning policy.
///
/// Convenience wrapper over [`rdg_parallel_pooled`] with one-shot buffers;
/// sequence runners should hold a [`ParallelRdgBuffers`] instead and reuse
/// it across frames.
pub fn rdg_parallel(src: &ImageU16, roi: Roi, cfg: &RdgConfig, stripes: usize) -> RdgOutput {
    let mut bufs = ParallelRdgBuffers::new();
    rdg_parallel_pooled(StripePool::global(), src, roi, cfg, stripes, &mut bufs)
}

/// Data-parallel ridge detection on an explicit pool with reusable buffers.
///
/// Stripe workers write their filtered/ridgeness results directly into
/// disjoint row bands of pooled full-frame outputs — no per-frame crop,
/// paste or image allocation once `bufs` is warm. Per-stripe wall-clock
/// times are recorded in `bufs` (see
/// [`ParallelRdgBuffers::stripe_times_ms`]).
pub fn rdg_parallel_pooled(
    pool: &StripePool,
    src: &ImageU16,
    roi: Roi,
    cfg: &RdgConfig,
    stripes: usize,
    bufs: &mut ParallelRdgBuffers,
) -> RdgOutput {
    match rdg_parallel_pooled_inner(pool, src, roi, cfg, stripes, bufs, 0) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Deterministic faults to inject into one
/// [`rdg_parallel_pooled_faulted`] call (testing only; the nominal path
/// never constructs one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StripeFault {
    /// Panic this many stripe jobs at job start. The panic fires before
    /// the job touches its scratch or output band, so a failed attempt
    /// leaves no partial writes and a clean retry is bit-identical to an
    /// unfaulted run.
    pub panic_jobs: usize,
    /// Fail the dispatch with a transient [`PoolError::Disconnected`]
    /// before any job is submitted.
    pub channel_error: bool,
}

impl StripeFault {
    /// Whether this fault spec injects anything.
    pub fn is_armed(&self) -> bool {
        self.panic_jobs > 0 || self.channel_error
    }
}

/// [`rdg_parallel_pooled`] with fault injection: failures (injected or
/// real) are returned as [`PoolError`] instead of unwinding, and a failed
/// attempt recycles its output buffers so a retry allocates nothing.
pub fn rdg_parallel_pooled_faulted(
    pool: &StripePool,
    src: &ImageU16,
    roi: Roi,
    cfg: &RdgConfig,
    stripes: usize,
    bufs: &mut ParallelRdgBuffers,
    fault: StripeFault,
) -> Result<RdgOutput, PoolError> {
    if fault.channel_error {
        return Err(PoolError::Disconnected);
    }
    rdg_parallel_pooled_inner(pool, src, roi, cfg, stripes, bufs, fault.panic_jobs)
}

fn rdg_parallel_pooled_inner(
    pool: &StripePool,
    src: &ImageU16,
    roi: Roi,
    cfg: &RdgConfig,
    stripes: usize,
    bufs: &mut ParallelRdgBuffers,
    panic_jobs: usize,
) -> Result<RdgOutput, PoolError> {
    assert!(stripes > 0, "stripe count must be positive");
    let roi = roi.clamp_to(src.width(), src.height());
    let width = src.width();
    let parts = roi.stripes(stripes);

    let halo = rdg_halo(cfg);
    let mut filtered = bufs.take_filtered(src);
    let mut ridgeness = bufs.take_ridgeness(src.width(), src.height());

    {
        let exts: Vec<Roi> = parts
            .iter()
            .map(|p| p.inflate(halo, src.width(), src.height()))
            .collect();
        bufs.stripe_ms.clear();
        bufs.stripe_ms.resize(parts.len(), 0.0);
        for (i, &ext) in exts.iter().enumerate() {
            bufs.ensure_scratch(i, ext);
        }

        let filtered_bands = row_bands(filtered.as_mut_slice(), width, &parts);
        let ridgeness_bands = row_bands(ridgeness.as_mut_slice(), width, &parts);

        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(parts.len());
        for (i, ((((&stripe, &ext), fband), rband), (scratch, ms))) in parts
            .iter()
            .zip(exts.iter())
            .zip(filtered_bands)
            .zip(ridgeness_bands)
            .zip(
                bufs.scratches
                    .iter_mut()
                    .flatten()
                    .zip(bufs.stripe_ms.iter_mut()),
            )
            .enumerate()
        {
            if i < panic_jobs {
                // injected fault: dies at job start, before any write
                jobs.push(Box::new(move || {
                    panic!("injected stripe-worker fault (job {i})");
                }));
                continue;
            }
            jobs.push(Box::new(move || {
                let t0 = Instant::now();
                let StripeScratch { sub, bufs } = scratch;
                for (i, y) in (ext.y..ext.bottom()).enumerate() {
                    sub.row_mut(i)
                        .copy_from_slice(&src.row(y)[ext.x..ext.right()]);
                }
                let local = Roi::new(
                    stripe.x - ext.x,
                    stripe.y - ext.y,
                    stripe.width,
                    stripe.height,
                );
                let out = rdg_roi(sub, local, cfg, bufs);
                for row in 0..stripe.height {
                    let sy = local.y + row;
                    let dst = row * width + stripe.x;
                    fband[dst..dst + stripe.width]
                        .copy_from_slice(&out.filtered.row(sy)[local.x..local.right()]);
                    rband[dst..dst + stripe.width]
                        .copy_from_slice(&out.ridgeness.row(sy)[local.x..local.right()]);
                }
                bufs.recycle(out);
                *ms = t0.elapsed().as_secs_f64() * 1e3;
            }));
        }
        let dispatch = if jobs.len() <= 1 && panic_jobs == 0 {
            // Single stripe, nominal path: run inline, sharing the code
            // path (no catch_unwind, no channel hop).
            for job in jobs {
                job();
            }
            Ok(())
        } else if jobs.len() <= 1 {
            // Single inline job with an injected panic: catch it locally
            // so the fault cannot unwind into the session thread.
            let mut result = Ok(());
            for job in jobs {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                    result = Err(PoolError::JobPanicked(vec![panic_message(
                        payload.as_ref(),
                    )]));
                }
            }
            result
        } else {
            pool.try_run(jobs)
        };
        if let Err(e) = dispatch {
            // Failed attempts leave no partial state behind: the output
            // images go back to the buffer pool (a retry re-copies from
            // `src` and re-zeroes, so nothing from this attempt leaks).
            bufs.recycle(RdgOutput {
                filtered,
                ridgeness,
                ridge_pixels: 0,
                segments: 0,
            });
            return Err(e);
        }
    }

    // The stripe workers suppressed with *local* per-stripe thresholds;
    // re-synthesize the filtered output from the assembled response with
    // the *global* threshold, using the exact serial formulas over the
    // bit-identical assembled map. This makes the filtered image (and
    // therefore everything downstream of marker extraction) bit-identical
    // to the serial path no matter the stripe count.
    let (mean, std) = crate::ridge::response_stats(&ridgeness, roi);
    let weak_threshold = (mean + cfg.weak_factor * std).max(cfg.response_floor);
    let threshold = (mean + cfg.threshold_factor * std).max(weak_threshold);
    let mut ridge_pixels = 0usize;
    for y in roi.y..roi.bottom() {
        let src_row = src.row(y);
        let rid_row = ridgeness.row(y);
        let out_row = filtered.row_mut(y);
        for x in roi.x..roi.right() {
            let r = rid_row[x];
            if r > threshold {
                ridge_pixels += 1;
                let v = src_row[x] as f32 + cfg.suppression * r;
                out_row[x] = v.clamp(0.0, u16::MAX as f32) as u16;
            } else {
                out_row[x] = src_row[x];
            }
        }
    }

    Ok(RdgOutput {
        filtered,
        ridgeness,
        ridge_pixels,
        segments: 0,
    })
}

/// Halo width needed by the active scale set (3 sigma of the largest).
fn rdg_halo(cfg: &RdgConfig) -> usize {
    cfg.scales
        .iter()
        .chain(if cfg.fine_enabled {
            cfg.fine_scales.iter()
        } else {
            [].iter()
        })
        .map(|&s| (3.0 * s).ceil() as usize)
        .max()
        .unwrap_or(0)
}

/// Legacy assembling parallel RDG built on [`rdg_stripe`] crops; kept for
/// comparison benchmarks and as the reference for the pooled direct-write
/// path.
#[doc(hidden)]
pub fn rdg_parallel_assembling(
    src: &ImageU16,
    roi: Roi,
    cfg: &RdgConfig,
    stripes: usize,
) -> RdgOutput {
    let roi = roi.clamp_to(src.width(), src.height());
    let parts = for_each_stripe(roi, stripes, |stripe| rdg_stripe(src, stripe, cfg));
    let threshold_hint = estimate_threshold(&parts, cfg.threshold_factor);
    assemble_stripes(src, parts, threshold_hint)
}

fn estimate_threshold(parts: &[(Roi, ImageU16, ImageF32)], factor: f32) -> f32 {
    let mut sum = 0.0f64;
    let mut sum2 = 0.0f64;
    let mut n = 0usize;
    for (_, _, r) in parts {
        for y in 0..r.height() {
            for &v in r.row(y) {
                sum += v as f64;
                sum2 += (v as f64) * (v as f64);
                n += 1;
            }
        }
    }
    if n == 0 {
        return 0.0;
    }
    let mean = sum / n as f64;
    let std = ((sum2 / n as f64 - mean * mean).max(0.0)).sqrt();
    (mean + factor as f64 * std) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use crate::ridge::rdg_full;

    #[test]
    fn for_each_stripe_covers_roi_in_order() {
        let roi = Roi::new(0, 0, 8, 20);
        let results = for_each_stripe(roi, 4, |s| s);
        assert_eq!(results.len(), 4);
        let mut y = 0;
        for s in &results {
            assert_eq!(s.y, y);
            y += s.height;
        }
        assert_eq!(y, 20);
    }

    #[test]
    fn single_stripe_runs_inline() {
        let roi = Roi::new(0, 0, 8, 8);
        let results = for_each_stripe(roi, 1, |s| s.area());
        assert_eq!(results, vec![64]);
    }

    #[test]
    fn stripe_results_can_be_heavy() {
        // results larger than Copy types work (ownership transfer)
        let roi = Roi::new(0, 0, 4, 16);
        let results = for_each_stripe(roi, 4, |s| vec![s.y; s.height]);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0], vec![0; 4]);
        assert_eq!(results[3], vec![12; 4]);
    }

    #[test]
    fn pool_reuses_threads_across_batches() {
        let pool = StripePool::new(2);
        for round in 0..50 {
            let roi = Roi::new(0, 0, 4, 8);
            let r = for_each_stripe_on(&pool, roi, 4, |s| s.y + round);
            assert_eq!(r.len(), 4);
        }
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn pool_propagates_worker_panic_and_survives() {
        let pool = StripePool::new(2);
        let roi = Roi::new(0, 0, 4, 4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            for_each_stripe_on(&pool, roi, 4, |s| {
                if s.y == 2 {
                    panic!("boom in stripe {}", s.y);
                }
                s.y
            });
        }));
        assert!(result.is_err(), "panic must propagate to the dispatcher");
        // the pool stays usable after a job panic
        let ok = for_each_stripe_on(&pool, roi, 4, |s| s.y);
        assert_eq!(ok, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_run_reports_panics_without_unwinding() {
        let pool = StripePool::new(2);
        let mut results = [0usize; 4];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = results
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    if i == 1 {
                        panic!("fault in job {i}");
                    }
                    *slot = i + 10;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let err = pool.try_run(jobs).unwrap_err();
        match &err {
            PoolError::JobPanicked(msgs) => {
                assert_eq!(msgs.len(), 1);
                assert!(msgs[0].contains("fault in job 1"), "{msgs:?}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // the whole batch drained: every non-faulted job still ran
        assert_eq!(results, [10, 0, 12, 13]);
        // the pool remains fully usable with all threads alive
        assert_eq!(pool.live_threads(), 2);
        let ok: Vec<usize> = for_each_stripe_on(&pool, Roi::new(0, 0, 4, 4), 4, |s| s.y);
        assert_eq!(ok, vec![0, 1, 2, 3]);
    }

    #[test]
    fn job_panics_never_kill_worker_threads() {
        let pool = StripePool::new(3);
        assert_eq!(pool.live_threads(), 3);
        for round in 0..10 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
                .map(|i| {
                    Box::new(move || {
                        if (i + round) % 2 == 0 {
                            panic!("round {round} job {i}");
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            assert!(pool.try_run(jobs).is_err());
            assert_eq!(pool.live_threads(), 3, "round {round} leaked a thread");
        }
    }

    #[test]
    fn faulted_rdg_panic_then_clean_retry_is_bit_identical() {
        let src = wire_frame(96, 96);
        let cfg = RdgConfig::default();
        let pool = StripePool::new(4);
        let mut bufs = ParallelRdgBuffers::new();
        let reference = rdg_parallel_pooled(
            &pool,
            &src,
            src.full_roi(),
            &cfg,
            4,
            &mut ParallelRdgBuffers::new(),
        );

        // armed fault: the attempt fails cleanly
        let fault = StripeFault {
            panic_jobs: 1,
            channel_error: false,
        };
        let err =
            rdg_parallel_pooled_faulted(&pool, &src, src.full_roi(), &cfg, 4, &mut bufs, fault)
                .unwrap_err();
        assert!(matches!(err, PoolError::JobPanicked(_)), "{err:?}");
        assert_eq!(pool.live_threads(), 4);

        // retry without the fault: output identical to a never-faulted run
        let out = rdg_parallel_pooled_faulted(
            &pool,
            &src,
            src.full_roi(),
            &cfg,
            4,
            &mut bufs,
            StripeFault::default(),
        )
        .unwrap();
        assert_eq!(out.filtered, reference.filtered);
        assert_eq!(out.ridgeness, reference.ridgeness);
        bufs.recycle(out);

        // the failed attempt recycled its buffers: retry allocated nothing new
        let warm = bufs.allocations();
        let again = rdg_parallel_pooled_faulted(
            &pool,
            &src,
            src.full_roi(),
            &cfg,
            4,
            &mut bufs,
            StripeFault {
                panic_jobs: 2,
                channel_error: false,
            },
        );
        assert!(again.is_err());
        assert_eq!(bufs.allocations(), warm, "failed attempt allocated");
    }

    #[test]
    fn faulted_rdg_channel_error_is_transient() {
        let src = wire_frame(64, 64);
        let cfg = RdgConfig::default();
        let pool = StripePool::new(2);
        let mut bufs = ParallelRdgBuffers::new();
        let fault = StripeFault {
            panic_jobs: 0,
            channel_error: true,
        };
        assert_eq!(
            rdg_parallel_pooled_faulted(&pool, &src, src.full_roi(), &cfg, 2, &mut bufs, fault)
                .unwrap_err(),
            PoolError::Disconnected
        );
        // the next dispatch succeeds — the error was transient by design
        let out = rdg_parallel_pooled_faulted(
            &pool,
            &src,
            src.full_roi(),
            &cfg,
            2,
            &mut bufs,
            StripeFault::default(),
        )
        .unwrap();
        bufs.recycle(out);
    }

    #[test]
    fn faulted_rdg_single_stripe_inline_panic_is_caught() {
        // with one stripe the job runs inline on the calling thread; an
        // injected panic must still surface as an Err, not an unwind
        let src = wire_frame(64, 64);
        let cfg = RdgConfig::default();
        let pool = StripePool::new(2);
        let mut bufs = ParallelRdgBuffers::new();
        let fault = StripeFault {
            panic_jobs: 1,
            channel_error: false,
        };
        let err =
            rdg_parallel_pooled_faulted(&pool, &src, src.full_roi(), &cfg, 1, &mut bufs, fault)
                .unwrap_err();
        assert!(matches!(err, PoolError::JobPanicked(_)));
    }

    #[test]
    fn pool_runs_borrowed_state_jobs() {
        // run() accepts non-'static closures that borrow caller state
        let pool = StripePool::new(3);
        let data: Vec<u64> = (0..64).collect();
        let mut sums = [0u64; 4];
        let chunks: Vec<&[u64]> = data.chunks(16).collect();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = sums
            .iter_mut()
            .zip(chunks)
            .map(|(slot, chunk)| {
                Box::new(move || *slot = chunk.iter().sum()) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(sums.iter().sum::<u64>(), (0..64).sum());
    }

    fn wire_frame(w: usize, h: usize) -> ImageU16 {
        Image::from_fn(w, h, |x, y| {
            let mut v = 2000.0f32;
            let d = (x as f32 - y as f32).abs() / 1.5;
            v -= 900.0 * (-d * d / 2.0).exp();
            v as u16
        })
    }

    #[test]
    fn parallel_rdg_response_matches_serial() {
        let src = wire_frame(96, 96);
        let cfg = RdgConfig::default();
        let mut bufs = RdgBuffers::new(96, 96);
        let serial = rdg_full(&src, &cfg, &mut bufs);
        for stripes in [2usize, 3, 4] {
            let par = rdg_parallel(&src, src.full_roi(), &cfg, stripes);
            for y in 0..96 {
                for x in 0..96 {
                    let a = serial.ridgeness.get(x, y);
                    let b = par.ridgeness.get(x, y);
                    assert!(
                        (a - b).abs() <= 1e-3 * a.abs().max(1.0),
                        "{stripes} stripes: mismatch at ({x},{y}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_rdg_bit_identical_to_serial() {
        // The pooled stripe path must reproduce the serial ridge response
        // bit for bit for every stripe count: the halo gives each stripe
        // the exact same input neighbourhood the full-frame filter sees.
        let src = wire_frame(96, 96);
        let cfg = RdgConfig::default();
        let serial = rdg_full(&src, &cfg, &mut RdgBuffers::new(96, 96));
        let pool = StripePool::new(4);
        for stripes in [1usize, 2, 4, 7] {
            let mut bufs = ParallelRdgBuffers::new();
            let par = rdg_parallel_pooled(&pool, &src, src.full_roi(), &cfg, stripes, &mut bufs);
            for y in 0..96 {
                for x in 0..96 {
                    assert_eq!(
                        serial.ridgeness.get(x, y).to_bits(),
                        par.ridgeness.get(x, y).to_bits(),
                        "{stripes} stripes: ridgeness differs at ({x},{y}): {} vs {}",
                        serial.ridgeness.get(x, y),
                        par.ridgeness.get(x, y)
                    );
                    // the suppressed output too: the global-threshold
                    // re-synthesis makes the filtered image independent of
                    // the partitioning
                    assert_eq!(
                        serial.filtered.get(x, y),
                        par.filtered.get(x, y),
                        "{stripes} stripes: filtered differs at ({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_rdg_is_deterministic_across_frames() {
        // Reusing the same ParallelRdgBuffers for consecutive frames must
        // not leak state between frames: 3 runs on the same input produce
        // identical outputs, and the warm path performs no new allocations.
        let src = wire_frame(96, 96);
        let cfg = RdgConfig::default();
        let pool = StripePool::new(3);
        let mut bufs = ParallelRdgBuffers::new();
        // `first` is held for comparison (not recycled), so frame 2 must
        // allocate one more output pair; from frame 3 on the pool is warm
        // and the allocation count stays flat.
        let first = rdg_parallel_pooled(&pool, &src, src.full_roi(), &cfg, 3, &mut bufs);
        let mut warm_allocs = None;
        for frame in 1..4 {
            let out = rdg_parallel_pooled(&pool, &src, src.full_roi(), &cfg, 3, &mut bufs);
            assert_eq!(out.ridge_pixels, first.ridge_pixels, "frame {frame}");
            assert_eq!(
                out.filtered, first.filtered,
                "frame {frame}: filtered differs"
            );
            assert_eq!(
                out.ridgeness, first.ridgeness,
                "frame {frame}: ridgeness differs"
            );
            bufs.recycle(out);
            match warm_allocs {
                None => warm_allocs = Some(bufs.allocations()),
                Some(warm) => assert_eq!(
                    bufs.allocations(),
                    warm,
                    "steady-state frame {frame} must not allocate"
                ),
            }
        }
    }

    #[test]
    fn stripe_times_are_recorded() {
        let src = wire_frame(64, 64);
        let cfg = RdgConfig::default();
        let pool = StripePool::new(2);
        let mut bufs = ParallelRdgBuffers::new();
        let out = rdg_parallel_pooled(&pool, &src, src.full_roi(), &cfg, 4, &mut bufs);
        assert_eq!(bufs.stripe_times_ms().len(), 4);
        assert!(bufs.stripe_times_ms().iter().all(|&t| t >= 0.0));
        bufs.recycle(out);
    }

    #[test]
    fn parallel_rdg_pixel_count_close_to_serial() {
        let src = Image::from_fn(96, 96, |x, y| {
            let mut v = 2000.0f32;
            for k in 0..3 {
                let d = (x as f32 - y as f32 + (k * 20) as f32).abs() / 1.5;
                v -= 700.0 * (-d * d / 2.0).exp();
            }
            v as u16
        });
        let cfg = RdgConfig::default();
        let serial = rdg_full(&src, &cfg, &mut RdgBuffers::new(96, 96));
        let par = rdg_parallel(&src, src.full_roi(), &cfg, 3);
        // serial counts hysteresis-expanded (weak-threshold) pixels while
        // the assembled count uses the strong threshold only, so allow a
        // generous band
        let lo = serial.ridge_pixels / 6;
        let hi = serial.ridge_pixels * 6 + 16;
        assert!(
            (lo..=hi).contains(&par.ridge_pixels),
            "serial {} parallel {}",
            serial.ridge_pixels,
            par.ridge_pixels
        );
    }
}
