//! MKX EXT — marker extraction.
//!
//! Selects punctual dark zones contrasting on a brighter background as
//! candidate balloon markers (Section 3 of the paper). Runs on the
//! ridge-suppressed frame when RDG is active, or directly on the input
//! frame when the RDG switch is off — the two cases have different input
//! buffer requirements (Table 1).

use crate::hessian::{blob_response, hessian_at_scale, HessianImages, HessianScratch};
use crate::image::{ImageF32, ImageU16, Roi};
use crate::simd::{F32x8, SimdF32};

/// A candidate balloon marker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Marker {
    /// Sub-pixel x position.
    pub x: f64,
    /// Sub-pixel y position.
    pub y: f64,
    /// Blob-response strength (higher = darker, more punctual).
    pub strength: f32,
    /// Detection scale (sigma, pixels).
    pub scale: f32,
}

impl Marker {
    /// Euclidean distance to another marker.
    pub fn distance(&self, other: &Marker) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Configuration of the marker-extraction task.
#[derive(Debug, Clone)]
pub struct MkxConfig {
    /// Blob scales matching the expected marker radius.
    pub scales: Vec<f32>,
    /// Response threshold as a fraction of the maximum response.
    pub threshold_rel: f32,
    /// Minimum separation between reported candidates, pixels.
    pub min_separation: f64,
    /// Maximum number of candidates reported (strongest first).
    pub max_candidates: usize,
}

impl Default for MkxConfig {
    fn default() -> Self {
        Self {
            scales: vec![1.5, 2.5],
            threshold_rel: 0.25,
            min_separation: 6.0,
            max_candidates: 32,
        }
    }
}

/// Reusable working memory of the MKX task.
#[derive(Debug)]
pub struct MkxBuffers {
    src_f32: ImageF32,
    hessian: HessianImages,
    scratch: HessianScratch,
    acc: ImageF32,
    /// Per-pixel winning scale of the multi-scale max (pooled here so
    /// steady-state frames allocate nothing in `mkx_extract`).
    best_scale: Vec<f32>,
}

impl MkxBuffers {
    /// Allocates buffers for `width x height` frames.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            src_f32: ImageF32::new(width, height),
            hessian: HessianImages {
                ixx: ImageF32::new(width, height),
                iyy: ImageF32::new(width, height),
                ixy: ImageF32::new(width, height),
            },
            scratch: HessianScratch::new(width, height),
            acc: ImageF32::new(width, height),
            best_scale: vec![0.0; width * height],
        }
    }

    /// Total intermediate storage in bytes.
    pub fn byte_size(&self) -> usize {
        self.src_f32.byte_size()
            + self.hessian.ixx.byte_size()
            + self.hessian.iyy.byte_size()
            + self.hessian.ixy.byte_size()
            + self.scratch.byte_size()
            + self.acc.byte_size()
            + self.best_scale.len() * std::mem::size_of::<f32>()
    }
}

/// Result of marker extraction.
#[derive(Debug, Clone)]
pub struct MkxOutput {
    /// Candidate markers, strongest first.
    pub candidates: Vec<Marker>,
    /// Number of raw local maxima before separation/count pruning
    /// (content-dependent load proxy: noisy or busy frames produce more).
    pub raw_maxima: usize,
}

/// Extracts candidate markers inside `roi`.
pub fn mkx_extract(src: &ImageU16, roi: Roi, cfg: &MkxConfig, bufs: &mut MkxBuffers) -> MkxOutput {
    assert_eq!(
        src.dims(),
        bufs.src_f32.dims(),
        "buffer geometry must match the frame"
    );
    assert!(!cfg.scales.is_empty(), "at least one scale required");
    let roi = roi.clamp_to(src.width(), src.height());
    if roi.is_empty() {
        return MkxOutput {
            candidates: Vec::new(),
            raw_maxima: 0,
        };
    }

    let halo = cfg
        .scales
        .iter()
        .map(|&s| (3.0 * s).ceil() as usize)
        .max()
        .unwrap_or(0);
    let conv_roi = roi.inflate(halo, src.width(), src.height());
    for y in conv_roi.y..conv_roi.bottom() {
        let s = &src.row(y)[conv_roi.x..conv_roi.right()];
        let d = &mut bufs.src_f32.row_mut(y)[conv_roi.x..conv_roi.right()];
        for (d, &s) in d.iter_mut().zip(s) {
            *d = s as f32;
        }
    }

    let w = src.width();
    for y in roi.y..roi.bottom() {
        bufs.acc.row_mut(y)[roi.x..roi.right()].fill(0.0);
        // strongest scale per pixel; remember which scale won
        bufs.best_scale[y * w + roi.x..y * w + roi.right()].fill(cfg.scales[0]);
    }
    for &sigma in &cfg.scales {
        hessian_at_scale(
            &bufs.src_f32,
            &mut bufs.hessian,
            &mut bufs.scratch,
            roi,
            sigma,
        );
        for y in roi.y..roi.bottom() {
            let span = roi.x..roi.right();
            blob_accumulate_row(
                &bufs.hessian.ixx.row(y)[span.clone()],
                &bufs.hessian.iyy.row(y)[span.clone()],
                &bufs.hessian.ixy.row(y)[span.clone()],
                &mut bufs.acc.row_mut(y)[span.clone()],
                &mut bufs.best_scale[y * w + roi.x..y * w + roi.right()],
                sigma,
            );
        }
    }

    // local maxima above a relative threshold
    let peak = {
        let mut m = 0.0f32;
        for y in roi.y..roi.bottom() {
            for &v in &bufs.acc.row(y)[roi.x..roi.right()] {
                m = m.max(v);
            }
        }
        m
    };
    // Absolute floor guards against numerical residue on flat frames, where
    // every pixel would otherwise tie as a "local maximum".
    let threshold = (cfg.threshold_rel * peak).max(1e-3);
    let mut raw: Vec<Marker> = Vec::new();
    if peak > 1e-3 {
        for y in roi.y.max(1)..roi.bottom().min(src.height() - 1) {
            for x in roi.x.max(1)..roi.right().min(src.width() - 1) {
                let v = bufs.acc.get(x, y);
                if v <= threshold {
                    continue;
                }
                let mut is_max = true;
                'nb: for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let n = bufs
                            .acc
                            .get((x as i64 + dx) as usize, (y as i64 + dy) as usize);
                        if n > v {
                            is_max = false;
                            break 'nb;
                        }
                    }
                }
                if is_max {
                    let (sx, sy) = subpixel_refine(&bufs.acc, x, y);
                    raw.push(Marker {
                        x: sx,
                        y: sy,
                        strength: v,
                        scale: bufs.best_scale[y * src.width() + x],
                    });
                }
            }
        }
    }
    let raw_maxima = raw.len();

    // greedy separation pruning, strongest first
    raw.sort_by(|a, b| b.strength.total_cmp(&a.strength));
    let mut candidates: Vec<Marker> = Vec::new();
    for m in raw {
        if candidates.len() >= cfg.max_candidates {
            break;
        }
        if candidates
            .iter()
            .all(|c| c.distance(&m) >= cfg.min_separation)
        {
            candidates.push(m);
        }
    }

    MkxOutput {
        candidates,
        raw_maxima,
    }
}

/// One row of the multi-scale blob max: `acc = max(acc, blob_response)` with
/// the winning scale recorded per pixel.
///
/// The vector body inlines `hessian::blob_response` with the same expression
/// association (`(diff*diff)*0.25 + ixy*ixy`, `tr*0.5 ± disc`) and maps its
/// branches onto per-lane selects: `iso` keeps `lo/hi` only where `hi > 0`,
/// and the final `0 > lo` select reproduces the `lo <= 0 => 0` early-out. The
/// only lanes where the select form can differ bitwise from the scalar branch
/// are `lo == -0.0` (scalar `+0.0` vs vector `-0.0`); neither value survives
/// the strict `r > acc` max against the zero-filled accumulator, so `acc` and
/// `best_scale` stay bit-identical.
#[inline(always)]
fn blob_accumulate_row_body<V: SimdF32>(
    ixx: &[f32],
    iyy: &[f32],
    ixy: &[f32],
    acc: &mut [f32],
    best_scale: &mut [f32],
    sigma: f32,
) {
    let n = acc.len();
    debug_assert!(ixx.len() == n && iyy.len() == n && ixy.len() == n && best_scale.len() == n);
    let half = V::splat(0.5);
    let quarter = V::splat(0.25);
    let zero = V::splat(0.0);
    let vsig = V::splat(sigma);
    let mut i = 0;
    while i + V::WIDTH <= n {
        // Safety: `i + V::WIDTH <= n` bounds every load/store below.
        unsafe {
            let xx = V::load_at(ixx, i);
            let yy = V::load_at(iyy, i);
            let xy = V::load_at(ixy, i);
            let tr = xx + yy;
            let diff = xx - yy;
            let disc = (diff * diff * quarter + xy * xy).sqrt();
            let hi = tr * half + disc;
            let lo = tr * half - disc;
            let iso = V::select_gt(hi, zero, lo / hi, zero);
            let resp = (hi + lo) * iso;
            let r = V::select_gt(zero, lo, zero, resp);
            let a = V::load_at(acc, i);
            V::select_gt(r, a, r, a).store_at(acc, i);
            let b = V::load_at(best_scale, i);
            V::select_gt(r, a, vsig, b).store_at(best_scale, i);
        }
        i += V::WIDTH;
    }
    for j in i..n {
        let r = blob_response(ixx[j], iyy[j], ixy[j]);
        if r > acc[j] {
            acc[j] = r;
            best_scale[j] = sigma;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn blob_accumulate_row_avx2(
    ixx: &[f32],
    iyy: &[f32],
    ixy: &[f32],
    acc: &mut [f32],
    best_scale: &mut [f32],
    sigma: f32,
) {
    blob_accumulate_row_body::<F32x8>(ixx, iyy, ixy, acc, best_scale, sigma);
}

fn blob_accumulate_row(
    ixx: &[f32],
    iyy: &[f32],
    ixy: &[f32],
    acc: &mut [f32],
    best_scale: &mut [f32],
    sigma: f32,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // Safety: AVX2 support verified at runtime.
            unsafe { blob_accumulate_row_avx2(ixx, iyy, ixy, acc, best_scale, sigma) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        blob_accumulate_row_body::<crate::simd::NeonF32x4>(ixx, iyy, ixy, acc, best_scale, sigma);
        return;
    }
    #[allow(unreachable_code)]
    blob_accumulate_row_body::<F32x8>(ixx, iyy, ixy, acc, best_scale, sigma)
}

/// Parabolic sub-pixel refinement of a local maximum.
fn subpixel_refine(acc: &ImageF32, x: usize, y: usize) -> (f64, f64) {
    let v = acc.get(x, y) as f64;
    let refine = |lo: f64, hi: f64| {
        let denom = lo - 2.0 * v + hi;
        if denom.abs() < 1e-12 {
            0.0
        } else {
            (0.5 * (lo - hi) / denom).clamp(-0.5, 0.5)
        }
    };
    let dx = if x > 0 && x + 1 < acc.width() {
        refine(acc.get(x - 1, y) as f64, acc.get(x + 1, y) as f64)
    } else {
        0.0
    };
    let dy = if y > 0 && y + 1 < acc.height() {
        refine(acc.get(x, y - 1) as f64, acc.get(x, y + 1) as f64)
    } else {
        0.0
    };
    (x as f64 + dx, y as f64 + dy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    fn frame_with_blobs(w: usize, h: usize, blobs: &[(f32, f32, f32)]) -> ImageU16 {
        Image::from_fn(w, h, |x, y| {
            let mut v = 2000.0f32;
            for &(cx, cy, depth) in blobs {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                v -= depth * (-(dx * dx + dy * dy) / 8.0).exp();
            }
            v.max(0.0) as u16
        })
    }

    #[test]
    fn blob_accumulate_row_matches_scalar_bits() {
        let n = 61;
        let mut state = 0x1234_5678u32;
        let mut next = move || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) as f32 / (1 << 24) as f32 * 40.0 - 20.0
        };
        let ixx: Vec<f32> = (0..n).map(|_| next()).collect();
        let iyy: Vec<f32> = (0..n).map(|_| next()).collect();
        let ixy: Vec<f32> = (0..n).map(|_| next()).collect();
        let mut acc_fast = vec![0.0f32; n];
        let mut bs_fast = vec![1.0f32; n];
        let mut acc_ref = vec![0.0f32; n];
        let mut bs_ref = vec![1.0f32; n];
        // Two scales over the same accumulator exercises the max-so-far path.
        for sigma in [1.5f32, 2.5] {
            blob_accumulate_row(&ixx, &iyy, &ixy, &mut acc_fast, &mut bs_fast, sigma);
            for j in 0..n {
                let r = blob_response(ixx[j], iyy[j], ixy[j]);
                if r > acc_ref[j] {
                    acc_ref[j] = r;
                    bs_ref[j] = sigma;
                }
            }
            for j in 0..n {
                assert_eq!(acc_fast[j].to_bits(), acc_ref[j].to_bits(), "acc[{j}]");
                assert_eq!(bs_fast[j].to_bits(), bs_ref[j].to_bits(), "scale[{j}]");
            }
        }
    }

    #[test]
    fn finds_two_markers_near_truth() {
        let src = frame_with_blobs(64, 64, &[(20.0, 20.0, 1100.0), (44.0, 44.0, 1000.0)]);
        let out = mkx_extract(
            &src,
            src.full_roi(),
            &MkxConfig::default(),
            &mut MkxBuffers::new(64, 64),
        );
        assert!(out.candidates.len() >= 2, "found {}", out.candidates.len());
        let near = |tx: f64, ty: f64| {
            out.candidates
                .iter()
                .any(|m| ((m.x - tx).powi(2) + (m.y - ty).powi(2)).sqrt() < 2.0)
        };
        assert!(near(20.0, 20.0), "candidates {:?}", out.candidates);
        assert!(near(44.0, 44.0), "candidates {:?}", out.candidates);
    }

    #[test]
    fn strongest_marker_first() {
        let src = frame_with_blobs(64, 64, &[(20.0, 20.0, 600.0), (44.0, 44.0, 1400.0)]);
        let out = mkx_extract(
            &src,
            src.full_roi(),
            &MkxConfig::default(),
            &mut MkxBuffers::new(64, 64),
        );
        assert!(out.candidates.len() >= 2);
        let first = &out.candidates[0];
        assert!((first.x - 44.0).abs() < 2.0 && (first.y - 44.0).abs() < 2.0);
    }

    #[test]
    fn empty_frame_yields_no_candidates() {
        let src: ImageU16 = Image::filled(64, 64, 2000);
        let out = mkx_extract(
            &src,
            src.full_roi(),
            &MkxConfig::default(),
            &mut MkxBuffers::new(64, 64),
        );
        assert!(out.candidates.is_empty(), "{:?}", out.candidates);
    }

    #[test]
    fn roi_restricts_detection() {
        let src = frame_with_blobs(64, 64, &[(16.0, 16.0, 1100.0), (48.0, 48.0, 1100.0)]);
        let out = mkx_extract(
            &src,
            Roi::new(0, 0, 32, 32),
            &MkxConfig::default(),
            &mut MkxBuffers::new(64, 64),
        );
        assert!(!out.candidates.is_empty());
        assert!(
            out.candidates.iter().all(|m| m.x < 32.0 && m.y < 32.0),
            "{:?}",
            out.candidates
        );
    }

    #[test]
    fn min_separation_merges_close_maxima() {
        let src = frame_with_blobs(64, 64, &[(30.0, 30.0, 1100.0), (33.0, 30.0, 1000.0)]);
        let cfg = MkxConfig {
            min_separation: 8.0,
            ..Default::default()
        };
        let out = mkx_extract(&src, src.full_roi(), &cfg, &mut MkxBuffers::new(64, 64));
        // the two blobs are 3 px apart, below separation: only one survives
        let close: Vec<_> = out
            .candidates
            .iter()
            .filter(|m| (m.y - 30.0).abs() < 4.0 && (m.x - 31.5).abs() < 6.0)
            .collect();
        assert_eq!(close.len(), 1, "{:?}", out.candidates);
    }

    #[test]
    fn max_candidates_cap_respected() {
        let blobs: Vec<(f32, f32, f32)> = (0..6)
            .flat_map(|i| (0..6).map(move |j| (8.0 + i as f32 * 9.0, 8.0 + j as f32 * 9.0, 900.0)))
            .collect();
        let src = frame_with_blobs(64, 64, &blobs);
        let cfg = MkxConfig {
            max_candidates: 5,
            ..Default::default()
        };
        let out = mkx_extract(&src, src.full_roi(), &cfg, &mut MkxBuffers::new(64, 64));
        assert!(out.candidates.len() <= 5);
        assert!(out.raw_maxima >= out.candidates.len());
    }

    #[test]
    fn subpixel_position_close_to_fractional_truth() {
        let src = frame_with_blobs(64, 64, &[(30.4, 25.7, 1200.0)]);
        let out = mkx_extract(
            &src,
            src.full_roi(),
            &MkxConfig::default(),
            &mut MkxBuffers::new(64, 64),
        );
        assert!(!out.candidates.is_empty());
        let m = &out.candidates[0];
        assert!((m.x - 30.4).abs() < 0.75, "x {}", m.x);
        assert!((m.y - 25.7).abs() < 0.75, "y {}", m.y);
    }

    #[test]
    fn marker_distance_is_euclidean() {
        let a = Marker {
            x: 0.0,
            y: 0.0,
            strength: 1.0,
            scale: 1.0,
        };
        let b = Marker {
            x: 3.0,
            y: 4.0,
            strength: 1.0,
            scale: 1.0,
        };
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }
}
