//! # triplec-imaging
//!
//! Image-processing substrate of the Triple-C reproduction: from-scratch
//! implementations of every task of the motion-compensated stent
//! enhancement flow graph (Fig. 2 of the paper):
//!
//! | Task | Module | Role |
//! |---|---|---|
//! | RDG (FULL/ROI) | [`ridge`] | multi-scale Hessian ridge detection and suppression |
//! | MKX EXT | [`markers`] | punctual dark-zone (balloon marker) extraction |
//! | CPLS SEL | [`couples`] | a-priori-distance marker couple selection |
//! | REG | [`registration`] | rigid temporal registration + motion criterion |
//! | ROI EST | [`roi_est`] | data-dependent region-of-interest estimation |
//! | GW EXT | [`guidewire`] | ridge-following guide-wire verification |
//! | ENH | [`enhance`] | motion-compensated temporal integration |
//! | ZOOM | [`zoom`](mod@zoom) | ROI magnification for display |
//!
//! Supporting modules: [`image`] (buffers, ROIs, stripes), [`kernel`]
//! (separable Gaussian-derivative convolution), [`hessian`]
//! (eigenvalue-based ridge/blob responses), [`fused`] (tiled single-pass
//! SIMD multi-scale Hessian core), [`simd`] (explicit 8-lane `f32`
//! vectors) and [`parallel`] (striped data-parallel execution used by the
//! semi-automatic parallelization).
//!
//! All tasks expose their buffer sizes so the Table-1 memory accounting and
//! the cache/bandwidth models of `triplec-core` can be derived from the
//! actual implementation rather than hard-coded constants.

pub mod couples;
pub mod enhance;
pub mod fused;
pub mod guidewire;
pub mod hessian;
pub mod image;
pub mod io;
pub mod kernel;
pub mod markers;
pub mod metrics;
pub mod overlay;
pub mod parallel;
pub mod registration;
pub mod ridge;
pub mod roi_est;
pub mod simd;
pub mod zoom;

pub use couples::{cpls_select, Couple, CplsConfig, CplsOutput};
pub use enhance::{enh_integrate, EnhConfig, EnhState};
pub use guidewire::{gw_extract, GwConfig, GwOutput};
pub use image::{Image, ImageF32, ImageU16, Pixel, Roi};
pub use io::{read_pgm, write_pgm16, write_pgm8};
pub use markers::{mkx_extract, Marker, MkxBuffers, MkxConfig, MkxOutput};
pub use metrics::{cnr, mad, psnr, region_mean};
pub use overlay::{draw_couple, draw_cross, draw_roi};
pub use registration::{register, RegConfig, RegOutput, RigidTransform};
pub use ridge::{
    rdg_full, rdg_full_reference, rdg_roi, RdgBuffers, RdgConfig, RdgEngine, RdgOutput,
};
pub use roi_est::{estimate_roi, RoiEstConfig};
pub use zoom::{zoom, ZoomConfig, ZoomFilter};
