//! Hessian computation and eigenvalue-based ridge/blob responses.
//!
//! Dark curvilinear structures (guide wires, vessel edges) and dark punctual
//! structures (balloon markers) appear as intensity *minima* on a brighter
//! background, so their second derivatives are positive. The ridge measure
//! selects anisotropic positive curvature; the blob measure (Laplacian)
//! selects isotropic positive curvature.

use crate::image::{ImageF32, Roi};
use crate::kernel::{convolve_cols, convolve_rows, Kernel1D};

/// The three distinct entries of the (symmetric) Hessian at one scale.
#[derive(Debug)]
pub struct HessianImages {
    pub ixx: ImageF32,
    pub iyy: ImageF32,
    pub ixy: ImageF32,
}

/// Capacity bound of [`KernelCache`]: more distinct sigmas than any
/// realistic scale set (default RDG uses 3, MKX a handful); beyond it the
/// least-recently-used triple is evicted, so an adversarial sequence of
/// per-frame scale tweaks cannot grow the cache without bound.
pub const KERNEL_CACHE_CAPACITY: usize = 16;

/// Bounded per-sigma cache of the `(G, G', G'')` kernel triple with O(1)
/// lookup (hash on the sigma bits). Steady-state frames that reuse a
/// scale set build no tap vectors and perform no allocation; an eviction
/// scan is O([`KERNEL_CACHE_CAPACITY`]) and only runs on a miss with the
/// cache full.
#[derive(Debug, Default)]
pub struct KernelCache {
    map: std::collections::HashMap<u32, KernelEntry>,
    tick: u64,
}

#[derive(Debug)]
struct KernelEntry {
    last_used: u64,
    g: Kernel1D,
    d1: Kernel1D,
    d2: Kernel1D,
}

impl KernelCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up (building on first use) the kernel triple for `sigma`.
    pub fn get(&mut self, sigma: f32) -> (&Kernel1D, &Kernel1D, &Kernel1D) {
        let key = sigma.to_bits();
        self.tick += 1;
        if !self.map.contains_key(&key) {
            if self.map.len() >= KERNEL_CACHE_CAPACITY {
                if let Some((&lru, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) {
                    self.map.remove(&lru);
                }
            }
            self.map.insert(
                key,
                KernelEntry {
                    last_used: 0,
                    g: Kernel1D::gaussian(sigma),
                    d1: Kernel1D::gaussian_d1(sigma),
                    d2: Kernel1D::gaussian_d2(sigma),
                },
            );
        }
        let e = self.map.get_mut(&key).expect("entry just ensured");
        e.last_used = self.tick;
        (&e.g, &e.d1, &e.d2)
    }

    /// Number of cached sigma triples (bounded by
    /// [`KERNEL_CACHE_CAPACITY`]).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no triples.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cached tap bytes (for memory accounting).
    pub fn byte_size(&self) -> usize {
        self.map
            .values()
            .map(|e| {
                (e.g.taps().len() + e.d1.taps().len() + e.d2.taps().len())
                    * std::mem::size_of::<f32>()
            })
            .sum()
    }
}

/// Scratch buffers for a Hessian computation, reusable across frames so the
/// per-frame allocation count stays zero (the buffers are exactly the
/// "intermediate" storage accounted in Table 1). Derivative kernels are
/// cached per scale, so steady-state frames build no tap vectors either.
#[derive(Debug)]
pub struct HessianScratch {
    a: ImageF32,
    b: ImageF32,
    kernels: KernelCache,
}

impl HessianScratch {
    /// Allocates scratch for `width x height` images.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            a: ImageF32::new(width, height),
            b: ImageF32::new(width, height),
            kernels: KernelCache::new(),
        }
    }

    /// Total scratch bytes (for memory accounting).
    pub fn byte_size(&self) -> usize {
        self.a.byte_size() + self.b.byte_size() + self.kernels.byte_size()
    }
}

/// Computes the scale-normalized Hessian of `src` at scale `sigma`,
/// restricted to `roi`, writing into `out`.
///
/// Each component is a separable convolution:
/// `Ixx = G''(x) * G(y)`, `Iyy = G(x) * G''(y)`, `Ixy = G'(x) * G'(y)`.
pub fn hessian_at_scale(
    src: &ImageF32,
    out: &mut HessianImages,
    scratch: &mut HessianScratch,
    roi: Roi,
    sigma: f32,
) {
    let HessianScratch { a, b, kernels } = scratch;
    let (g, d1, d2) = kernels.get(sigma);
    let halo = g.radius().max(d2.radius());
    let row_roi = roi.inflate(halo, src.width(), src.height());

    // Ixx: d2 along x, smooth along y
    convolve_rows(src, a, row_roi, d2);
    convolve_cols(a, &mut out.ixx, roi, g);
    // Iyy: smooth along x, d2 along y
    convolve_rows(src, b, row_roi, g);
    convolve_cols(b, &mut out.iyy, roi, d2);
    // Ixy: d1 along x, d1 along y
    convolve_rows(src, a, row_roi, d1);
    convolve_cols(a, &mut out.ixy, roi, d1);
}

/// Eigenvalues of the 2x2 symmetric matrix `[ixx ixy; ixy iyy]`,
/// returned as `(lambda_hi, lambda_lo)` with `lambda_hi >= lambda_lo`.
#[inline]
pub fn eigenvalues(ixx: f32, iyy: f32, ixy: f32) -> (f32, f32) {
    let tr = ixx + iyy;
    let diff = ixx - iyy;
    let disc = (diff * diff * 0.25 + ixy * ixy).sqrt();
    (tr * 0.5 + disc, tr * 0.5 - disc)
}

/// Ridge response for dark line structures: the large positive eigenvalue,
/// attenuated by isotropy so blobs and flat regions score low.
///
/// `r = max(0, l_hi) * (1 - |l_lo| / |l_hi|)` when `l_hi > 0`, else 0.
#[inline]
pub fn ridge_response(ixx: f32, iyy: f32, ixy: f32) -> f32 {
    let (hi, lo) = eigenvalues(ixx, iyy, ixy);
    if hi <= 0.0 {
        return 0.0;
    }
    let aniso = 1.0 - (lo.abs() / hi).min(1.0);
    hi * aniso
}

/// Blob response for dark punctual structures: the (positive) Laplacian,
/// attenuated by anisotropy so line structures score low.
#[inline]
pub fn blob_response(ixx: f32, iyy: f32, ixy: f32) -> f32 {
    let (hi, lo) = eigenvalues(ixx, iyy, ixy);
    if lo <= 0.0 {
        // a dark blob curves upward in every direction
        return 0.0;
    }
    // both eigenvalues positive: isotropy factor lo/hi in (0, 1]
    let iso = if hi > 0.0 { lo / hi } else { 0.0 };
    (hi + lo) * iso
}

/// Writes `max(current, response(H))` into `acc` for every pixel of `roi`;
/// used to combine responses over multiple scales.
pub fn accumulate_max_response(
    h: &HessianImages,
    acc: &mut ImageF32,
    roi: Roi,
    response: impl Fn(f32, f32, f32) -> f32,
) {
    let roi = roi.clamp_to(acc.width(), acc.height());
    for y in roi.y..roi.bottom() {
        let ixx = &h.ixx.row(y)[roi.x..roi.right()];
        let iyy = &h.iyy.row(y)[roi.x..roi.right()];
        let ixy = &h.ixy.row(y)[roi.x..roi.right()];
        let out = &mut acc.row_mut(y)[roi.x..roi.right()];
        for i in 0..out.len() {
            let r = response(ixx[i], iyy[i], ixy[i]);
            if r > out[i] {
                out[i] = r;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn eigenvalues_of_diagonal_matrix() {
        let (hi, lo) = eigenvalues(3.0, -1.0, 0.0);
        assert!((hi - 3.0).abs() < 1e-6);
        assert!((lo + 1.0).abs() < 1e-6);
    }

    #[test]
    fn eigenvalues_ordered_and_match_trace_det() {
        for &(a, b, c) in &[(1.0f32, 2.0, 0.5), (-3.0, 4.0, 2.0), (0.0, 0.0, 1.0)] {
            let (hi, lo) = eigenvalues(a, b, c);
            assert!(hi >= lo);
            assert!((hi + lo - (a + b)).abs() < 1e-4, "trace");
            assert!((hi * lo - (a * b - c * c)).abs() < 1e-3, "det");
        }
    }

    #[test]
    fn ridge_response_prefers_anisotropic_positive() {
        // strong dark line: lambda (10, 0) -> high response
        let line = ridge_response(10.0, 0.0, 0.0);
        // dark blob: lambda (10, 10) -> zero response (isotropic)
        let blob = ridge_response(10.0, 10.0, 0.0);
        // bright line: lambda (-10, 0) -> zero response
        let bright = ridge_response(-10.0, 0.0, 0.0);
        assert!(line > 5.0);
        assert!(blob.abs() < 1e-6);
        assert!(bright == 0.0);
    }

    #[test]
    fn blob_response_prefers_isotropic_positive() {
        let blob = blob_response(10.0, 10.0, 0.0);
        let line = blob_response(10.0, 0.0, 0.0);
        let bright_blob = blob_response(-10.0, -10.0, 0.0);
        assert!(blob > 15.0);
        assert!(line.abs() < 1e-6);
        assert!(bright_blob == 0.0);
    }

    /// A synthetic dark vertical line must produce a ridge-response maximum
    /// on the line with the response oriented correctly.
    #[test]
    fn dark_line_detected_at_center() {
        let w = 33;
        let src = Image::from_fn(w, w, |x, _| {
            let d = x as f32 - 16.0;
            // bright background 1000, dark Gaussian trench depth 400, width 2
            1000.0 - 400.0 * (-d * d / (2.0 * 2.0 * 2.0)).exp()
        });
        let mut h = HessianImages {
            ixx: ImageF32::new(w, w),
            iyy: ImageF32::new(w, w),
            ixy: ImageF32::new(w, w),
        };
        let mut scratch = HessianScratch::new(w, w);
        hessian_at_scale(&src, &mut h, &mut scratch, src.full_roi(), 2.0);
        let mut acc = ImageF32::new(w, w);
        accumulate_max_response(&h, &mut acc, src.full_roi(), ridge_response);
        // response at line center must dominate off-line response
        let on = acc.get(16, 16);
        let off = acc.get(4, 16);
        assert!(on > 10.0 * (off + 1e-3), "on {} off {}", on, off);
    }

    /// A synthetic dark spot must produce a blob-response maximum at its
    /// center and low ridge response.
    #[test]
    fn dark_spot_detected_as_blob_not_ridge() {
        let w = 33;
        let src = Image::from_fn(w, w, |x, y| {
            let dx = x as f32 - 16.0;
            let dy = y as f32 - 16.0;
            1000.0 - 500.0 * (-(dx * dx + dy * dy) / (2.0 * 2.0 * 2.0)).exp()
        });
        let mut h = HessianImages {
            ixx: ImageF32::new(w, w),
            iyy: ImageF32::new(w, w),
            ixy: ImageF32::new(w, w),
        };
        let mut scratch = HessianScratch::new(w, w);
        hessian_at_scale(&src, &mut h, &mut scratch, src.full_roi(), 2.0);

        let mut blob = ImageF32::new(w, w);
        accumulate_max_response(&h, &mut blob, src.full_roi(), blob_response);
        let mut ridge = ImageF32::new(w, w);
        accumulate_max_response(&h, &mut ridge, src.full_roi(), ridge_response);

        assert!(
            blob.get(16, 16) > 50.0,
            "blob response {}",
            blob.get(16, 16)
        );
        assert!(
            blob.get(16, 16) > 3.0 * ridge.get(16, 16),
            "blob {} should beat ridge {}",
            blob.get(16, 16),
            ridge.get(16, 16)
        );
    }

    #[test]
    fn kernel_cache_does_not_grow_on_repeated_scale_sets() {
        let mut cache = KernelCache::new();
        for _ in 0..50 {
            for &sigma in &[1.5f32, 2.5, 4.0] {
                let (g, d1, d2) = cache.get(sigma);
                assert_eq!(g.radius(), d1.radius());
                assert_eq!(g.radius(), d2.radius());
            }
            assert_eq!(cache.len(), 3, "repeated scale set must not grow the cache");
        }
        let warm_bytes = cache.byte_size();
        cache.get(1.5);
        assert_eq!(cache.byte_size(), warm_bytes);
    }

    #[test]
    fn kernel_cache_is_bounded_under_distinct_sigma_flood() {
        let mut cache = KernelCache::new();
        for i in 0..4 * KERNEL_CACHE_CAPACITY {
            cache.get(1.0 + i as f32 * 0.01);
            assert!(cache.len() <= KERNEL_CACHE_CAPACITY, "cache grew past cap");
        }
        assert_eq!(cache.len(), KERNEL_CACHE_CAPACITY);
        // Entries keep working after evictions: a fresh triple is rebuilt
        // with the right geometry.
        let (g, _, _) = cache.get(1.0);
        assert_eq!(g.radius(), 3);
    }

    #[test]
    fn accumulate_max_keeps_largest() {
        let h = HessianImages {
            ixx: ImageF32::filled(4, 4, 1.0),
            iyy: ImageF32::filled(4, 4, 0.0),
            ixy: ImageF32::filled(4, 4, 0.0),
        };
        let mut acc = ImageF32::filled(4, 4, 100.0);
        accumulate_max_response(&h, &mut acc, Roi::full(4, 4), ridge_response);
        assert_eq!(acc.get(0, 0), 100.0);
    }
}
