//! Fused, tiled, SIMD-vectorized multi-scale Hessian sweep.
//!
//! The reference RDG core materializes, per scale, three row-filtered
//! full-frame intermediates and three full-frame Hessian components —
//! six extra frame-sized reads/writes (~12 MB of traffic per scale at
//! 1024², see `memory_model`). This module computes the same per-pixel
//! values in **one pass over the source**:
//!
//! 1. a *multi-kernel row sweep*: each source row is read once and the
//!    three row-filtered signals (`src*G`, `src*G'`, `src*G''`) are
//!    produced together, tap-ascending, into a ring buffer of
//!    `2·radius + 1` rows per signal;
//! 2. a *tiled column + response stage*: for each output row, the three
//!    column convolutions are evaluated straight out of the ring in
//!    8-lane SIMD chunks ([`crate::simd::F32x8`]), and the
//!    eigenvalue/ridge-response math plus the max-over-scales
//!    accumulation run on the same registers — `Ixx`/`Iyy`/`Ixy` never
//!    exist in memory at all, let alone as full frames.
//!
//! **Bit-exactness.** Every per-pixel accumulation keeps the reference
//! op order (`0 + t₀·s₀ + t₁·s₁ + …`, taps ascending, clamped-replicate
//! borders) and the response math keeps the exact expression order of
//! [`crate::hessian::ridge_response`], so the fused output is
//! bit-identical to `convolve_rows` → `convolve_cols` →
//! `accumulate_max_response` (property-tested in
//! `tests/fused_rdg_identity.rs`).

use crate::image::{ImageF32, Roi};
use crate::kernel::Kernel1D;
use crate::simd::{F32x8, SimdF32};

/// Reusable working memory of the fused sweep: three row-filtered ring
/// buffers. Grows on first use to the largest scale's ring and never
/// shrinks, so steady-state frames allocate nothing. This — not three
/// full frames — is the RDG "intermediate" storage the fused path adds
/// on top of `src`/`acc` (accounted by `memory_model::rdg_tile_bytes`).
#[derive(Debug, Default)]
pub struct FusedScratch {
    /// Ring of `src * G` rows (feeds `Iyy`).
    ring_g: Vec<f32>,
    /// Ring of `src * G'` rows (feeds `Ixy`).
    ring_d1: Vec<f32>,
    /// Ring of `src * G''` rows (feeds `Ixx`).
    ring_d2: Vec<f32>,
}

impl FusedScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total scratch bytes (Table-1 intermediate accounting).
    pub fn byte_size(&self) -> usize {
        (self.ring_g.len() + self.ring_d1.len() + self.ring_d2.len()) * std::mem::size_of::<f32>()
    }

    /// Grows (never shrinks) the rings to `ring_rows` rows of `width`.
    fn ensure(&mut self, width: usize, ring_rows: usize) {
        let need = width * ring_rows;
        if self.ring_g.len() < need {
            self.ring_g.resize(need, 0.0);
            self.ring_d1.resize(need, 0.0);
            self.ring_d2.resize(need, 0.0);
        }
    }
}

/// Upper bound on supported kernel length (`2·radius + 1`); radius 64
/// corresponds to `sigma > 21`, far beyond any configured scale.
const MAX_TAPS: usize = 129;

/// Accumulates `max(acc, ridge_response(H_sigma))` over `roi` in a single
/// fused pass, bit-identical to the unfused
/// `hessian_at_scale` + `accumulate_max_response` sequence.
///
/// `g`/`d1`/`d2` must share one radius (they do for one sigma, by
/// construction of [`Kernel1D::gaussian`] and its derivatives).
pub fn fused_ridge_scale(
    src: &ImageF32,
    acc: &mut ImageF32,
    scratch: &mut FusedScratch,
    g: &Kernel1D,
    d1: &Kernel1D,
    d2: &Kernel1D,
    roi: Roi,
) {
    fused_ridge_scale_impl::<false>(src, acc, scratch, g, d1, d2, roi);
}

/// First-scale variant: *overwrites* `acc` over `roi` with the scale's
/// response, bit-identical to zeroing `acc` and then calling
/// [`fused_ridge_scale`] — but without the zeroing pass or the
/// accumulator read (the response is ≥ +0.0 by construction, so the
/// `max(acc, resp)` select against a zeroed accumulator is `resp`).
pub fn fused_ridge_scale_init(
    src: &ImageF32,
    acc: &mut ImageF32,
    scratch: &mut FusedScratch,
    g: &Kernel1D,
    d1: &Kernel1D,
    d2: &Kernel1D,
    roi: Roi,
) {
    fused_ridge_scale_impl::<true>(src, acc, scratch, g, d1, d2, roi);
}

fn fused_ridge_scale_impl<const INIT: bool>(
    src: &ImageF32,
    acc: &mut ImageF32,
    scratch: &mut FusedScratch,
    g: &Kernel1D,
    d1: &Kernel1D,
    d2: &Kernel1D,
    roi: Roi,
) {
    assert_eq!(src.dims(), acc.dims(), "src/acc dims must match");
    let roi = roi.clamp_to(src.width(), src.height());
    if roi.is_empty() {
        return;
    }
    let r = g.radius();
    assert_eq!(r, d1.radius(), "kernel radii must match");
    assert_eq!(r, d2.radius(), "kernel radii must match");
    let (w, h) = src.dims();
    let ring_rows = 2 * r + 1;
    assert!(ring_rows <= MAX_TAPS, "kernel too long for the fused sweep");
    scratch.ensure(w, ring_rows);
    let FusedScratch {
        ring_g,
        ring_d1,
        ring_d2,
    } = scratch;
    let sweep = Sweep {
        src,
        acc,
        ring_g,
        ring_d1,
        ring_d2,
        tg: g.taps(),
        t1: d1.taps(),
        t2: d2.taps(),
        r,
        ring_rows,
        w,
        h,
        roi,
    };
    // The sweep body is written in explicit-width / lane-elementwise
    // form, generic over the vector width; compiling extra copies with
    // AVX-512 / AVX2 enabled lets the inner loops use 16-/8-lane
    // registers on machines that have them. Every copy executes
    // identical per-lane IEEE operations (Rust performs no FMA
    // contraction and no reassociation), so neither the dispatch choice
    // nor the lane width can change a single output bit.
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: the AVX-512F requirement is checked at runtime above.
            unsafe { sweep_avx512::<INIT>(sweep) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 requirement is checked at runtime above.
            unsafe { sweep_avx2::<INIT>(sweep) };
            return;
        }
    }
    // NEON is baseline on aarch64 — no runtime detection. 4-lane
    // registers with an 8-chunk unroll keep 24 accumulators live in the
    // 32-register NEON file, mirroring the AVX-512 shape.
    #[cfg(target_arch = "aarch64")]
    {
        sweep.run::<crate::simd::NeonF32x4, 8, INIT>();
        return;
    }
    #[cfg(not(target_arch = "aarch64"))]
    sweep.run::<F32x8, 4, INIT>();
}

/// One scale's worth of borrowed state for the fused sweep loop.
struct Sweep<'a> {
    src: &'a ImageF32,
    acc: &'a mut ImageF32,
    ring_g: &'a mut [f32],
    ring_d1: &'a mut [f32],
    ring_d2: &'a mut [f32],
    tg: &'a [f32],
    t1: &'a [f32],
    t2: &'a [f32],
    r: usize,
    ring_rows: usize,
    w: usize,
    h: usize,
    roi: Roi,
}

/// AVX2 clone of the sweep: the `#[target_feature]` attribute recompiles
/// the (fully inlined) loop body with 256-bit vectors available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sweep_avx2<const INIT: bool>(sweep: Sweep<'_>) {
    sweep.run::<F32x8, 4, INIT>();
}

/// AVX-512 clone of the sweep. The body stays at the 8-lane shape LLVM
/// lowers best; what AVX-512 buys here is the EVEX register file — 32
/// vector registers — which the deeper unroll (8 chunks, 24 live
/// accumulators) exploits to hide FP latency.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vl")]
unsafe fn sweep_avx512<const INIT: bool>(sweep: Sweep<'_>) {
    sweep.run::<F32x8, 8, INIT>();
}

impl Sweep<'_> {
    #[inline(always)]
    fn run<V: SimdF32, const U: usize, const INIT: bool>(self) {
        let Sweep {
            src,
            acc,
            ring_g,
            ring_d1,
            ring_d2,
            tg,
            t1,
            t2,
            r,
            ring_rows,
            w,
            h,
            roi,
        } = self;
        let (x0, x1) = (roi.x, roi.right());
        let taps_n = tg.len();

        // First source row the column stage will ever read (top clamp).
        let mut next = roi.y.saturating_sub(r);
        let mut offsets = [0usize; MAX_TAPS];
        for y in roi.y..roi.bottom() {
            // Row stage: pull the ring forward to the deepest row this
            // output row reads. Each source row is row-filtered exactly
            // once.
            let deepest = (y + r).min(h - 1);
            while next <= deepest {
                let o = (next % ring_rows) * w;
                row_filter3::<V, U>(
                    src.row(next),
                    x0,
                    x1,
                    tg,
                    t1,
                    t2,
                    r,
                    &mut ring_g[o..o + w],
                    &mut ring_d1[o..o + w],
                    &mut ring_d2[o..o + w],
                );
                next += 1;
            }

            // Column + response stage: the per-tap ring-row base offsets
            // (same clamped row index as `convolve_cols`), then one fused
            // register pass per pixel chunk.
            for (j, o) in offsets[..taps_n].iter_mut().enumerate() {
                let sy = (y + j).saturating_sub(r).min(h - 1);
                *o = (sy % ring_rows) * w + x0;
            }
            col_response_row::<V, U, INIT>(
                ring_g,
                ring_d1,
                ring_d2,
                &offsets[..taps_n],
                tg,
                t1,
                t2,
                &mut acc.row_mut(y)[x0..x1],
            );
        }
    }
}

/// One row of the multi-kernel row sweep: reads `row` once and produces
/// the three row-filtered outputs together. Interior pixels run 8-lane
/// taps-inner chunks with the three accumulators in registers; border
/// pixels use the clamped-index scalar path. Per-pixel, per-output op
/// order matches `convolve_rows` exactly.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn row_filter3<V: SimdF32, const U: usize>(
    row: &[f32],
    x0: usize,
    x1: usize,
    tg: &[f32],
    t1: &[f32],
    t2: &[f32],
    r: usize,
    out_g: &mut [f32],
    out_d1: &mut [f32],
    out_d2: &mut [f32],
) {
    let w = row.len();
    // x is interior iff x - r >= 0 and x + r < w (same split as
    // `convolve_rows`).
    let int_lo = r.min(w);
    let int_hi = w.saturating_sub(r);
    let bl_end = x0.max(x1.min(int_lo));
    let ii_end = bl_end.max(x1.min(int_hi));
    let taps_n = tg.len();

    // Border segments: scalar, clamped-replicate, taps ascending.
    for seg in [x0..bl_end, ii_end..x1] {
        for x in seg {
            let mut ag = 0.0f32;
            let mut a1 = 0.0f32;
            let mut a2 = 0.0f32;
            for j in 0..taps_n {
                let sx = (x + j).saturating_sub(r).min(w - 1);
                let s = row[sx];
                ag += tg[j] * s;
                a1 += t1[j] * s;
                a2 += t2[j] * s;
            }
            out_g[x] = ag;
            out_d1[x] = a1;
            out_d2[x] = a2;
        }
    }

    // Interior: taps-inner with the three accumulators held in registers,
    // so each source element is loaded once per tap and the outputs are
    // written exactly once. Four 8-lane chunks per iteration give 12
    // independent accumulator chains (FP-add latency hiding); each tap's
    // source window is one unaligned contiguous load. Per-pixel
    // accumulation is still `0 + t0*s0 + t1*s1 + ...`, taps ascending.
    if bl_end < ii_end {
        let lanes = V::WIDTH;
        let len = ii_end - bl_end;
        let n_wide = len - len % (lanes * U);
        let n = len - len % lanes;
        let zero = V::splat(0.0);
        // One bound check per row for the unchecked loads/stores below:
        // the deepest source read is `(ii_end - 1) + r < w` (interior
        // definition) and every output store lands below `ii_end`.
        assert!(
            ii_end + r <= w
                && out_g.len() >= ii_end
                && out_d1.len() >= ii_end
                && out_d2.len() >= ii_end,
            "row filter bounds"
        );
        let mut x = 0;
        while x < n_wide {
            let base = bl_end + x - r;
            let mut ag = [zero; U];
            let mut a1 = [zero; U];
            let mut a2 = [zero; U];
            for j in 0..taps_n {
                let cg = V::splat(tg[j]);
                let c1 = V::splat(t1[j]);
                let c2 = V::splat(t2[j]);
                for c in 0..U {
                    // SAFETY: the deepest read ends at
                    // (ii_end - 1) + r + 1 <= w, asserted above.
                    let s = unsafe { V::load_at(row, base + j + c * lanes) };
                    ag[c] = ag[c] + cg * s;
                    a1[c] = a1[c] + c1 * s;
                    a2[c] = a2[c] + c2 * s;
                }
            }
            for c in 0..U {
                let o = bl_end + x + c * lanes;
                // SAFETY: o + lanes <= ii_end <= each output's length.
                unsafe {
                    ag[c].store_at(out_g, o);
                    a1[c].store_at(out_d1, o);
                    a2[c].store_at(out_d2, o);
                }
            }
            x += lanes * U;
        }
        while x < n {
            let base = bl_end + x - r;
            let mut ag = zero;
            let mut a1 = zero;
            let mut a2 = zero;
            for j in 0..taps_n {
                // SAFETY: see the wide loop above.
                let s = unsafe { V::load_at(row, base + j) };
                ag = ag + V::splat(tg[j]) * s;
                a1 = a1 + V::splat(t1[j]) * s;
                a2 = a2 + V::splat(t2[j]) * s;
            }
            let o = bl_end + x;
            // SAFETY: o + lanes <= ii_end <= each output's length.
            unsafe {
                ag.store_at(out_g, o);
                a1.store_at(out_d1, o);
                a2.store_at(out_d2, o);
            }
            x += lanes;
        }
        for x in bl_end + n..ii_end {
            let base = x - r;
            let mut ag = 0.0f32;
            let mut a1 = 0.0f32;
            let mut a2 = 0.0f32;
            for j in 0..taps_n {
                let s = row[base + j];
                ag += tg[j] * s;
                a1 += t1[j] * s;
                a2 += t2[j] * s;
            }
            out_g[x] = ag;
            out_d1[x] = a1;
            out_d2[x] = a2;
        }
    }
}

/// The fused column-convolution + eigenvalue/ridge-response + running-max
/// stage for one output row. For each 8-lane pixel chunk the three column
/// sums (taps ascending, from `0.0` — the per-pixel op order of
/// `convolve_cols`) accumulate in registers, flow straight into the
/// response math (exact expression order of
/// [`crate::hessian::ridge_response`]: shared `tr·0.5`,
/// `(diff²·0.25 + ixy²).sqrt()`, branch-free select for the `hi ≤ 0`
/// early-out) and update `acc` with an exact `resp > acc` select — the
/// Hessian components never touch memory at all. The scalar tail repeats
/// the same accumulation order and calls `ridge_response` directly, so
/// every pixel is bit-identical to the unfused reference.
///
/// `offsets[j]` is the base index of tap `j`'s (clamped) ring row, already
/// shifted by the ROI's left edge.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn col_response_row<V: SimdF32, const U: usize, const INIT: bool>(
    ring_g: &[f32],
    ring_d1: &[f32],
    ring_d2: &[f32],
    offsets: &[usize],
    tg: &[f32],
    t1: &[f32],
    t2: &[f32],
    acc: &mut [f32],
) {
    // The per-pixel column sums are latency chains (each tap's add depends
    // on the previous tap). Four chunks per tap iteration give the core
    // 12 independent accumulator chains to interleave, which is what
    // hides the FP-add latency; per-pixel op order is untouched.
    let lanes = V::WIDTH;
    let len = acc.len();
    let n = len - len % lanes;
    let n_wide = len - len % (lanes * U);
    let zero = V::splat(0.0);
    let taps_n = offsets.len();
    // One bound check per tap per row instead of one per load: every SIMD
    // load below reads `ring_*[o + x .. o + x + 8]` with `x + 8 <= n <= len`.
    for &o in offsets {
        assert!(
            o + len <= ring_g.len() && o + len <= ring_d1.len() && o + len <= ring_d2.len(),
            "ring offsets out of bounds"
        );
    }
    let mut x = 0;
    while x < n_wide {
        let mut xx = [zero; U];
        let mut yy = [zero; U];
        let mut xy = [zero; U];
        for j in 0..taps_n {
            let o = offsets[j] + x;
            let cg = V::splat(tg[j]);
            let c1 = V::splat(t1[j]);
            let c2 = V::splat(t2[j]);
            for c in 0..U {
                let oc = o + c * lanes;
                // Ixx = G''(x) then G(y); Iyy = G(x) then G''(y);
                // Ixy = G'(x) then G'(y).
                // SAFETY: oc + lanes <= offsets[j] + len, checked above.
                unsafe {
                    xx[c] = xx[c] + cg * V::load_at(ring_d2, oc);
                    yy[c] = yy[c] + c2 * V::load_at(ring_g, oc);
                    xy[c] = xy[c] + c1 * V::load_at(ring_d1, oc);
                }
            }
        }
        for c in 0..U {
            let xc = x + c * lanes;
            respond_update::<V, INIT>(xx[c], yy[c], xy[c], &mut acc[xc..xc + lanes]);
        }
        x += lanes * U;
    }
    while x < n {
        let mut xx = zero;
        let mut yy = zero;
        let mut xy = zero;
        for j in 0..taps_n {
            let o = offsets[j] + x;
            // SAFETY: o + lanes <= offsets[j] + len, checked above.
            unsafe {
                xx = xx + V::splat(tg[j]) * V::load_at(ring_d2, o);
                yy = yy + V::splat(t2[j]) * V::load_at(ring_g, o);
                xy = xy + V::splat(t1[j]) * V::load_at(ring_d1, o);
            }
        }
        respond_update::<V, INIT>(xx, yy, xy, &mut acc[x..x + lanes]);
        x += lanes;
    }
    for (x, a) in acc.iter_mut().enumerate().take(len).skip(n) {
        let mut xx = 0.0f32;
        let mut yy = 0.0f32;
        let mut xy = 0.0f32;
        for j in 0..taps_n {
            let o = offsets[j] + x;
            xx += tg[j] * ring_d2[o];
            yy += t2[j] * ring_g[o];
            xy += t1[j] * ring_d1[o];
        }
        let r = crate::hessian::ridge_response(xx, yy, xy);
        if INIT {
            *a = if r > 0.0 { r } else { 0.0 };
        } else if r > *a {
            *a = r;
        }
    }
}

/// Ridge response + running max for one lane chunk of Hessian sums, in
/// the exact expression order of [`crate::hessian::ridge_response`].
#[inline(always)]
fn respond_update<V: SimdF32, const INIT: bool>(xx: V, yy: V, xy: V, acc: &mut [f32]) {
    let half = V::splat(0.5);
    let quarter = V::splat(0.25);
    let one = V::splat(1.0);
    let zero = V::splat(0.0);
    let tr_half = (xx + yy) * half;
    let diff = xx - yy;
    let disc = (diff * diff * quarter + xy * xy).sqrt();
    let hi = tr_half + disc;
    let lo = tr_half - disc;
    let aniso = one - (lo.abs() / hi).min(one);
    let resp = V::select_gt(hi, zero, hi * aniso, zero);
    if INIT {
        // `resp` is +0.0 or positive in every lane, so `max(resp, 0.0)`
        // against a freshly zeroed accumulator is `resp` itself.
        resp.store(acc);
    } else {
        let cur = V::load(acc);
        V::select_gt(resp, cur, resp, cur).store(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hessian::{
        accumulate_max_response, hessian_at_scale, ridge_response, HessianImages, HessianScratch,
    };
    use crate::image::Image;

    /// The in-crate smoke check of the bit-exactness contract; the full
    /// randomized sweep lives in `tests/fused_rdg_identity.rs`.
    #[test]
    fn fused_scale_bit_identical_to_reference() {
        for &(w, h) in &[(64usize, 48usize), (33, 61), (17, 17)] {
            let src: ImageF32 =
                Image::from_fn(w, h, |x, y| ((x * 31 + y * 17) % 101) as f32 * 0.37 - 12.5);
            for &sigma in &[1.5f32, 2.5, 4.0] {
                for roi in [
                    src.full_roi(),
                    Roi::new(3, 5, w.saturating_sub(7).max(1), h.saturating_sub(9).max(1)),
                ] {
                    let mut h_imgs = HessianImages {
                        ixx: ImageF32::new(w, h),
                        iyy: ImageF32::new(w, h),
                        ixy: ImageF32::new(w, h),
                    };
                    let mut hs = HessianScratch::new(w, h);
                    let mut ref_acc = ImageF32::new(w, h);
                    hessian_at_scale(&src, &mut h_imgs, &mut hs, roi, sigma);
                    accumulate_max_response(&h_imgs, &mut ref_acc, roi, ridge_response);

                    let mut fused_acc = ImageF32::new(w, h);
                    let mut scratch = FusedScratch::new();
                    let g = Kernel1D::gaussian(sigma);
                    let d1 = Kernel1D::gaussian_d1(sigma);
                    let d2 = Kernel1D::gaussian_d2(sigma);
                    fused_ridge_scale(&src, &mut fused_acc, &mut scratch, &g, &d1, &d2, roi);

                    let c = roi.clamp_to(w, h);
                    for y in c.y..c.bottom() {
                        for x in c.x..c.right() {
                            assert_eq!(
                                fused_acc.get(x, y).to_bits(),
                                ref_acc.get(x, y).to_bits(),
                                "{w}x{h} sigma {sigma} roi {roi:?} at ({x},{y}): {} vs {}",
                                fused_acc.get(x, y),
                                ref_acc.get(x, y)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_grows_once_and_reports_bytes() {
        let src: ImageF32 = Image::filled(64, 64, 100.0);
        let mut acc = ImageF32::new(64, 64);
        let mut scratch = FusedScratch::new();
        assert_eq!(scratch.byte_size(), 0);
        let g = Kernel1D::gaussian(2.5);
        let d1 = Kernel1D::gaussian_d1(2.5);
        let d2 = Kernel1D::gaussian_d2(2.5);
        fused_ridge_scale(&src, &mut acc, &mut scratch, &g, &d1, &d2, src.full_roi());
        let r = g.radius();
        let expected = 3 * (2 * r + 1) * 64 * std::mem::size_of::<f32>();
        assert_eq!(scratch.byte_size(), expected);
        // a second identical pass reuses the buffers
        fused_ridge_scale(&src, &mut acc, &mut scratch, &g, &d1, &d2, src.full_roi());
        assert_eq!(scratch.byte_size(), expected);
    }

    #[test]
    fn empty_roi_is_a_no_op() {
        let src: ImageF32 = Image::filled(16, 16, 1.0);
        let mut acc = ImageF32::filled(16, 16, -3.0);
        let mut scratch = FusedScratch::new();
        let g = Kernel1D::gaussian(1.5);
        let d1 = Kernel1D::gaussian_d1(1.5);
        let d2 = Kernel1D::gaussian_d2(1.5);
        fused_ridge_scale(
            &src,
            &mut acc,
            &mut scratch,
            &g,
            &d1,
            &d2,
            Roi::new(20, 20, 4, 4),
        );
        assert_eq!(acc.get(0, 0), -3.0);
        assert_eq!(scratch.byte_size(), 0);
    }
}
