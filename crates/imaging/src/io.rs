//! PGM (portable graymap) image I/O.
//!
//! The examples and experiments write intermediate and enhanced frames as
//! binary PGM files — the simplest format any image viewer opens. 16-bit
//! images are windowed to 8 bits on write (with the window returned), or
//! written losslessly as 16-bit PGM (maxval 65535).

use crate::image::{Image, ImageU16};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes a u16 image as an 8-bit binary PGM, windowed to `[lo, hi]`
/// (values outside clamp). Returns the window used.
pub fn write_pgm8(
    path: &Path,
    img: &ImageU16,
    window: Option<(u16, u16)>,
) -> io::Result<(u16, u16)> {
    let (lo, hi) = window.unwrap_or_else(|| img.min_max());
    let hi = hi.max(lo + 1);
    let mut f = BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P5\n{} {}\n255", img.width(), img.height())?;
    let span = (hi - lo) as f32;
    let mut bytes = Vec::with_capacity(img.width() * img.height());
    for y in 0..img.height() {
        for &v in img.row(y) {
            let c = v.clamp(lo, hi);
            bytes.push((((c - lo) as f32 / span) * 255.0).round() as u8);
        }
    }
    f.write_all(&bytes)?;
    f.flush()?;
    Ok((lo, hi))
}

/// Writes a u16 image losslessly as a 16-bit binary PGM (big-endian
/// samples, maxval 65535, per the Netpbm specification).
pub fn write_pgm16(path: &Path, img: &ImageU16) -> io::Result<()> {
    let mut f = BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P5\n{} {}\n65535", img.width(), img.height())?;
    let mut bytes = Vec::with_capacity(img.width() * img.height() * 2);
    for y in 0..img.height() {
        for &v in img.row(y) {
            bytes.extend_from_slice(&v.to_be_bytes());
        }
    }
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(())
}

/// Reads a binary PGM (P5) with maxval 255 or 65535 into a u16 image.
pub fn read_pgm(path: &Path) -> io::Result<ImageU16> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);

    fn read_token(r: &mut impl BufRead) -> io::Result<String> {
        let mut token = String::new();
        loop {
            let mut byte = [0u8; 1];
            r.read_exact(&mut byte)?;
            let c = byte[0] as char;
            if c == '#' {
                // comment: skip to end of line
                let mut line = String::new();
                r.read_line(&mut line)?;
                continue;
            }
            if c.is_whitespace() {
                if token.is_empty() {
                    continue;
                }
                return Ok(token);
            }
            token.push(c);
        }
    }

    let magic = read_token(&mut reader)?;
    if magic != "P5" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("not a binary PGM: {magic}"),
        ));
    }
    let parse = |t: String| -> io::Result<usize> {
        t.parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad header: {e}")))
    };
    let width = parse(read_token(&mut reader)?)?;
    let height = parse(read_token(&mut reader)?)?;
    let maxval = parse(read_token(&mut reader)?)?;
    if width == 0 || height == 0 || width * height > 1 << 28 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible dimensions",
        ));
    }

    let n = width * height;
    let data = if maxval <= 255 {
        let mut raw = vec![0u8; n];
        reader.read_exact(&mut raw)?;
        raw.into_iter().map(u16::from).collect()
    } else if maxval <= 65535 {
        let mut raw = vec![0u8; n * 2];
        reader.read_exact(&mut raw)?;
        raw.chunks_exact(2)
            .map(|c| u16::from_be_bytes([c[0], c[1]]))
            .collect()
    } else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "maxval too large",
        ));
    };
    Ok(Image::from_vec(width, height, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("triplec_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn pgm16_round_trips_losslessly() {
        let img = Image::from_fn(17, 9, |x, y| (x * 301 + y * 4099) as u16);
        let p = tmp("rt16.pgm");
        write_pgm16(&p, &img).unwrap();
        let back = read_pgm(&p).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn pgm8_windows_and_round_trips_shape() {
        let img = Image::from_fn(8, 8, |x, _| (x * 1000) as u16);
        let p = tmp("rt8.pgm");
        let (lo, hi) = write_pgm8(&p, &img, None).unwrap();
        assert_eq!((lo, hi), (0, 7000));
        let back = read_pgm(&p).unwrap();
        assert_eq!(back.dims(), (8, 8));
        // monotone gradient preserved
        for x in 1..8 {
            assert!(back.get(x, 0) >= back.get(x - 1, 0));
        }
        assert_eq!(back.get(0, 0), 0);
        assert_eq!(back.get(7, 0), 255);
    }

    #[test]
    fn explicit_window_clamps() {
        let img = Image::from_vec(3, 1, vec![0u16, 500, 5000]);
        let p = tmp("win.pgm");
        write_pgm8(&p, &img, Some((100, 1000))).unwrap();
        let back = read_pgm(&p).unwrap();
        assert_eq!(back.get(0, 0), 0); // clamped low
        assert_eq!(back.get(2, 0), 255); // clamped high
    }

    #[test]
    fn rejects_non_pgm() {
        let p = tmp("bad.pgm");
        std::fs::write(&p, b"P6\n1 1\n255\nxxx").unwrap();
        assert!(read_pgm(&p).is_err());
    }

    #[test]
    fn header_comments_skipped() {
        let p = tmp("comment.pgm");
        std::fs::write(&p, b"P5\n# a comment line\n2 1\n255\nAB").unwrap();
        let img = read_pgm(&p).unwrap();
        assert_eq!(img.dims(), (2, 1));
        assert_eq!(img.get(0, 0), b'A' as u16);
    }

    #[test]
    fn flat_image_does_not_divide_by_zero() {
        let img = Image::filled(4, 4, 1234u16);
        let p = tmp("flat.pgm");
        let (lo, hi) = write_pgm8(&p, &img, None).unwrap();
        assert!(hi > lo);
        assert!(read_pgm(&p).is_ok());
    }
}
