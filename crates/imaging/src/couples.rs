//! CPLS SEL — couples selection.
//!
//! Based on a-priori known distances between the two balloon markers on the
//! catheter, selects the best marker couple from the set of candidate
//! couples (Section 3). The candidate set is quadratic in the number of
//! extracted markers, which makes the task's computation time depend on the
//! image content — the paper models it with a Markov chain.

use crate::markers::Marker;

/// A selected marker couple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Couple {
    pub a: Marker,
    pub b: Marker,
    /// Combined selection score (lower is better).
    pub score: f64,
}

impl Couple {
    /// Midpoint of the couple.
    pub fn center(&self) -> (f64, f64) {
        ((self.a.x + self.b.x) * 0.5, (self.a.y + self.b.y) * 0.5)
    }

    /// Distance between the two markers.
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Orientation of the marker axis, radians in `(-pi, pi]`.
    pub fn angle(&self) -> f64 {
        (self.b.y - self.a.y).atan2(self.b.x - self.a.x)
    }
}

/// Configuration of couples selection.
#[derive(Debug, Clone)]
pub struct CplsConfig {
    /// A-priori marker distance (balloon geometry), pixels.
    pub expected_distance: f64,
    /// Acceptable deviation from the expected distance, pixels.
    pub distance_tolerance: f64,
    /// Weight of the distance error in the score.
    pub w_distance: f64,
    /// Weight of the (inverted, normalized) strength term in the score.
    pub w_strength: f64,
    /// Weight of the temporal-consistency term (movement of the couple
    /// center relative to the previous frame's selection).
    pub w_temporal: f64,
    /// Maximum plausible inter-frame movement of the couple center, pixels;
    /// candidates moving further are penalized proportionally.
    pub max_motion: f64,
}

impl Default for CplsConfig {
    fn default() -> Self {
        Self {
            expected_distance: 24.0,
            distance_tolerance: 8.0,
            w_distance: 1.0,
            w_strength: 0.5,
            w_temporal: 0.8,
            max_motion: 12.0,
        }
    }
}

/// Result of couples selection.
#[derive(Debug, Clone)]
pub struct CplsOutput {
    /// Best couple, if any candidate pair passed the distance gate.
    pub couple: Option<Couple>,
    /// Number of candidate pairs that were scored (content-dependent load).
    pub pairs_scored: usize,
}

/// Selects the best marker couple from `candidates`.
///
/// `previous` is the couple selected in the preceding frame, used for the
/// temporal-consistency term; pass `None` on the first frame or after a
/// tracking loss.
pub fn cpls_select(
    candidates: &[Marker],
    previous: Option<&Couple>,
    cfg: &CplsConfig,
) -> CplsOutput {
    let max_strength = candidates
        .iter()
        .map(|m| m.strength)
        .fold(0.0f32, f32::max)
        .max(1e-6) as f64;

    let mut best: Option<Couple> = None;
    let mut pairs_scored = 0usize;
    for i in 0..candidates.len() {
        for j in (i + 1)..candidates.len() {
            let a = candidates[i];
            let b = candidates[j];
            let d = a.distance(&b);
            let dist_err = (d - cfg.expected_distance).abs();
            if dist_err > cfg.distance_tolerance {
                continue;
            }
            pairs_scored += 1;
            let strength = (a.strength as f64 + b.strength as f64) / (2.0 * max_strength);
            let mut score = cfg.w_distance * (dist_err / cfg.distance_tolerance)
                + cfg.w_strength * (1.0 - strength);
            if let Some(prev) = previous {
                let (px, py) = prev.center();
                let cx = (a.x + b.x) * 0.5;
                let cy = (a.y + b.y) * 0.5;
                let motion = ((cx - px).powi(2) + (cy - py).powi(2)).sqrt();
                score += cfg.w_temporal * (motion / cfg.max_motion).min(3.0);
            }
            let cand = Couple { a, b, score };
            if best.as_ref().is_none_or(|c| cand.score < c.score) {
                best = Some(cand);
            }
        }
    }
    CplsOutput {
        couple: best,
        pairs_scored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(x: f64, y: f64, strength: f32) -> Marker {
        Marker {
            x,
            y,
            strength,
            scale: 2.0,
        }
    }

    #[test]
    fn selects_pair_at_expected_distance() {
        let cfg = CplsConfig {
            expected_distance: 20.0,
            distance_tolerance: 4.0,
            ..Default::default()
        };
        let cands = vec![
            mk(10.0, 10.0, 100.0),
            mk(30.0, 10.0, 100.0), // 20 px from first: perfect
            mk(90.0, 90.0, 100.0), // far from everything
        ];
        let out = cpls_select(&cands, None, &cfg);
        let c = out.couple.expect("couple expected");
        assert!((c.length() - 20.0).abs() < 1e-9);
        assert!(out.pairs_scored >= 1);
    }

    #[test]
    fn rejects_when_no_pair_in_tolerance() {
        let cfg = CplsConfig {
            expected_distance: 20.0,
            distance_tolerance: 2.0,
            ..Default::default()
        };
        let cands = vec![mk(0.0, 0.0, 100.0), mk(50.0, 0.0, 100.0)];
        let out = cpls_select(&cands, None, &cfg);
        assert!(out.couple.is_none());
        assert_eq!(out.pairs_scored, 0);
    }

    #[test]
    fn stronger_pair_wins_at_equal_distance() {
        let cfg = CplsConfig {
            expected_distance: 20.0,
            distance_tolerance: 4.0,
            w_temporal: 0.0,
            ..Default::default()
        };
        let cands = vec![
            mk(0.0, 0.0, 50.0),
            mk(20.0, 0.0, 50.0),
            mk(0.0, 40.0, 200.0),
            mk(20.0, 40.0, 200.0),
        ];
        let out = cpls_select(&cands, None, &cfg);
        let c = out.couple.unwrap();
        assert!(c.a.y > 30.0 && c.b.y > 30.0, "picked weak pair: {:?}", c);
    }

    #[test]
    fn temporal_consistency_prefers_nearby_couple() {
        let cfg = CplsConfig {
            expected_distance: 20.0,
            distance_tolerance: 4.0,
            w_strength: 0.0,
            w_temporal: 2.0,
            ..Default::default()
        };
        let prev = Couple {
            a: mk(0.0, 0.0, 100.0),
            b: mk(20.0, 0.0, 100.0),
            score: 0.0,
        };
        let cands = vec![
            mk(1.0, 1.0, 100.0),
            mk(21.0, 1.0, 100.0), // near previous center
            mk(60.0, 60.0, 100.0),
            mk(80.0, 60.0, 100.0), // far away
        ];
        let out = cpls_select(&cands, Some(&prev), &cfg);
        let c = out.couple.unwrap();
        assert!(c.a.y < 10.0, "temporal term ignored: {:?}", c);
    }

    #[test]
    fn pairs_scored_grows_quadratically() {
        let cfg = CplsConfig {
            expected_distance: 10.0,
            distance_tolerance: 1e9,
            ..Default::default()
        };
        let few: Vec<Marker> = (0..4).map(|i| mk(i as f64, 0.0, 10.0)).collect();
        let many: Vec<Marker> = (0..16).map(|i| mk(i as f64, 0.0, 10.0)).collect();
        let a = cpls_select(&few, None, &cfg).pairs_scored;
        let b = cpls_select(&many, None, &cfg).pairs_scored;
        assert_eq!(a, 6);
        assert_eq!(b, 120);
    }

    #[test]
    fn empty_and_single_candidate_yield_none() {
        let cfg = CplsConfig::default();
        assert!(cpls_select(&[], None, &cfg).couple.is_none());
        assert!(cpls_select(&[mk(0.0, 0.0, 1.0)], None, &cfg)
            .couple
            .is_none());
    }

    #[test]
    fn couple_geometry_helpers() {
        let c = Couple {
            a: mk(0.0, 0.0, 1.0),
            b: mk(10.0, 0.0, 1.0),
            score: 0.0,
        };
        assert_eq!(c.center(), (5.0, 0.0));
        assert!((c.length() - 10.0).abs() < 1e-12);
        assert!(c.angle().abs() < 1e-12);
        let d = Couple {
            a: mk(0.0, 0.0, 1.0),
            b: mk(0.0, 5.0, 1.0),
            score: 0.0,
        };
        assert!((d.angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }
}
