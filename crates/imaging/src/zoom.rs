//! ZOOM — region-of-interest magnification for display.
//!
//! The output of the application is presented by zooming in on the ROI
//! containing the stent (Section 3). Bilinear and bicubic interpolation
//! are provided; the task operates on a whole output image granularity, so
//! its memory requirement exceeds the L2 capacity at full display size
//! (the intra-task bandwidth analysis of Section 5 includes ZOOM).

use crate::image::{ImageU16, Roi};

/// Interpolation method of the zoom stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoomFilter {
    /// 2x2 bilinear interpolation.
    Bilinear,
    /// 4x4 Catmull-Rom bicubic interpolation.
    Bicubic,
}

/// Configuration of the zoom task.
#[derive(Debug, Clone)]
pub struct ZoomConfig {
    /// Output width, pixels.
    pub out_width: usize,
    /// Output height, pixels.
    pub out_height: usize,
    /// Interpolation filter.
    pub filter: ZoomFilter,
}

impl Default for ZoomConfig {
    fn default() -> Self {
        Self {
            out_width: 512,
            out_height: 512,
            filter: ZoomFilter::Bilinear,
        }
    }
}

/// Catmull-Rom cubic weight.
#[inline]
fn cubic_weight(t: f32) -> f32 {
    let a = -0.5f32;
    let t = t.abs();
    if t <= 1.0 {
        (a + 2.0) * t * t * t - (a + 3.0) * t * t + 1.0
    } else if t < 2.0 {
        a * t * t * t - 5.0 * a * t * t + 8.0 * a * t - 4.0 * a
    } else {
        0.0
    }
}

/// Magnifies `roi` of `src` to the configured output size.
pub fn zoom(src: &ImageU16, roi: Roi, cfg: &ZoomConfig) -> ImageU16 {
    let mut out = ImageU16::new(cfg.out_width, cfg.out_height);
    zoom_band(src, roi, cfg, &mut out, 0, cfg.out_height);
    out
}

/// Computes output rows `y0..y1` of the zoom into `out` (which must have
/// the configured output dimensions). Disjoint row bands are independent,
/// so the zoom can be data-partitioned across cores.
pub fn zoom_band(
    src: &ImageU16,
    roi: Roi,
    cfg: &ZoomConfig,
    out: &mut ImageU16,
    y0: usize,
    y1: usize,
) {
    assert_eq!(
        out.dims(),
        (cfg.out_width, cfg.out_height),
        "output geometry mismatch"
    );
    let roi = roi.clamp_to(src.width(), src.height());
    if roi.is_empty() || cfg.out_width == 0 || cfg.out_height == 0 {
        return;
    }
    let sx = roi.width as f64 / cfg.out_width as f64;
    let sy = roi.height as f64 / cfg.out_height as f64;
    for oy in y0..y1.min(cfg.out_height) {
        // center-aligned sampling
        let fy = roi.y as f64 + (oy as f64 + 0.5) * sy - 0.5;
        for ox in 0..cfg.out_width {
            let fx = roi.x as f64 + (ox as f64 + 0.5) * sx - 0.5;
            let v = match cfg.filter {
                ZoomFilter::Bilinear => crate::enhance::sample_frame(src, fx, fy),
                ZoomFilter::Bicubic => sample_bicubic(src, fx, fy),
            };
            out.set(ox, oy, v.clamp(0.0, u16::MAX as f32) as u16);
        }
    }
}

/// 4x4 Catmull-Rom sample with border replication.
fn sample_bicubic(src: &ImageU16, x: f64, y: f64) -> f32 {
    let x0 = x.floor() as isize;
    let y0 = y.floor() as isize;
    let fx = (x - x0 as f64) as f32;
    let fy = (y - y0 as f64) as f32;
    let mut acc = 0.0f32;
    let mut wsum = 0.0f32;
    for j in -1isize..=2 {
        let wy = cubic_weight(j as f32 - fy);
        for i in -1isize..=2 {
            let wx = cubic_weight(i as f32 - fx);
            let w = wx * wy;
            acc += w * src.get_clamped(x0 + i, y0 + j) as f32;
            wsum += w;
        }
    }
    if wsum.abs() < 1e-9 {
        0.0
    } else {
        acc / wsum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn identity_zoom_copies() {
        let src = Image::from_fn(16, 16, |x, y| (x * 16 + y) as u16);
        let cfg = ZoomConfig {
            out_width: 16,
            out_height: 16,
            filter: ZoomFilter::Bilinear,
        };
        let out = zoom(&src, src.full_roi(), &cfg);
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(out.get(x, y), src.get(x, y), "({x},{y})");
            }
        }
    }

    #[test]
    fn constant_region_stays_constant() {
        let src = ImageU16::filled(32, 32, 1234);
        for filter in [ZoomFilter::Bilinear, ZoomFilter::Bicubic] {
            let cfg = ZoomConfig {
                out_width: 64,
                out_height: 64,
                filter,
            };
            let out = zoom(&src, Roi::new(4, 4, 16, 16), &cfg);
            for y in 0..64 {
                for x in 0..64 {
                    let v = out.get(x, y);
                    assert!(
                        (v as i32 - 1234).abs() <= 1,
                        "({x},{y}) = {v} with {:?}",
                        filter
                    );
                }
            }
        }
    }

    #[test]
    fn upscale_preserves_gradient_direction() {
        let src = Image::from_fn(16, 16, |x, _| (x * 100) as u16);
        let cfg = ZoomConfig {
            out_width: 64,
            out_height: 64,
            filter: ZoomFilter::Bilinear,
        };
        let out = zoom(&src, src.full_roi(), &cfg);
        for y in 0..64 {
            for x in 1..64 {
                assert!(
                    out.get(x, y) >= out.get(x - 1, y),
                    "not monotone at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn bicubic_sharper_than_bilinear_on_edge() {
        // a step edge: bicubic overshoots slightly (ringing), so its output
        // range must be at least as wide as bilinear's
        let src = Image::from_fn(16, 16, |x, _| if x < 8 { 100u16 } else { 2000 });
        let mk = |filter| {
            let cfg = ZoomConfig {
                out_width: 64,
                out_height: 16,
                filter,
            };
            zoom(&src, src.full_roi(), &cfg)
        };
        let (lin_lo, lin_hi) = mk(ZoomFilter::Bilinear).min_max();
        let (cub_lo, cub_hi) = mk(ZoomFilter::Bicubic).min_max();
        assert!(cub_hi >= lin_hi);
        assert!(cub_lo <= lin_lo);
    }

    #[test]
    fn empty_roi_yields_black() {
        let src = ImageU16::filled(8, 8, 500);
        let cfg = ZoomConfig {
            out_width: 4,
            out_height: 4,
            filter: ZoomFilter::Bilinear,
        };
        let out = zoom(&src, Roi::new(0, 0, 0, 0), &cfg);
        assert_eq!(out.min_max(), (0, 0));
    }

    #[test]
    fn cubic_weights_partition_unity_near_center() {
        // sum of the 4 taps at any phase is ~1 for Catmull-Rom
        for phase in [0.0f32, 0.25, 0.5, 0.75] {
            let s: f32 = (-1..=2).map(|i| cubic_weight(i as f32 - phase)).sum();
            assert!((s - 1.0).abs() < 1e-5, "phase {phase}: {s}");
        }
    }
}
