//! ZOOM — region-of-interest magnification for display.
//!
//! The output of the application is presented by zooming in on the ROI
//! containing the stent (Section 3). Bilinear and bicubic interpolation
//! are provided; the task operates on a whole output image granularity, so
//! its memory requirement exceeds the L2 capacity at full display size
//! (the intra-task bandwidth analysis of Section 5 includes ZOOM).
//!
//! The interpolation is **separable**: per-column tap indices/weights are
//! planned once per geometry, each needed *source* row is resolved
//! horizontally into a pooled f32 row buffer (reused across output rows
//! while upscaling), and the vertical combine runs as a SIMD stream.
//! [`zoom_band`] is bit-identical to [`zoom_band_reference`], the scalar
//! separable form (enforced by `tests/simd_stage_identity.rs`).

use crate::image::{ImageU16, Roi};
use crate::simd::{F32x8, SimdF32};

/// Interpolation method of the zoom stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoomFilter {
    /// 2x2 bilinear interpolation.
    Bilinear,
    /// 4x4 Catmull-Rom bicubic interpolation.
    Bicubic,
}

/// Configuration of the zoom task.
#[derive(Debug, Clone)]
pub struct ZoomConfig {
    /// Output width, pixels.
    pub out_width: usize,
    /// Output height, pixels.
    pub out_height: usize,
    /// Interpolation filter.
    pub filter: ZoomFilter,
}

impl Default for ZoomConfig {
    fn default() -> Self {
        Self {
            out_width: 512,
            out_height: 512,
            filter: ZoomFilter::Bilinear,
        }
    }
}

/// Catmull-Rom cubic weight.
#[inline]
fn cubic_weight(t: f32) -> f32 {
    let a = -0.5f32;
    let t = t.abs();
    if t <= 1.0 {
        (a + 2.0) * t * t * t - (a + 3.0) * t * t + 1.0
    } else if t < 2.0 {
        a * t * t * t - 5.0 * a * t * t + 8.0 * a * t - 4.0 * a
    } else {
        0.0
    }
}

/// Guard below which a tap-weight sum counts as degenerate (matches the
/// reference's normalization guard).
const WSUM_EPS: f32 = 1e-9;

/// Per-column bilinear plan: two clamped source columns and their
/// weights.
#[derive(Debug, Clone, Copy, Default)]
struct ColBil {
    i0: u32,
    i1: u32,
    w0: f32,
    w1: f32,
}

/// Per-column bicubic plan: four clamped source columns, their
/// Catmull-Rom weights, and the weight sum used for normalization.
#[derive(Debug, Clone, Copy, Default)]
struct ColCub {
    idx: [u32; 4],
    w: [f32; 4],
    swx: f32,
}

/// Pooled scratch of the separable zoom: per-column tap plans (cached
/// across frames while the geometry is stable) and the horizontal row
/// buffers the vertical SIMD combine reads from.
#[derive(Debug, Clone, Default)]
pub struct ZoomScratch {
    plan_bil: Vec<ColBil>,
    plan_cub: Vec<ColCub>,
    /// `n_taps x out_width` horizontally-resolved source rows.
    rows: Vec<f32>,
    /// Source row held by each slot of `rows` (`-1` = empty). Only valid
    /// within one [`zoom_band_with`] call — source content changes
    /// between frames.
    row_src: [isize; 4],
    /// Geometry key the plans were computed for.
    plan_key: Option<PlanKey>,
}

/// Zoom-plan cache key:
/// `(roi.x, roi.y, roi.width, roi.height, out_w, src_w, src_h, filter)`.
type PlanKey = (usize, usize, usize, usize, usize, usize, usize, ZoomFilter);

impl ZoomScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current scratch footprint in bytes (plans + row pool).
    pub fn byte_size(&self) -> usize {
        self.plan_bil.capacity() * std::mem::size_of::<ColBil>()
            + self.plan_cub.capacity() * std::mem::size_of::<ColCub>()
            + self.rows.capacity() * std::mem::size_of::<f32>()
    }

    fn ensure_plans(&mut self, src: &ImageU16, roi: Roi, cfg: &ZoomConfig) {
        let key = (
            roi.x,
            roi.y,
            roi.width,
            roi.height,
            cfg.out_width,
            src.width(),
            src.height(),
            cfg.filter,
        );
        let taps = match cfg.filter {
            ZoomFilter::Bilinear => 2,
            ZoomFilter::Bicubic => 4,
        };
        self.rows.resize(taps * cfg.out_width, 0.0);
        self.row_src = [-1; 4];
        if self.plan_key == Some(key) {
            return;
        }
        let sx = roi.width as f64 / cfg.out_width as f64;
        let w = src.width();
        let wm1 = (w - 1) as f64;
        match cfg.filter {
            ZoomFilter::Bilinear => {
                self.plan_bil.clear();
                self.plan_bil.reserve(cfg.out_width);
                for ox in 0..cfg.out_width {
                    let fx = roi.x as f64 + (ox as f64 + 0.5) * sx - 0.5;
                    let xf = fx.clamp(0.0, wm1);
                    let xi0 = xf.floor() as usize;
                    let xi1 = (xi0 + 1).min(w - 1);
                    let wx = (xf - xi0 as f64) as f32;
                    self.plan_bil.push(ColBil {
                        i0: xi0 as u32,
                        i1: xi1 as u32,
                        w0: 1.0 - wx,
                        w1: wx,
                    });
                }
            }
            ZoomFilter::Bicubic => {
                self.plan_cub.clear();
                self.plan_cub.reserve(cfg.out_width);
                for ox in 0..cfg.out_width {
                    let fx = roi.x as f64 + (ox as f64 + 0.5) * sx - 0.5;
                    let xb = fx.floor() as isize;
                    let gx = (fx - xb as f64) as f32;
                    let mut plan = ColCub::default();
                    for (k, j) in (-1isize..=2).enumerate() {
                        plan.w[k] = cubic_weight(j as f32 - gx);
                        plan.swx += plan.w[k];
                        plan.idx[k] = (xb + j).clamp(0, w as isize - 1) as u32;
                    }
                    self.plan_cub.push(plan);
                }
            }
        }
        self.plan_key = Some(key);
    }

    /// Returns the horizontally-resolved f32 row for source row `sy`,
    /// filling its pool slot if a different row currently occupies it.
    /// Consecutive source rows map to distinct slots (`sy % taps`), so
    /// upscaled output rows reuse the overlap instead of recomputing it.
    fn resolve_row(&mut self, src: &ImageU16, sy: usize, taps: usize, out_w: usize) -> &[f32] {
        let slot = sy % taps;
        let range = slot * out_w..(slot + 1) * out_w;
        if self.row_src[slot] != sy as isize {
            let srow = src.row(sy);
            let dst = &mut self.rows[range.clone()];
            match self.plan_key.map(|k| k.7) {
                Some(ZoomFilter::Bilinear) => {
                    for (d, p) in dst.iter_mut().zip(&self.plan_bil) {
                        *d = srow[p.i0 as usize] as f32 * p.w0 + srow[p.i1 as usize] as f32 * p.w1;
                    }
                }
                Some(ZoomFilter::Bicubic) => {
                    for (d, p) in dst.iter_mut().zip(&self.plan_cub) {
                        let acc = ((p.w[0] * srow[p.idx[0] as usize] as f32
                            + p.w[1] * srow[p.idx[1] as usize] as f32)
                            + p.w[2] * srow[p.idx[2] as usize] as f32)
                            + p.w[3] * srow[p.idx[3] as usize] as f32;
                        *d = if p.swx.abs() < WSUM_EPS {
                            0.0
                        } else {
                            acc / p.swx
                        };
                    }
                }
                None => unreachable!("plans computed before row resolution"),
            }
            self.row_src[slot] = sy as isize;
        }
        &self.rows[range]
    }
}

/// Magnifies `roi` of `src` to the configured output size.
pub fn zoom(src: &ImageU16, roi: Roi, cfg: &ZoomConfig) -> ImageU16 {
    let mut out = ImageU16::new(cfg.out_width, cfg.out_height);
    zoom_band(src, roi, cfg, &mut out, 0, cfg.out_height);
    out
}

/// Computes output rows `y0..y1` of the zoom into `out` (which must have
/// the configured output dimensions). Disjoint row bands are independent,
/// so the zoom can be data-partitioned across cores.
///
/// Allocates its scratch internally; sequence runners should hold a
/// [`ZoomScratch`] and call [`zoom_band_with`] instead.
pub fn zoom_band(
    src: &ImageU16,
    roi: Roi,
    cfg: &ZoomConfig,
    out: &mut ImageU16,
    y0: usize,
    y1: usize,
) {
    zoom_band_with(src, roi, cfg, out, y0, y1, &mut ZoomScratch::new());
}

/// [`zoom_band`] with caller-owned scratch: the separable SIMD path.
/// Bit-identical to [`zoom_band_reference`].
pub fn zoom_band_with(
    src: &ImageU16,
    roi: Roi,
    cfg: &ZoomConfig,
    out: &mut ImageU16,
    y0: usize,
    y1: usize,
    scratch: &mut ZoomScratch,
) {
    assert_eq!(
        out.dims(),
        (cfg.out_width, cfg.out_height),
        "output geometry mismatch"
    );
    let roi = roi.clamp_to(src.width(), src.height());
    if roi.is_empty() || cfg.out_width == 0 || cfg.out_height == 0 {
        return;
    }
    scratch.ensure_plans(src, roi, cfg);
    let sy = roi.height as f64 / cfg.out_height as f64;
    let h = src.height();
    let hm1 = (h - 1) as f64;
    for oy in y0..y1.min(cfg.out_height) {
        // center-aligned sampling
        let fy = roi.y as f64 + (oy as f64 + 0.5) * sy - 0.5;
        match cfg.filter {
            ZoomFilter::Bilinear => {
                let yf = fy.clamp(0.0, hm1);
                let yi0 = yf.floor() as usize;
                let yi1 = (yi0 + 1).min(h - 1);
                let wy = (yf - yi0 as f64) as f32;
                scratch.resolve_row(src, yi0, 2, cfg.out_width);
                scratch.resolve_row(src, yi1, 2, cfg.out_width);
                let ow = cfg.out_width;
                let rows = &scratch.rows;
                let r0 = &rows[(yi0 % 2) * ow..(yi0 % 2) * ow + ow];
                let r1 = &rows[(yi1 % 2) * ow..(yi1 % 2) * ow + ow];
                vlerp_row(r0, r1, wy, out.row_mut(oy));
            }
            ZoomFilter::Bicubic => {
                let yb = fy.floor() as isize;
                let gy = (fy - yb as f64) as f32;
                let mut wys = [0.0f32; 4];
                let mut yis = [0usize; 4];
                let mut swy = 0.0f32;
                for (k, j) in (-1isize..=2).enumerate() {
                    wys[k] = cubic_weight(j as f32 - gy);
                    swy += wys[k];
                    yis[k] = (yb + j).clamp(0, h as isize - 1) as usize;
                }
                for &row in &yis {
                    scratch.resolve_row(src, row, 4, cfg.out_width);
                }
                let ow = cfg.out_width;
                let rows = &scratch.rows;
                let taps = [
                    &rows[(yis[0] % 4) * ow..(yis[0] % 4 + 1) * ow],
                    &rows[(yis[1] % 4) * ow..(yis[1] % 4 + 1) * ow],
                    &rows[(yis[2] % 4) * ow..(yis[2] % 4 + 1) * ow],
                    &rows[(yis[3] % 4) * ow..(yis[3] % 4 + 1) * ow],
                ];
                vcubic_row(taps, wys, swy, out.row_mut(oy));
            }
        }
    }
}

/// Scalar reference for the separable zoom: per-pixel recomputation of
/// exactly the tap indices, weights and accumulation order the pooled
/// SIMD path uses, so the two are bit-identical by construction.
pub fn zoom_band_reference(
    src: &ImageU16,
    roi: Roi,
    cfg: &ZoomConfig,
    out: &mut ImageU16,
    y0: usize,
    y1: usize,
) {
    assert_eq!(
        out.dims(),
        (cfg.out_width, cfg.out_height),
        "output geometry mismatch"
    );
    let roi = roi.clamp_to(src.width(), src.height());
    if roi.is_empty() || cfg.out_width == 0 || cfg.out_height == 0 {
        return;
    }
    let sx = roi.width as f64 / cfg.out_width as f64;
    let sy = roi.height as f64 / cfg.out_height as f64;
    let (w, h) = src.dims();
    let (wm1, hm1) = ((w - 1) as f64, (h - 1) as f64);
    for oy in y0..y1.min(cfg.out_height) {
        // center-aligned sampling
        let fy = roi.y as f64 + (oy as f64 + 0.5) * sy - 0.5;
        match cfg.filter {
            ZoomFilter::Bilinear => {
                let yf = fy.clamp(0.0, hm1);
                let yi0 = yf.floor() as usize;
                let yi1 = (yi0 + 1).min(h - 1);
                let wy = (yf - yi0 as f64) as f32;
                for ox in 0..cfg.out_width {
                    let fx = roi.x as f64 + (ox as f64 + 0.5) * sx - 0.5;
                    let xf = fx.clamp(0.0, wm1);
                    let xi0 = xf.floor() as usize;
                    let xi1 = (xi0 + 1).min(w - 1);
                    let wx = (xf - xi0 as f64) as f32;
                    let h0 = src.get(xi0, yi0) as f32 * (1.0 - wx) + src.get(xi1, yi0) as f32 * wx;
                    let h1 = src.get(xi0, yi1) as f32 * (1.0 - wx) + src.get(xi1, yi1) as f32 * wx;
                    let v = h0 * (1.0 - wy) + h1 * wy;
                    out.set(ox, oy, v.clamp(0.0, u16::MAX as f32) as u16);
                }
            }
            ZoomFilter::Bicubic => {
                let yb = fy.floor() as isize;
                let gy = (fy - yb as f64) as f32;
                let mut wys = [0.0f32; 4];
                let mut yis = [0usize; 4];
                let mut swy = 0.0f32;
                for (k, j) in (-1isize..=2).enumerate() {
                    wys[k] = cubic_weight(j as f32 - gy);
                    swy += wys[k];
                    yis[k] = (yb + j).clamp(0, h as isize - 1) as usize;
                }
                for ox in 0..cfg.out_width {
                    let fx = roi.x as f64 + (ox as f64 + 0.5) * sx - 0.5;
                    let xb = fx.floor() as isize;
                    let gx = (fx - xb as f64) as f32;
                    let mut wxs = [0.0f32; 4];
                    let mut xis = [0usize; 4];
                    let mut swx = 0.0f32;
                    for (k, j) in (-1isize..=2).enumerate() {
                        wxs[k] = cubic_weight(j as f32 - gx);
                        swx += wxs[k];
                        xis[k] = (xb + j).clamp(0, w as isize - 1) as usize;
                    }
                    let hsample = |row: usize| -> f32 {
                        let acc = ((wxs[0] * src.get(xis[0], row) as f32
                            + wxs[1] * src.get(xis[1], row) as f32)
                            + wxs[2] * src.get(xis[2], row) as f32)
                            + wxs[3] * src.get(xis[3], row) as f32;
                        if swx.abs() < WSUM_EPS {
                            0.0
                        } else {
                            acc / swx
                        }
                    };
                    let (h0, h1, h2, h3) = (
                        hsample(yis[0]),
                        hsample(yis[1]),
                        hsample(yis[2]),
                        hsample(yis[3]),
                    );
                    let acc = ((wys[0] * h0 + wys[1] * h1) + wys[2] * h2) + wys[3] * h3;
                    let v = if swy.abs() < WSUM_EPS { 0.0 } else { acc / swy };
                    out.set(ox, oy, v.clamp(0.0, u16::MAX as f32) as u16);
                }
            }
        }
    }
}

/// Vertical bilinear combine of one output row:
/// `out[i] = clamp(r0[i]*(1-wy) + r1[i]*wy)` as u16, SIMD-chunked. The
/// select-based clamp reproduces scalar `clamp(0.0, 65535.0)` bits.
#[inline(always)]
fn vlerp_row_body<V: SimdF32>(r0: &[f32], r1: &[f32], wy: f32, out: &mut [u16]) {
    let n = out.len();
    assert!(r0.len() >= n && r1.len() >= n);
    let vw0 = V::splat(1.0 - wy);
    let vw1 = V::splat(wy);
    let zero = V::splat(0.0);
    let hi = V::splat(u16::MAX as f32);
    let mut buf = [0.0f32; 16];
    let mut i = 0;
    while i + V::WIDTH <= n {
        // SAFETY: the loop bound keeps `i + WIDTH` within both rows.
        let v = unsafe { V::load_at(r0, i) * vw0 + V::load_at(r1, i) * vw1 };
        let lo = V::select_gt(zero, v, zero, v);
        let clamped = V::select_gt(lo, hi, hi, lo);
        clamped.store(&mut buf);
        for (k, &b) in buf[..V::WIDTH].iter().enumerate() {
            out[i + k] = b as u16;
        }
        i += V::WIDTH;
    }
    for j in i..n {
        let v = r0[j] * (1.0 - wy) + r1[j] * wy;
        out[j] = v.clamp(0.0, u16::MAX as f32) as u16;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn vlerp_row_avx2(r0: &[f32], r1: &[f32], wy: f32, out: &mut [u16]) {
    vlerp_row_body::<F32x8>(r0, r1, wy, out);
}

fn vlerp_row(r0: &[f32], r1: &[f32], wy: f32, out: &mut [u16]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 requirement is checked at runtime above.
            unsafe { vlerp_row_avx2(r0, r1, wy, out) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        vlerp_row_body::<crate::simd::NeonF32x4>(r0, r1, wy, out);
        return;
    }
    #[cfg(not(target_arch = "aarch64"))]
    vlerp_row_body::<F32x8>(r0, r1, wy, out);
}

/// Vertical Catmull-Rom combine of one output row over four resolved
/// rows, normalized by `swy`, clamped and narrowed like [`vlerp_row`].
#[inline(always)]
fn vcubic_row_body<V: SimdF32>(rows: [&[f32]; 4], wy: [f32; 4], swy: f32, out: &mut [u16]) {
    let n = out.len();
    assert!(rows.iter().all(|r| r.len() >= n));
    if swy.abs() < WSUM_EPS {
        out[..n].fill(0);
        return;
    }
    let w = [
        V::splat(wy[0]),
        V::splat(wy[1]),
        V::splat(wy[2]),
        V::splat(wy[3]),
    ];
    let vs = V::splat(swy);
    let zero = V::splat(0.0);
    let hi = V::splat(u16::MAX as f32);
    let mut buf = [0.0f32; 16];
    let mut i = 0;
    while i + V::WIDTH <= n {
        // SAFETY: the loop bound keeps `i + WIDTH` within every row.
        let acc = unsafe {
            ((w[0] * V::load_at(rows[0], i) + w[1] * V::load_at(rows[1], i))
                + w[2] * V::load_at(rows[2], i))
                + w[3] * V::load_at(rows[3], i)
        };
        let v = acc / vs;
        let lo = V::select_gt(zero, v, zero, v);
        let clamped = V::select_gt(lo, hi, hi, lo);
        clamped.store(&mut buf);
        for (k, &b) in buf[..V::WIDTH].iter().enumerate() {
            out[i + k] = b as u16;
        }
        i += V::WIDTH;
    }
    for j in i..n {
        let acc =
            ((wy[0] * rows[0][j] + wy[1] * rows[1][j]) + wy[2] * rows[2][j]) + wy[3] * rows[3][j];
        let v = acc / swy;
        out[j] = v.clamp(0.0, u16::MAX as f32) as u16;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn vcubic_row_avx2(rows: [&[f32]; 4], wy: [f32; 4], swy: f32, out: &mut [u16]) {
    vcubic_row_body::<F32x8>(rows, wy, swy, out);
}

fn vcubic_row(rows: [&[f32]; 4], wy: [f32; 4], swy: f32, out: &mut [u16]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 requirement is checked at runtime above.
            unsafe { vcubic_row_avx2(rows, wy, swy, out) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        vcubic_row_body::<crate::simd::NeonF32x4>(rows, wy, swy, out);
        return;
    }
    #[cfg(not(target_arch = "aarch64"))]
    vcubic_row_body::<F32x8>(rows, wy, swy, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn identity_zoom_copies() {
        let src = Image::from_fn(16, 16, |x, y| (x * 16 + y) as u16);
        let cfg = ZoomConfig {
            out_width: 16,
            out_height: 16,
            filter: ZoomFilter::Bilinear,
        };
        let out = zoom(&src, src.full_roi(), &cfg);
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(out.get(x, y), src.get(x, y), "({x},{y})");
            }
        }
    }

    #[test]
    fn constant_region_stays_constant() {
        let src = ImageU16::filled(32, 32, 1234);
        for filter in [ZoomFilter::Bilinear, ZoomFilter::Bicubic] {
            let cfg = ZoomConfig {
                out_width: 64,
                out_height: 64,
                filter,
            };
            let out = zoom(&src, Roi::new(4, 4, 16, 16), &cfg);
            for y in 0..64 {
                for x in 0..64 {
                    let v = out.get(x, y);
                    assert!(
                        (v as i32 - 1234).abs() <= 1,
                        "({x},{y}) = {v} with {:?}",
                        filter
                    );
                }
            }
        }
    }

    #[test]
    fn upscale_preserves_gradient_direction() {
        let src = Image::from_fn(16, 16, |x, _| (x * 100) as u16);
        let cfg = ZoomConfig {
            out_width: 64,
            out_height: 64,
            filter: ZoomFilter::Bilinear,
        };
        let out = zoom(&src, src.full_roi(), &cfg);
        for y in 0..64 {
            for x in 1..64 {
                assert!(
                    out.get(x, y) >= out.get(x - 1, y),
                    "not monotone at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn bicubic_sharper_than_bilinear_on_edge() {
        // a step edge: bicubic overshoots slightly (ringing), so its output
        // range must be at least as wide as bilinear's
        let src = Image::from_fn(16, 16, |x, _| if x < 8 { 100u16 } else { 2000 });
        let mk = |filter| {
            let cfg = ZoomConfig {
                out_width: 64,
                out_height: 16,
                filter,
            };
            zoom(&src, src.full_roi(), &cfg)
        };
        let (lin_lo, lin_hi) = mk(ZoomFilter::Bilinear).min_max();
        let (cub_lo, cub_hi) = mk(ZoomFilter::Bicubic).min_max();
        assert!(cub_hi >= lin_hi);
        assert!(cub_lo <= lin_lo);
    }

    #[test]
    fn empty_roi_yields_black() {
        let src = ImageU16::filled(8, 8, 500);
        let cfg = ZoomConfig {
            out_width: 4,
            out_height: 4,
            filter: ZoomFilter::Bilinear,
        };
        let out = zoom(&src, Roi::new(0, 0, 0, 0), &cfg);
        assert_eq!(out.min_max(), (0, 0));
    }

    #[test]
    fn cubic_weights_partition_unity_near_center() {
        // sum of the 4 taps at any phase is ~1 for Catmull-Rom
        for phase in [0.0f32, 0.25, 0.5, 0.75] {
            let s: f32 = (-1..=2).map(|i| cubic_weight(i as f32 - phase)).sum();
            assert!((s - 1.0).abs() < 1e-5, "phase {phase}: {s}");
        }
    }

    #[test]
    fn pooled_simd_matches_reference_bits() {
        // odd geometry + up/downscale factors exercise the remainder
        // lanes, the row-cache ring, and border-clamped taps
        let src = Image::from_fn(37, 23, |x, y| ((x * 541 + y * 733) % 4096) as u16);
        let mut scratch = ZoomScratch::new();
        for filter in [ZoomFilter::Bilinear, ZoomFilter::Bicubic] {
            for (ow, oh) in [(61, 47), (17, 11), (37, 23)] {
                let cfg = ZoomConfig {
                    out_width: ow,
                    out_height: oh,
                    filter,
                };
                let roi = Roi::new(2, 1, 33, 21);
                let mut fast = ImageU16::new(ow, oh);
                let mut reference = ImageU16::new(ow, oh);
                // bands exercise scratch reuse mid-image
                zoom_band_with(&src, roi, &cfg, &mut fast, 0, oh / 2, &mut scratch);
                zoom_band_with(&src, roi, &cfg, &mut fast, oh / 2, oh, &mut scratch);
                zoom_band_reference(&src, roi, &cfg, &mut reference, 0, oh);
                for y in 0..oh {
                    assert_eq!(
                        fast.row(y),
                        reference.row(y),
                        "row {y} differs for {filter:?} {ow}x{oh}"
                    );
                }
            }
        }
    }
}
