//! ENH — motion-compensated feature enhancement.
//!
//! Enhancement of the stent is performed by temporal integration of the
//! registered image frames according to the balloon markers (Section 3):
//! each incoming frame is warped by the estimated rigid transform so the
//! markers coincide with the reference, then accumulated into a running
//! average. Static (registered) structures such as the stent reinforce;
//! moving background and quantum noise average out, improving SNR by
//! roughly `sqrt(N)` for `N` integrated frames.

use crate::image::{ImageF32, ImageU16, Roi};
use crate::registration::RigidTransform;

/// Configuration of the enhancement task.
#[derive(Debug, Clone)]
pub struct EnhConfig {
    /// Temporal integration weight of the newest frame (recursive average);
    /// `1/n` gives a true running mean over the last `~n` frames.
    pub alpha: f32,
    /// Contrast stretch applied to the integrated image on readout.
    pub gain: f32,
}

impl Default for EnhConfig {
    fn default() -> Self {
        Self {
            alpha: 0.2,
            gain: 1.0,
        }
    }
}

/// Running state of the temporal integrator (the "intermediate" memory of
/// the ENH row in Table 1).
#[derive(Debug, Clone)]
pub struct EnhState {
    acc: ImageF32,
    frames_integrated: usize,
}

impl EnhState {
    /// Creates an integrator for `width x height` frames.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            acc: ImageF32::new(width, height),
            frames_integrated: 0,
        }
    }

    /// Number of frames integrated so far.
    pub fn frames_integrated(&self) -> usize {
        self.frames_integrated
    }

    /// Resets the integrator (e.g. after a registration loss) in place,
    /// without reallocating the accumulator.
    pub fn reset(&mut self) {
        self.acc.fill(0.0);
        self.frames_integrated = 0;
    }

    /// Intermediate storage in bytes.
    pub fn byte_size(&self) -> usize {
        self.acc.byte_size()
    }

    /// The integration weight the next frame will receive (true running
    /// mean until `1/alpha` frames, then EWMA).
    pub fn next_weight(&self, cfg: &EnhConfig) -> f32 {
        let n = self.frames_integrated as f32;
        if self.frames_integrated == 0 {
            1.0
        } else {
            (1.0 / (n + 1.0)).max(cfg.alpha)
        }
    }

    /// Accumulates the warped `frame` into the average over `region` with
    /// the given weight. Disjoint regions can be processed independently
    /// (striped execution); call [`EnhState::commit`] once per frame
    /// afterwards.
    pub fn accumulate(
        &mut self,
        frame: &ImageU16,
        transform: &RigidTransform,
        region: Roi,
        weight: f32,
    ) {
        assert_eq!(
            frame.dims(),
            self.acc.dims(),
            "state geometry must match the frame"
        );
        let region = region.clamp_to(frame.width(), frame.height());
        for y in region.y..region.bottom() {
            for x in region.x..region.right() {
                // registered sample: where does output pixel (x, y) come
                // from in the current frame?
                let (sx, sy) = transform.apply_inverse(x as f64, y as f64);
                let v = sample_frame(frame, sx, sy);
                let old = self.acc.get(x, y);
                self.acc.set(x, y, old + weight * (v - old));
            }
        }
    }

    /// Marks one frame as integrated (after all its regions accumulated).
    pub fn commit(&mut self) {
        self.frames_integrated += 1;
    }

    /// Reads the enhanced view of `roi` out of the accumulator.
    pub fn readout(&self, roi: Roi, gain: f32) -> ImageU16 {
        let roi = roi.clamp_to(self.acc.width(), self.acc.height());
        let mut out = ImageU16::new(roi.width, roi.height);
        self.readout_into(roi, gain, &mut out);
        out
    }

    /// [`EnhState::readout`] into a caller-owned buffer (which must match
    /// the clamped ROI geometry), so sequence runners can reuse one image
    /// across frames instead of allocating per readout.
    pub fn readout_into(&self, roi: Roi, gain: f32, out: &mut ImageU16) {
        let roi = roi.clamp_to(self.acc.width(), self.acc.height());
        assert_eq!(
            out.dims(),
            (roi.width, roi.height),
            "readout buffer geometry mismatch"
        );
        for y in 0..roi.height {
            let acc_row = &self.acc.row(roi.y + y)[roi.x..roi.x + roi.width];
            let out_row = out.row_mut(y);
            for (o, &a) in out_row.iter_mut().zip(acc_row) {
                *o = (a * gain).clamp(0.0, u16::MAX as f32) as u16;
            }
        }
    }
}

/// Bilinear sample of a u16 frame at fractional coordinates with border
/// replication.
#[inline]
pub fn sample_frame(frame: &ImageU16, x: f64, y: f64) -> f32 {
    let (w, h) = frame.dims();
    let xf = x.clamp(0.0, (w - 1) as f64);
    let yf = y.clamp(0.0, (h - 1) as f64);
    let x0 = xf.floor() as usize;
    let y0 = yf.floor() as usize;
    let x1 = (x0 + 1).min(w - 1);
    let y1 = (y0 + 1).min(h - 1);
    let fx = (xf - x0 as f64) as f32;
    let fy = (yf - y0 as f64) as f32;
    let v00 = frame.get(x0, y0) as f32;
    let v10 = frame.get(x1, y0) as f32;
    let v01 = frame.get(x0, y1) as f32;
    let v11 = frame.get(x1, y1) as f32;
    v00 * (1.0 - fx) * (1.0 - fy) + v10 * fx * (1.0 - fy) + v01 * (1.0 - fx) * fy + v11 * fx * fy
}

/// Warps `frame` by `transform` (inverse mapping) and integrates it into
/// the running average, restricted to `roi`. Returns the enhanced view of
/// the ROI as a u16 image.
pub fn enh_integrate(
    frame: &ImageU16,
    transform: &RigidTransform,
    roi: Roi,
    cfg: &EnhConfig,
    state: &mut EnhState,
) -> ImageU16 {
    let roi = roi.clamp_to(frame.width(), frame.height());
    let w_new = state.next_weight(cfg);
    state.accumulate(frame, transform, roi, w_new);
    state.commit();
    state.readout(roi, cfg.gain)
}

/// Computes the noise standard deviation of an image region (used by tests
/// and the experiments to verify the SNR gain of temporal integration).
pub fn region_std(img: &ImageU16, roi: Roi) -> f64 {
    let roi = roi.clamp_to(img.width(), img.height());
    let n = roi.area();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    let mut sum2 = 0.0f64;
    for y in roi.y..roi.bottom() {
        for &v in &img.row(y)[roi.x..roi.right()] {
            sum += v as f64;
            sum2 += (v as f64) * (v as f64);
        }
    }
    let mean = sum / n as f64;
    ((sum2 / n as f64 - mean * mean).max(0.0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn first_frame_passes_through() {
        let frame = Image::from_fn(32, 32, |x, y| ((x + y) * 10) as u16);
        let mut state = EnhState::new(32, 32);
        let out = enh_integrate(
            &frame,
            &RigidTransform::identity(),
            frame.full_roi(),
            &EnhConfig::default(),
            &mut state,
        );
        for y in 0..32 {
            for x in 0..32 {
                assert_eq!(out.get(x, y), frame.get(x, y), "({x},{y})");
            }
        }
        assert_eq!(state.frames_integrated(), 1);
    }

    #[test]
    fn integration_averages_noise_down() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut state = EnhState::new(32, 32);
        let cfg = EnhConfig::default();
        let roi = Roi::full(32, 32);
        let mut last = ImageU16::new(32, 32);
        for _ in 0..10 {
            let frame = Image::from_fn(32, 32, |_, _| {
                (1000.0 + rng.gen_range(-200.0..200.0)) as u16
            });
            last = enh_integrate(&frame, &RigidTransform::identity(), roi, &cfg, &mut state);
        }
        let single = Image::from_fn(32, 32, |_, _| {
            (1000.0 + rng.gen_range(-200.0..200.0)) as u16
        });
        let noisy = region_std(&single, roi);
        let enhanced = region_std(&last, roi);
        assert!(
            enhanced < noisy * 0.55,
            "integration did not reduce noise: {} vs {}",
            enhanced,
            noisy
        );
    }

    #[test]
    fn reset_clears_history() {
        let frame = ImageU16::filled(16, 16, 4000);
        let mut state = EnhState::new(16, 16);
        let cfg = EnhConfig::default();
        enh_integrate(
            &frame,
            &RigidTransform::identity(),
            frame.full_roi(),
            &cfg,
            &mut state,
        );
        state.reset();
        assert_eq!(state.frames_integrated(), 0);
        let dark = ImageU16::filled(16, 16, 100);
        let out = enh_integrate(
            &dark,
            &RigidTransform::identity(),
            dark.full_roi(),
            &cfg,
            &mut state,
        );
        assert_eq!(out.get(8, 8), 100);
    }

    #[test]
    fn warp_compensates_translation() {
        // a bright dot moves by (3, 0) in frame 2; the transform maps frame-2
        // coordinates back onto the reference, so the integrated dot stays put.
        let dot = |cx: usize| {
            Image::from_fn(
                32,
                32,
                move |x, y| if x == cx && y == 16 { 4000u16 } else { 100 },
            )
        };
        let f1 = dot(10);
        let f2 = dot(13);
        let mut state = EnhState::new(32, 32);
        let cfg = EnhConfig {
            alpha: 0.5,
            ..Default::default()
        };
        enh_integrate(
            &f1,
            &RigidTransform::identity(),
            f1.full_roi(),
            &cfg,
            &mut state,
        );
        // transform: current (13,16) maps to reference (10,16)
        let t = RigidTransform {
            theta: 0.0,
            cx: 0.0,
            cy: 0.0,
            tx: -3.0,
            ty: 0.0,
        };
        let out = enh_integrate(&f2, &t, f2.full_roi(), &cfg, &mut state);
        // the dot energy accumulates at x=10, not split between 10 and 13
        assert!(out.get(10, 16) > 3000, "registered dot {}", out.get(10, 16));
        assert!(
            out.get(13, 16) < 500,
            "ghost at original position {}",
            out.get(13, 16)
        );
    }

    #[test]
    fn roi_restriction_leaves_rest_at_zero() {
        let frame = ImageU16::filled(32, 32, 1000);
        let mut state = EnhState::new(32, 32);
        let roi = Roi::new(8, 8, 8, 8);
        let out = enh_integrate(
            &frame,
            &RigidTransform::identity(),
            roi,
            &EnhConfig::default(),
            &mut state,
        );
        assert_eq!(out.dims(), (8, 8));
        // accumulator outside ROI untouched
        assert_eq!(state.acc.get(0, 0), 0.0);
        assert!(state.acc.get(10, 10) > 0.0);
    }

    #[test]
    fn gain_scales_output() {
        let frame = ImageU16::filled(8, 8, 1000);
        let mut state = EnhState::new(8, 8);
        let cfg = EnhConfig {
            alpha: 0.2,
            gain: 2.0,
        };
        let out = enh_integrate(
            &frame,
            &RigidTransform::identity(),
            frame.full_roi(),
            &cfg,
            &mut state,
        );
        assert_eq!(out.get(4, 4), 2000);
    }

    #[test]
    fn sample_frame_interpolates() {
        let frame = Image::from_vec(2, 1, vec![0u16, 100]);
        assert!((sample_frame(&frame, 0.5, 0.0) - 50.0).abs() < 1e-4);
        assert!((sample_frame(&frame, 0.25, 0.0) - 25.0).abs() < 1e-4);
    }
}
