//! ENH — motion-compensated feature enhancement.
//!
//! Enhancement of the stent is performed by temporal integration of the
//! registered image frames according to the balloon markers (Section 3):
//! each incoming frame is warped by the estimated rigid transform so the
//! markers coincide with the reference, then accumulated into a running
//! average. Static (registered) structures such as the stent reinforce;
//! moving background and quantum noise average out, improving SNR by
//! roughly `sqrt(N)` for `N` integrated frames.

use crate::image::{ImageF32, ImageU16, Roi};
use crate::registration::RigidTransform;
use crate::simd::{F32x4, F32x8, F64x4, SimdF32};

/// Configuration of the enhancement task.
#[derive(Debug, Clone)]
pub struct EnhConfig {
    /// Temporal integration weight of the newest frame (recursive average);
    /// `1/n` gives a true running mean over the last `~n` frames.
    pub alpha: f32,
    /// Contrast stretch applied to the integrated image on readout.
    pub gain: f32,
}

impl Default for EnhConfig {
    fn default() -> Self {
        Self {
            alpha: 0.2,
            gain: 1.0,
        }
    }
}

/// Running state of the temporal integrator (the "intermediate" memory of
/// the ENH row in Table 1).
#[derive(Debug, Clone)]
pub struct EnhState {
    acc: ImageF32,
    /// One row of warped-sample scratch: `accumulate` resolves the
    /// inverse warp into this buffer row by row so the EWMA update runs
    /// as a contiguous SIMD stream over `acc`.
    row: Vec<f32>,
    frames_integrated: usize,
}

impl EnhState {
    /// Creates an integrator for `width x height` frames.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            acc: ImageF32::new(width, height),
            row: vec![0.0; width],
            frames_integrated: 0,
        }
    }

    /// Number of frames integrated so far.
    pub fn frames_integrated(&self) -> usize {
        self.frames_integrated
    }

    /// Resets the integrator (e.g. after a registration loss) in place,
    /// without reallocating the accumulator.
    pub fn reset(&mut self) {
        self.acc.fill(0.0);
        self.frames_integrated = 0;
    }

    /// Intermediate storage in bytes: the accumulator plane plus one
    /// f32 row of warp/sample scratch.
    pub fn byte_size(&self) -> usize {
        self.acc.byte_size() + self.row.len() * std::mem::size_of::<f32>()
    }

    /// The integration weight the next frame will receive (true running
    /// mean until `1/alpha` frames, then EWMA).
    pub fn next_weight(&self, cfg: &EnhConfig) -> f32 {
        let n = self.frames_integrated as f32;
        if self.frames_integrated == 0 {
            1.0
        } else {
            (1.0 / (n + 1.0)).max(cfg.alpha)
        }
    }

    /// Accumulates the warped `frame` into the average over `region` with
    /// the given weight. Disjoint regions can be processed independently
    /// (striped execution); call [`EnhState::commit`] once per frame
    /// afterwards.
    ///
    /// Bit-identical to [`EnhState::accumulate_reference`] (enforced by
    /// `tests/simd_stage_identity.rs`): the rotation's `sin_cos` and the
    /// row-constant warp terms are hoisted out of the pixel loop with the
    /// reference's operand order preserved, samples provably inside the
    /// frame skip the border clamps (which are no-ops there), and the
    /// EWMA update runs as a SIMD stream over the scratch row.
    pub fn accumulate(
        &mut self,
        frame: &ImageU16,
        transform: &RigidTransform,
        region: Roi,
        weight: f32,
    ) {
        assert_eq!(
            frame.dims(),
            self.acc.dims(),
            "state geometry must match the frame"
        );
        let region = region.clamp_to(frame.width(), frame.height());
        if region.width == 0 || region.height == 0 {
            return;
        }
        let (w, h) = frame.dims();
        let (wm1, hm1) = ((w - 1) as f64, (h - 1) as f64);
        let (s, c) = transform.theta.sin_cos();
        let ns = -s;
        // With the all-zero transform the inverse warp reproduces every
        // integer pixel coordinate exactly (only `+ 0.0` / `* 0.0` terms
        // drop out, none of which can change a bit for non-negative
        // coordinates), so the sample row is just the frame row as f32.
        let identity = transform.theta == 0.0
            && transform.cx == 0.0
            && transform.cy == 0.0
            && transform.tx == 0.0
            && transform.ty == 0.0;
        for y in region.y..region.bottom() {
            let row = &mut self.row[..region.width];
            if identity {
                let src = &frame.row(y)[region.x..region.right()];
                for (d, &v) in row.iter_mut().zip(src) {
                    *d = v as f32;
                }
            } else {
                let dy = y as f64 - transform.cy - transform.ty;
                // The reference evaluates `s * dy` / `c * dy` per pixel;
                // both factors are row constants, so hoisting keeps bits.
                let (t1, t2) = (s * dy, c * dy);
                let warp = |i: usize| {
                    let dx = (region.x + i) as f64 - transform.cx - transform.tx;
                    let sx = (c * dx + t1) + transform.cx;
                    let sy = (ns * dx + t2) + transform.cy;
                    (sx, sy)
                };
                // `sx(i)` and `sy(i)` are monotone in `i` (linear in the
                // exactly-spaced `dx`, and IEEE ops are monotone), so each
                // border condition holds on a contiguous run of `i` and
                // their intersection is the interior interval. Finding it
                // up front lets the hot interior loop drop the per-pixel
                // border test, the branch and the bounds checks.
                let n = region.width;
                let (mut lo, mut hi) = (0usize, n);
                for cond in [
                    &(|i: usize| warp(i).0 >= 0.0) as &dyn Fn(usize) -> bool,
                    &|i: usize| warp(i).0 <= wm1,
                    &|i: usize| warp(i).1 >= 0.0,
                    &|i: usize| warp(i).1 <= hm1,
                ] {
                    let (a, b) = monotone_true_run(n, cond);
                    lo = lo.max(a);
                    hi = hi.min(b);
                }
                let (lo, hi) = if lo <= hi { (lo, hi) } else { (0, 0) };
                for (i, d) in row[..lo].iter_mut().enumerate() {
                    let (sx, sy) = warp(i);
                    *d = sample_frame(frame, sx, sy);
                }
                // SAFETY: the interior interval guarantees every index
                // in `lo..hi` warps into [0, w-1] x [0, h-1].
                unsafe {
                    warp_sample_interior(
                        &mut row[lo..hi],
                        region.x + lo,
                        c,
                        ns,
                        t1,
                        t2,
                        transform,
                        frame.as_slice(),
                        w,
                        h,
                    );
                }
                for (off, d) in row[hi..n].iter_mut().enumerate() {
                    let (sx, sy) = warp(hi + off);
                    *d = sample_frame(frame, sx, sy);
                }
            }
            let acc_row = &mut self.acc.row_mut(y)[region.x..region.x + region.width];
            ewma_row(acc_row, row, weight);
        }
    }

    /// Scalar reference for [`EnhState::accumulate`]: the plain per-pixel
    /// warp/sample/EWMA loop the SIMD path must reproduce bit for bit.
    pub fn accumulate_reference(
        &mut self,
        frame: &ImageU16,
        transform: &RigidTransform,
        region: Roi,
        weight: f32,
    ) {
        assert_eq!(
            frame.dims(),
            self.acc.dims(),
            "state geometry must match the frame"
        );
        let region = region.clamp_to(frame.width(), frame.height());
        for y in region.y..region.bottom() {
            for x in region.x..region.right() {
                // registered sample: where does output pixel (x, y) come
                // from in the current frame?
                let (sx, sy) = transform.apply_inverse(x as f64, y as f64);
                let v = sample_frame(frame, sx, sy);
                let old = self.acc.get(x, y);
                self.acc.set(x, y, old + weight * (v - old));
            }
        }
    }

    /// Marks one frame as integrated (after all its regions accumulated).
    pub fn commit(&mut self) {
        self.frames_integrated += 1;
    }

    /// Reads the enhanced view of `roi` out of the accumulator.
    pub fn readout(&self, roi: Roi, gain: f32) -> ImageU16 {
        let roi = roi.clamp_to(self.acc.width(), self.acc.height());
        let mut out = ImageU16::new(roi.width, roi.height);
        self.readout_into(roi, gain, &mut out);
        out
    }

    /// [`EnhState::readout`] into a caller-owned buffer (which must match
    /// the clamped ROI geometry), so sequence runners can reuse one image
    /// across frames instead of allocating per readout. Bit-identical to
    /// [`EnhState::readout_into_reference`] (the SIMD gain/clamp chain
    /// preserves NaN and `-0.0` exactly like scalar `clamp`).
    pub fn readout_into(&self, roi: Roi, gain: f32, out: &mut ImageU16) {
        let roi = roi.clamp_to(self.acc.width(), self.acc.height());
        assert_eq!(
            out.dims(),
            (roi.width, roi.height),
            "readout buffer geometry mismatch"
        );
        for y in 0..roi.height {
            let acc_row = &self.acc.row(roi.y + y)[roi.x..roi.x + roi.width];
            scale_clamp_row(acc_row, gain, out.row_mut(y));
        }
    }

    /// Scalar reference for [`EnhState::readout_into`].
    pub fn readout_into_reference(&self, roi: Roi, gain: f32, out: &mut ImageU16) {
        let roi = roi.clamp_to(self.acc.width(), self.acc.height());
        assert_eq!(
            out.dims(),
            (roi.width, roi.height),
            "readout buffer geometry mismatch"
        );
        for y in 0..roi.height {
            let acc_row = &self.acc.row(roi.y + y)[roi.x..roi.x + roi.width];
            let out_row = out.row_mut(y);
            for (o, &a) in out_row.iter_mut().zip(acc_row) {
                *o = (a * gain).clamp(0.0, u16::MAX as f32) as u16;
            }
        }
    }
}

/// The contiguous run of `i` in `0..n` where `cond` holds. `cond` must be
/// monotone in `i` (it flips at most once), so the run is a prefix, a
/// suffix, the whole range, or empty; the flip point is found by
/// bisection with the exact predicate — no arithmetic inversion that
/// could disagree with the per-pixel evaluation by a rounding step.
fn monotone_true_run(n: usize, cond: &dyn Fn(usize) -> bool) -> (usize, usize) {
    if n == 0 {
        return (0, 0);
    }
    match (cond(0), cond(n - 1)) {
        (true, true) => (0, n),
        (false, false) => (0, 0),
        (false, true) => {
            let (mut f, mut t) = (0, n - 1);
            while f + 1 < t {
                let m = (f + t) / 2;
                if cond(m) {
                    t = m;
                } else {
                    f = m;
                }
            }
            (t, n)
        }
        (true, false) => {
            let (mut t, mut f) = (0, n - 1);
            while t + 1 < f {
                let m = (t + f) / 2;
                if cond(m) {
                    t = m;
                } else {
                    f = m;
                }
            }
            (0, t + 1)
        }
    }
}

/// Warp + bilinear sample of one **interior** row segment, four pixels
/// per step: the f64 coordinate warp runs through [`F64x4`] lanes (with
/// `floor` + unchecked truncation replacing the saturating `as usize`
/// cast, which LLVM cannot vectorize), the four neighbor gathers stay
/// scalar, and the blend runs through [`F32x4`] lanes. Every lane op is
/// IEEE-exact with the reference's operand order, and truncation equals
/// floor for the non-negative interior coordinates, so the results are
/// bit-identical to `sample_frame` minus its (provably idle) clamps.
///
/// `base` is the absolute x of `row[0]`; `c`/`ns`/`t1`/`t2` are the
/// hoisted warp terms of the current row.
///
/// # Safety
/// Every index in `base..base + row.len()` must warp into
/// `[0, w-1] x [0, h-1]` — establishing that interval is the caller's
/// job (`monotone_true_run`); outside it the unchecked truncations and
/// gathers are UB.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn warp_sample_interior_body(
    row: &mut [f32],
    base: usize,
    c: f64,
    ns: f64,
    t1: f64,
    t2: f64,
    t: &RigidTransform,
    data: &[u16],
    w: usize,
    h: usize,
) {
    let n = row.len();
    let cv = F64x4::splat(c);
    let nsv = F64x4::splat(ns);
    let cxv = F64x4::splat(t.cx);
    let cyv = F64x4::splat(t.cy);
    let t1v = F64x4::splat(t1);
    let t2v = F64x4::splat(t2);
    let one = F32x4::splat(1.0);
    let mut i = 0usize;
    while i + 4 <= n {
        let x = base + i;
        // Each lane is the exact scalar `(x as f64 - cx) - tx` of its
        // pixel; the cast is exact and the subtraction order matches.
        let dxv = F64x4([
            x as f64 - t.cx - t.tx,
            (x + 1) as f64 - t.cx - t.tx,
            (x + 2) as f64 - t.cx - t.tx,
            (x + 3) as f64 - t.cx - t.tx,
        ]);
        let sxv = cv * dxv + t1v + cxv;
        let syv = nsv * dxv + t2v + cyv;
        let xfv = sxv.floor();
        let yfv = syv.floor();
        let fx = F32x4((sxv - xfv).narrow());
        let fy = F32x4((syv - yfv).narrow());
        // SAFETY (trunc + gathers): the caller's interval contract puts
        // every lane in [0, w-1] x [0, h-1], so the floors are in-range
        // i32s and all clamped neighbor indices are in bounds.
        let (x0s, y0s) = (xfv.trunc_unchecked(), yfv.trunc_unchecked());
        let mut v00 = [0.0f32; 4];
        let mut v10 = [0.0f32; 4];
        let mut v01 = [0.0f32; 4];
        let mut v11 = [0.0f32; 4];
        for k in 0..4 {
            let (x0, y0) = (x0s[k] as usize, y0s[k] as usize);
            let x1 = (x0 + 1).min(w - 1);
            let y1 = (y0 + 1).min(h - 1);
            let (r0, r1) = (y0 * w, y1 * w);
            v00[k] = *data.get_unchecked(r0 + x0) as f32;
            v10[k] = *data.get_unchecked(r0 + x1) as f32;
            v01[k] = *data.get_unchecked(r1 + x0) as f32;
            v11[k] = *data.get_unchecked(r1 + x1) as f32;
        }
        let gx = one - fx;
        let gy = one - fy;
        let v = F32x4(v00) * gx * gy
            + F32x4(v10) * fx * gy
            + F32x4(v01) * gx * fy
            + F32x4(v11) * fx * fy;
        v.store(&mut row[i..i + 4]);
        i += 4;
    }
    for (off, d) in row[i..n].iter_mut().enumerate() {
        let x = base + i + off;
        let dx = x as f64 - t.cx - t.tx;
        let sx = (c * dx + t1) + t.cx;
        let sy = (ns * dx + t2) + t.cy;
        let (x0, y0) = (sx as usize, sy as usize);
        let x1 = (x0 + 1).min(w - 1);
        let y1 = (y0 + 1).min(h - 1);
        let fx = (sx - x0 as f64) as f32;
        let fy = (sy - y0 as f64) as f32;
        let (r0, r1) = (y0 * w, y1 * w);
        let v00 = *data.get_unchecked(r0 + x0) as f32;
        let v10 = *data.get_unchecked(r0 + x1) as f32;
        let v01 = *data.get_unchecked(r1 + x0) as f32;
        let v11 = *data.get_unchecked(r1 + x1) as f32;
        *d = v00 * (1.0 - fx) * (1.0 - fy)
            + v10 * fx * (1.0 - fy)
            + v01 * (1.0 - fx) * fy
            + v11 * fx * fy;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn warp_sample_interior_avx2(
    row: &mut [f32],
    base: usize,
    c: f64,
    ns: f64,
    t1: f64,
    t2: f64,
    t: &RigidTransform,
    data: &[u16],
    w: usize,
    h: usize,
) {
    warp_sample_interior_body(row, base, c, ns, t1, t2, t, data, w, h);
}

/// Dispatcher for [`warp_sample_interior_body`] (same safety contract).
///
/// # Safety
/// See [`warp_sample_interior_body`].
#[allow(clippy::too_many_arguments)]
unsafe fn warp_sample_interior(
    row: &mut [f32],
    base: usize,
    c: f64,
    ns: f64,
    t1: f64,
    t2: f64,
    t: &RigidTransform,
    data: &[u16],
    w: usize,
    h: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 requirement is checked at runtime above;
            // the interval contract is the caller's.
            warp_sample_interior_avx2(row, base, c, ns, t1, t2, t, data, w, h);
            return;
        }
    }
    // Portable fallback (including aarch64, where the f64 lanes lower to
    // NEON float64x2 pairs under the baseline feature set).
    warp_sample_interior_body(row, base, c, ns, t1, t2, t, data, w, h);
}

/// EWMA update of one accumulator row: `acc[i] += w * (src[i] - acc[i])`
/// with the reference's operand order, chunked over SIMD lanes.
#[inline(always)]
fn ewma_row_body<V: SimdF32>(acc: &mut [f32], src: &[f32], weight: f32) {
    assert_eq!(acc.len(), src.len());
    let n = acc.len();
    let vw = V::splat(weight);
    let mut i = 0;
    while i + V::WIDTH <= n {
        // SAFETY: the loop bound keeps `i + WIDTH` within both slices.
        unsafe {
            let a = V::load_at(acc, i);
            let v = V::load_at(src, i);
            (a + vw * (v - a)).store_at(acc, i);
        }
        i += V::WIDTH;
    }
    for j in i..n {
        let a = acc[j];
        acc[j] = a + weight * (src[j] - a);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn ewma_row_avx2(acc: &mut [f32], src: &[f32], weight: f32) {
    ewma_row_body::<F32x8>(acc, src, weight);
}

fn ewma_row(acc: &mut [f32], src: &[f32], weight: f32) {
    // Streaming kernels are memory-bound; one AVX2 clone is all the
    // width x86 can use (AVX-512 machines take the same 8-lane shape).
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 requirement is checked at runtime above.
            unsafe { ewma_row_avx2(acc, src, weight) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        ewma_row_body::<crate::simd::NeonF32x4>(acc, src, weight);
        return;
    }
    #[cfg(not(target_arch = "aarch64"))]
    ewma_row_body::<F32x8>(acc, src, weight);
}

/// Gain + clamp + u16 narrowing of one readout row. The first two
/// `select_gt` steps reproduce scalar `clamp(0.0, 65535.0)` bit for bit
/// except for NaN, which they pass through (NaN compares false on both
/// sides); the third forces NaN lanes to 0.0 — the value the scalar
/// saturating `as u16` cast maps NaN to anyway. With every lane then
/// provably in `[0, 65535]`, the narrowing can truncate through
/// unchecked i32 casts (`vcvttps2dq` + pack) instead of the per-lane
/// saturating casts LLVM refuses to vectorize.
#[inline(always)]
fn scale_clamp_row_body<V: SimdF32>(src: &[f32], gain: f32, out: &mut [u16]) {
    assert_eq!(src.len(), out.len());
    let n = src.len();
    let vg = V::splat(gain);
    let zero = V::splat(0.0);
    let hi = V::splat(u16::MAX as f32);
    let neg = V::splat(-1.0);
    let mut buf = [0.0f32; 16];
    let mut i = 0;
    while i + V::WIDTH <= n {
        // SAFETY: the loop bound keeps `i + WIDTH` within `src`.
        let v = unsafe { V::load_at(src, i) } * vg;
        let lo = V::select_gt(zero, v, zero, v);
        let clamped = V::select_gt(lo, hi, hi, lo);
        // In-range lanes are >= 0 > -1; only NaN compares false here.
        let narrowable = V::select_gt(clamped, neg, clamped, zero);
        narrowable.store(&mut buf);
        for (k, &b) in buf[..V::WIDTH].iter().enumerate() {
            // SAFETY: every lane is in [0, 65535] by the selects above.
            out[i + k] = unsafe { b.to_int_unchecked::<i32>() } as u16;
        }
        i += V::WIDTH;
    }
    for j in i..n {
        out[j] = (src[j] * gain).clamp(0.0, u16::MAX as f32) as u16;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scale_clamp_row_avx2(src: &[f32], gain: f32, out: &mut [u16]) {
    scale_clamp_row_body::<F32x8>(src, gain, out);
}

fn scale_clamp_row(src: &[f32], gain: f32, out: &mut [u16]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 requirement is checked at runtime above.
            unsafe { scale_clamp_row_avx2(src, gain, out) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        scale_clamp_row_body::<crate::simd::NeonF32x4>(src, gain, out);
        return;
    }
    #[cfg(not(target_arch = "aarch64"))]
    scale_clamp_row_body::<F32x8>(src, gain, out);
}

/// Bilinear sample of a u16 frame at fractional coordinates with border
/// replication.
#[inline]
pub fn sample_frame(frame: &ImageU16, x: f64, y: f64) -> f32 {
    let (w, h) = frame.dims();
    let xf = x.clamp(0.0, (w - 1) as f64);
    let yf = y.clamp(0.0, (h - 1) as f64);
    let x0 = xf.floor() as usize;
    let y0 = yf.floor() as usize;
    let x1 = (x0 + 1).min(w - 1);
    let y1 = (y0 + 1).min(h - 1);
    let fx = (xf - x0 as f64) as f32;
    let fy = (yf - y0 as f64) as f32;
    let v00 = frame.get(x0, y0) as f32;
    let v10 = frame.get(x1, y0) as f32;
    let v01 = frame.get(x0, y1) as f32;
    let v11 = frame.get(x1, y1) as f32;
    v00 * (1.0 - fx) * (1.0 - fy) + v10 * fx * (1.0 - fy) + v01 * (1.0 - fx) * fy + v11 * fx * fy
}

/// Warps `frame` by `transform` (inverse mapping) and integrates it into
/// the running average, restricted to `roi`. Returns the enhanced view of
/// the ROI as a u16 image.
pub fn enh_integrate(
    frame: &ImageU16,
    transform: &RigidTransform,
    roi: Roi,
    cfg: &EnhConfig,
    state: &mut EnhState,
) -> ImageU16 {
    let roi = roi.clamp_to(frame.width(), frame.height());
    let w_new = state.next_weight(cfg);
    state.accumulate(frame, transform, roi, w_new);
    state.commit();
    state.readout(roi, cfg.gain)
}

/// Computes the noise standard deviation of an image region (used by tests
/// and the experiments to verify the SNR gain of temporal integration).
pub fn region_std(img: &ImageU16, roi: Roi) -> f64 {
    let roi = roi.clamp_to(img.width(), img.height());
    let n = roi.area();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    let mut sum2 = 0.0f64;
    for y in roi.y..roi.bottom() {
        for &v in &img.row(y)[roi.x..roi.right()] {
            sum += v as f64;
            sum2 += (v as f64) * (v as f64);
        }
    }
    let mean = sum / n as f64;
    ((sum2 / n as f64 - mean * mean).max(0.0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn first_frame_passes_through() {
        let frame = Image::from_fn(32, 32, |x, y| ((x + y) * 10) as u16);
        let mut state = EnhState::new(32, 32);
        let out = enh_integrate(
            &frame,
            &RigidTransform::identity(),
            frame.full_roi(),
            &EnhConfig::default(),
            &mut state,
        );
        for y in 0..32 {
            for x in 0..32 {
                assert_eq!(out.get(x, y), frame.get(x, y), "({x},{y})");
            }
        }
        assert_eq!(state.frames_integrated(), 1);
    }

    #[test]
    fn integration_averages_noise_down() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut state = EnhState::new(32, 32);
        let cfg = EnhConfig::default();
        let roi = Roi::full(32, 32);
        let mut last = ImageU16::new(32, 32);
        for _ in 0..10 {
            let frame = Image::from_fn(32, 32, |_, _| {
                (1000.0 + rng.gen_range(-200.0..200.0)) as u16
            });
            last = enh_integrate(&frame, &RigidTransform::identity(), roi, &cfg, &mut state);
        }
        let single = Image::from_fn(32, 32, |_, _| {
            (1000.0 + rng.gen_range(-200.0..200.0)) as u16
        });
        let noisy = region_std(&single, roi);
        let enhanced = region_std(&last, roi);
        assert!(
            enhanced < noisy * 0.55,
            "integration did not reduce noise: {} vs {}",
            enhanced,
            noisy
        );
    }

    #[test]
    fn reset_clears_history() {
        let frame = ImageU16::filled(16, 16, 4000);
        let mut state = EnhState::new(16, 16);
        let cfg = EnhConfig::default();
        enh_integrate(
            &frame,
            &RigidTransform::identity(),
            frame.full_roi(),
            &cfg,
            &mut state,
        );
        state.reset();
        assert_eq!(state.frames_integrated(), 0);
        let dark = ImageU16::filled(16, 16, 100);
        let out = enh_integrate(
            &dark,
            &RigidTransform::identity(),
            dark.full_roi(),
            &cfg,
            &mut state,
        );
        assert_eq!(out.get(8, 8), 100);
    }

    #[test]
    fn warp_compensates_translation() {
        // a bright dot moves by (3, 0) in frame 2; the transform maps frame-2
        // coordinates back onto the reference, so the integrated dot stays put.
        let dot = |cx: usize| {
            Image::from_fn(
                32,
                32,
                move |x, y| if x == cx && y == 16 { 4000u16 } else { 100 },
            )
        };
        let f1 = dot(10);
        let f2 = dot(13);
        let mut state = EnhState::new(32, 32);
        let cfg = EnhConfig {
            alpha: 0.5,
            ..Default::default()
        };
        enh_integrate(
            &f1,
            &RigidTransform::identity(),
            f1.full_roi(),
            &cfg,
            &mut state,
        );
        // transform: current (13,16) maps to reference (10,16)
        let t = RigidTransform {
            theta: 0.0,
            cx: 0.0,
            cy: 0.0,
            tx: -3.0,
            ty: 0.0,
        };
        let out = enh_integrate(&f2, &t, f2.full_roi(), &cfg, &mut state);
        // the dot energy accumulates at x=10, not split between 10 and 13
        assert!(out.get(10, 16) > 3000, "registered dot {}", out.get(10, 16));
        assert!(
            out.get(13, 16) < 500,
            "ghost at original position {}",
            out.get(13, 16)
        );
    }

    #[test]
    fn roi_restriction_leaves_rest_at_zero() {
        let frame = ImageU16::filled(32, 32, 1000);
        let mut state = EnhState::new(32, 32);
        let roi = Roi::new(8, 8, 8, 8);
        let out = enh_integrate(
            &frame,
            &RigidTransform::identity(),
            roi,
            &EnhConfig::default(),
            &mut state,
        );
        assert_eq!(out.dims(), (8, 8));
        // accumulator outside ROI untouched
        assert_eq!(state.acc.get(0, 0), 0.0);
        assert!(state.acc.get(10, 10) > 0.0);
    }

    #[test]
    fn gain_scales_output() {
        let frame = ImageU16::filled(8, 8, 1000);
        let mut state = EnhState::new(8, 8);
        let cfg = EnhConfig {
            alpha: 0.2,
            gain: 2.0,
        };
        let out = enh_integrate(
            &frame,
            &RigidTransform::identity(),
            frame.full_roi(),
            &cfg,
            &mut state,
        );
        assert_eq!(out.get(4, 4), 2000);
    }

    #[test]
    fn simd_paths_match_reference_bits() {
        // Odd width exercises the remainder lanes; the rotated transform
        // exercises both the interior fast path and the border fallback.
        let frame = Image::from_fn(37, 29, |x, y| ((x * 7 + y * 13) % 4096) as u16);
        let transforms = [
            RigidTransform::identity(),
            RigidTransform {
                theta: 0.13,
                cx: 18.0,
                cy: 14.0,
                tx: 1.7,
                ty: -2.3,
            },
        ];
        for t in &transforms {
            let mut fast = EnhState::new(37, 29);
            let mut reference = EnhState::new(37, 29);
            for weight in [1.0f32, 0.3] {
                fast.accumulate(&frame, t, frame.full_roi(), weight);
                reference.accumulate_reference(&frame, t, frame.full_roi(), weight);
            }
            for y in 0..29 {
                for x in 0..37 {
                    assert_eq!(
                        fast.acc.get(x, y).to_bits(),
                        reference.acc.get(x, y).to_bits(),
                        "acc differs at ({x},{y}) for {t:?}"
                    );
                }
            }
            let roi = Roi::new(3, 2, 31, 23);
            let mut a = ImageU16::new(31, 23);
            let mut b = ImageU16::new(31, 23);
            fast.readout_into(roi, 1.7, &mut a);
            fast.readout_into_reference(roi, 1.7, &mut b);
            for y in 0..23 {
                assert_eq!(a.row(y), b.row(y), "readout row {y} differs");
            }
        }
    }

    #[test]
    fn sample_frame_interpolates() {
        let frame = Image::from_vec(2, 1, vec![0u16, 100]);
        assert!((sample_frame(&frame, 0.5, 0.0) - 50.0).abs() < 1e-4);
        assert!((sample_frame(&frame, 0.25, 0.0) - 25.0).abs() < 1e-4);
    }
}
