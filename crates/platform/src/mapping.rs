//! Task-to-core mapping and partitioning descriptors.
//!
//! The partitioning of the application on the platform has a direct
//! relationship with the required amount of communication bandwidth
//! between tasks (Section 5): an edge between tasks mapped to cores that
//! share an L2 stays on the cache bus, otherwise it crosses the memory
//! hierarchy.

use crate::arch::ArchModel;
use std::collections::BTreeMap;

/// Why a [`Mapping`] failed validation against an [`ArchModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// A task references a core index the platform does not have.
    NonexistentCore {
        /// The offending task.
        task: &'static str,
        /// The core it referenced.
        core: usize,
        /// Cores the platform actually has.
        platform_cores: usize,
    },
    /// A task's partition lists no cores at all.
    NoCores {
        /// The offending task.
        task: &'static str,
    },
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::NonexistentCore {
                task,
                core,
                platform_cores,
            } => write!(
                f,
                "task {task} mapped to nonexistent core {core} (platform has {platform_cores})"
            ),
            MappingError::NoCores { task } => write!(f, "task {task} mapped to no cores"),
        }
    }
}

impl std::error::Error for MappingError {}

/// How a task is partitioned across cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partition {
    /// The whole task on one core.
    Serial { core: usize },
    /// Data-parallel striping over the listed cores (RDG-style tasks).
    Striped { cores: Vec<usize> },
    /// Functional split: each listed core owns one sub-function
    /// (CPLS/GW-style feature tasks).
    Functional { cores: Vec<usize> },
}

impl Partition {
    /// Cores used by the partition.
    pub fn cores(&self) -> &[usize] {
        match self {
            Partition::Serial { core } => std::slice::from_ref(core),
            Partition::Striped { cores } | Partition::Functional { cores } => cores,
        }
    }

    /// Degree of parallelism.
    pub fn width(&self) -> usize {
        self.cores().len().max(1)
    }
}

/// A complete mapping of named tasks onto the platform.
#[derive(Debug, Clone, Default)]
pub struct Mapping {
    assignments: BTreeMap<&'static str, Partition>,
}

impl Mapping {
    /// Empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns (or reassigns) a task.
    pub fn assign(&mut self, task: &'static str, partition: Partition) {
        self.assignments.insert(task, partition);
    }

    /// Looks up a task's partition.
    pub fn get(&self, task: &str) -> Option<&Partition> {
        self.assignments.get(task)
    }

    /// Iterates over all assignments.
    pub fn iter(&self) -> impl Iterator<Item = (&&'static str, &Partition)> {
        self.assignments.iter()
    }

    /// Number of assigned tasks.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Validates that all referenced cores exist and returns the number of
    /// distinct cores in use.
    pub fn validate(&self, arch: &ArchModel) -> Result<usize, MappingError> {
        let mut used = std::collections::BTreeSet::new();
        for (&task, p) in &self.assignments {
            for &c in p.cores() {
                if c >= arch.cores {
                    return Err(MappingError::NonexistentCore {
                        task,
                        core: c,
                        platform_cores: arch.cores,
                    });
                }
                used.insert(c);
            }
            if p.cores().is_empty() {
                return Err(MappingError::NoCores { task });
            }
        }
        Ok(used.len())
    }

    /// Whether the data edge `producer -> consumer` stays within one L2
    /// domain. Edges between unassigned tasks default to `false`
    /// (conservative: crosses the memory bus).
    pub fn edge_shares_l2(&self, arch: &ArchModel, producer: &str, consumer: &str) -> bool {
        let (Some(p), Some(c)) = (self.get(producer), self.get(consumer)) else {
            return false;
        };
        p.cores()
            .iter()
            .all(|&pc| c.cores().iter().all(|&cc| arch.share_l2(pc, cc)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_cores_and_width() {
        let s = Partition::Serial { core: 3 };
        assert_eq!(s.cores(), &[3]);
        assert_eq!(s.width(), 1);
        let d = Partition::Striped {
            cores: vec![0, 1, 2, 3],
        };
        assert_eq!(d.width(), 4);
    }

    #[test]
    fn mapping_assign_and_lookup() {
        let mut m = Mapping::new();
        m.assign("RDG", Partition::Striped { cores: vec![0, 1] });
        m.assign("MKX", Partition::Serial { core: 2 });
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("RDG").unwrap().width(), 2);
        assert!(m.get("ZZZ").is_none());
        // reassignment replaces
        m.assign("MKX", Partition::Serial { core: 3 });
        assert_eq!(m.get("MKX").unwrap().cores(), &[3]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn validate_rejects_bad_cores() {
        let arch = ArchModel::default();
        let mut m = Mapping::new();
        m.assign("RDG", Partition::Serial { core: 7 });
        assert_eq!(m.validate(&arch), Ok(1));
        m.assign("MKX", Partition::Serial { core: 8 });
        assert!(m.validate(&arch).is_err());
    }

    #[test]
    fn validate_counts_distinct_cores() {
        let arch = ArchModel::default();
        let mut m = Mapping::new();
        m.assign("RDG", Partition::Striped { cores: vec![0, 1] });
        m.assign("MKX", Partition::Serial { core: 1 });
        assert_eq!(m.validate(&arch), Ok(2));
    }

    #[test]
    fn edge_l2_sharing_follows_core_pairs() {
        let arch = ArchModel::default(); // pairs (0,1), (2,3), ...
        let mut m = Mapping::new();
        m.assign("A", Partition::Serial { core: 0 });
        m.assign("B", Partition::Serial { core: 1 });
        m.assign("C", Partition::Serial { core: 2 });
        assert!(m.edge_shares_l2(&arch, "A", "B"));
        assert!(!m.edge_shares_l2(&arch, "A", "C"));
        assert!(!m.edge_shares_l2(&arch, "A", "missing"));
    }

    #[test]
    fn striped_edge_requires_all_pairs_shared() {
        let arch = ArchModel::default();
        let mut m = Mapping::new();
        m.assign("A", Partition::Striped { cores: vec![0, 1] });
        m.assign("B", Partition::Serial { core: 0 });
        assert!(m.edge_shares_l2(&arch, "A", "B"));
        m.assign("B", Partition::Serial { core: 2 });
        assert!(!m.edge_shares_l2(&arch, "A", "B"));
    }
}
