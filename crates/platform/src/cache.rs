//! Trace-driven set-associative cache simulator.
//!
//! Used as the "measurement" side of the cache/bandwidth experiments: the
//! paper measures bandwidth on its physical platform and compares with the
//! analytic model; we replay each task's memory-access pattern through this
//! simulator (configured with the paper's cache geometry) and compare with
//! the same analytic model (Section 5, Fig. 5).

use crate::arch::CacheGeometry;

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line fetched; nothing (clean/invalid) was displaced.
    Miss,
    /// Line fetched; a dirty line was written back (extra bus traffic).
    MissDirtyEvict,
}

/// A set-associative LRU cache with write-back/write-allocate policy.
#[derive(Debug)]
pub struct CacheSim {
    geometry: CacheGeometry,
    sets: usize,
    /// tag per [set][way]; None = invalid.
    tags: Vec<Option<u64>>,
    /// LRU stamp per [set][way].
    stamps: Vec<u64>,
    /// dirty bit per [set][way].
    dirty: Vec<bool>,
    tick: u64,
    stats: CacheStats,
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (including dirty evictions).
    pub misses: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Bus traffic in bytes for the given line size: fills + writebacks.
    pub fn traffic_bytes(&self, line_size: usize) -> u64 {
        (self.misses + self.writebacks) * line_size as u64
    }
}

impl CacheSim {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(
            geometry.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        let n = sets * geometry.ways;
        Self {
            geometry,
            sets,
            tags: vec![None; n],
            stamps: vec![0; n],
            dirty: vec![false; n],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Accesses byte address `addr`; `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        self.tick += 1;
        self.stats.accesses += 1;
        let line = addr / self.geometry.line_size as u64;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let base = set * self.geometry.ways;

        // hit?
        for w in 0..self.geometry.ways {
            if self.tags[base + w] == Some(tag) {
                self.stamps[base + w] = self.tick;
                if write {
                    self.dirty[base + w] = true;
                }
                return Access::Hit;
            }
        }

        // miss: find victim (invalid way first, else LRU)
        self.stats.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.geometry.ways {
            match self.tags[base + w] {
                None => {
                    victim = w;
                    break;
                }
                Some(_) => {
                    if self.stamps[base + w] < oldest {
                        oldest = self.stamps[base + w];
                        victim = w;
                    }
                }
            }
        }
        let was_dirty = self.tags[base + victim].is_some() && self.dirty[base + victim];
        if was_dirty {
            self.stats.writebacks += 1;
        }
        self.tags[base + victim] = Some(tag);
        self.stamps[base + victim] = self.tick;
        self.dirty[base + victim] = write;
        if was_dirty {
            Access::MissDirtyEvict
        } else {
            Access::Miss
        }
    }

    /// Streams a linear scan of `len` bytes starting at `base`, touching
    /// every byte via line-granular accesses. Returns the stats delta.
    pub fn linear_scan(&mut self, base: u64, len: usize, write: bool) -> CacheStats {
        let before = self.stats;
        let line = self.geometry.line_size as u64;
        let mut addr = base;
        let end = base + len as u64;
        while addr < end {
            self.access(addr, write);
            addr += line;
        }
        CacheStats {
            accesses: self.stats.accesses - before.accesses,
            misses: self.stats.misses - before.misses,
            writebacks: self.stats.writebacks - before.writebacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::KB;

    fn small_cache() -> CacheSim {
        // 1 KB, 64 B lines, 2-way: 8 sets
        CacheSim::new(CacheGeometry {
            capacity: KB,
            line_size: 64,
            ways: 2,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small_cache();
        assert_eq!(c.access(0, false), Access::Miss);
        assert_eq!(c.access(32, false), Access::Hit); // same line
        assert_eq!(c.access(64, false), Access::Miss); // next line
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().accesses, 3);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = small_cache();
        // set 0 holds lines whose (line % 8) == 0: addresses 0, 512, 1024, ...
        c.access(0, false); // way A
        c.access(512, false); // way B
        c.access(0, false); // refresh A
        c.access(1024, false); // evicts B (LRU)
        assert_eq!(c.access(0, false), Access::Hit);
        assert_eq!(c.access(512, false), Access::Miss);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small_cache();
        c.access(0, true); // dirty
        c.access(512, false);
        let a = c.access(1024, false); // evicts LRU = line 0 (dirty)
        assert_eq!(a, Access::MissDirtyEvict);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn working_set_within_capacity_has_no_rescan_misses() {
        let mut c = small_cache();
        c.linear_scan(0, KB, false); // fills exactly the cache
        let second = c.linear_scan(0, KB, false);
        assert_eq!(second.misses, 0, "rescan of fitting buffer must hit");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = small_cache();
        c.linear_scan(0, 4 * KB, false);
        let second = c.linear_scan(0, 4 * KB, false);
        // LRU + streaming: everything evicted before reuse
        assert_eq!(
            second.misses, second.accesses,
            "streaming buffer must thrash"
        );
    }

    #[test]
    fn traffic_accounts_fills_and_writebacks() {
        let s = CacheStats {
            accesses: 100,
            misses: 10,
            writebacks: 4,
        };
        assert_eq!(s.traffic_bytes(64), 14 * 64);
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small_cache();
        c.access(0, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.access(0, false), Access::Hit);
    }

    #[test]
    fn paper_l2_geometry_simulates() {
        use crate::arch::ArchModel;
        let arch = ArchModel::default();
        let mut c = CacheSim::new(arch.l2);
        // one full-frame u16 image (2 MB) fits in the 4 MB L2 ...
        c.linear_scan(0, 2 * 1024 * KB, false);
        let rescan = c.linear_scan(0, 2 * 1024 * KB, false);
        assert_eq!(rescan.misses, 0);
        // ... but a 7 MB intermediate does not
        let mut c2 = CacheSim::new(arch.l2);
        c2.linear_scan(0, 7 * 1024 * KB, false);
        let rescan2 = c2.linear_scan(0, 7 * 1024 * KB, false);
        assert!(rescan2.miss_ratio() > 0.99);
    }
}
