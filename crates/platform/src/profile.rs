//! Wall-clock profiling utilities.
//!
//! Computation-time statistics are obtained by profiling the executed
//! application (Section 7); these helpers time task executions in
//! milliseconds and accumulate per-task summary statistics.

use std::collections::BTreeMap;
use std::time::Instant;

/// Times a closure, returning its result and the elapsed milliseconds.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

/// Streaming summary statistics of one task's execution times.
#[derive(Debug, Clone, Default)]
pub struct TaskStats {
    n: usize,
    sum: f64,
    sum2: f64,
    min: f64,
    max: f64,
}

impl TaskStats {
    /// Records one sample (milliseconds).
    pub fn record(&mut self, ms: f64) {
        if self.n == 0 {
            self.min = ms;
            self.max = ms;
        } else {
            self.min = self.min.min(ms);
            self.max = self.max.max(ms);
        }
        self.n += 1;
        self.sum += ms;
        self.sum2 += ms * ms;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Population standard deviation; 0 when empty.
    pub fn std(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let m = self.mean();
        ((self.sum2 / self.n as f64) - m * m).max(0.0).sqrt()
    }

    /// Minimum sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Worst-case over average-case ratio (the headline Fig. 7 metric).
    pub fn worst_over_avg(&self) -> f64 {
        let m = self.mean();
        if m <= 0.0 {
            0.0
        } else {
            self.max() / m
        }
    }
}

/// A profiler accumulating [`TaskStats`] per task name.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    tasks: BTreeMap<&'static str, TaskStats>,
}

impl Profiler {
    /// Empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample for `task`.
    pub fn record(&mut self, task: &'static str, ms: f64) {
        self.tasks.entry(task).or_default().record(ms);
    }

    /// Times a closure and records its duration under `task`.
    pub fn time<R>(&mut self, task: &'static str, f: impl FnOnce() -> R) -> R {
        let (r, ms) = time_ms(f);
        self.record(task, ms);
        r
    }

    /// Stats of one task.
    pub fn get(&self, task: &str) -> Option<&TaskStats> {
        self.tasks.get(task)
    }

    /// Iterates over all task stats.
    pub fn iter(&self) -> impl Iterator<Item = (&&'static str, &TaskStats)> {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ms_measures_something() {
        let ((), ms) = time_ms(|| std::thread::sleep(std::time::Duration::from_millis(5)));
        assert!(ms >= 4.0, "measured {ms}");
    }

    #[test]
    fn stats_mean_min_max() {
        let mut s = TaskStats::default();
        for v in [2.0, 4.0, 6.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
        assert!((s.std() - (8.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert!((s.worst_over_avg() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TaskStats::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.worst_over_avg(), 0.0);
    }

    #[test]
    fn profiler_accumulates_per_task() {
        let mut p = Profiler::new();
        p.record("RDG", 10.0);
        p.record("RDG", 20.0);
        p.record("MKX", 2.5);
        assert_eq!(p.get("RDG").unwrap().count(), 2);
        assert!((p.get("RDG").unwrap().mean() - 15.0).abs() < 1e-12);
        assert_eq!(p.get("MKX").unwrap().count(), 1);
        assert!(p.get("ENH").is_none());
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn profiler_time_records_and_returns() {
        let mut p = Profiler::new();
        let v = p.time("X", || 42);
        assert_eq!(v, 42);
        assert_eq!(p.get("X").unwrap().count(), 1);
    }
}
