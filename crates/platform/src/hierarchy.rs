//! Two-level cache hierarchy simulation.
//!
//! The platform of Fig. 4 has per-core 32 KB L1 caches in front of shared
//! 4 MB L2 caches. The single-level [`crate::cache::CacheSim`] answers the
//! L2-overflow question of Fig. 5; this module composes two levels so the
//! per-bus traffic split (CPU⇄L1, L1⇄L2 on the cache bus, L2⇄memory on
//! the memory bus) can be derived for the Fig. 4 annotations.

use crate::arch::{ArchModel, CacheGeometry};
use crate::cache::{Access, CacheSim};

/// Traffic observed at each level of the hierarchy, bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyTraffic {
    /// Bytes requested by the core (every access, line-granular).
    pub cpu_to_l1: u64,
    /// Bytes moved between L1 and L2 (L1 fills + L1 writebacks).
    pub l1_to_l2: u64,
    /// Bytes moved between L2 and external memory.
    pub l2_to_mem: u64,
}

/// An inclusive two-level (L1 + L2) cache simulator.
#[derive(Debug)]
pub struct CacheHierarchy {
    l1: CacheSim,
    l2: CacheSim,
    line: u64,
    traffic: HierarchyTraffic,
}

impl CacheHierarchy {
    /// Builds the hierarchy from explicit geometries. Panics if the line
    /// sizes differ (mixed-line hierarchies are out of scope).
    pub fn new(l1: CacheGeometry, l2: CacheGeometry) -> Self {
        assert_eq!(l1.line_size, l2.line_size, "line sizes must match");
        let line = l1.line_size as u64;
        Self {
            l1: CacheSim::new(l1),
            l2: CacheSim::new(l2),
            line,
            traffic: HierarchyTraffic::default(),
        }
    }

    /// The paper's platform hierarchy (32 KB L1 / 4 MB L2).
    pub fn paper() -> Self {
        let arch = ArchModel::default();
        Self::new(arch.l1, arch.l2)
    }

    /// Accesses byte address `addr`.
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        self.traffic.cpu_to_l1 += self.line;
        let l1_result = self.l1.access(addr, write);
        match l1_result {
            Access::Hit => Access::Hit,
            miss => {
                // L1 fill from L2 (plus the writeback of the evicted dirty
                // line, which also goes to L2)
                self.traffic.l1_to_l2 += self.line;
                if miss == Access::MissDirtyEvict {
                    self.traffic.l1_to_l2 += self.line;
                    // inclusive hierarchy: the dirty line lands in L2
                    // (we cannot know its address here; model it as a
                    // same-set write pressure via stats only)
                }
                let l2_result = self.l2.access(addr, write);
                match l2_result {
                    Access::Hit => miss,
                    l2_miss => {
                        self.traffic.l2_to_mem += self.line;
                        if l2_miss == Access::MissDirtyEvict {
                            self.traffic.l2_to_mem += self.line;
                        }
                        miss
                    }
                }
            }
        }
    }

    /// Streams a linear scan of `len` bytes from `base`.
    pub fn linear_scan(&mut self, base: u64, len: usize, write: bool) {
        let mut addr = base;
        let end = base + len as u64;
        while addr < end {
            self.access(addr, write);
            addr += self.line;
        }
    }

    /// Traffic so far.
    pub fn traffic(&self) -> HierarchyTraffic {
        self.traffic
    }

    /// Per-level statistics `(l1, l2)`.
    pub fn stats(&self) -> (crate::cache::CacheStats, crate::cache::CacheStats) {
        (self.l1.stats(), self.l2.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::KB;

    fn small() -> CacheHierarchy {
        CacheHierarchy::new(
            CacheGeometry {
                capacity: KB,
                line_size: 64,
                ways: 2,
            },
            CacheGeometry {
                capacity: 8 * KB,
                line_size: 64,
                ways: 4,
            },
        )
    }

    #[test]
    fn l1_hit_generates_no_downstream_traffic() {
        let mut h = small();
        h.access(0, false);
        let after_fill = h.traffic();
        h.access(0, false); // L1 hit
        let t = h.traffic();
        assert_eq!(t.l1_to_l2, after_fill.l1_to_l2);
        assert_eq!(t.l2_to_mem, after_fill.l2_to_mem);
        assert_eq!(t.cpu_to_l1, after_fill.cpu_to_l1 + 64);
    }

    #[test]
    fn l1_miss_l2_hit_stops_at_l2() {
        let mut h = small();
        // touch 2 KB (beyond L1, within L2)
        h.linear_scan(0, 2 * KB, false);
        let before = h.traffic();
        // rescan: L1 misses (thrashed), L2 hits
        h.linear_scan(0, 2 * KB, false);
        let t = h.traffic();
        assert!(t.l1_to_l2 > before.l1_to_l2, "no L1 refills recorded");
        assert_eq!(
            t.l2_to_mem, before.l2_to_mem,
            "L2 hits must not touch memory"
        );
    }

    #[test]
    fn working_set_beyond_l2_reaches_memory() {
        let mut h = small();
        h.linear_scan(0, 32 * KB, false);
        let before = h.traffic();
        h.linear_scan(0, 32 * KB, false);
        let t = h.traffic();
        assert!(
            t.l2_to_mem > before.l2_to_mem,
            "L2-overflow rescan must hit memory"
        );
    }

    #[test]
    fn traffic_is_bounded_down_the_hierarchy() {
        // each access moves at most 2 lines per level (fill + writeback),
        // so the inter-level traffic is bounded by twice the upstream
        let mut h = small();
        h.linear_scan(0, 16 * KB, true);
        h.linear_scan(0, 16 * KB, false);
        let t = h.traffic();
        assert!(t.l1_to_l2 <= 2 * t.cpu_to_l1, "{:?}", t);
        assert!(t.l2_to_mem <= 2 * t.l1_to_l2, "{:?}", t);
        assert!(t.l2_to_mem > 0, "L2-overflow scan must reach memory");
    }

    #[test]
    fn paper_hierarchy_filters_frame_scans() {
        // one 2 MB frame scanned twice: fits L2 (4 MB), not L1 (32 KB)
        let mut h = CacheHierarchy::paper();
        h.linear_scan(0, 2 * 1024 * KB, false);
        let before = h.traffic();
        h.linear_scan(0, 2 * 1024 * KB, false);
        let t = h.traffic();
        assert_eq!(
            t.l2_to_mem, before.l2_to_mem,
            "second scan must be L2-resident"
        );
        assert!(t.l1_to_l2 > before.l1_to_l2);
    }

    #[test]
    #[should_panic(expected = "line sizes")]
    fn mismatched_line_sizes_rejected() {
        let _ = CacheHierarchy::new(
            CacheGeometry {
                capacity: KB,
                line_size: 32,
                ways: 2,
            },
            CacheGeometry {
                capacity: 8 * KB,
                line_size: 64,
                ways: 4,
            },
        );
    }
}
