//! Persistent worker pool modelling the platform's cores.
//!
//! The pipeline executes each frame as a fork-join of task jobs over a
//! fixed pool of worker threads (one per modelled core), so per-frame
//! thread-spawn overhead does not pollute the computation-time statistics
//! that the prediction models are trained on.
//!
//! The thread machinery itself lives in [`imaging::parallel::StripePool`]
//! (the same pool the striped image tasks dispatch to); `CorePool` adapts
//! it to the platform's core-indexed batch interface and adds wall-clock
//! batch timing.

use imaging::parallel::StripePool;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads ("cores").
pub struct CorePool {
    pool: StripePool,
}

impl CorePool {
    /// Spawns `cores` workers.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "pool needs at least one core");
        Self {
            pool: StripePool::new(cores),
        }
    }

    /// Number of cores in the pool.
    pub fn cores(&self) -> usize {
        self.pool.threads()
    }

    /// Runs a batch of `(core, job)` pairs and blocks until all complete.
    /// Returns the wall-clock duration of the whole batch in milliseconds.
    /// Jobs with the same core index always run on the same worker thread.
    pub fn run_batch(&self, jobs: Vec<(usize, Job)>) -> f64 {
        let start = Instant::now();
        self.pool.run_on(jobs);
        start.elapsed().as_secs_f64() * 1e3
    }

    /// Convenience: runs one closure per core index in `cores`, passing the
    /// job its position in the batch.
    pub fn run_indexed<F>(&self, cores: &[usize], f: F) -> f64
    where
        F: Fn(usize) + Send + Sync + 'static + Clone,
    {
        let jobs: Vec<(usize, Job)> = cores
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let f = f.clone();
                (c, Box::new(move || f(i)) as Job)
            })
            .collect();
        self.run_batch(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn batch_runs_all_jobs() {
        let pool = CorePool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<(usize, Job)> = (0..16)
            .map(|i| {
                let c = Arc::clone(&counter);
                (
                    i % 4,
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Job,
                )
            })
            .collect();
        let ms = pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        assert!(ms >= 0.0);
    }

    #[test]
    fn empty_batch_returns_quickly() {
        let pool = CorePool::new(2);
        let ms = pool.run_batch(vec![]);
        assert!(ms < 100.0);
    }

    #[test]
    fn jobs_routed_to_requested_workers() {
        // Wall-clock speedup cannot be asserted portably (CI hosts may have
        // a single CPU); verify routing instead. Each worker thread reports
        // its own identity, which must match the requested core index.
        let pool = CorePool::new(4);
        let seen: Arc<parking_lot::Mutex<Vec<(usize, String)>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        for round in 0..3 {
            let jobs: Vec<(usize, Job)> = (0..4)
                .map(|core| {
                    let seen = Arc::clone(&seen);
                    (
                        core,
                        Box::new(move || {
                            seen.lock()
                                .push((core, format!("{:?}", std::thread::current().id())));
                        }) as Job,
                    )
                })
                .collect();
            pool.run_batch(jobs);
            let _ = round;
        }
        let seen = seen.lock();
        // each core index always maps to the same worker thread
        for core in 0..4 {
            let ids: std::collections::BTreeSet<_> = seen
                .iter()
                .filter(|(c, _)| *c == core)
                .map(|(_, id)| id.clone())
                .collect();
            assert_eq!(ids.len(), 1, "core {core} ran on {} threads", ids.len());
        }
        // distinct cores map to distinct workers
        let all: std::collections::BTreeSet<_> = seen.iter().map(|(_, id)| id.clone()).collect();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn run_indexed_passes_positions() {
        let pool = CorePool::new(2);
        let hits = Arc::new([
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ]);
        let h = Arc::clone(&hits);
        pool.run_indexed(&[0, 1, 0], move |i| {
            h[i].fetch_add(1, Ordering::SeqCst);
        });
        for a in hits.iter() {
            assert_eq!(a.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn core_indices_wrap() {
        let pool = CorePool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let jobs: Vec<(usize, Job)> = vec![(
            99,
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        )];
        pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = CorePool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.run_batch(vec![(
                0,
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            )]);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }
}
