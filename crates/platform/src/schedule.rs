//! Virtual scheduling: platform latency from measured job durations.
//!
//! The reproduction host need not have 8 physical cores (it may have one),
//! so the experiments measure each job's computation time individually and
//! *schedule virtually* onto the modelled platform: the effective latency
//! of a parallel stage is the makespan of its jobs over the assigned
//! cores, plus a per-job dispatch overhead. This keeps the measured
//! data-dependence of task times (the property Triple-C predicts) while
//! making the parallel-latency shape independent of the host.

/// A job to be scheduled: `(core, duration_ms)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualJob {
    /// Modelled core the job is assigned to.
    pub core: usize,
    /// Measured execution time, ms.
    pub duration_ms: f64,
}

/// Per-job dispatch/synchronization overhead, ms. The paper's task-switch
/// and control overhead shows up as short-term fluctuation; a small fixed
/// charge models the fork/join cost of a partitioned stage.
pub const DISPATCH_OVERHEAD_MS: f64 = 0.05;

/// Virtual timeline of one platform run (one frame).
#[derive(Debug, Clone)]
pub struct VirtualSchedule {
    core_free: Vec<f64>,
    now: f64,
}

impl VirtualSchedule {
    /// Creates an idle schedule for `cores` cores.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "at least one core required");
        Self {
            core_free: vec![0.0; cores],
            now: 0.0,
        }
    }

    /// Number of modelled cores.
    pub fn cores(&self) -> usize {
        self.core_free.len()
    }

    /// Current frontier time, ms.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Runs a parallel stage: all jobs start at the current frontier (after
    /// their core is free) and the stage completes when every job is done.
    /// Returns the stage's completion time.
    pub fn stage(&mut self, jobs: &[VirtualJob]) -> f64 {
        let mut stage_end = self.now;
        for job in jobs {
            let core = job.core % self.core_free.len();
            let start = self.now.max(self.core_free[core]);
            let end = start + job.duration_ms + DISPATCH_OVERHEAD_MS;
            self.core_free[core] = end;
            stage_end = stage_end.max(end);
        }
        self.now = stage_end;
        stage_end
    }

    /// Runs a serial stage on one core.
    pub fn serial(&mut self, core: usize, duration_ms: f64) -> f64 {
        self.stage(&[VirtualJob { core, duration_ms }])
    }

    /// Runs a parallel stage and emits a [`FrameEvent::StageExecuted`](crate::bus::FrameEvent::StageExecuted)
    /// onto `bus` describing it (serial cost vs makespan). Same timeline
    /// semantics as [`VirtualSchedule::stage`].
    pub fn stage_observed(
        &mut self,
        jobs: &[VirtualJob],
        task: &'static str,
        stream: crate::bus::StreamId,
        frame: usize,
        bus: &mut crate::bus::EventBus,
    ) -> f64 {
        let start = self.now;
        let end = self.stage(jobs);
        bus.emit(crate::bus::FrameEvent::StageExecuted {
            stream,
            frame,
            task,
            jobs: jobs.len(),
            serial_ms: jobs.iter().map(|j| j.duration_ms).sum(),
            makespan_ms: end - start,
        });
        end
    }
}

/// Makespan of a single parallel stage starting from an idle platform.
pub fn stage_makespan(cores: usize, jobs: &[VirtualJob]) -> f64 {
    let mut s = VirtualSchedule::new(cores);
    s.stage(jobs)
}

/// Result of a virtual *pipelined* (function-parallel) schedule.
#[derive(Debug, Clone)]
pub struct PipelinedResult {
    /// Per-frame latency: completion of the last stage minus arrival, ms.
    pub latencies: Vec<f64>,
    /// Completion time of each frame's last stage, ms.
    pub completions: Vec<f64>,
    /// Steady-state throughput, frames per second.
    pub throughput_fps: f64,
}

/// Virtual function-parallel scheduling: each pipeline *stage* owns a core
/// and consecutive frames overlap (stage `j` of frame `i` can run while
/// stage `j+1` processes frame `i-1`). This is the partitioning the paper
/// contrasts with data-parallel striping ("For a comparison between
/// data-parallel partitioning and function-parallel partitioning, we refer
/// to \[17\]", Section 6): it multiplies throughput but cannot shorten a
/// single frame's latency below the sum of its stage times.
///
/// `stage_times[i][j]` is the measured duration of stage `j` on frame `i`;
/// `stage_core[j]` assigns each stage its core; frames arrive every
/// `period_ms`.
pub fn pipelined_schedule(
    stage_times: &[Vec<f64>],
    stage_core: &[usize],
    cores: usize,
    period_ms: f64,
) -> PipelinedResult {
    assert!(cores > 0, "at least one core required");
    let n_stages = stage_core.len();
    let mut core_free = vec![0.0f64; cores];
    let mut latencies = Vec::with_capacity(stage_times.len());
    let mut completions = Vec::with_capacity(stage_times.len());

    // completion time of each stage of the previous frame (dataflow dep)
    let mut prev_stage_done = vec![0.0f64; n_stages];
    for (i, frame) in stage_times.iter().enumerate() {
        assert_eq!(frame.len(), n_stages, "frame {i} has wrong stage count");
        let arrival = i as f64 * period_ms;
        let mut ready = arrival;
        for (j, &t) in frame.iter().enumerate() {
            let core = stage_core[j] % cores;
            // a stage starts when its input is ready, its core is free and
            // the same stage of the previous frame has retired (in-order)
            let start = ready.max(core_free[core]).max(prev_stage_done[j]);
            let end = start + t + DISPATCH_OVERHEAD_MS;
            core_free[core] = end;
            prev_stage_done[j] = end;
            ready = end;
        }
        latencies.push(ready - arrival);
        completions.push(ready);
    }
    let throughput_fps = if stage_times.len() > 1 {
        let span = completions.last().unwrap() - completions[0];
        if span > 0.0 {
            (stage_times.len() - 1) as f64 / (span / 1000.0)
        } else {
            f64::INFINITY
        }
    } else {
        0.0
    };
    PipelinedResult {
        latencies,
        completions,
        throughput_fps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn single_job_latency_is_duration_plus_overhead() {
        let mut s = VirtualSchedule::new(8);
        let end = s.serial(0, 10.0);
        assert!((end - 10.0 - DISPATCH_OVERHEAD_MS).abs() < EPS);
    }

    #[test]
    fn parallel_jobs_on_distinct_cores_overlap() {
        let jobs = [
            VirtualJob {
                core: 0,
                duration_ms: 10.0,
            },
            VirtualJob {
                core: 1,
                duration_ms: 12.0,
            },
        ];
        let end = stage_makespan(8, &jobs);
        assert!((end - 12.0 - DISPATCH_OVERHEAD_MS).abs() < EPS, "end {end}");
    }

    #[test]
    fn jobs_on_same_core_serialize() {
        let jobs = [
            VirtualJob {
                core: 0,
                duration_ms: 10.0,
            },
            VirtualJob {
                core: 0,
                duration_ms: 12.0,
            },
        ];
        let end = stage_makespan(8, &jobs);
        assert!(
            (end - 22.0 - 2.0 * DISPATCH_OVERHEAD_MS).abs() < EPS,
            "end {end}"
        );
    }

    #[test]
    fn two_stripe_parallel_halves_latency() {
        // the Fig. 6 effect: a 20 ms serial task split into two 10 ms
        // stripes on two cores completes in ~10 ms
        let serial = stage_makespan(
            8,
            &[VirtualJob {
                core: 0,
                duration_ms: 20.0,
            }],
        );
        let striped = stage_makespan(
            8,
            &[
                VirtualJob {
                    core: 0,
                    duration_ms: 10.0,
                },
                VirtualJob {
                    core: 1,
                    duration_ms: 10.0,
                },
            ],
        );
        assert!(
            striped < 0.55 * serial,
            "striped {striped} vs serial {serial}"
        );
    }

    #[test]
    fn stages_compose_sequentially() {
        let mut s = VirtualSchedule::new(4);
        s.stage(&[
            VirtualJob {
                core: 0,
                duration_ms: 5.0,
            },
            VirtualJob {
                core: 1,
                duration_ms: 3.0,
            },
        ]);
        let end = s.stage(&[VirtualJob {
            core: 2,
            duration_ms: 2.0,
        }]);
        // second stage starts only after the first completes (barrier)
        assert!(
            (end - (5.0 + 2.0 + 2.0 * DISPATCH_OVERHEAD_MS)).abs() < EPS,
            "end {end}"
        );
    }

    #[test]
    fn core_indices_wrap_to_pool() {
        let end = stage_makespan(
            2,
            &[VirtualJob {
                core: 5,
                duration_ms: 4.0,
            }],
        );
        assert!((end - 4.0 - DISPATCH_OVERHEAD_MS).abs() < EPS);
    }

    #[test]
    fn pipelined_single_frame_latency_is_stage_sum() {
        let frames = vec![vec![5.0, 3.0, 2.0]];
        let r = pipelined_schedule(&frames, &[0, 1, 2], 8, 33.3);
        assert!((r.latencies[0] - (10.0 + 3.0 * DISPATCH_OVERHEAD_MS)).abs() < EPS);
    }

    #[test]
    fn pipelined_overlaps_consecutive_frames() {
        // 3 stages of 10 ms each, own cores, frames arriving every 10 ms:
        // steady-state throughput ~1 frame per (10 + overhead) ms, even
        // though each frame's latency is ~30 ms
        let frames: Vec<Vec<f64>> = (0..20).map(|_| vec![10.0, 10.0, 10.0]).collect();
        let r = pipelined_schedule(&frames, &[0, 1, 2], 8, 10.0);
        let fps = r.throughput_fps;
        assert!(fps > 90.0 && fps < 101.0, "throughput {fps}");
        // latency stays near 30 ms once the pipe fills
        let tail = r.latencies.last().unwrap();
        assert!(*tail >= 30.0, "latency {tail}");
        assert!(*tail < 45.0, "latency {tail} blew up");
    }

    #[test]
    fn pipelined_on_one_core_serializes() {
        let frames: Vec<Vec<f64>> = (0..5).map(|_| vec![10.0, 10.0]).collect();
        let shared = pipelined_schedule(&frames, &[0, 0], 8, 0.0);
        let split = pipelined_schedule(&frames, &[0, 1], 8, 0.0);
        assert!(
            split.completions.last().unwrap() < &(shared.completions.last().unwrap() * 0.7),
            "split {:?} vs shared {:?}",
            split.completions.last(),
            shared.completions.last()
        );
    }

    #[test]
    fn pipelined_slowest_stage_bounds_throughput() {
        // stage times 2/20/2: throughput limited by the 20 ms stage
        let frames: Vec<Vec<f64>> = (0..20).map(|_| vec![2.0, 20.0, 2.0]).collect();
        let r = pipelined_schedule(&frames, &[0, 1, 2], 8, 0.0);
        let fps = r.throughput_fps;
        assert!(fps < 51.0, "throughput {fps} exceeds the bottleneck bound");
        assert!(
            fps > 40.0,
            "throughput {fps} far below the bottleneck bound"
        );
    }

    #[test]
    fn imbalanced_stripes_bound_latency() {
        // latency follows the slowest stripe
        let jobs = [
            VirtualJob {
                core: 0,
                duration_ms: 2.0,
            },
            VirtualJob {
                core: 1,
                duration_ms: 18.0,
            },
        ];
        let end = stage_makespan(8, &jobs);
        assert!((end - 18.0 - DISPATCH_OVERHEAD_MS).abs() < EPS);
    }
}
