//! Space-time buffer occupation model (Section 5, Fig. 5).
//!
//! Each image-processing task is described as a sequence of streaming
//! *passes* over named *buffers* (the tasks scan pixels linearly in x, y,
//! so at buffer granularity a pass is a linear scan). The model tracks
//! which buffers can stay resident in cache between passes and charges
//! external-memory traffic for every re-fetch and dirty eviction — the
//! cache-line eviction of Fig. 5, lifted to buffer granularity.
//!
//! A trace-driven counterpart replays the same pass structure through the
//! [`CacheSim`] at cache-line granularity; comparing the two reproduces the
//! paper's model-vs-measurement bandwidth accuracy experiment.

use crate::arch::CacheGeometry;
use crate::cache::CacheSim;

/// A named buffer of a task's access model.
#[derive(Debug, Clone)]
pub struct BufferSpec {
    /// Human-readable name ("input", "ridge acc", ...).
    pub name: &'static str,
    /// Buffer size, bytes.
    pub bytes: usize,
}

/// One streaming pass over a subset of buffers.
#[derive(Debug, Clone)]
pub struct PassSpec {
    /// Subtask label (the A/B/C boxes of Fig. 5).
    pub label: &'static str,
    /// Indices of buffers read in this pass.
    pub reads: Vec<usize>,
    /// Indices of buffers written in this pass.
    pub writes: Vec<usize>,
}

/// A task's memory-access model.
#[derive(Debug, Clone, Default)]
pub struct TaskAccessModel {
    /// The task's buffers.
    pub buffers: Vec<BufferSpec>,
    /// Streaming passes in execution order.
    pub passes: Vec<PassSpec>,
}

impl TaskAccessModel {
    /// Total bytes of all buffers.
    pub fn total_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.bytes).sum()
    }
}

/// Traffic prediction of one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PassTraffic {
    /// Subtask label.
    pub label: &'static str,
    /// Bytes fetched from external memory during this pass.
    pub fetch_bytes: u64,
    /// Bytes written back to external memory during this pass.
    pub writeback_bytes: u64,
}

impl PassTraffic {
    /// Total external traffic of the pass.
    pub fn total(&self) -> u64 {
        self.fetch_bytes + self.writeback_bytes
    }
}

/// Analytic prediction result for a whole task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTraffic {
    /// Per-pass breakdown.
    pub passes: Vec<PassTraffic>,
}

impl TaskTraffic {
    /// Total external traffic of the task, bytes per frame.
    pub fn total_bytes(&self) -> u64 {
        self.passes.iter().map(|p| p.total()).sum()
    }

    /// Bandwidth at the given frame rate, bytes/s.
    pub fn bandwidth(&self, frame_rate: f64) -> f64 {
        self.total_bytes() as f64 * frame_rate
    }
}

#[derive(Debug, Clone)]
struct Resident {
    buffer: usize,
    last_use: u64,
    dirty: bool,
}

/// Analytic space-time occupation model: predicts the external-memory
/// traffic of `task` under a cache of `capacity` bytes.
///
/// Buffers whose combined footprint fits the capacity stay resident across
/// passes (only compulsory fetches); oversubscription evicts the
/// least-recently-used buffers, charging re-fetch and writeback traffic —
/// "additional communication bandwidth will be initiated to swap data in
/// and out the external memory" (Section 5).
#[allow(clippy::explicit_counter_loop)] // `clock` is the model's logical time
pub fn predict_traffic(task: &TaskAccessModel, capacity: usize) -> TaskTraffic {
    let mut resident: Vec<Resident> = Vec::new();
    let mut clock = 0u64;
    let mut out = Vec::with_capacity(task.passes.len());

    for pass in &task.passes {
        clock += 1;
        let mut fetch = 0u64;
        let mut writeback = 0u64;

        // Large streaming buffers that exceed the capacity on their own can
        // never be resident: every pass re-streams them entirely.
        let touch = |idx: usize,
                     write: bool,
                     resident: &mut Vec<Resident>,
                     fetch: &mut u64,
                     writeback: &mut u64| {
            let bytes = task.buffers[idx].bytes;
            if bytes > capacity {
                // Streams straight through the cache. Writes are
                // write-allocate (fetch + eventual writeback), matching the
                // line-granular simulator.
                *fetch += bytes as u64;
                if write {
                    *writeback += bytes as u64;
                }
                return;
            }
            if let Some(r) = resident.iter_mut().find(|r| r.buffer == idx) {
                r.last_use = clock;
                r.dirty |= write;
            } else {
                // write-allocate: a first write also fetches the lines
                *fetch += bytes as u64;
                // make room: evict LRU buffers until this one fits
                let mut used: usize = resident.iter().map(|r| task.buffers[r.buffer].bytes).sum();
                while used + bytes > capacity && !resident.is_empty() {
                    let (lru_pos, _) = resident
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, r)| r.last_use)
                        .expect("non-empty");
                    let victim = resident.swap_remove(lru_pos);
                    used -= task.buffers[victim.buffer].bytes;
                    if victim.dirty {
                        *writeback += task.buffers[victim.buffer].bytes as u64;
                    }
                }
                resident.push(Resident {
                    buffer: idx,
                    last_use: clock,
                    dirty: write,
                });
            }
        };

        for &idx in &pass.reads {
            touch(idx, false, &mut resident, &mut fetch, &mut writeback);
        }
        for &idx in &pass.writes {
            touch(idx, true, &mut resident, &mut fetch, &mut writeback);
        }
        out.push(PassTraffic {
            label: pass.label,
            fetch_bytes: fetch,
            writeback_bytes: writeback,
        });
    }

    // final writeback of dirty residents (results leave the cache eventually)
    if let Some(last) = out.last_mut() {
        for r in &resident {
            if r.dirty {
                last.writeback_bytes += task.buffers[r.buffer].bytes as u64;
            }
        }
    }
    TaskTraffic { passes: out }
}

/// Trace-driven "measurement": replays the pass structure through a
/// line-granular cache simulation and returns the observed traffic.
///
/// Buffers are laid out contiguously with a line of padding; each pass
/// interleaves its read and write streams the way a pixel loop does
/// (read a line's worth of each input, write a line of each output).
pub fn simulate_traffic(task: &TaskAccessModel, geometry: CacheGeometry) -> TaskTraffic {
    let mut sim = CacheSim::new(geometry);
    // contiguous layout
    let mut bases = Vec::with_capacity(task.buffers.len());
    let mut next = 0u64;
    for b in &task.buffers {
        bases.push(next);
        next += b.bytes as u64 + geometry.line_size as u64;
    }

    let mut out = Vec::with_capacity(task.passes.len());
    for pass in &task.passes {
        let before = sim.stats();
        // interleaved streaming: step through all streams line by line
        let line = geometry.line_size as u64;
        let max_len = pass
            .reads
            .iter()
            .chain(pass.writes.iter())
            .map(|&i| task.buffers[i].bytes)
            .max()
            .unwrap_or(0) as u64;
        let mut off = 0u64;
        while off < max_len {
            for &i in &pass.reads {
                if off < task.buffers[i].bytes as u64 {
                    sim.access(bases[i] + off, false);
                }
            }
            for &i in &pass.writes {
                if off < task.buffers[i].bytes as u64 {
                    sim.access(bases[i] + off, true);
                }
            }
            off += line;
        }
        let d_miss = sim.stats().misses - before.misses;
        let d_wb = sim.stats().writebacks - before.writebacks;
        out.push(PassTraffic {
            label: pass.label,
            fetch_bytes: d_miss * line,
            writeback_bytes: d_wb * line,
        });
    }
    // Flush: dirty lines still resident eventually reach external memory
    // (the analytic model charges them too). Re-scanning a disjoint address
    // range at least as large as the cache evicts everything.
    let before = sim.stats();
    sim.linear_scan(next + geometry.capacity as u64, geometry.capacity, false);
    let flushed = sim.stats().writebacks - before.writebacks;
    if let Some(last) = out.last_mut() {
        last.writeback_bytes += flushed * geometry.line_size as u64;
    }
    TaskTraffic { passes: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{CacheGeometry, KB, MB};

    fn model(
        buffers: &[(&'static str, usize)],
        passes: &[(&'static str, &[usize], &[usize])],
    ) -> TaskAccessModel {
        TaskAccessModel {
            buffers: buffers
                .iter()
                .map(|&(name, bytes)| BufferSpec { name, bytes })
                .collect(),
            passes: passes
                .iter()
                .map(|&(label, r, w)| PassSpec {
                    label,
                    reads: r.to_vec(),
                    writes: w.to_vec(),
                })
                .collect(),
        }
    }

    #[test]
    fn fitting_task_pays_only_compulsory_traffic() {
        // in (100K) -> tmp (100K) -> out (100K), 1 MB cache
        let t = model(
            &[("in", 100 * KB), ("tmp", 100 * KB), ("out", 100 * KB)],
            &[("A", &[0], &[1]), ("B", &[1], &[2])],
        );
        let traffic = predict_traffic(&t, MB);
        // pass A: fetch input + write-allocate tmp; pass B: tmp resident,
        // write-allocate out; final writeback of dirty tmp and out.
        let total = traffic.total_bytes();
        assert_eq!(traffic.passes[0].fetch_bytes, 200 * KB as u64);
        assert_eq!(
            traffic.passes[1].fetch_bytes,
            100 * KB as u64,
            "tmp must stay resident"
        );
        assert_eq!(total, 500 * KB as u64, "total {total}");
    }

    #[test]
    fn oversized_buffer_streams_every_pass() {
        // an 8 MB intermediate with a 4 MB cache: every read re-fetches
        let t = model(
            &[("big", 8 * MB)],
            &[("A", &[], &[0]), ("B", &[0], &[]), ("C", &[0], &[])],
        );
        let traffic = predict_traffic(&t, 4 * MB);
        assert_eq!(traffic.passes[1].fetch_bytes, 8 * MB as u64);
        assert_eq!(traffic.passes[2].fetch_bytes, 8 * MB as u64);
        // write pass: write-allocate fetch + writeback
        assert_eq!(traffic.passes[0].fetch_bytes, 8 * MB as u64);
        assert_eq!(traffic.passes[0].writeback_bytes, 8 * MB as u64);
    }

    #[test]
    fn lru_eviction_charges_refetch() {
        // cache fits 2 of 3 equal buffers; round-robin passes thrash
        let t = model(
            &[("a", 100 * KB), ("b", 100 * KB), ("c", 100 * KB)],
            &[
                ("p1", &[0, 1], &[]),
                ("p2", &[1, 2], &[]), // evicts a
                ("p3", &[0, 1], &[]), // refetches a, evicts c... wait: LRU order
            ],
        );
        let traffic = predict_traffic(&t, 210 * KB);
        // p3 must refetch "a" (evicted in p2)
        assert!(
            traffic.passes[2].fetch_bytes >= 100 * KB as u64,
            "{:?}",
            traffic.passes
        );
    }

    #[test]
    fn prediction_tracks_simulation_for_fitting_task() {
        let geom = CacheGeometry {
            capacity: MB,
            line_size: 64,
            ways: 8,
        };
        let t = model(
            &[("in", 128 * KB), ("tmp", 128 * KB), ("out", 128 * KB)],
            &[("A", &[0], &[1]), ("B", &[1], &[2])],
        );
        let pred = predict_traffic(&t, geom.capacity).total_bytes() as f64;
        let sim = simulate_traffic(&t, geom).total_bytes() as f64;
        let rel = (pred - sim).abs() / sim.max(1.0);
        assert!(rel < 0.15, "prediction {pred} vs simulation {sim}");
    }

    #[test]
    fn prediction_tracks_simulation_for_streaming_task() {
        let geom = CacheGeometry {
            capacity: 256 * KB,
            line_size: 64,
            ways: 8,
        };
        // 1 MB buffers in a 256 KB cache: pure streaming
        let t = model(
            &[("in", MB), ("tmp", MB), ("out", MB)],
            &[("A", &[0], &[1]), ("B", &[1], &[2])],
        );
        let pred = predict_traffic(&t, geom.capacity).total_bytes() as f64;
        let sim = simulate_traffic(&t, geom).total_bytes() as f64;
        let rel = (pred - sim).abs() / sim.max(1.0);
        assert!(rel < 0.15, "prediction {pred} vs simulation {sim}");
    }

    #[test]
    fn bandwidth_scales_with_frame_rate() {
        let t = model(&[("in", MB)], &[("A", &[0], &[])]);
        let traffic = predict_traffic(&t, 256 * KB);
        let bw30 = traffic.bandwidth(30.0);
        let bw60 = traffic.bandwidth(60.0);
        assert!((bw60 / bw30 - 2.0).abs() < 1e-9);
        assert!((bw30 - MB as f64 * 30.0).abs() < 1.0);
    }

    #[test]
    fn total_bytes_accumulates_buffers() {
        let t = model(&[("a", KB), ("b", 2 * KB)], &[]);
        assert_eq!(t.total_bytes(), 3 * KB);
    }
}
