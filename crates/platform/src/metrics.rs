//! Lock-cheap metrics registry: counters, gauges and fixed-bucket
//! latency histograms with per-stream / per-stage labels.
//!
//! The resource manager repartitions the flow graph from *measured*
//! per-frame signals (Sections 4–6 of the paper), and every layer already
//! publishes those signals as typed [`FrameEvent`]s. This module turns
//! the event stream into queryable telemetry: a [`MetricsSubscriber`]
//! attached to a bus aggregates events into a shared [`MetricsRegistry`]
//! (so the manager, executor, session scheduler and recovery path need
//! only emit the events they already emit), and a [`MetricsSnapshot`]
//! renders the registry as plain text or JSON for session reports.
//!
//! Handles returned by the registry ([`Counter`], [`Gauge`],
//! [`Histogram`]) are `Arc`-shared atomics: recording is lock-free, and
//! the registry's map is only locked on first registration of a series
//! and on snapshot. The subscriber additionally meters its own cost
//! (the `metrics_self_ns` counter), so the observability layer's
//! overhead is itself observable.

use crate::bus::{EventBus, FrameEvent, StreamId, Subscriber};
use crate::span::{SpanCollector, TraceSubscriber};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Label set attached to one metric series.
///
/// Two dimensions cover every emitter in the stack: the stream a series
/// belongs to, and a short static tag — the stage (task) name for
/// execution metrics, the fault kind or degrade mode for the fault
/// family. `None` means the dimension does not apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Labels {
    /// Emitting stream, when the series is per-stream.
    pub stream: Option<StreamId>,
    /// Stage / kind tag, when the series is per-stage.
    pub stage: Option<&'static str>,
}

impl Labels {
    /// No labels (a process-global series).
    pub fn none() -> Self {
        Self::default()
    }

    /// A per-stream series.
    pub fn stream(stream: StreamId) -> Self {
        Self {
            stream: Some(stream),
            stage: None,
        }
    }

    /// A per-stream, per-stage series.
    pub fn stage(stream: StreamId, stage: &'static str) -> Self {
        Self {
            stream: Some(stream),
            stage: Some(stage),
        }
    }

    fn render(&self) -> String {
        match (self.stream, self.stage) {
            (None, None) => String::new(),
            (Some(s), None) => format!("{{stream={s}}}"),
            (None, Some(t)) => format!("{{stage={t}}}"),
            (Some(s), Some(t)) => format!("{{stream={s},stage={t}}}"),
        }
    }
}

/// Identity of one metric series in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Key {
    name: &'static str,
    labels: Labels,
}

/// 1-based nearest rank of percentile `p` over `count` samples.
///
/// The single rank formula shared by the exact series [`percentile`]
/// and the bucketed [`Histogram::percentile_ms`], so the two report the
/// same rank semantics (they differ only by bucket quantization).
fn nearest_rank(p: f64, count: u64) -> u64 {
    ((p.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count)
}

/// Nearest-rank percentile of an unsorted series (`p` in `[0, 1]`);
/// `0.0` on an empty slice.
///
/// Exact (sorts a copy of the data) — the small-series complement of
/// [`Histogram::percentile_ms`], which answers the same question from
/// fixed buckets without retaining samples. Used for per-stream p99s in
/// session reports and benchmark tables.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = nearest_rank(p, sorted.len() as u64) as usize;
    sorted[rank - 1]
}

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Sub-buckets per power-of-two octave: values are exact below
/// [`HIST_SUB`] µs and quantized to ≤ 1/8 (12.5 %) relative error above.
const HIST_SUB: u64 = 8;
/// log2 of [`HIST_SUB`].
const HIST_SUB_BITS: u32 = 3;
/// Total bucket count: octaves up to ~2^34 µs (≈ 4.8 hours) plus a
/// saturating overflow bucket at the end.
const HIST_BUCKETS: usize = 264;

/// Interior of a [`Histogram`]: HDR-style fixed buckets (log2 octaves
/// with [`HIST_SUB`] linear sub-buckets each) over microsecond-quantized
/// values, all atomics.
#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    min_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a microsecond value (saturating at the last bucket).
fn bucket_index(v_us: u64) -> usize {
    let idx = if v_us < HIST_SUB {
        v_us as usize
    } else {
        let msb = 63 - v_us.leading_zeros();
        let shift = msb - HIST_SUB_BITS;
        ((shift as usize + 1) << HIST_SUB_BITS) | ((v_us >> shift) & (HIST_SUB - 1)) as usize
    };
    idx.min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound (µs) of a bucket.
fn bucket_upper_us(idx: usize) -> u64 {
    if idx < HIST_SUB as usize {
        return idx as u64;
    }
    let shift = (idx >> HIST_SUB_BITS) as u32 - 1;
    let sub = (idx as u64) & (HIST_SUB - 1);
    ((HIST_SUB + sub) << shift) + (1u64 << shift) - 1
}

impl HistogramCore {
    fn record_ms(&self, ms: f64) {
        let v_us = if ms <= 0.0 {
            0
        } else {
            (ms * 1000.0).round().min(u64::MAX as f64) as u64
        };
        self.buckets[bucket_index(v_us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(v_us, Ordering::Relaxed);
        self.min_us.fetch_min(v_us, Ordering::Relaxed);
        self.max_us.fetch_max(v_us, Ordering::Relaxed);
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`), ms. The bucket's upper
    /// bound, clamped to the recorded min/max (so a single sample — and
    /// the extremes — are reported exactly).
    fn percentile_ms(&self, p: f64) -> f64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let rank = nearest_rank(p, count);
        let mut seen = 0u64;
        let mut value_us = bucket_upper_us(HIST_BUCKETS - 1);
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                value_us = bucket_upper_us(i);
                break;
            }
        }
        let min = self.min_us.load(Ordering::Relaxed);
        let max = self.max_us.load(Ordering::Relaxed);
        (value_us.clamp(min, max)) as f64 / 1000.0
    }

    fn snapshot(&self, name: &'static str, labels: Labels) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let (min_ms, max_ms) = if count == 0 {
            (0.0, 0.0)
        } else {
            (
                self.min_us.load(Ordering::Relaxed) as f64 / 1000.0,
                self.max_us.load(Ordering::Relaxed) as f64 / 1000.0,
            )
        };
        HistogramSnapshot {
            name,
            labels,
            count,
            sum_ms: self.sum_us.load(Ordering::Relaxed) as f64 / 1000.0,
            min_ms,
            max_ms,
            p50_ms: self.percentile_ms(0.50),
            p95_ms: self.percentile_ms(0.95),
            p99_ms: self.percentile_ms(0.99),
        }
    }
}

/// A fixed-bucket latency histogram (values in milliseconds). Cloning
/// shares the underlying buckets.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one value (ms). Negative values clamp to zero.
    pub fn record(&self, ms: f64) {
        self.0.record_ms(ms);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`), ms; 0.0 when empty.
    /// Quantization error is bounded by the bucket width (≤ 12.5 %
    /// relative), and the extremes are exact.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.0.percentile_ms(p)
    }

    /// Maximum recorded value, ms (0.0 when empty).
    pub fn max_ms(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        self.0.max_us.load(Ordering::Relaxed) as f64 / 1000.0
    }
}

/// Point-in-time value of one counter series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Series labels.
    pub labels: Labels,
    /// Value at snapshot time.
    pub value: u64,
}

/// Point-in-time value of one gauge series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Series labels.
    pub labels: Labels,
    /// Value at snapshot time.
    pub value: f64,
}

/// Point-in-time summary of one histogram series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Series labels.
    pub labels: Labels,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, ms.
    pub sum_ms: f64,
    /// Minimum sample, ms.
    pub min_ms: f64,
    /// Maximum sample, ms.
    pub max_ms: f64,
    /// Median, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
}

/// A consistent point-in-time dump of every registered series, ordered
/// by name then labels. Renders as aligned plain text via [`std::fmt::Display`]
/// and as JSON via [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All counter series.
    pub counters: Vec<CounterSnapshot>,
    /// All gauge series.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histogram series.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Sum of a counter across all label sets (0 when absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// One counter series' value (0 when absent).
    pub fn counter(&self, name: &str, labels: Labels) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels == labels)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// One histogram series, if recorded.
    pub fn histogram(&self, name: &str, labels: Labels) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.labels == labels)
    }

    /// The snapshot as a JSON object (`{"counters": [...], "gauges":
    /// [...], "histograms": [...]}`), no external dependencies.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}{}\", \"value\": {}}}",
                c.name,
                c.labels.render(),
                c.value
            ));
        }
        out.push_str("], \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}{}\", \"value\": {}}}",
                g.name,
                g.labels.render(),
                fmt_f64(g.value)
            ));
        }
        out.push_str("], \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}{}\", \"count\": {}, \"sum_ms\": {}, \"min_ms\": {}, \
                 \"max_ms\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}}}",
                h.name,
                h.labels.render(),
                h.count,
                fmt_f64(h.sum_ms),
                fmt_f64(h.min_ms),
                fmt_f64(h.max_ms),
                fmt_f64(h.p50_ms),
                fmt_f64(h.p95_ms),
                fmt_f64(h.p99_ms)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// JSON-safe float rendering (no NaN/inf literals).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.counters {
            writeln!(f, "{}{} {}", c.name, c.labels.render(), c.value)?;
        }
        for g in &self.gauges {
            writeln!(f, "{}{} {:.3}", g.name, g.labels.render(), g.value)?;
        }
        for h in &self.histograms {
            writeln!(
                f,
                "{}{} count={} p50={:.3}ms p95={:.3}ms p99={:.3}ms max={:.3}ms",
                h.name,
                h.labels.render(),
                h.count,
                h.p50_ms,
                h.p95_ms,
                h.p99_ms,
                h.max_ms
            )?;
        }
        Ok(())
    }
}

/// The registry: a named, labelled family of counters, gauges and
/// histograms shared across threads.
///
/// `counter`/`gauge`/`histogram` return `Arc`-shared handles; hold the
/// handle and record through it (atomic-only). The interior maps are
/// behind [`parking_lot::RwLock`]s taken only on registration (write)
/// and lookup/snapshot (read).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<Key, Counter>>,
    gauges: RwLock<BTreeMap<Key, Gauge>>,
    histograms: RwLock<BTreeMap<Key, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter series `name{labels}`, created on first use.
    pub fn counter(&self, name: &'static str, labels: Labels) -> Counter {
        let key = Key { name, labels };
        if let Some(c) = self.counters.read().get(&key) {
            return c.clone();
        }
        self.counters.write().entry(key).or_default().clone()
    }

    /// The gauge series `name{labels}`, created on first use.
    pub fn gauge(&self, name: &'static str, labels: Labels) -> Gauge {
        let key = Key { name, labels };
        if let Some(g) = self.gauges.read().get(&key) {
            return g.clone();
        }
        self.gauges.write().entry(key).or_default().clone()
    }

    /// The histogram series `name{labels}`, created on first use.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Histogram {
        let key = Key { name, labels };
        if let Some(h) = self.histograms.read().get(&key) {
            return h.clone();
        }
        self.histograms.write().entry(key).or_default().clone()
    }

    /// A point-in-time dump of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, c)| CounterSnapshot {
                    name: k.name,
                    labels: k.labels,
                    value: c.get(),
                })
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, g)| GaugeSnapshot {
                    name: k.name,
                    labels: k.labels,
                    value: g.get(),
                })
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, h)| h.0.snapshot(k.name, k.labels))
                .collect(),
        }
    }
}

/// A bus [`Subscriber`] aggregating every [`FrameEvent`] into a shared
/// [`MetricsRegistry`] (the event→metric mapping is tabulated in
/// DESIGN.md §4f). Handles are cached per series, so the steady-state
/// cost per event is a handle lookup plus a few atomic operations; that
/// cost is itself accumulated in the `metrics_self_ns` counter.
pub struct MetricsSubscriber {
    registry: Arc<MetricsRegistry>,
    counters: HashMap<Key, Counter>,
    gauges: HashMap<Key, Gauge>,
    histograms: HashMap<Key, Histogram>,
    self_ns: Counter,
}

impl MetricsSubscriber {
    /// A subscriber feeding `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        let self_ns = registry.counter("metrics_self_ns", Labels::none());
        Self {
            registry,
            counters: HashMap::new(),
            gauges: HashMap::new(),
            histograms: HashMap::new(),
            self_ns,
        }
    }

    /// Creates a subscriber over `registry` and attaches it to `bus`.
    pub fn subscribe_to(bus: &mut EventBus, registry: Arc<MetricsRegistry>) {
        bus.subscribe(Box::new(Self::new(registry)));
    }

    fn counter(&mut self, name: &'static str, labels: Labels) -> Counter {
        let key = Key { name, labels };
        self.counters
            .entry(key)
            .or_insert_with(|| self.registry.counter(name, labels))
            .clone()
    }

    fn gauge(&mut self, name: &'static str, labels: Labels) -> Gauge {
        let key = Key { name, labels };
        self.gauges
            .entry(key)
            .or_insert_with(|| self.registry.gauge(name, labels))
            .clone()
    }

    fn histogram(&mut self, name: &'static str, labels: Labels) -> Histogram {
        let key = Key { name, labels };
        self.histograms
            .entry(key)
            .or_insert_with(|| self.registry.histogram(name, labels))
            .clone()
    }

    fn absorb(&mut self, event: &FrameEvent) {
        let per_stream = Labels::stream(event.stream());
        match *event {
            FrameEvent::PlanIssued {
                predicted_total_ms,
                rdg_stripes,
                feasible,
                ..
            } => {
                self.counter("plans_issued", per_stream).inc();
                if !feasible {
                    self.counter("plans_infeasible", per_stream).inc();
                }
                self.histogram("predicted_total_ms", per_stream)
                    .record(predicted_total_ms);
                self.gauge("rdg_stripes", per_stream)
                    .set(rdg_stripes as f64);
            }
            FrameEvent::PredictionIssued { cost_us, .. } => {
                self.counter("predictions_issued", per_stream).inc();
                self.histogram("prediction_cost_ms", per_stream)
                    .record(cost_us / 1000.0);
            }
            FrameEvent::RepartitionDecided { reason, .. } => {
                self.counter("repartitions", Labels::stage(event.stream(), reason.name()))
                    .inc();
            }
            FrameEvent::StageExecuted {
                task, makespan_ms, ..
            } => {
                let labels = Labels::stage(event.stream(), task);
                self.counter("stages_executed", labels).inc();
                self.histogram("stage_makespan_ms", labels)
                    .record(makespan_ms);
            }
            FrameEvent::FrameExecuted {
                predicted_total_ms,
                actual_total_ms,
                latency_ms,
                ..
            } => {
                self.counter("frames_executed", per_stream).inc();
                self.histogram("frame_latency_ms", per_stream)
                    .record(latency_ms);
                self.histogram("prediction_error_ms", per_stream)
                    .record((predicted_total_ms - actual_total_ms).abs());
            }
            FrameEvent::BudgetOverrun {
                latency_ms,
                budget_ms,
                ..
            } => {
                self.counter("budget_overruns", per_stream).inc();
                self.histogram("overrun_excess_ms", per_stream)
                    .record(latency_ms - budget_ms);
            }
            FrameEvent::QosIntervention { level, .. } => {
                self.counter("qos_interventions", per_stream).inc();
                self.gauge("qos_level", per_stream).set(level as f64);
            }
            FrameEvent::ModelRetrained { observations, .. } => {
                self.counter("model_retrains", per_stream).inc();
                self.counter("observations_absorbed", per_stream)
                    .add(observations as u64);
            }
            FrameEvent::FaultInjected { kind, .. } => {
                self.counter(
                    "faults_injected",
                    Labels::stage(event.stream(), kind.name()),
                )
                .inc();
            }
            FrameEvent::RetryAttempted { kind, .. } => {
                self.counter(
                    "retries_attempted",
                    Labels::stage(event.stream(), kind.name()),
                )
                .inc();
            }
            FrameEvent::DegradedMode { mode, .. } => {
                self.counter("degraded_mode", Labels::stage(event.stream(), mode.name()))
                    .inc();
            }
            FrameEvent::Recovered { kind, .. } => {
                self.counter("recovered", Labels::stage(event.stream(), kind.name()))
                    .inc();
            }
            FrameEvent::StreamAdmitted {
                shard, queued_ms, ..
            } => {
                self.counter("streams_admitted", per_stream).inc();
                self.histogram("admission_wait_ms", per_stream)
                    .record(queued_ms);
                self.gauge("shard", per_stream).set(shard as f64);
            }
            FrameEvent::StreamQueued { depth, .. } => {
                self.counter("streams_queued", per_stream).inc();
                self.gauge("admission_queue_depth", Labels::none())
                    .set(depth as f64);
            }
            FrameEvent::StreamEvicted { .. } => {
                self.counter("streams_evicted", per_stream).inc();
            }
            FrameEvent::ShardRebalanced { .. } => {
                self.counter("shard_rebalances", per_stream).inc();
            }
            FrameEvent::TracePhase { phase, .. } => {
                self.counter(
                    "trace_phase_transitions",
                    Labels::stage(event.stream(), phase),
                )
                .inc();
            }
            FrameEvent::ChallengerPromoted {
                champion_err_ms,
                challenger_err_ms,
                ..
            } => {
                self.counter("challenger_promotions", per_stream).inc();
                self.histogram("promotion_err_gain_ms", per_stream)
                    .record(champion_err_ms - challenger_err_ms);
            }
            FrameEvent::CalibrationReport {
                p50_cov,
                p95_cov,
                p99_cov,
                ..
            } => {
                self.counter("calibration_reports", per_stream).inc();
                self.gauge("calibration_p50", per_stream).set(p50_cov);
                self.gauge("calibration_p95", per_stream).set(p95_cov);
                self.gauge("calibration_p99", per_stream).set(p99_cov);
            }
        }
    }
}

impl Subscriber for MetricsSubscriber {
    fn on_event(&mut self, event: &FrameEvent) {
        let t0 = std::time::Instant::now();
        self.absorb(event);
        self.self_ns.add(t0.elapsed().as_nanos() as u64);
    }
}

/// The observability front door: one shared [`MetricsRegistry`] plus one
/// shared [`SpanCollector`], attachable to any number of event buses.
///
/// Clone it freely (both halves are `Arc`-shared); attach it to a
/// manager's bus with [`Observability::attach`] and read the aggregate
/// out with [`Observability::snapshot`] /
/// [`Observability::chrome_trace_json`] at any point.
#[derive(Clone, Default)]
pub struct Observability {
    metrics: Arc<MetricsRegistry>,
    spans: SpanCollector,
}

impl Observability {
    /// A fresh registry and span collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The shared span collector.
    pub fn spans(&self) -> &SpanCollector {
        &self.spans
    }

    /// Attaches a [`MetricsSubscriber`] and a [`TraceSubscriber`] to
    /// `bus`: everything the bus emits from now on lands in this
    /// instance's registry and span collector.
    pub fn attach(&self, bus: &mut EventBus) {
        MetricsSubscriber::subscribe_to(bus, Arc::clone(&self.metrics));
        TraceSubscriber::subscribe_to(bus, self.spans.clone());
    }

    /// A point-in-time dump of all metric series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// All collected spans as Chrome `trace_event` JSON (loadable in
    /// `chrome://tracing` and Perfetto).
    pub fn chrome_trace_json(&self) -> String {
        self.spans.chrome_trace_json()
    }

    /// Host wall-clock time the metrics layer has spent handling events,
    /// ms (the built-in self-overhead meter).
    pub fn self_overhead_ms(&self) -> f64 {
        self.metrics
            .counter("metrics_self_ns", Labels::none())
            .get() as f64
            / 1e6
    }
}

impl std::fmt::Debug for Observability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observability")
            .field("spans", &self.spans.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exact_below_sub() {
        for v in 0..HIST_SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_us(v as usize), v);
        }
        let mut last = 0;
        for v in [8u64, 9, 15, 16, 17, 100, 1000, 1 << 20, 1 << 33] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            assert!(bucket_upper_us(idx) >= v, "upper bound below value {v}");
            last = idx;
        }
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_ms(0.5), 0.0);
        assert_eq!(h.percentile_ms(0.99), 0.0);
        assert_eq!(h.max_ms(), 0.0);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let h = Histogram::default();
        h.record(12.345);
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert!(
                (h.percentile_ms(p) - 12.345).abs() < 1e-9,
                "p{p} = {}",
                h.percentile_ms(p)
            );
        }
        assert!((h.max_ms() - 12.345).abs() < 1e-9);
    }

    #[test]
    fn saturating_bucket_absorbs_huge_values() {
        let h = Histogram::default();
        h.record(1e12); // ~31 years, far beyond the last octave
        h.record(1.0);
        assert_eq!(h.count(), 2);
        let p99 = h.percentile_ms(0.99);
        assert!(p99.is_finite());
        assert!(p99 <= h.max_ms());
        assert!(h.max_ms() >= 1e12 * 0.999);
    }

    #[test]
    fn percentiles_are_ordered_and_within_error_bound() {
        let h = Histogram::default();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.percentile_ms(0.50);
        let p95 = h.percentile_ms(0.95);
        let p99 = h.percentile_ms(0.99);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max_ms());
        // ≤ 12.5 % bucket quantization error
        assert!((p50 - 500.0).abs() / 500.0 < 0.125, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.125, "p99 {p99}");
    }

    #[test]
    fn negative_and_zero_values_clamp_to_zero_bucket() {
        let h = Histogram::default();
        h.record(-5.0);
        h.record(0.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile_ms(1.0), 0.0);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", Labels::stream(1));
        let b = reg.counter("x", Labels::stream(1));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // distinct labels are distinct series
        reg.counter("x", Labels::stream(2)).inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x", Labels::stream(1)), 3);
        assert_eq!(snap.counter("x", Labels::stream(2)), 1);
        assert_eq!(snap.counter_total("x"), 4);
    }

    #[test]
    fn subscriber_counts_frames_and_meters_itself() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut bus = EventBus::new();
        MetricsSubscriber::subscribe_to(&mut bus, Arc::clone(&reg));
        for frame in 0..5 {
            bus.emit(FrameEvent::FrameExecuted {
                stream: 2,
                frame,
                scenario: 5,
                predicted_total_ms: 40.0,
                actual_total_ms: 42.0,
                latency_ms: 12.0,
            });
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("frames_executed", Labels::stream(2)), 5);
        let lat = snap
            .histogram("frame_latency_ms", Labels::stream(2))
            .expect("latency histogram");
        assert_eq!(lat.count, 5);
        assert!((lat.p50_ms - 12.0).abs() < 1e-9);
        assert!(snap.counter_total("metrics_self_ns") > 0, "self meter idle");
    }

    #[test]
    fn series_percentile_is_exact_nearest_rank() {
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[42.0], 0.0), 42.0);
        assert_eq!(percentile(&[42.0], 1.0), 42.0);
        // unsorted input; nearest-rank picks an actual sample
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 0.2), 1.0);
        assert_eq!(percentile(&xs, 0.99), 5.0);
        // out-of-range p clamps
        assert_eq!(percentile(&xs, -1.0), 1.0);
        assert_eq!(percentile(&xs, 2.0), 5.0);
    }

    #[test]
    fn series_and_histogram_percentiles_agree_within_quantization() {
        let h = Histogram::default();
        let xs: Vec<f64> = (1..=500).map(|i| i as f64 * 0.25).collect();
        for &x in &xs {
            h.record(x);
        }
        for p in [0.5, 0.95, 0.99] {
            let exact = percentile(&xs, p);
            let bucketed = h.percentile_ms(p);
            assert!(
                (bucketed - exact).abs() / exact < 0.125,
                "p{p}: exact {exact} vs bucketed {bucketed}"
            );
        }
    }

    #[test]
    fn subscriber_absorbs_service_tier_events() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut bus = EventBus::new();
        MetricsSubscriber::subscribe_to(&mut bus, Arc::clone(&reg));
        bus.emit(FrameEvent::StreamQueued {
            stream: 4,
            frame: 0,
            depth: 3,
        });
        bus.emit(FrameEvent::StreamAdmitted {
            stream: 4,
            frame: 0,
            shard: 1,
            cores: 2,
            queued_ms: 7.5,
        });
        bus.emit(FrameEvent::StreamEvicted {
            stream: 4,
            frame: 6,
            shard: 1,
        });
        bus.emit(FrameEvent::ShardRebalanced {
            stream: 4,
            frame: 6,
            from_shard: 1,
            to_shard: 2,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("streams_queued", Labels::stream(4)), 1);
        assert_eq!(snap.counter("streams_admitted", Labels::stream(4)), 1);
        assert_eq!(snap.counter("streams_evicted", Labels::stream(4)), 1);
        assert_eq!(snap.counter("shard_rebalances", Labels::stream(4)), 1);
        let wait = snap
            .histogram("admission_wait_ms", Labels::stream(4))
            .expect("admission wait histogram");
        assert_eq!(wait.count, 1);
        assert!((wait.max_ms - 7.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_renders_text_and_json() {
        let reg = MetricsRegistry::new();
        reg.counter("frames_executed", Labels::stream(0)).add(7);
        reg.histogram("frame_latency_ms", Labels::stage(0, "RDG_FULL"))
            .record(3.5);
        let snap = reg.snapshot();
        let text = snap.to_string();
        assert!(text.contains("frames_executed{stream=0} 7"), "{text}");
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(
            json.contains("\"frame_latency_ms{stream=0,stage=RDG_FULL}\""),
            "{json}"
        );
        assert!(json.contains("\"count\": 1"), "{json}");
    }
}
