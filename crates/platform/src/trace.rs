//! Per-frame execution traces.
//!
//! The experiments record one [`FrameRecord`] per processed frame — task
//! times, scenario, effective latency — and derive the summary statistics
//! reported in the paper (latency band, jitter, worst-vs-average gap).

/// Execution record of one frame.
#[derive(Debug, Clone)]
pub struct FrameRecord {
    /// Frame index.
    pub frame: usize,
    /// Scenario identifier (which switch combination ran), `0..8`.
    pub scenario: u8,
    /// Per-task execution times, `(task, ms)`.
    pub task_times: Vec<(&'static str, f64)>,
    /// Effective output latency of the frame, ms.
    pub latency_ms: f64,
}

impl FrameRecord {
    /// Sum of all task times (the serial computation time of the frame).
    pub fn total_task_time(&self) -> f64 {
        self.task_times.iter().map(|(_, t)| t).sum()
    }

    /// Time of one task if it ran this frame.
    pub fn task_time(&self, task: &str) -> Option<f64> {
        self.task_times
            .iter()
            .find(|(n, _)| *n == task)
            .map(|&(_, t)| t)
    }
}

/// Latency summary of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of frames.
    pub frames: usize,
    /// Mean latency, ms.
    pub mean: f64,
    /// Standard deviation (jitter), ms.
    pub std: f64,
    /// Minimum latency, ms.
    pub min: f64,
    /// Maximum latency, ms.
    pub max: f64,
    /// `(max - mean) / mean`: the worst-vs-average-case gap the paper
    /// reports (85% straightforward vs. 20% semi-automatic).
    pub worst_vs_avg: f64,
}

/// A log of frame records with summary helpers.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    records: Vec<FrameRecord>,
}

impl TraceLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, r: FrameRecord) {
        self.records.push(r);
    }

    /// All records.
    pub fn records(&self) -> &[FrameRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Latency series.
    pub fn latencies(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.latency_ms).collect()
    }

    /// Per-task time series (frames where the task did not run are skipped).
    pub fn task_series(&self, task: &str) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| r.task_time(task))
            .collect()
    }

    /// Scenario occupancy: how many frames ran each scenario id.
    pub fn scenario_histogram(&self) -> [usize; 8] {
        let mut h = [0usize; 8];
        for r in &self.records {
            h[(r.scenario as usize) % 8] += 1;
        }
        h
    }

    /// Latency summary of the log.
    pub fn latency_summary(&self) -> LatencySummary {
        summary_of(&self.latencies())
    }
}

/// Summary statistics of an arbitrary latency series.
pub fn summary_of(xs: &[f64]) -> LatencySummary {
    if xs.is_empty() {
        return LatencySummary {
            frames: 0,
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
            worst_vs_avg: 0.0,
        };
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    LatencySummary {
        frames: xs.len(),
        mean,
        std: var.sqrt(),
        min,
        max,
        worst_vs_avg: if mean > 0.0 { (max - mean) / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(frame: usize, scenario: u8, latency: f64) -> FrameRecord {
        FrameRecord {
            frame,
            scenario,
            task_times: vec![("RDG", latency * 0.6), ("MKX", latency * 0.4)],
            latency_ms: latency,
        }
    }

    #[test]
    fn record_totals_and_lookup() {
        let r = rec(0, 1, 10.0);
        assert!((r.total_task_time() - 10.0).abs() < 1e-12);
        assert!((r.task_time("RDG").unwrap() - 6.0).abs() < 1e-12);
        assert!(r.task_time("ZOOM").is_none());
    }

    #[test]
    fn summary_statistics() {
        let s = summary_of(&[10.0, 20.0, 30.0]);
        assert_eq!(s.frames, 3);
        assert!((s.mean - 20.0).abs() < 1e-12);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
        assert!((s.worst_vs_avg - 0.5).abs() < 1e-12);
        assert!((s.std - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = summary_of(&[]);
        assert_eq!(s.frames, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn log_accumulates_and_summarizes() {
        let mut log = TraceLog::new();
        for i in 0..10 {
            log.push(rec(i, (i % 3) as u8, 10.0 + i as f64));
        }
        assert_eq!(log.len(), 10);
        let s = log.latency_summary();
        assert_eq!(s.frames, 10);
        assert!((s.mean - 14.5).abs() < 1e-12);
        let hist = log.scenario_histogram();
        assert_eq!(hist[0], 4);
        assert_eq!(hist[1], 3);
        assert_eq!(hist[2], 3);
        assert_eq!(hist[3..].iter().sum::<usize>(), 0);
    }

    #[test]
    fn task_series_skips_missing() {
        let mut log = TraceLog::new();
        log.push(rec(0, 0, 10.0));
        log.push(FrameRecord {
            frame: 1,
            scenario: 0,
            task_times: vec![],
            latency_ms: 5.0,
        });
        log.push(rec(2, 0, 20.0));
        let series = log.task_series("RDG");
        assert_eq!(series.len(), 2);
        assert!((series[1] - 12.0).abs() < 1e-12);
    }
}
