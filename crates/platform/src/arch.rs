//! Architecture model of the evaluation platform (Fig. 4).
//!
//! The paper's testbed is a dual quad-core Intel "Blackford" system:
//! 8 processors of 2.327 GCycles/s, 8 level-1 caches of 32 KB, 4 level-2
//! caches of 4 MB (one per core pair), 4 GB of external memory, and the
//! bus hierarchy annotated in Fig. 4(b): 72 GB/s CPU⇄L1, 48 GB/s cache
//! bus, 29 GB/s memory bus and 0.94–3.83 GB/s I/O.

/// Kilobyte and megabyte in bytes.
pub const KB: usize = 1024;
/// Megabyte in bytes.
pub const MB: usize = 1024 * 1024;
/// Gigabyte in bytes.
pub const GB: usize = 1024 * 1024 * 1024;

/// One cache level's geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity, bytes.
    pub capacity: usize,
    /// Cache-line size, bytes.
    pub line_size: usize,
    /// Associativity (ways).
    pub ways: usize,
}

impl CacheGeometry {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (self.line_size * self.ways)
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.capacity / self.line_size
    }
}

/// The platform architecture model.
#[derive(Debug, Clone)]
pub struct ArchModel {
    /// Number of processor cores.
    pub cores: usize,
    /// Core clock, cycles per second.
    pub clock_hz: f64,
    /// Per-core L1 data cache.
    pub l1: CacheGeometry,
    /// Shared L2 cache geometry.
    pub l2: CacheGeometry,
    /// Number of cores sharing each L2 (Blackford: 2).
    pub cores_per_l2: usize,
    /// External memory size, bytes.
    pub dram_bytes: usize,
    /// CPU ⇄ cache bandwidth, bytes/s (72 GB/s in Fig. 4).
    pub bus_cpu_cache: f64,
    /// Cache ⇄ cache/snoop bandwidth, bytes/s (48 GB/s).
    pub bus_cache: f64,
    /// Memory bus bandwidth, bytes/s (29 GB/s).
    pub bus_memory: f64,
    /// I/O bandwidth range, bytes/s (0.94–3.83 GB/s).
    pub bus_io: (f64, f64),
}

impl Default for ArchModel {
    /// The paper's instantiated architecture (Fig. 4(b)).
    fn default() -> Self {
        Self {
            cores: 8,
            clock_hz: 2.327e9,
            l1: CacheGeometry {
                capacity: 32 * KB,
                line_size: 64,
                ways: 8,
            },
            l2: CacheGeometry {
                capacity: 4 * MB,
                line_size: 64,
                ways: 16,
            },
            cores_per_l2: 2,
            dram_bytes: 4 * GB,
            bus_cpu_cache: 72.0e9,
            bus_cache: 48.0e9,
            bus_memory: 29.0e9,
            bus_io: (0.94e9, 3.83e9),
        }
    }
}

impl ArchModel {
    /// Number of L2 cache domains.
    pub fn l2_domains(&self) -> usize {
        self.cores.div_ceil(self.cores_per_l2)
    }

    /// The L2 domain a core belongs to.
    pub fn l2_domain_of(&self, core: usize) -> usize {
        assert!(core < self.cores, "core {core} out of range");
        core / self.cores_per_l2
    }

    /// Whether two cores share an L2 cache.
    pub fn share_l2(&self, a: usize, b: usize) -> bool {
        self.l2_domain_of(a) == self.l2_domain_of(b)
    }

    /// Aggregate compute throughput, cycles/s.
    pub fn total_cycles_per_sec(&self) -> f64 {
        self.cores as f64 * self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let a = ArchModel::default();
        assert_eq!(a.cores, 8);
        assert!((a.clock_hz - 2.327e9).abs() < 1e3);
        assert_eq!(a.l1.capacity, 32 * KB);
        assert_eq!(a.l2.capacity, 4 * MB);
        assert_eq!(a.l2_domains(), 4);
        assert_eq!(a.dram_bytes, 4 * GB);
        assert!((a.bus_memory - 29.0e9).abs() < 1e6);
    }

    #[test]
    fn l2_domains_pair_cores() {
        let a = ArchModel::default();
        assert!(a.share_l2(0, 1));
        assert!(!a.share_l2(1, 2));
        assert!(a.share_l2(6, 7));
        assert_eq!(a.l2_domain_of(5), 2);
    }

    #[test]
    fn cache_geometry_derives_sets_and_lines() {
        let g = CacheGeometry {
            capacity: 32 * KB,
            line_size: 64,
            ways: 8,
        };
        assert_eq!(g.lines(), 512);
        assert_eq!(g.sets(), 64);
        let l2 = CacheGeometry {
            capacity: 4 * MB,
            line_size: 64,
            ways: 16,
        };
        assert_eq!(l2.lines(), 65536);
        assert_eq!(l2.sets(), 4096);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_core_rejected() {
        ArchModel::default().l2_domain_of(8);
    }

    #[test]
    fn total_throughput() {
        let a = ArchModel::default();
        assert!((a.total_cycles_per_sec() - 8.0 * 2.327e9).abs() < 1.0);
    }
}
