//! # triplec-platform
//!
//! Simulated multiprocessor platform for the Triple-C reproduction,
//! modelling the paper's dual quad-core Intel "Blackford" testbed
//! (Fig. 4): [`arch`] holds the architecture parameters, [`cache`] is a
//! trace-driven set-associative cache simulator (the "measurement" side of
//! the bandwidth experiments), [`spacetime`] the analytic space-time
//! buffer-occupation model of Section 5 (the "prediction" side, Fig. 5),
//! [`bandwidth`] aggregates per-bus communication loads, [`mapping`]
//! describes task-to-core partitionings, [`executor`] is a persistent
//! worker pool used by the pipeline, [`bus`] is the typed frame-event bus
//! every layer above publishes onto, and [`profile`]/[`trace`] collect the
//! computation-time statistics the prediction models train on.
//! [`metrics`] and [`span`] form the observability layer: both feed off
//! the event bus via built-in subscribers and export plain-text/JSON
//! snapshots and Chrome `trace_event` timelines.

pub mod arch;
pub mod bandwidth;
pub mod bus;
pub mod cache;
pub mod executor;
pub mod hierarchy;
pub mod mapping;
pub mod metrics;
pub mod profile;
pub mod schedule;
pub mod spacetime;
pub mod span;
pub mod trace;

pub use arch::{ArchModel, CacheGeometry, GB, KB, MB};
pub use bandwidth::{add_intra_task, inter_task_load, BusLoad, Edge};
pub use bus::{
    DegradeMode, EventBus, FaultKind, FrameEvent, RepartitionReason, StreamId, Subscriber,
    DEFAULT_STREAM,
};
pub use cache::{Access, CacheSim, CacheStats};
pub use executor::CorePool;
pub use hierarchy::{CacheHierarchy, HierarchyTraffic};
pub use mapping::{Mapping, MappingError, Partition};
pub use metrics::{
    Counter, Gauge, Histogram, Labels, MetricsRegistry, MetricsSnapshot, MetricsSubscriber,
    Observability,
};
pub use profile::{time_ms, Profiler, TaskStats};
pub use schedule::{
    pipelined_schedule, stage_makespan, PipelinedResult, VirtualJob, VirtualSchedule,
    DISPATCH_OVERHEAD_MS,
};
pub use spacetime::{
    predict_traffic, simulate_traffic, BufferSpec, PassSpec, TaskAccessModel, TaskTraffic,
};
pub use span::{SpanCollector, SpanGuard, SpanRecord, TraceSubscriber};
pub use trace::{summary_of, FrameRecord, LatencySummary, TraceLog};
