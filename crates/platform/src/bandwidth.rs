//! Communication-bandwidth accounting.
//!
//! Aggregates the inter-task bandwidth (edge buffer size × frame rate,
//! routed over the cache or memory bus depending on the mapping) and the
//! intra-task swap bandwidth (cache overflow, from the space-time model)
//! into per-bus loads, checked against the platform limits of Fig. 4.

use crate::arch::ArchModel;
use crate::mapping::Mapping;

/// A data edge of the flow graph.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Producing task.
    pub from: &'static str,
    /// Consuming task.
    pub to: &'static str,
    /// Bytes transferred per frame.
    pub bytes_per_frame: usize,
}

impl Edge {
    /// Edge bandwidth at the given frame rate, bytes/s.
    pub fn bandwidth(&self, frame_rate: f64) -> f64 {
        self.bytes_per_frame as f64 * frame_rate
    }
}

/// Aggregated load per bus, bytes/s.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusLoad {
    /// Cache/snoop bus (edges within an L2 domain).
    pub cache_bus: f64,
    /// Memory bus (cross-domain edges + intra-task swap traffic).
    pub memory_bus: f64,
}

impl BusLoad {
    /// Total communication bandwidth.
    pub fn total(&self) -> f64 {
        self.cache_bus + self.memory_bus
    }

    /// Utilization fractions against the architecture limits.
    pub fn utilization(&self, arch: &ArchModel) -> (f64, f64) {
        (
            self.cache_bus / arch.bus_cache,
            self.memory_bus / arch.bus_memory,
        )
    }

    /// Whether both buses are within their limits.
    pub fn feasible(&self, arch: &ArchModel) -> bool {
        let (c, m) = self.utilization(arch);
        c <= 1.0 && m <= 1.0
    }
}

/// Computes the per-bus load of the inter-task edges under `mapping`.
pub fn inter_task_load(
    arch: &ArchModel,
    mapping: &Mapping,
    edges: &[Edge],
    frame_rate: f64,
) -> BusLoad {
    let mut load = BusLoad::default();
    for e in edges {
        let bw = e.bandwidth(frame_rate);
        if mapping.edge_shares_l2(arch, e.from, e.to) {
            load.cache_bus += bw;
        } else {
            load.memory_bus += bw;
        }
    }
    load
}

/// Adds intra-task swap bandwidth (always external memory) to a load.
pub fn add_intra_task(mut load: BusLoad, swap_bytes_per_frame: u64, frame_rate: f64) -> BusLoad {
    load.memory_bus += swap_bytes_per_frame as f64 * frame_rate;
    load
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::MB;
    use crate::mapping::Partition;

    fn edges() -> Vec<Edge> {
        vec![
            Edge {
                from: "RDG",
                to: "MKX",
                bytes_per_frame: 5 * MB,
            },
            Edge {
                from: "MKX",
                to: "CPLS",
                bytes_per_frame: MB / 2,
            },
        ]
    }

    #[test]
    fn edge_bandwidth_is_bytes_times_rate() {
        let e = Edge {
            from: "A",
            to: "B",
            bytes_per_frame: MB,
        };
        assert!((e.bandwidth(30.0) - 30.0 * MB as f64).abs() < 1.0);
    }

    #[test]
    fn shared_l2_edges_ride_cache_bus() {
        let arch = ArchModel::default();
        let mut m = Mapping::new();
        m.assign("RDG", Partition::Serial { core: 0 });
        m.assign("MKX", Partition::Serial { core: 1 }); // shares L2 with 0
        m.assign("CPLS", Partition::Serial { core: 2 }); // different domain
        let load = inter_task_load(&arch, &m, &edges(), 30.0);
        assert!((load.cache_bus - 30.0 * 5.0 * MB as f64).abs() < 1.0);
        assert!((load.memory_bus - 30.0 * 0.5 * MB as f64).abs() < 1.0);
    }

    #[test]
    fn unmapped_tasks_default_to_memory_bus() {
        let arch = ArchModel::default();
        let m = Mapping::new();
        let load = inter_task_load(&arch, &m, &edges(), 30.0);
        assert_eq!(load.cache_bus, 0.0);
        assert!(load.memory_bus > 0.0);
    }

    #[test]
    fn intra_task_swap_goes_to_memory() {
        let load = add_intra_task(BusLoad::default(), 7 * MB as u64, 30.0);
        assert!((load.memory_bus - 7.0 * MB as f64 * 30.0).abs() < 1.0);
        assert_eq!(load.cache_bus, 0.0);
    }

    #[test]
    fn feasibility_against_paper_limits() {
        let arch = ArchModel::default();
        let ok = BusLoad {
            cache_bus: 10.0e9,
            memory_bus: 5.0e9,
        };
        assert!(ok.feasible(&arch));
        let too_much = BusLoad {
            cache_bus: 10.0e9,
            memory_bus: 40.0e9,
        };
        assert!(!too_much.feasible(&arch));
        let (c, m) = ok.utilization(&arch);
        assert!((c - 10.0 / 48.0).abs() < 1e-9);
        assert!((m - 5.0 / 29.0).abs() < 1e-9);
    }

    #[test]
    fn total_sums_buses() {
        let l = BusLoad {
            cache_bus: 1.0,
            memory_bus: 2.0,
        };
        assert_eq!(l.total(), 3.0);
    }
}
