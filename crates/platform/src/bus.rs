//! The typed frame-event bus.
//!
//! Every layer of the prediction→execution→management stack emits
//! structured events onto an [`EventBus`]: the resource manager announces
//! plans and budget violations, the pipeline executor announces executed
//! frames, and the virtual scheduler announces partitioned stages.
//! Subscribers observe the full event stream; the accuracy bookkeeping of
//! Section 7 is itself just a subscriber (it replaced the manager's
//! former internal `(predicted, actual)` vector).
//!
//! Event payloads are plain data (ids and numbers, no cross-crate types),
//! so the bus can live at the bottom of the dependency graph and every
//! layer above can emit onto it.

/// Identifier of one imaging stream within a session.
pub type StreamId = u32;

/// The stream id used by single-stream runs (the classic one-sequence
/// experiments of the paper).
pub const DEFAULT_STREAM: StreamId = 0;

/// Classes of faults the deterministic fault-injection layer can arm
/// (`runtime::faults`), plus [`FaultKind::Overrun`] for genuine,
/// non-injected causes that trigger the same recovery machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A stripe-pool worker job panicked.
    WorkerPanic,
    /// A stage's execution time was artificially inflated.
    StageDelay,
    /// A frame's output was dropped (or delivered past its deadline).
    FrameDrop,
    /// A model snapshot was corrupted before restore.
    SnapshotCorruption,
    /// A transient stripe-pool channel error.
    ChannelError,
    /// Not injected: repeated real budget overruns (the stripe-downshift
    /// trigger).
    Overrun,
    /// Not injected: scenario-prediction accuracy collapsed against the
    /// observed scenario stream (the model-quarantine/re-train trigger
    /// under scenario storms).
    PredictionDrift,
}

impl FaultKind {
    /// Stable short name (used in replay keys and reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::StageDelay => "stage-delay",
            FaultKind::FrameDrop => "frame-drop",
            FaultKind::SnapshotCorruption => "snapshot-corruption",
            FaultKind::ChannelError => "channel-error",
            FaultKind::Overrun => "overrun",
            FaultKind::PredictionDrift => "prediction-drift",
        }
    }
}

/// How a stream degraded when recovery could not restore full service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeMode {
    /// Striped execution fell back to the bit-identical serial path.
    SerialFallback,
    /// The frame's display output was suppressed (internal state still
    /// advanced, so subsequent frames are unaffected).
    OutputDropped,
    /// The stripe count was capped below the planner's choice.
    StripeDownshift,
    /// The prediction model was quarantined (restored to last good
    /// state, online re-training enabled).
    ModelQuarantine,
}

impl DegradeMode {
    /// Stable short name (used in replay keys and reports).
    pub fn name(&self) -> &'static str {
        match self {
            DegradeMode::SerialFallback => "serial-fallback",
            DegradeMode::OutputDropped => "output-dropped",
            DegradeMode::StripeDownshift => "stripe-downshift",
            DegradeMode::ModelQuarantine => "model-quarantine",
        }
    }
}

/// Why the resource manager (or a recovery policy) changed the
/// partitioning between consecutive frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepartitionReason {
    /// The predicted cost rose against the budget: more stripes.
    BudgetPressure,
    /// The predicted cost relaxed against the budget: fewer stripes.
    BudgetRelief,
    /// A recovery policy capped the stripe count below the planner's
    /// choice (repeated budget overruns).
    Downshift,
    /// A recovery cap lifted and the planner's choice applies again.
    Lift,
}

impl RepartitionReason {
    /// Stable short name (used in metric labels and trace args).
    pub fn name(&self) -> &'static str {
        match self {
            RepartitionReason::BudgetPressure => "budget-pressure",
            RepartitionReason::BudgetRelief => "budget-relief",
            RepartitionReason::Downshift => "downshift",
            RepartitionReason::Lift => "lift",
        }
    }
}

/// One typed event on the frame bus.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameEvent {
    /// The resource manager issued an execution plan for an upcoming
    /// frame (`runtime::manager`).
    PlanIssued {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// Predicted scenario id (0..8).
        scenario: u8,
        /// Predicted serial computation time, ms.
        predicted_total_ms: f64,
        /// Chosen RDG stripe count.
        rdg_stripes: usize,
        /// Chosen auxiliary-task stripe count.
        aux_stripes: usize,
        /// Whether the latency budget was achievable.
        feasible: bool,
    },
    /// The predictor produced the upcoming frame's scenario and cost
    /// estimates (`runtime::manager`): the measured cost of prediction
    /// itself, so the observability layer can account for what the
    /// predictors cost the hot path.
    PredictionIssued {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// Predicted scenario id (0..8).
        scenario: u8,
        /// Host wall-clock time spent predicting, microseconds.
        cost_us: f64,
    },
    /// The chosen partitioning changed between consecutive frames: a
    /// runtime repartition fired (`runtime::manager` on budget pressure
    /// or relief, `runtime::session` on recovery downshift/lift).
    RepartitionDecided {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// RDG stripe count before the repartition.
        from_rdg_stripes: usize,
        /// RDG stripe count after the repartition.
        to_rdg_stripes: usize,
        /// Auxiliary-task stripe count after the repartition.
        aux_stripes: usize,
        /// Why the partitioning changed.
        reason: RepartitionReason,
    },
    /// A data-parallel stage ran on the virtual platform
    /// (`platform::schedule`).
    StageExecuted {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// Task name of the stage (per-stage metric/span label).
        task: &'static str,
        /// Number of parallel jobs in the stage.
        jobs: usize,
        /// Sum of the per-job times (the serial cost), ms.
        serial_ms: f64,
        /// Stage makespan on the modelled cores, ms.
        makespan_ms: f64,
    },
    /// A frame finished executing (`pipeline::executor` via the managed
    /// loop): the prediction/actual pair of the Section 7 accuracy
    /// metrics.
    FrameExecuted {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// Executed scenario id.
        scenario: u8,
        /// Predicted serial computation time, ms.
        predicted_total_ms: f64,
        /// Measured serial computation time, ms.
        actual_total_ms: f64,
        /// Effective (parallel) frame latency, ms.
        latency_ms: f64,
    },
    /// A frame's effective latency exceeded the stream's budget.
    BudgetOverrun {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// Measured effective latency, ms.
        latency_ms: f64,
        /// The budget target it violated, ms.
        budget_ms: f64,
    },
    /// The QoS controller changed the algorithmic quality level.
    QosIntervention {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// New quality level (0 = full quality, higher = more degraded).
        level: u8,
    },
    /// Measured task times were fed back into the prediction model
    /// (Section 6 "Profiling" / on-line model training).
    ModelRetrained {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// Number of task observations absorbed this frame.
        observations: usize,
    },
    /// The fault layer armed a fault for this frame
    /// (`runtime::faults`). Every `FaultInjected` is matched, on the same
    /// stream and frame, by a terminal [`FrameEvent::Recovered`] or
    /// [`FrameEvent::DegradedMode`] event.
    FaultInjected {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// What was injected.
        kind: FaultKind,
    },
    /// A degradation policy retried a failed stage.
    RetryAttempted {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// The fault being retried against.
        kind: FaultKind,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// Recovery could not restore full service; the stream degraded
    /// gracefully instead of failing. A terminal event for its fault.
    DegradedMode {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// How service degraded.
        mode: DegradeMode,
        /// The fault (or genuine condition) that caused it.
        cause: FaultKind,
    },
    /// A fault was fully absorbed: the frame (or stream state) is back to
    /// nominal service. A terminal event for its fault.
    Recovered {
        /// Emitting stream.
        stream: StreamId,
        /// Frame index within the stream.
        frame: usize,
        /// The fault that was recovered from.
        kind: FaultKind,
        /// Retry attempts it took (0 = absorbed without retrying).
        attempts: u32,
    },
    /// The service-tier admission controller placed a stream onto a pool
    /// shard (`runtime::service`): predicted demand fit the shard's
    /// capacity headroom.
    StreamAdmitted {
        /// Admitted stream.
        stream: StreamId,
        /// Next frame index the stream will execute (0 on first
        /// admission, the resume point after an eviction).
        frame: usize,
        /// Shard the stream was placed on.
        shard: usize,
        /// Cores granted on that shard.
        cores: usize,
        /// Wall-clock time spent waiting in the admission queue, ms.
        queued_ms: f64,
    },
    /// A stream could not be admitted (no shard had headroom for its
    /// predicted demand, or the concurrency cap was reached) and was
    /// parked in the admission queue.
    StreamQueued {
        /// Queued stream.
        stream: StreamId,
        /// Next frame index the stream will execute once admitted.
        frame: usize,
        /// Admission-queue depth at the time of parking (including this
        /// stream).
        depth: usize,
    },
    /// A running stream was evicted from its shard (time-slice expiry or
    /// capacity reclaim) and re-queued for admission. Its model state is
    /// snapshotted; execution resumes exactly at `frame` on re-admission.
    StreamEvicted {
        /// Evicted stream.
        stream: StreamId,
        /// Next frame index the stream will execute on re-admission.
        frame: usize,
        /// Shard the stream was evicted from.
        shard: usize,
    },
    /// A re-admitted stream landed on a different shard than its previous
    /// placement: a migration across core groups.
    ShardRebalanced {
        /// Migrated stream.
        stream: StreamId,
        /// Next frame index the stream will execute on the new shard.
        frame: usize,
        /// Shard the stream previously ran on.
        from_shard: usize,
        /// Shard the stream now runs on.
        to_shard: usize,
    },
    /// A trace-driven workload replay crossed a phase boundary
    /// (`runtime::workload`): arrival-schedule segments, scenario-storm
    /// onsets and trace completion, labelled so metrics and trace spans
    /// can be sliced per workload phase.
    TracePhase {
        /// Stream the phase applies to (`DEFAULT_STREAM` for whole-trace
        /// phases).
        stream: StreamId,
        /// Frame index at which the phase begins on that stream.
        frame: usize,
        /// Stable phase label (e.g. `"submit"`, `"storm"`, `"drain"`).
        phase: &'static str,
    },
    /// A shadow-trained challenger model sustained a prediction-accuracy
    /// win over the serving champion and was promoted in its place
    /// (`runtime::selection`). Demotion of a bad promotion runs through
    /// the existing model-quarantine machinery and is visible as the
    /// fault-family [`FrameEvent::DegradedMode`] event.
    ChallengerPromoted {
        /// Stream whose model was swapped.
        stream: StreamId,
        /// Frame index at which the promotion took effect.
        frame: usize,
        /// Scenario id the sustained win was scored in.
        scenario: u8,
        /// Champion's rolling mean absolute frame-time error, ms.
        champion_err_ms: f64,
        /// Challenger's rolling mean absolute frame-time error, ms.
        challenger_err_ms: f64,
    },
    /// Periodic quantile-calibration scorecard: the observed fraction of
    /// frames whose actual serial time fell at or below the predicted
    /// p50/p95/p99 (a perfectly calibrated predictor scores 0.50 / 0.95 /
    /// 0.99; the scheduler's tail-admission guarantees rest on p95/p99
    /// coverage staying near target).
    CalibrationReport {
        /// Stream the scorecard covers.
        stream: StreamId,
        /// Frame index at which the report was cut.
        frame: usize,
        /// Frames scored since the stream started.
        frames: u32,
        /// Observed coverage of the predicted p50.
        p50_cov: f64,
        /// Observed coverage of the predicted p95.
        p95_cov: f64,
        /// Observed coverage of the predicted p99.
        p99_cov: f64,
    },
}

impl FrameEvent {
    /// The stream that emitted the event.
    pub fn stream(&self) -> StreamId {
        match *self {
            FrameEvent::PlanIssued { stream, .. }
            | FrameEvent::PredictionIssued { stream, .. }
            | FrameEvent::RepartitionDecided { stream, .. }
            | FrameEvent::StageExecuted { stream, .. }
            | FrameEvent::FrameExecuted { stream, .. }
            | FrameEvent::BudgetOverrun { stream, .. }
            | FrameEvent::QosIntervention { stream, .. }
            | FrameEvent::ModelRetrained { stream, .. }
            | FrameEvent::FaultInjected { stream, .. }
            | FrameEvent::RetryAttempted { stream, .. }
            | FrameEvent::DegradedMode { stream, .. }
            | FrameEvent::Recovered { stream, .. }
            | FrameEvent::StreamAdmitted { stream, .. }
            | FrameEvent::StreamQueued { stream, .. }
            | FrameEvent::StreamEvicted { stream, .. }
            | FrameEvent::ShardRebalanced { stream, .. }
            | FrameEvent::TracePhase { stream, .. }
            | FrameEvent::ChallengerPromoted { stream, .. }
            | FrameEvent::CalibrationReport { stream, .. } => stream,
        }
    }

    /// The frame index the event refers to.
    pub fn frame(&self) -> usize {
        match *self {
            FrameEvent::PlanIssued { frame, .. }
            | FrameEvent::PredictionIssued { frame, .. }
            | FrameEvent::RepartitionDecided { frame, .. }
            | FrameEvent::StageExecuted { frame, .. }
            | FrameEvent::FrameExecuted { frame, .. }
            | FrameEvent::BudgetOverrun { frame, .. }
            | FrameEvent::QosIntervention { frame, .. }
            | FrameEvent::ModelRetrained { frame, .. }
            | FrameEvent::FaultInjected { frame, .. }
            | FrameEvent::RetryAttempted { frame, .. }
            | FrameEvent::DegradedMode { frame, .. }
            | FrameEvent::Recovered { frame, .. }
            | FrameEvent::StreamAdmitted { frame, .. }
            | FrameEvent::StreamQueued { frame, .. }
            | FrameEvent::StreamEvicted { frame, .. }
            | FrameEvent::ShardRebalanced { frame, .. }
            | FrameEvent::TracePhase { frame, .. }
            | FrameEvent::ChallengerPromoted { frame, .. }
            | FrameEvent::CalibrationReport { frame, .. } => frame,
        }
    }

    /// Canonical replay string for fault-family events, `None` for all
    /// others.
    ///
    /// Timing-carrying events (plans, frame times, overruns) depend on
    /// measured wall-clock durations and are *not* reproducible across
    /// runs; the fault family is built exclusively from discrete seeded
    /// state, so two runs with the same seed produce the same replay-key
    /// sequence per stream — the property the seed-replay recipe and
    /// reproducibility tests assert on. Service-tier placement events
    /// (admission/queueing/eviction/rebalance) are likewise excluded:
    /// admission order depends on wall-clock completion order, while the
    /// fault layer keys off absolute `(stream, frame)` coordinates and so
    /// replays identically however streams are placed.
    /// [`FrameEvent::TracePhase`] is schedule-derived and deterministic,
    /// but the workload ledger records phases through its own keyspace,
    /// so replay keys stay exclusively the fault family. The
    /// model-selection family ([`FrameEvent::ChallengerPromoted`],
    /// [`FrameEvent::CalibrationReport`]) scores measured frame times and
    /// is therefore as timing-dependent as the plan events: no key.
    pub fn replay_key(&self) -> Option<String> {
        match *self {
            FrameEvent::FaultInjected {
                stream,
                frame,
                kind,
            } => Some(format!("s{stream}/f{frame}/inject/{}", kind.name())),
            FrameEvent::RetryAttempted {
                stream,
                frame,
                kind,
                attempt,
            } => Some(format!(
                "s{stream}/f{frame}/retry/{}#{attempt}",
                kind.name()
            )),
            FrameEvent::DegradedMode {
                stream,
                frame,
                mode,
                cause,
            } => Some(format!(
                "s{stream}/f{frame}/degraded/{}<-{}",
                mode.name(),
                cause.name()
            )),
            FrameEvent::Recovered {
                stream,
                frame,
                kind,
                attempts,
            } => Some(format!(
                "s{stream}/f{frame}/recovered/{}#{attempts}",
                kind.name()
            )),
            _ => None,
        }
    }
}

/// An event-bus subscriber.
pub trait Subscriber: Send {
    /// Observes one event. Called synchronously on the emitting thread,
    /// in emission order.
    fn on_event(&mut self, event: &FrameEvent);
}

/// Blanket impl so plain closures subscribe directly.
impl<F: FnMut(&FrameEvent) + Send> Subscriber for F {
    fn on_event(&mut self, event: &FrameEvent) {
        self(event)
    }
}

/// A synchronous, typed publish/subscribe bus.
///
/// Deliberately simple: emission walks the subscriber list in
/// subscription order on the emitting thread, so event handling is
/// deterministic and adds no cross-thread machinery to the frame path.
/// Each stream (and each manager) owns its own bus; cross-stream
/// aggregation is a subscriber's job.
#[derive(Default)]
pub struct EventBus {
    subscribers: Vec<Box<dyn Subscriber>>,
    emitted: usize,
}

impl EventBus {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a subscriber; it sees every event emitted from now on.
    pub fn subscribe(&mut self, sub: Box<dyn Subscriber>) {
        self.subscribers.push(sub);
    }

    /// Number of subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Total events emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Emits one event to every subscriber, in subscription order.
    pub fn emit(&mut self, event: FrameEvent) {
        self.emitted += 1;
        for sub in &mut self.subscribers {
            sub.on_event(&event);
        }
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("subscribers", &self.subscribers.len())
            .field("emitted", &self.emitted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn plan(stream: StreamId, frame: usize) -> FrameEvent {
        FrameEvent::PlanIssued {
            stream,
            frame,
            scenario: 5,
            predicted_total_ms: 40.0,
            rdg_stripes: 2,
            aux_stripes: 1,
            feasible: true,
        }
    }

    #[test]
    fn subscribers_see_events_in_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        let mut bus = EventBus::new();
        bus.subscribe(Box::new(move |e: &FrameEvent| {
            sink.lock().unwrap().push(e.frame());
        }));
        for i in 0..5 {
            bus.emit(plan(0, i));
        }
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(bus.emitted(), 5);
    }

    #[test]
    fn multiple_subscribers_all_notified() {
        let a = Arc::new(Mutex::new(0usize));
        let b = Arc::new(Mutex::new(0usize));
        let (sa, sb) = (Arc::clone(&a), Arc::clone(&b));
        let mut bus = EventBus::new();
        bus.subscribe(Box::new(move |_: &FrameEvent| *sa.lock().unwrap() += 1));
        bus.subscribe(Box::new(move |_: &FrameEvent| *sb.lock().unwrap() += 1));
        assert_eq!(bus.subscriber_count(), 2);
        bus.emit(plan(0, 0));
        bus.emit(plan(0, 1));
        assert_eq!(*a.lock().unwrap(), 2);
        assert_eq!(*b.lock().unwrap(), 2);
    }

    #[test]
    fn emit_without_subscribers_is_cheap_and_safe() {
        let mut bus = EventBus::new();
        bus.emit(plan(3, 7));
        assert_eq!(bus.emitted(), 1);
    }

    #[test]
    fn accessors_cover_every_variant() {
        let events = [
            plan(1, 2),
            FrameEvent::PredictionIssued {
                stream: 1,
                frame: 2,
                scenario: 5,
                cost_us: 3.0,
            },
            FrameEvent::RepartitionDecided {
                stream: 1,
                frame: 2,
                from_rdg_stripes: 1,
                to_rdg_stripes: 4,
                aux_stripes: 2,
                reason: RepartitionReason::BudgetPressure,
            },
            FrameEvent::StageExecuted {
                stream: 1,
                frame: 2,
                task: "RDG_FULL",
                jobs: 4,
                serial_ms: 40.0,
                makespan_ms: 11.0,
            },
            FrameEvent::FrameExecuted {
                stream: 1,
                frame: 2,
                scenario: 7,
                predicted_total_ms: 40.0,
                actual_total_ms: 42.0,
                latency_ms: 12.0,
            },
            FrameEvent::BudgetOverrun {
                stream: 1,
                frame: 2,
                latency_ms: 80.0,
                budget_ms: 60.0,
            },
            FrameEvent::QosIntervention {
                stream: 1,
                frame: 2,
                level: 1,
            },
            FrameEvent::ModelRetrained {
                stream: 1,
                frame: 2,
                observations: 6,
            },
            FrameEvent::FaultInjected {
                stream: 1,
                frame: 2,
                kind: FaultKind::WorkerPanic,
            },
            FrameEvent::RetryAttempted {
                stream: 1,
                frame: 2,
                kind: FaultKind::WorkerPanic,
                attempt: 1,
            },
            FrameEvent::DegradedMode {
                stream: 1,
                frame: 2,
                mode: DegradeMode::SerialFallback,
                cause: FaultKind::WorkerPanic,
            },
            FrameEvent::Recovered {
                stream: 1,
                frame: 2,
                kind: FaultKind::WorkerPanic,
                attempts: 1,
            },
            FrameEvent::StreamAdmitted {
                stream: 1,
                frame: 2,
                shard: 0,
                cores: 2,
                queued_ms: 0.5,
            },
            FrameEvent::StreamQueued {
                stream: 1,
                frame: 2,
                depth: 3,
            },
            FrameEvent::StreamEvicted {
                stream: 1,
                frame: 2,
                shard: 0,
            },
            FrameEvent::ShardRebalanced {
                stream: 1,
                frame: 2,
                from_shard: 0,
                to_shard: 1,
            },
            FrameEvent::TracePhase {
                stream: 1,
                frame: 2,
                phase: "storm",
            },
            FrameEvent::ChallengerPromoted {
                stream: 1,
                frame: 2,
                scenario: 5,
                champion_err_ms: 4.0,
                challenger_err_ms: 2.5,
            },
            FrameEvent::CalibrationReport {
                stream: 1,
                frame: 2,
                frames: 32,
                p50_cov: 0.53,
                p95_cov: 0.94,
                p99_cov: 0.99,
            },
        ];
        for e in events {
            assert_eq!(e.stream(), 1);
            assert_eq!(e.frame(), 2);
        }
    }

    #[test]
    fn replay_keys_cover_exactly_the_fault_family() {
        let fault_events = [
            FrameEvent::FaultInjected {
                stream: 3,
                frame: 9,
                kind: FaultKind::StageDelay,
            },
            FrameEvent::RetryAttempted {
                stream: 3,
                frame: 9,
                kind: FaultKind::ChannelError,
                attempt: 2,
            },
            FrameEvent::DegradedMode {
                stream: 3,
                frame: 9,
                mode: DegradeMode::OutputDropped,
                cause: FaultKind::FrameDrop,
            },
            FrameEvent::Recovered {
                stream: 3,
                frame: 9,
                kind: FaultKind::SnapshotCorruption,
                attempts: 0,
            },
        ];
        let keys: Vec<String> = fault_events
            .iter()
            .map(|e| e.replay_key().expect("fault event must have a key"))
            .collect();
        // keys are distinct and carry the stream/frame coordinates
        for (i, k) in keys.iter().enumerate() {
            assert!(k.starts_with("s3/f9/"), "key {k}");
            assert!(keys.iter().enumerate().all(|(j, o)| i == j || o != k));
        }
        // timing-carrying events never get a replay key
        assert_eq!(plan(3, 9).replay_key(), None);
        assert_eq!(
            FrameEvent::BudgetOverrun {
                stream: 3,
                frame: 9,
                latency_ms: 80.0,
                budget_ms: 60.0,
            }
            .replay_key(),
            None
        );
        // service placement events are timing-dependent too: no key
        assert_eq!(
            FrameEvent::StreamAdmitted {
                stream: 3,
                frame: 9,
                shard: 1,
                cores: 2,
                queued_ms: 0.1,
            }
            .replay_key(),
            None
        );
        assert_eq!(
            FrameEvent::StreamEvicted {
                stream: 3,
                frame: 9,
                shard: 1,
            }
            .replay_key(),
            None
        );
        // trace phases are ledgered through the workload keyspace: no key
        assert_eq!(
            FrameEvent::TracePhase {
                stream: 3,
                frame: 9,
                phase: "storm",
            }
            .replay_key(),
            None
        );
        // model-selection events score measured frame times: no key
        assert_eq!(
            FrameEvent::ChallengerPromoted {
                stream: 3,
                frame: 9,
                scenario: 2,
                champion_err_ms: 5.0,
                challenger_err_ms: 3.0,
            }
            .replay_key(),
            None
        );
        assert_eq!(
            FrameEvent::CalibrationReport {
                stream: 3,
                frame: 9,
                frames: 32,
                p50_cov: 0.5,
                p95_cov: 0.95,
                p99_cov: 0.99,
            }
            .replay_key(),
            None
        );
    }
}
