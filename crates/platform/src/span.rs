//! Span tracing: scoped timing records exported as Chrome `trace_event`
//! JSON (loadable in `chrome://tracing` and Perfetto).
//!
//! A [`SpanCollector`] is a cheap-to-clone, thread-safe sink of
//! [`SpanRecord`]s, all timestamped against one shared epoch so spans
//! from concurrent streams line up on a single timeline. Spans are
//! produced three ways:
//!
//! * [`SpanCollector::span`] returns a RAII [`SpanGuard`] that records a
//!   complete (`"ph": "X"`) span covering its own lifetime — wrap stage
//!   execution, prediction, or recovery scopes in one;
//! * [`SpanCollector::complete_ending_now`] back-dates a complete span
//!   from a duration that was already measured (the executor reports
//!   stage makespans after the fact);
//! * [`SpanCollector::instant`] drops a zero-width (`"ph": "i"`) marker
//!   for point decisions — plans, repartitions, faults, retries.
//!
//! [`TraceSubscriber`] bridges the [`FrameEvent`] bus into a collector,
//! so every layer that already emits events gets spans for free. In the
//! exported JSON the process is `pid` 1 and each stream is a `tid`,
//! named via `thread_name` metadata.

use crate::bus::{EventBus, FrameEvent, StreamId, Subscriber};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Chrome trace phase of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// A duration span (`"ph": "X"`, has `dur`).
    Complete,
    /// A zero-width marker (`"ph": "i"`, thread-scoped).
    Instant,
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (the `name` field in the trace).
    pub name: &'static str,
    /// Category (`cat` field; Perfetto filters on it).
    pub cat: &'static str,
    /// Complete or instant.
    pub phase: SpanPhase,
    /// Stream the span belongs to (becomes the `tid`).
    pub stream: StreamId,
    /// Start time, µs since the collector's epoch.
    pub ts_us: u64,
    /// Duration, µs (0 for instants).
    pub dur_us: u64,
    /// Numeric key/value annotations (`args` object in the trace).
    pub args: Vec<(&'static str, f64)>,
}

#[derive(Debug)]
struct CollectorInner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

/// Thread-safe span sink with a shared epoch. Clones share storage.
#[derive(Debug, Clone)]
pub struct SpanCollector {
    inner: Arc<CollectorInner>,
}

impl Default for SpanCollector {
    fn default() -> Self {
        Self {
            inner: Arc::new(CollectorInner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }
}

impl SpanCollector {
    /// An empty collector whose epoch is "now".
    pub fn new() -> Self {
        Self::default()
    }

    fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, record: SpanRecord) {
        self.inner.spans.lock().push(record);
    }

    /// Opens a RAII guard: the complete span is recorded when the guard
    /// drops, covering the guard's lifetime.
    #[must_use = "the span covers the guard's lifetime; dropping it immediately records a zero-length span"]
    pub fn span(&self, name: &'static str, cat: &'static str, stream: StreamId) -> SpanGuard {
        SpanGuard {
            collector: self.clone(),
            name,
            cat,
            stream,
            start_us: self.now_us(),
            args: Vec::new(),
        }
    }

    /// Records a complete span that ends now and started `dur_us` ago
    /// (for durations measured elsewhere, e.g. stage makespans).
    pub fn complete_ending_now(
        &self,
        name: &'static str,
        cat: &'static str,
        stream: StreamId,
        dur_us: u64,
        args: Vec<(&'static str, f64)>,
    ) {
        let end = self.now_us();
        self.push(SpanRecord {
            name,
            cat,
            phase: SpanPhase::Complete,
            stream,
            ts_us: end.saturating_sub(dur_us),
            dur_us,
            args,
        });
    }

    /// Records an instant marker at "now".
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        stream: StreamId,
        args: Vec<(&'static str, f64)>,
    ) {
        self.push(SpanRecord {
            name,
            cat,
            phase: SpanPhase::Instant,
            stream,
            ts_us: self.now_us(),
            dur_us: 0,
            args,
        });
    }

    /// Number of spans collected so far.
    pub fn len(&self) -> usize {
        self.inner.spans.lock().len()
    }

    /// Whether no spans have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of every span collected so far, in recording order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().clone()
    }

    /// All spans as Chrome `trace_event` JSON: `pid` 1 is the process,
    /// each stream is a `tid` labelled by `thread_name` metadata. Load
    /// the string in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.records();
        let mut out = String::from("{\"traceEvents\": [\n");
        out.push_str(
            "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", \
             \"args\": {\"name\": \"triple-c\"}}",
        );
        let mut streams: Vec<StreamId> = spans.iter().map(|s| s.stream).collect();
        streams.sort_unstable();
        streams.dedup();
        for stream in streams {
            out.push_str(&format!(
                ",\n{{\"ph\": \"M\", \"pid\": 1, \"tid\": {stream}, \"name\": \
                 \"thread_name\", \"args\": {{\"name\": \"stream {stream}\"}}}}"
            ));
        }
        for s in &spans {
            let mut args = String::new();
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    args.push_str(", ");
                }
                if v.is_finite() {
                    args.push_str(&format!("\"{k}\": {v}"));
                } else {
                    args.push_str(&format!("\"{k}\": null"));
                }
            }
            match s.phase {
                SpanPhase::Complete => out.push_str(&format!(
                    ",\n{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 1, \
                     \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{{}}}}}",
                    s.name, s.cat, s.stream, s.ts_us, s.dur_us, args
                )),
                SpanPhase::Instant => out.push_str(&format!(
                    ",\n{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \
                     \"pid\": 1, \"tid\": {}, \"ts\": {}, \"args\": {{{}}}}}",
                    s.name, s.cat, s.stream, s.ts_us, args
                )),
            }
        }
        out.push_str("\n]}");
        out
    }
}

/// RAII guard from [`SpanCollector::span`]: records a complete span
/// covering its lifetime when dropped.
#[must_use = "the span covers the guard's lifetime; dropping it immediately records a zero-length span"]
#[derive(Debug)]
pub struct SpanGuard {
    collector: SpanCollector,
    name: &'static str,
    cat: &'static str,
    stream: StreamId,
    start_us: u64,
    args: Vec<(&'static str, f64)>,
}

impl SpanGuard {
    /// Attaches a numeric annotation (builder style).
    pub fn arg(mut self, key: &'static str, value: f64) -> Self {
        self.args.push((key, value));
        self
    }

    /// Attaches a numeric annotation through a borrow (for guards held
    /// across statements).
    pub fn add_arg(&mut self, key: &'static str, value: f64) {
        self.args.push((key, value));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = self.collector.now_us();
        self.collector.push(SpanRecord {
            name: self.name,
            cat: self.cat,
            phase: SpanPhase::Complete,
            stream: self.stream,
            ts_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            args: std::mem::take(&mut self.args),
        });
    }
}

/// A bus [`Subscriber`] turning [`FrameEvent`]s into spans:
/// duration-carrying events ([`FrameEvent::StageExecuted`],
/// [`FrameEvent::FrameExecuted`], [`FrameEvent::PredictionIssued`])
/// become complete spans back-dated by their reported duration; plan,
/// repartition and fault-family events become instants.
pub struct TraceSubscriber {
    spans: SpanCollector,
}

impl TraceSubscriber {
    /// A subscriber feeding `spans`.
    pub fn new(spans: SpanCollector) -> Self {
        Self { spans }
    }

    /// Creates a subscriber over `spans` and attaches it to `bus`.
    pub fn subscribe_to(bus: &mut EventBus, spans: SpanCollector) {
        bus.subscribe(Box::new(Self::new(spans)));
    }
}

impl Subscriber for TraceSubscriber {
    fn on_event(&mut self, event: &FrameEvent) {
        let stream = event.stream();
        let frame = event.frame() as f64;
        match *event {
            FrameEvent::PlanIssued {
                scenario,
                predicted_total_ms,
                rdg_stripes,
                aux_stripes,
                feasible,
                ..
            } => self.spans.instant(
                "plan",
                "plan",
                stream,
                vec![
                    ("frame", frame),
                    ("scenario", scenario as f64),
                    ("predicted_total_ms", predicted_total_ms),
                    ("rdg_stripes", rdg_stripes as f64),
                    ("aux_stripes", aux_stripes as f64),
                    ("feasible", if feasible { 1.0 } else { 0.0 }),
                ],
            ),
            FrameEvent::PredictionIssued {
                scenario, cost_us, ..
            } => self.spans.complete_ending_now(
                "predict",
                "prediction",
                stream,
                cost_us.max(0.0).round() as u64,
                vec![("frame", frame), ("scenario", scenario as f64)],
            ),
            FrameEvent::RepartitionDecided {
                from_rdg_stripes,
                to_rdg_stripes,
                aux_stripes,
                reason,
                ..
            } => self.spans.instant(
                reason.name(),
                "repartition",
                stream,
                vec![
                    ("frame", frame),
                    ("from_rdg_stripes", from_rdg_stripes as f64),
                    ("to_rdg_stripes", to_rdg_stripes as f64),
                    ("aux_stripes", aux_stripes as f64),
                ],
            ),
            FrameEvent::StageExecuted {
                task,
                jobs,
                serial_ms,
                makespan_ms,
                ..
            } => self.spans.complete_ending_now(
                task,
                "stage",
                stream,
                (makespan_ms.max(0.0) * 1000.0).round() as u64,
                vec![
                    ("frame", frame),
                    ("jobs", jobs as f64),
                    ("serial_ms", serial_ms),
                ],
            ),
            FrameEvent::FrameExecuted {
                scenario,
                predicted_total_ms,
                actual_total_ms,
                latency_ms,
                ..
            } => self.spans.complete_ending_now(
                "frame",
                "frame",
                stream,
                (latency_ms.max(0.0) * 1000.0).round() as u64,
                vec![
                    ("frame", frame),
                    ("scenario", scenario as f64),
                    ("predicted_total_ms", predicted_total_ms),
                    ("actual_total_ms", actual_total_ms),
                ],
            ),
            FrameEvent::BudgetOverrun {
                latency_ms,
                budget_ms,
                ..
            } => self.spans.instant(
                "budget-overrun",
                "budget",
                stream,
                vec![
                    ("frame", frame),
                    ("latency_ms", latency_ms),
                    ("budget_ms", budget_ms),
                ],
            ),
            FrameEvent::QosIntervention { level, .. } => self.spans.instant(
                "qos-intervention",
                "qos",
                stream,
                vec![("frame", frame), ("level", level as f64)],
            ),
            FrameEvent::ModelRetrained { observations, .. } => self.spans.instant(
                "model-retrained",
                "model",
                stream,
                vec![("frame", frame), ("observations", observations as f64)],
            ),
            FrameEvent::FaultInjected { kind, .. } => {
                self.spans
                    .instant(kind.name(), "fault", stream, vec![("frame", frame)])
            }
            FrameEvent::RetryAttempted { kind, attempt, .. } => self.spans.instant(
                kind.name(),
                "retry",
                stream,
                vec![("frame", frame), ("attempt", attempt as f64)],
            ),
            FrameEvent::DegradedMode { mode, .. } => {
                self.spans
                    .instant(mode.name(), "degraded", stream, vec![("frame", frame)])
            }
            FrameEvent::Recovered { kind, attempts, .. } => self.spans.instant(
                kind.name(),
                "recovered",
                stream,
                vec![("frame", frame), ("attempts", attempts as f64)],
            ),
            FrameEvent::StreamAdmitted {
                shard,
                cores,
                queued_ms,
                ..
            } => self.spans.instant(
                "admitted",
                "service",
                stream,
                vec![
                    ("frame", frame),
                    ("shard", shard as f64),
                    ("cores", cores as f64),
                    ("queued_ms", queued_ms),
                ],
            ),
            FrameEvent::StreamQueued { depth, .. } => self.spans.instant(
                "queued",
                "service",
                stream,
                vec![("frame", frame), ("depth", depth as f64)],
            ),
            FrameEvent::StreamEvicted { shard, .. } => self.spans.instant(
                "evicted",
                "service",
                stream,
                vec![("frame", frame), ("shard", shard as f64)],
            ),
            FrameEvent::ShardRebalanced {
                from_shard,
                to_shard,
                ..
            } => self.spans.instant(
                "rebalanced",
                "service",
                stream,
                vec![
                    ("frame", frame),
                    ("from_shard", from_shard as f64),
                    ("to_shard", to_shard as f64),
                ],
            ),
            FrameEvent::TracePhase { phase, .. } => {
                self.spans
                    .instant(phase, "trace", stream, vec![("frame", frame)])
            }
            FrameEvent::ChallengerPromoted {
                scenario,
                champion_err_ms,
                challenger_err_ms,
                ..
            } => self.spans.instant(
                "challenger-promoted",
                "model",
                stream,
                vec![
                    ("frame", frame),
                    ("scenario", scenario as f64),
                    ("champion_err_ms", champion_err_ms),
                    ("challenger_err_ms", challenger_err_ms),
                ],
            ),
            FrameEvent::CalibrationReport {
                frames,
                p50_cov,
                p95_cov,
                p99_cov,
                ..
            } => self.spans.instant(
                "calibration",
                "model",
                stream,
                vec![
                    ("frame", frame),
                    ("frames", frames as f64),
                    ("p50_cov", p50_cov),
                    ("p95_cov", p95_cov),
                    ("p99_cov", p99_cov),
                ],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::FaultKind;

    #[test]
    fn guard_records_complete_span_on_drop() {
        let spans = SpanCollector::new();
        {
            let _g = spans.span("work", "test", 3).arg("frame", 7.0);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let recs = spans.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "work");
        assert_eq!(recs[0].phase, SpanPhase::Complete);
        assert_eq!(recs[0].stream, 3);
        assert!(recs[0].dur_us >= 500, "dur {}", recs[0].dur_us);
        assert_eq!(recs[0].args, vec![("frame", 7.0)]);
    }

    #[test]
    fn complete_ending_now_backdates_start() {
        let spans = SpanCollector::new();
        std::thread::sleep(std::time::Duration::from_millis(2));
        spans.complete_ending_now("stage", "stage", 0, 1_000, vec![]);
        let rec = &spans.records()[0];
        assert_eq!(rec.dur_us, 1_000);
        assert!(rec.ts_us > 0, "start should be after epoch");
    }

    #[test]
    fn trace_subscriber_maps_events_to_spans() {
        let spans = SpanCollector::new();
        let mut bus = EventBus::new();
        TraceSubscriber::subscribe_to(&mut bus, spans.clone());
        bus.emit(FrameEvent::StageExecuted {
            stream: 1,
            frame: 0,
            task: "RDG_FULL",
            jobs: 4,
            serial_ms: 7.5,
            makespan_ms: 2.0,
        });
        bus.emit(FrameEvent::FaultInjected {
            stream: 1,
            frame: 0,
            kind: FaultKind::WorkerPanic,
        });
        let recs = spans.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "RDG_FULL");
        assert_eq!(recs[0].phase, SpanPhase::Complete);
        assert_eq!(recs[0].dur_us, 2_000);
        assert_eq!(recs[1].phase, SpanPhase::Instant);
        assert_eq!(recs[1].cat, "fault");
    }

    #[test]
    fn chrome_trace_json_has_metadata_and_phases() {
        let spans = SpanCollector::new();
        spans.complete_ending_now("RDG_FULL", "stage", 0, 500, vec![("frame", 1.0)]);
        spans.instant("stripe-panic", "retry", 2, vec![("attempt", 1.0)]);
        let json = spans.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\": ["), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        assert!(json.contains("\"process_name\""), "{json}");
        assert!(json.contains("\"name\": \"stream 2\""), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"ph\": \"i\""), "{json}");
        assert!(json.contains("\"tid\": 2"), "{json}");
    }
}
