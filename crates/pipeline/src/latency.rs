//! Output-latency control: the delay line and jitter metrics.
//!
//! "With a delay function at the end of the pipeline, the output latency
//! can be kept constant" (Section 6): frames completing before the budget
//! are held until the budget expires, frames overrunning are emitted late.
//! The jitter statistics quantify how constant the output actually is —
//! the paper's headline is a ~70% jitter reduction from semi-automatic
//! parallelization.

/// A fixed-budget output delay line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayLine {
    /// Latency budget, ms.
    pub budget_ms: f64,
}

impl DelayLine {
    /// Creates a delay line with the given budget.
    pub fn new(budget_ms: f64) -> Self {
        assert!(budget_ms >= 0.0, "budget must be non-negative");
        Self { budget_ms }
    }

    /// Effective output latency of a frame that completed processing after
    /// `completion_ms`: held to the budget when early, late when over.
    pub fn output_latency(&self, completion_ms: f64) -> f64 {
        completion_ms.max(self.budget_ms)
    }

    /// Whether a completion overruns the budget.
    pub fn overruns(&self, completion_ms: f64) -> bool {
        completion_ms > self.budget_ms
    }
}

/// Jitter metrics of a latency series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterReport {
    /// Peak-to-peak latency spread, ms.
    pub peak_to_peak: f64,
    /// Standard deviation, ms.
    pub std: f64,
    /// Mean absolute frame-to-frame latency change, ms (perceptual jitter).
    pub mean_delta: f64,
}

/// Computes jitter metrics.
pub fn jitter(latencies: &[f64]) -> JitterReport {
    if latencies.is_empty() {
        return JitterReport {
            peak_to_peak: 0.0,
            std: 0.0,
            mean_delta: 0.0,
        };
    }
    let min = latencies.iter().copied().fold(f64::INFINITY, f64::min);
    let max = latencies.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let var = latencies
        .iter()
        .map(|l| (l - mean) * (l - mean))
        .sum::<f64>()
        / latencies.len() as f64;
    let mean_delta = if latencies.len() < 2 {
        0.0
    } else {
        latencies
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .sum::<f64>()
            / (latencies.len() - 1) as f64
    };
    JitterReport {
        peak_to_peak: max - min,
        std: var.sqrt(),
        mean_delta,
    }
}

/// Relative jitter reduction between two runs (`1 - after/before`), using
/// the standard deviation: the paper reports "able to lower the jitter on
/// the latency with almost 70%".
pub fn jitter_reduction(before: &JitterReport, after: &JitterReport) -> f64 {
    if before.std <= 1e-12 {
        0.0
    } else {
        1.0 - after.std / before.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_line_holds_early_frames() {
        let d = DelayLine::new(50.0);
        assert_eq!(d.output_latency(30.0), 50.0);
        assert_eq!(d.output_latency(50.0), 50.0);
        assert_eq!(d.output_latency(70.0), 70.0);
        assert!(!d.overruns(49.9));
        assert!(d.overruns(50.1));
    }

    #[test]
    fn constant_series_has_zero_jitter() {
        let j = jitter(&[40.0; 10]);
        assert_eq!(j.peak_to_peak, 0.0);
        assert_eq!(j.std, 0.0);
        assert_eq!(j.mean_delta, 0.0);
    }

    #[test]
    fn jitter_metrics_on_alternating_series() {
        let xs: Vec<f64> = (0..10)
            .map(|i| if i % 2 == 0 { 40.0 } else { 60.0 })
            .collect();
        let j = jitter(&xs);
        assert_eq!(j.peak_to_peak, 20.0);
        assert_eq!(j.mean_delta, 20.0);
        assert!((j.std - 10.0).abs() < 1e-9);
    }

    #[test]
    fn delay_line_flattens_jitter_below_budget() {
        let d = DelayLine::new(65.0);
        let raw: Vec<f64> = vec![40.0, 62.0, 55.0, 48.0, 64.0];
        let out: Vec<f64> = raw.iter().map(|&c| d.output_latency(c)).collect();
        let j = jitter(&out);
        assert_eq!(j.peak_to_peak, 0.0, "all frames within budget must be flat");
    }

    #[test]
    fn jitter_reduction_metric() {
        let before = jitter(&[40.0, 80.0, 40.0, 80.0]);
        let after = jitter(&[58.0, 62.0, 58.0, 62.0]);
        let red = jitter_reduction(&before, &after);
        assert!(red > 0.85, "reduction {red}");
        assert_eq!(jitter_reduction(&jitter(&[5.0; 4]), &after), 0.0);
    }

    #[test]
    fn empty_series_is_safe() {
        let j = jitter(&[]);
        assert_eq!(j.peak_to_peak, 0.0);
    }
}
