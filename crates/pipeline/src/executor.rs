//! Frame-by-frame execution of the dynamic flow graph.
//!
//! Each frame walks the Fig. 2 graph: the three data-dependent switches
//! select the active task group, every task's computation time is
//! measured, and the frame's *effective latency* is computed by virtual
//! scheduling onto the modelled multiprocessor (a striped RDG overlaps its
//! stripes on distinct cores; the remaining tasks are sequentially
//! dependent within a frame).

use crate::app::{structure_probe, AppConfig, AppState};
use imaging::couples::cpls_select;

use imaging::guidewire::gw_extract_with;
use imaging::image::{ImageU16, Roi};
use imaging::markers::mkx_extract;
use imaging::parallel::{rdg_parallel_pooled, StripePool};
use imaging::registration::register;
use imaging::ridge::{rdg_roi, RdgOutput};
use imaging::roi_est::estimate_roi;
use imaging::zoom::zoom_band;
use platform::bus::{EventBus, StreamId};
use platform::profile::time_ms;
use platform::schedule::{VirtualJob, VirtualSchedule};
use platform::trace::FrameRecord;
use triplec::scenario::Scenario;

/// How the frame's tasks are partitioned onto the platform this frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionPolicy {
    /// Stripe count of the RDG task (1 = serial).
    pub rdg_stripes: usize,
    /// Stripe count of the other data-partitionable streaming tasks
    /// (GW EXT's internal ridge filter, ENH, ZOOM).
    pub aux_stripes: usize,
    /// Number of modelled cores available.
    pub cores: usize,
}

impl Default for ExecutionPolicy {
    fn default() -> Self {
        Self {
            rdg_stripes: 1,
            aux_stripes: 1,
            // the modelled platform's core count, not a hard-coded 8
            cores: platform::arch::ArchModel::default().cores,
        }
    }
}

/// Tasks that can be data-partitioned (striped) on the platform; the
/// remaining tasks are feature-level (CPLS SEL, REG, ROI EST) or
/// extraction passes with global candidate state (MKX EXT) and stay
/// serial within a frame.
pub const STRIPABLE_TASKS: [&str; 5] = ["RDG_FULL", "RDG_ROI", "GW_EXT", "ENH", "ZOOM"];

/// Result of processing one frame.
pub struct FrameOutput {
    /// Trace record: task times (serial work), scenario, effective latency.
    pub record: FrameRecord,
    /// The scenario the frame executed.
    pub scenario: Scenario,
    /// ROI in effect for the *next* frame (if tracking).
    pub roi: Option<Roi>,
    /// ROI processed *this* frame, kilopixels (covariate for Eq. 3).
    pub roi_kpixels: f64,
    /// The marker couple selected this frame.
    pub couple_found: bool,
    /// The enhanced, zoomed output image (only on successful registration).
    pub display: Option<ImageU16>,
}

/// Processes one frame through the dynamic flow graph.
pub fn process_frame(
    frame_index: usize,
    frame: &ImageU16,
    state: &mut AppState,
    cfg: &AppConfig,
    policy: &ExecutionPolicy,
) -> FrameOutput {
    process_frame_inner(frame_index, frame, state, cfg, policy, &mut None)
}

/// Like [`process_frame`], additionally emitting a
/// [`platform::bus::FrameEvent::StageExecuted`] onto `bus` for every
/// data-parallel (striped) stage the frame runs. Pixel outputs and trace
/// records are identical to the unobserved path.
pub fn process_frame_observed(
    frame_index: usize,
    frame: &ImageU16,
    state: &mut AppState,
    cfg: &AppConfig,
    policy: &ExecutionPolicy,
    stream: StreamId,
    bus: &mut EventBus,
) -> FrameOutput {
    process_frame_inner(
        frame_index,
        frame,
        state,
        cfg,
        policy,
        &mut Some((stream, bus)),
    )
}

/// Runs a parallel stage, reporting it to the observer when present.
fn run_stage(
    schedule: &mut VirtualSchedule,
    jobs: &[VirtualJob],
    observer: &mut Option<(StreamId, &mut EventBus)>,
    frame_index: usize,
) -> f64 {
    match observer {
        Some((stream, bus)) => schedule.stage_observed(jobs, *stream, frame_index, bus),
        None => schedule.stage(jobs),
    }
}

fn process_frame_inner(
    frame_index: usize,
    frame: &ImageU16,
    state: &mut AppState,
    cfg: &AppConfig,
    policy: &ExecutionPolicy,
    observer: &mut Option<(StreamId, &mut EventBus)>,
) -> FrameOutput {
    let (w, h) = frame.dims();
    let mut task_times: Vec<(&'static str, f64)> = Vec::with_capacity(9);
    let mut schedule = VirtualSchedule::new(policy.cores.max(1));

    // --- switch 1: RDG DETECTION --------------------------------------
    let probe = structure_probe(frame, cfg.probe_block);
    let rdg_active = probe > cfg.structure_threshold;
    // coarse-to-fine adaptation: heavy content triggers the fine scales.
    // Deciding from the whole-frame probe keeps serial and striped
    // executions identical; hysteresis (on above the threshold, off only
    // below 90% of it) prevents flip-flopping on probe noise.
    let fine_on = cfg.structure_threshold * cfg.fine_probe_factor;
    if probe > fine_on {
        state.fine_active = true;
    } else if probe < fine_on * 0.9 {
        state.fine_active = false;
    }
    let mut rdg_cfg = cfg.rdg.clone();
    rdg_cfg.fine_enabled = state.fine_active;

    // --- switch 2 (granularity): ROI ESTIMATED ------------------------
    let roi_estimated = state.current_roi.is_some();
    let work_roi = state.current_roi.unwrap_or_else(|| frame.full_roi());
    let roi_kpixels = work_roi.area() as f64 / 1000.0;

    // --- RDG ------------------------------------------------------------
    let rdg_striped = rdg_active && policy.rdg_stripes.max(1) > 1;
    let rdg_out: Option<RdgOutput> = if rdg_active {
        let task: &'static str = if roi_estimated { "RDG_ROI" } else { "RDG_FULL" };
        let stripes = policy.rdg_stripes.max(1);
        if stripes == 1 {
            let (out, ms) = time_ms(|| rdg_roi(frame, work_roi, &rdg_cfg, &mut state.rdg_bufs));
            task_times.push((task, ms));
            schedule.serial(0, ms);
            Some(out)
        } else {
            // striped: dispatch to the persistent worker pool, then
            // schedule the per-stripe worker times measured inside the
            // pool on distinct cores
            let out = rdg_parallel_pooled(
                StripePool::global(),
                frame,
                work_roi,
                &rdg_cfg,
                stripes,
                &mut state.par_rdg,
            );
            let mut jobs = Vec::with_capacity(stripes);
            let mut serial_ms = 0.0;
            for (i, &ms) in state.par_rdg.stripe_times_ms().iter().enumerate() {
                serial_ms += ms;
                jobs.push(VirtualJob {
                    core: i,
                    duration_ms: ms,
                });
            }
            task_times.push((task, serial_ms));
            run_stage(&mut schedule, &jobs, observer, frame_index);
            Some(out)
        }
    } else {
        None
    };

    // --- MKX EXT ---------------------------------------------------------
    let mkx_input = rdg_out.as_ref().map(|o| &o.filtered).unwrap_or(frame);
    let (mkx, ms) = time_ms(|| mkx_extract(mkx_input, work_roi, &cfg.mkx, &mut state.mkx_bufs));
    task_times.push(("MKX_EXT", ms));
    schedule.serial(0, ms);

    // --- CPLS SEL ----------------------------------------------------------
    let prev = state.prev_couple;
    let (cpls, ms) = time_ms(|| cpls_select(&mkx.candidates, prev.as_ref(), &cfg.cpls));
    task_times.push(("CPLS_SEL", ms));
    schedule.serial(0, ms);
    let couple = cpls.couple;

    // --- REG ---------------------------------------------------------------
    let mut reg_successful = false;
    let mut transform = imaging::registration::RigidTransform::identity();
    let (reg_result, ms) =
        time_ms(
            || match (&couple, &state.reference_couple, &state.reference_frame) {
                (Some(c), Some(rc), Some(rf)) => {
                    Some(register(frame, rf, c, rc, work_roi, &cfg.reg))
                }
                _ => None,
            },
        );
    task_times.push(("REG", ms));
    schedule.serial(0, ms);
    match reg_result {
        Some(r) => {
            reg_successful = r.success;
            if r.success {
                transform = r.transform;
                state.recent_motion = r.transform.translation_magnitude();
                state.reg_failures = 0;
            } else {
                state.reg_failures += 1;
            }
        }
        None => {
            if let Some(c) = &couple {
                // first acquisition: this frame becomes the reference
                state.reference_frame = Some(frame.clone());
                state.reference_couple = Some(*c);
            }
        }
    }

    // --- ROI EST + GW EXT (tracking branch) ------------------------------
    // The tracking tasks run at ROI granularity, i.e. only once a region
    // of interest is established (the "ROI ESTIMATED" switch). On the
    // acquisition frame (first couple, not yet tracking) the ROI is
    // bootstrapped without running the tasks, which keeps the executed
    // task set consistent with the scenario state table.
    let mut next_roi = None;
    if let Some(c) = &couple {
        if roi_estimated {
            let (roi, ms) = time_ms(|| estimate_roi(c, state.recent_motion, w, h, &cfg.roi_est));
            task_times.push(("ROI_EST", ms));
            schedule.serial(0, ms);

            // guide-wire verification: "the guide wire can be detected by
            // a ridge filter in guide-wire extraction" (Section 3) — GW
            // runs its own ridge filter over the tracking ROI (a
            // data-partitionable streaming pass), followed by the serial
            // DP path search.
            let gw_stripes = policy.aux_stripes.max(1);
            let mut gw_serial_ms = 0.0;
            let gw_striped = gw_stripes > 1;
            let gw_rdg = if !gw_striped {
                let (out, ms) = time_ms(|| rdg_roi(frame, roi, &cfg.rdg, &mut state.rdg_bufs));
                gw_serial_ms += ms;
                schedule.serial(0, ms);
                out
            } else {
                let out = rdg_parallel_pooled(
                    StripePool::global(),
                    frame,
                    roi,
                    &cfg.rdg,
                    gw_stripes,
                    &mut state.par_gw,
                );
                let mut jobs = Vec::with_capacity(gw_stripes);
                for (i, &ms) in state.par_gw.stripe_times_ms().iter().enumerate() {
                    gw_serial_ms += ms;
                    jobs.push(VirtualJob {
                        core: i,
                        duration_ms: ms,
                    });
                }
                run_stage(&mut schedule, &jobs, observer, frame_index);
                out
            };
            let (gw, ms) =
                time_ms(|| gw_extract_with(&gw_rdg.ridgeness, c, &cfg.gw, &mut state.gw_scratch));
            if gw_striped {
                state.par_gw.recycle(gw_rdg);
            } else {
                state.rdg_bufs.recycle(gw_rdg);
            }
            gw_serial_ms += ms;
            schedule.serial(0, ms);
            task_times.push(("GW_EXT", gw_serial_ms));

            if gw.wire_found {
                next_roi = Some(roi);
            }
        } else {
            // acquisition bootstrap: negligible cost, not a graph task
            next_roi = Some(estimate_roi(c, state.recent_motion, w, h, &cfg.roi_est));
        }
    }

    // --- switch 3: REG. SUCCESSFUL -> ENH + ZOOM ---------------------------
    let mut display = None;
    if reg_successful {
        let enh_roi = next_roi
            .or(state.current_roi)
            .unwrap_or_else(|| frame.full_roi())
            .clamp_to(w, h);
        let stripes = policy.aux_stripes.max(1);

        // ENH: the accumulation is data-partitionable over disjoint rows;
        // the readout is a cheap serial pass.
        let weight = state.enh_state.next_weight(&cfg.enh);
        let mut enh_serial_ms = 0.0;
        if stripes == 1 {
            let (_, ms) = time_ms(|| {
                state
                    .enh_state
                    .accumulate(frame, &transform, enh_roi, weight)
            });
            enh_serial_ms += ms;
            schedule.serial(0, ms);
        } else {
            let mut jobs = Vec::with_capacity(stripes);
            for (i, stripe) in enh_roi.stripes(stripes).into_iter().enumerate() {
                let (_, ms) = time_ms(|| {
                    state
                        .enh_state
                        .accumulate(frame, &transform, stripe, weight)
                });
                enh_serial_ms += ms;
                jobs.push(VirtualJob {
                    core: i,
                    duration_ms: ms,
                });
            }
            run_stage(&mut schedule, &jobs, observer, frame_index);
        }
        state.enh_state.commit();
        // pooled readout buffer: re-created only when the ROI geometry
        // changes, so steady-state tracking frames allocate nothing here
        let mut enhanced = match state.enh_view.take() {
            Some(img) if img.dims() == (enh_roi.width, enh_roi.height) => img,
            _ => ImageU16::new(enh_roi.width, enh_roi.height),
        };
        let (_, ms) = time_ms(|| {
            state
                .enh_state
                .readout_into(enh_roi, cfg.enh.gain, &mut enhanced)
        });
        enh_serial_ms += ms;
        schedule.serial(0, ms);
        task_times.push(("ENH", enh_serial_ms));

        // ZOOM: output row bands are independent.
        let mut out_img = ImageU16::new(cfg.zoom.out_width, cfg.zoom.out_height);
        let src_roi = enhanced.full_roi();
        let mut zoom_serial_ms = 0.0;
        if stripes == 1 {
            let (_, ms) = time_ms(|| {
                zoom_band(
                    &enhanced,
                    src_roi,
                    &cfg.zoom,
                    &mut out_img,
                    0,
                    cfg.zoom.out_height,
                )
            });
            zoom_serial_ms += ms;
            schedule.serial(0, ms);
        } else {
            let band = cfg.zoom.out_height.div_ceil(stripes);
            let mut jobs = Vec::with_capacity(stripes);
            for i in 0..stripes {
                let y0 = i * band;
                let y1 = ((i + 1) * band).min(cfg.zoom.out_height);
                if y0 >= y1 {
                    continue;
                }
                let (_, ms) =
                    time_ms(|| zoom_band(&enhanced, src_roi, &cfg.zoom, &mut out_img, y0, y1));
                zoom_serial_ms += ms;
                jobs.push(VirtualJob {
                    core: i,
                    duration_ms: ms,
                });
            }
            run_stage(&mut schedule, &jobs, observer, frame_index);
        }
        task_times.push(("ZOOM", zoom_serial_ms));
        state.enh_view = Some(enhanced);
        display = Some(out_img);
    }

    // --- bookkeeping -----------------------------------------------------
    // Return the RDG output images to the pool they came from, so the next
    // frame's detection pass runs allocation free.
    if let Some(out) = rdg_out {
        if rdg_striped {
            state.par_rdg.recycle(out);
        } else {
            state.rdg_bufs.recycle(out);
        }
    }
    state.prev_couple = couple;
    if couple.is_none() || state.reg_failures > cfg.max_reg_failures {
        state.lose_tracking();
    } else {
        state.current_roi = next_roi;
    }

    let scenario = Scenario {
        rdg_active,
        roi_estimated,
        reg_successful,
    };
    let latency_ms = schedule.now();
    FrameOutput {
        record: FrameRecord {
            frame: frame_index,
            scenario: scenario.id(),
            task_times,
            latency_ms,
        },
        scenario,
        roi: state.current_roi,
        roi_kpixels,
        couple_found: couple.is_some(),
        display,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xray::{NoiseConfig, SequenceConfig, SequenceGenerator};

    fn clean_sequence(frames: usize, seed: u64) -> SequenceGenerator {
        SequenceGenerator::new(SequenceConfig {
            width: 160,
            height: 160,
            frames,
            seed,
            noise: NoiseConfig {
                quantum_scale: 0.3,
                electronic_std: 2.0,
            },
            ..Default::default()
        })
    }

    fn run(frames: usize, seed: u64, policy: ExecutionPolicy) -> Vec<FrameOutput> {
        let cfg = AppConfig::default();
        let mut state = AppState::new(160, 160);
        clean_sequence(frames, seed)
            .map(|f| process_frame(f.index, &f.image, &mut state, &cfg, &policy))
            .collect()
    }

    #[test]
    fn pipeline_acquires_and_tracks_markers() {
        let outs = run(10, 42, ExecutionPolicy::default());
        let found = outs.iter().filter(|o| o.couple_found).count();
        assert!(found >= 7, "couple found in only {found}/10 frames");
        // tracking established: later frames run at ROI granularity
        assert!(
            outs[5..].iter().any(|o| o.scenario.roi_estimated),
            "ROI never estimated"
        );
    }

    #[test]
    fn registration_eventually_succeeds_and_produces_display() {
        let outs = run(12, 43, ExecutionPolicy::default());
        let successes = outs.iter().filter(|o| o.scenario.reg_successful).count();
        assert!(successes >= 3, "registration succeeded {successes} times");
        assert!(
            outs.iter().any(|o| o.display.is_some()),
            "no display output"
        );
    }

    #[test]
    fn every_frame_records_core_tasks() {
        let outs = run(6, 44, ExecutionPolicy::default());
        for o in &outs {
            assert!(o.record.task_time("MKX_EXT").is_some());
            assert!(o.record.task_time("CPLS_SEL").is_some());
            assert!(o.record.task_time("REG").is_some());
            assert!(o.record.latency_ms > 0.0);
        }
    }

    #[test]
    fn recorded_scenario_matches_executed_tasks() {
        let outs = run(12, 45, ExecutionPolicy::default());
        for o in &outs {
            let s = o.scenario;
            assert_eq!(
                o.record.task_time("ENH").is_some(),
                s.reg_successful,
                "frame {}",
                o.record.frame
            );
            let ran_rdg =
                o.record.task_time("RDG_FULL").is_some() || o.record.task_time("RDG_ROI").is_some();
            assert_eq!(ran_rdg, s.rdg_active, "frame {}", o.record.frame);
        }
    }

    #[test]
    fn roi_granularity_reduces_rdg_work() {
        let outs = run(14, 46, ExecutionPolicy::default());
        let full: Vec<f64> = outs
            .iter()
            .filter_map(|o| o.record.task_time("RDG_FULL"))
            .collect();
        let roi: Vec<f64> = outs
            .iter()
            .filter_map(|o| o.record.task_time("RDG_ROI"))
            .collect();
        if !full.is_empty() && !roi.is_empty() {
            let mf = full.iter().sum::<f64>() / full.len() as f64;
            let mr = roi.iter().sum::<f64>() / roi.len() as f64;
            assert!(mr < mf, "ROI RDG {mr} not cheaper than full {mf}");
        }
    }

    #[test]
    fn striped_rdg_lowers_effective_latency() {
        let serial = run(
            8,
            47,
            ExecutionPolicy {
                rdg_stripes: 1,
                aux_stripes: 1,
                cores: 8,
            },
        );
        let striped = run(
            8,
            47,
            ExecutionPolicy {
                rdg_stripes: 4,
                aux_stripes: 4,
                cores: 8,
            },
        );
        // compare frames where full-frame RDG ran in both runs
        let mut pairs = 0;
        let mut faster = 0;
        for (a, b) in serial.iter().zip(&striped) {
            if a.record.task_time("RDG_FULL").is_some() && b.record.task_time("RDG_FULL").is_some()
            {
                pairs += 1;
                if b.record.latency_ms < a.record.latency_ms {
                    faster += 1;
                }
            }
        }
        assert!(pairs > 0, "no comparable frames");
        assert!(
            faster * 3 >= pairs * 2,
            "striping faster in only {faster}/{pairs} frames"
        );
    }

    #[test]
    fn latency_at_most_sum_of_task_times_plus_overhead() {
        for o in run(
            6,
            48,
            ExecutionPolicy {
                rdg_stripes: 2,
                aux_stripes: 2,
                cores: 8,
            },
        ) {
            let serial_sum = o.record.total_task_time();
            assert!(
                o.record.latency_ms <= serial_sum + 1.0,
                "latency {} exceeds serial sum {}",
                o.record.latency_ms,
                serial_sum
            );
        }
    }
}
