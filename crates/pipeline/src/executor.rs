//! Frame-by-frame execution of the dynamic flow graph.
//!
//! Each frame walks the Fig. 2 graph: the three data-dependent switches
//! select the active task group, every task's computation time is
//! measured, and the frame's *effective latency* is computed by virtual
//! scheduling onto the modelled multiprocessor (a striped RDG overlaps its
//! stripes on distinct cores; the remaining tasks are sequentially
//! dependent within a frame).

use crate::app::{structure_probe, AppConfig, AppState};
use imaging::couples::cpls_select;

use imaging::guidewire::gw_extract_with;
use imaging::image::{ImageU16, Roi};
use imaging::markers::mkx_extract;
use imaging::parallel::{
    rdg_parallel_pooled, rdg_parallel_pooled_faulted, PoolError, StripeFault, StripePool,
};
use imaging::registration::register;
use imaging::ridge::{rdg_roi, RdgOutput};
use imaging::roi_est::estimate_roi;
use imaging::zoom::zoom_band_with;
use platform::bus::{DegradeMode, EventBus, FaultKind, FrameEvent, StreamId};
use platform::profile::time_ms;
use platform::schedule::{VirtualJob, VirtualSchedule};
use platform::trace::FrameRecord;
use triplec::scenario::Scenario;

/// How the frame's tasks are partitioned onto the platform this frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionPolicy {
    /// Stripe count of the RDG task (1 = serial).
    pub rdg_stripes: usize,
    /// Stripe count of the other data-partitionable streaming tasks
    /// (GW EXT's internal ridge filter, ENH, ZOOM).
    pub aux_stripes: usize,
    /// Number of modelled cores available.
    pub cores: usize,
}

impl Default for ExecutionPolicy {
    fn default() -> Self {
        Self {
            rdg_stripes: 1,
            aux_stripes: 1,
            // the modelled platform's core count, not a hard-coded 8
            cores: platform::arch::ArchModel::default().cores,
        }
    }
}

/// Tasks that can be data-partitioned (striped) on the platform; the
/// remaining tasks are feature-level (CPLS SEL, REG, ROI EST) or
/// extraction passes with global candidate state (MKX EXT) and stay
/// serial within a frame.
pub const STRIPABLE_TASKS: [&str; 5] = ["RDG_FULL", "RDG_ROI", "GW_EXT", "ENH", "ZOOM"];

/// Faults to inject into one frame's execution (all disabled by default).
///
/// Produced per frame by the runtime's seeded fault plan. The executor
/// injects them at the stripe-dispatch boundary, where a failed attempt
/// has not yet written any pixel state, so a clean retry (or the serial
/// fallback) stays bit-identical to an unfaulted frame.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameFaults {
    /// Panic this many stripe jobs of the first real RDG dispatch.
    pub rdg_panic_jobs: usize,
    /// Fail this many leading RDG dispatch attempts with a transient
    /// pool-channel error (consumed before any panic injection fires).
    pub rdg_channel_errors: u32,
    /// Inflate the frame by sleeping this many milliseconds, recorded as
    /// a `FAULT_DELAY` pseudo-task so latency budgets and overrun
    /// policies observe it.
    pub stage_delay_ms: f64,
}

impl FrameFaults {
    /// True when any fault is armed for this frame.
    pub fn any(&self) -> bool {
        self.rdg_panic_jobs > 0 || self.rdg_channel_errors > 0 || self.stage_delay_ms > 0.0
    }
}

/// Bounded-retry policy for a striped stage whose dispatch failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageRetry {
    /// Clean re-dispatches after a failed attempt before giving up.
    pub max_retries: u32,
    /// Once retries are exhausted, fall back to the bit-identical serial
    /// path (emitting [`DegradeMode::SerialFallback`]) instead of failing
    /// the frame.
    pub serial_fallback: bool,
}

impl Default for StageRetry {
    fn default() -> Self {
        Self {
            max_retries: 2,
            serial_fallback: true,
        }
    }
}

/// A frame that could not complete even after retries. Only reachable
/// when [`StageRetry::serial_fallback`] is disabled.
#[derive(Debug, Clone)]
pub struct FrameError {
    /// Frame index that failed.
    pub frame: usize,
    /// Task name of the stage that failed.
    pub stage: &'static str,
    /// The final dispatch error.
    pub error: PoolError,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame {}: stage {} failed after retries: {}",
            self.frame, self.stage, self.error
        )
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

fn fault_kind_of(err: &PoolError) -> FaultKind {
    match err {
        PoolError::JobPanicked(_) => FaultKind::WorkerPanic,
        PoolError::Disconnected => FaultKind::ChannelError,
    }
}

/// Publishes a fault-family event when an observer bus is attached.
fn emit_fault(
    observer: &mut Option<(StreamId, &mut EventBus)>,
    make: impl FnOnce(StreamId) -> FrameEvent,
) {
    if let Some((stream, bus)) = observer {
        bus.emit(make(*stream));
    }
}

/// Result of processing one frame.
pub struct FrameOutput {
    /// Trace record: task times (serial work), scenario, effective latency.
    pub record: FrameRecord,
    /// The scenario the frame executed.
    pub scenario: Scenario,
    /// ROI in effect for the *next* frame (if tracking).
    pub roi: Option<Roi>,
    /// ROI processed *this* frame, kilopixels (covariate for Eq. 3).
    pub roi_kpixels: f64,
    /// The marker couple selected this frame.
    pub couple_found: bool,
    /// The enhanced, zoomed output image (only on successful registration).
    pub display: Option<ImageU16>,
}

/// Processes one frame through the dynamic flow graph.
///
/// Striped stages dispatch onto the process-global [`StripePool`]; use
/// [`process_frame_on`] to pin the frame to a specific pool (e.g. a
/// service-tier shard).
pub fn process_frame(
    frame_index: usize,
    frame: &ImageU16,
    state: &mut AppState,
    cfg: &AppConfig,
    policy: &ExecutionPolicy,
) -> FrameOutput {
    process_frame_on(StripePool::global(), frame_index, frame, state, cfg, policy)
}

/// Like [`process_frame`], dispatching every striped stage onto `pool`
/// instead of the process-global one. Pixel outputs are bit-identical
/// regardless of which pool executes the stripes.
pub fn process_frame_on(
    pool: &StripePool,
    frame_index: usize,
    frame: &ImageU16,
    state: &mut AppState,
    cfg: &AppConfig,
    policy: &ExecutionPolicy,
) -> FrameOutput {
    process_frame_inner(
        pool,
        frame_index,
        frame,
        state,
        cfg,
        policy,
        &mut None,
        None,
    )
    .expect("infallible without fault recovery")
}

/// Like [`process_frame`], additionally emitting a
/// [`platform::bus::FrameEvent::StageExecuted`] onto `bus` for every
/// data-parallel (striped) stage the frame runs. Pixel outputs and trace
/// records are identical to the unobserved path.
pub fn process_frame_observed(
    frame_index: usize,
    frame: &ImageU16,
    state: &mut AppState,
    cfg: &AppConfig,
    policy: &ExecutionPolicy,
    stream: StreamId,
    bus: &mut EventBus,
) -> FrameOutput {
    process_frame_observed_on(
        StripePool::global(),
        frame_index,
        frame,
        state,
        cfg,
        policy,
        stream,
        bus,
    )
}

/// Like [`process_frame_observed`], dispatching striped stages onto
/// `pool` instead of the process-global one.
#[allow(clippy::too_many_arguments)]
pub fn process_frame_observed_on(
    pool: &StripePool,
    frame_index: usize,
    frame: &ImageU16,
    state: &mut AppState,
    cfg: &AppConfig,
    policy: &ExecutionPolicy,
    stream: StreamId,
    bus: &mut EventBus,
) -> FrameOutput {
    process_frame_inner(
        pool,
        frame_index,
        frame,
        state,
        cfg,
        policy,
        &mut Some((stream, bus)),
        None,
    )
    .expect("infallible without fault recovery")
}

/// Like [`process_frame_observed`], with deterministic fault injection
/// and graceful degradation.
///
/// Every fault kind armed in `faults` is announced with a
/// [`FrameEvent::FaultInjected`] and is guaranteed a terminal event by
/// the time this returns: a [`FrameEvent::Recovered`] when a clean retry
/// (or absorption) delivered the nominal result, or a
/// [`FrameEvent::DegradedMode`] when the stage fell back to its serial
/// path. Failed dispatch attempts emit [`FrameEvent::RetryAttempted`].
/// `Err` is only possible when `retry.serial_fallback` is disabled.
///
/// Pixel outputs are bit-identical to [`process_frame`] for every frame
/// this returns `Ok` for: injected stripe faults fire before any band is
/// written, so retries and the serial fallback see pristine state.
#[allow(clippy::too_many_arguments)]
pub fn process_frame_recovering(
    frame_index: usize,
    frame: &ImageU16,
    state: &mut AppState,
    cfg: &AppConfig,
    policy: &ExecutionPolicy,
    stream: StreamId,
    bus: &mut EventBus,
    faults: FrameFaults,
    retry: &StageRetry,
) -> Result<FrameOutput, FrameError> {
    process_frame_recovering_on(
        StripePool::global(),
        frame_index,
        frame,
        state,
        cfg,
        policy,
        stream,
        bus,
        faults,
        retry,
    )
}

/// Like [`process_frame_recovering`], dispatching striped stages onto
/// `pool` instead of the process-global one. Fault injection and the
/// retry/fallback protocol are identical; recovery semantics do not
/// depend on which pool executes the stripes.
#[allow(clippy::too_many_arguments)]
pub fn process_frame_recovering_on(
    pool: &StripePool,
    frame_index: usize,
    frame: &ImageU16,
    state: &mut AppState,
    cfg: &AppConfig,
    policy: &ExecutionPolicy,
    stream: StreamId,
    bus: &mut EventBus,
    faults: FrameFaults,
    retry: &StageRetry,
) -> Result<FrameOutput, FrameError> {
    process_frame_inner(
        pool,
        frame_index,
        frame,
        state,
        cfg,
        policy,
        &mut Some((stream, bus)),
        Some((&faults, retry)),
    )
}

/// Runs a parallel stage, reporting it to the observer when present.
fn run_stage(
    schedule: &mut VirtualSchedule,
    jobs: &[VirtualJob],
    task: &'static str,
    observer: &mut Option<(StreamId, &mut EventBus)>,
    frame_index: usize,
) -> f64 {
    match observer {
        Some((stream, bus)) => schedule.stage_observed(jobs, task, *stream, frame_index, bus),
        None => schedule.stage(jobs),
    }
}

#[allow(clippy::too_many_arguments)]
fn process_frame_inner(
    pool: &StripePool,
    frame_index: usize,
    frame: &ImageU16,
    state: &mut AppState,
    cfg: &AppConfig,
    policy: &ExecutionPolicy,
    observer: &mut Option<(StreamId, &mut EventBus)>,
    recovery: Option<(&FrameFaults, &StageRetry)>,
) -> Result<FrameOutput, FrameError> {
    let (w, h) = frame.dims();
    let mut task_times: Vec<(&'static str, f64)> = Vec::with_capacity(9);
    let mut schedule = VirtualSchedule::new(policy.cores.max(1));

    // --- fault arming ------------------------------------------------
    // Every armed fault kind is announced up front and owed a terminal
    // `Recovered`/`DegradedMode` event (or an `Err` return) by the end
    // of the frame, so replay logs pair injections and outcomes 1:1.
    // Pool-targeting kinds wait here until the striped RDG dispatch
    // consumes them; a frame with no such dispatch absorbs them with a
    // zero-attempt `Recovered` in the bookkeeping section.
    let mut pending_pool_kinds: Vec<FaultKind> = Vec::new();
    if let Some((faults, _)) = recovery {
        if faults.rdg_channel_errors > 0 {
            pending_pool_kinds.push(FaultKind::ChannelError);
        }
        if faults.rdg_panic_jobs > 0 {
            pending_pool_kinds.push(FaultKind::WorkerPanic);
        }
        for &kind in &pending_pool_kinds {
            emit_fault(observer, |stream| FrameEvent::FaultInjected {
                stream,
                frame: frame_index,
                kind,
            });
        }
        if faults.stage_delay_ms > 0.0 {
            emit_fault(observer, |stream| FrameEvent::FaultInjected {
                stream,
                frame: frame_index,
                kind: FaultKind::StageDelay,
            });
        }
    }

    // Scripted scenario storms force the three switches for frames a
    // script covers (work ROIs, registration state and couple tracking
    // keep their natural bookkeeping — only the switch decisions and the
    // reported scenario follow the script). `None` leaves every switch
    // data-dependent, bit-identical to the unscripted path.
    let forced = cfg
        .scenario_script
        .as_ref()
        .and_then(|s| s.scenario_at(frame_index));

    // --- switch 1: RDG DETECTION --------------------------------------
    let probe = structure_probe(frame, cfg.probe_block);
    let rdg_active = forced.map_or(probe > cfg.structure_threshold, |s| s.rdg_active);
    // coarse-to-fine adaptation: heavy content triggers the fine scales.
    // Deciding from the whole-frame probe keeps serial and striped
    // executions identical; hysteresis (on above the threshold, off only
    // below 90% of it) prevents flip-flopping on probe noise.
    let fine_on = cfg.structure_threshold * cfg.fine_probe_factor;
    if probe > fine_on {
        state.fine_active = true;
    } else if probe < fine_on * 0.9 {
        state.fine_active = false;
    }
    let mut rdg_cfg = cfg.rdg.clone();
    rdg_cfg.fine_enabled = state.fine_active;

    // --- switch 2 (granularity): ROI ESTIMATED ------------------------
    // A forced `roi_estimated` without a tracked ROI still works the full
    // frame; the tracking tasks additionally need a couple to run, so a
    // coupleless forced-ROI frame reports the scripted scenario without
    // executing ROI_EST/GW_EXT (documented script semantics).
    let roi_estimated = forced.map_or(state.current_roi.is_some(), |s| s.roi_estimated);
    let work_roi = state.current_roi.unwrap_or_else(|| frame.full_roi());
    let roi_kpixels = work_roi.area() as f64 / 1000.0;

    // --- RDG ------------------------------------------------------------
    let mut rdg_striped = rdg_active && policy.rdg_stripes.max(1) > 1;
    let rdg_out: Option<RdgOutput> = if rdg_active {
        let task: &'static str = if roi_estimated { "RDG_ROI" } else { "RDG_FULL" };
        let stripes = policy.rdg_stripes.max(1);
        if stripes == 1 {
            let (out, ms) = time_ms(|| rdg_roi(frame, work_roi, &rdg_cfg, &mut state.rdg_bufs));
            task_times.push((task, ms));
            schedule.serial(0, ms);
            Some(out)
        } else if let Some((faults, retry)) = recovery {
            // fault-aware dispatch: armed pool faults fire on the early
            // attempts (channel errors first, then the panic batch), each
            // failure is retried with a clean dispatch up to
            // `retry.max_retries` times, and exhaustion falls back to the
            // bit-identical serial path.
            let mut attempts = 0u32;
            let mut panic_jobs = faults.rdg_panic_jobs;
            let mut channel_left = faults.rdg_channel_errors;
            let mut last_kind = FaultKind::WorkerPanic;
            loop {
                let fault = if channel_left > 0 {
                    channel_left -= 1;
                    StripeFault {
                        panic_jobs: 0,
                        channel_error: true,
                    }
                } else {
                    let f = StripeFault {
                        panic_jobs,
                        channel_error: false,
                    };
                    panic_jobs = 0;
                    f
                };
                match rdg_parallel_pooled_faulted(
                    pool,
                    frame,
                    work_roi,
                    &rdg_cfg,
                    stripes,
                    &mut state.par_rdg,
                    fault,
                ) {
                    Ok(out) => {
                        if attempts > 0 {
                            // a genuine (un-armed) failure still deserves
                            // a terminal event
                            if pending_pool_kinds.is_empty() {
                                pending_pool_kinds.push(last_kind);
                            }
                            for kind in pending_pool_kinds.drain(..) {
                                emit_fault(observer, |stream| FrameEvent::Recovered {
                                    stream,
                                    frame: frame_index,
                                    kind,
                                    attempts,
                                });
                            }
                        }
                        let mut jobs = Vec::with_capacity(stripes);
                        let mut serial_ms = 0.0;
                        for (i, &ms) in state.par_rdg.stripe_times_ms().iter().enumerate() {
                            serial_ms += ms;
                            jobs.push(VirtualJob {
                                core: i,
                                duration_ms: ms,
                            });
                        }
                        task_times.push((task, serial_ms));
                        run_stage(&mut schedule, &jobs, task, observer, frame_index);
                        break Some(out);
                    }
                    Err(err) => {
                        last_kind = fault_kind_of(&err);
                        if attempts < retry.max_retries {
                            attempts += 1;
                            emit_fault(observer, |stream| FrameEvent::RetryAttempted {
                                stream,
                                frame: frame_index,
                                kind: last_kind,
                                attempt: attempts,
                            });
                        } else if retry.serial_fallback {
                            if pending_pool_kinds.is_empty() {
                                pending_pool_kinds.push(last_kind);
                            }
                            for kind in pending_pool_kinds.drain(..) {
                                emit_fault(observer, |stream| FrameEvent::DegradedMode {
                                    stream,
                                    frame: frame_index,
                                    mode: DegradeMode::SerialFallback,
                                    cause: kind,
                                });
                            }
                            let (out, ms) =
                                time_ms(|| rdg_roi(frame, work_roi, &rdg_cfg, &mut state.rdg_bufs));
                            task_times.push((task, ms));
                            schedule.serial(0, ms);
                            // output came from the serial buffer pool
                            rdg_striped = false;
                            break Some(out);
                        } else {
                            return Err(FrameError {
                                frame: frame_index,
                                stage: task,
                                error: err,
                            });
                        }
                    }
                }
            }
        } else {
            // striped: dispatch to the persistent worker pool, then
            // schedule the per-stripe worker times measured inside the
            // pool on distinct cores
            let out =
                rdg_parallel_pooled(pool, frame, work_roi, &rdg_cfg, stripes, &mut state.par_rdg);
            let mut jobs = Vec::with_capacity(stripes);
            let mut serial_ms = 0.0;
            for (i, &ms) in state.par_rdg.stripe_times_ms().iter().enumerate() {
                serial_ms += ms;
                jobs.push(VirtualJob {
                    core: i,
                    duration_ms: ms,
                });
            }
            task_times.push((task, serial_ms));
            run_stage(&mut schedule, &jobs, task, observer, frame_index);
            Some(out)
        }
    } else {
        None
    };

    // --- MKX EXT ---------------------------------------------------------
    let mkx_input = rdg_out.as_ref().map(|o| &o.filtered).unwrap_or(frame);
    let (mkx, ms) = time_ms(|| mkx_extract(mkx_input, work_roi, &cfg.mkx, &mut state.mkx_bufs));
    task_times.push(("MKX_EXT", ms));
    schedule.serial(0, ms);

    // --- CPLS SEL ----------------------------------------------------------
    let prev = state.prev_couple;
    let (cpls, ms) = time_ms(|| cpls_select(&mkx.candidates, prev.as_ref(), &cfg.cpls));
    task_times.push(("CPLS_SEL", ms));
    schedule.serial(0, ms);
    let couple = cpls.couple;

    // --- REG ---------------------------------------------------------------
    let mut reg_successful = false;
    let mut transform = imaging::registration::RigidTransform::identity();
    let (reg_result, ms) =
        time_ms(
            || match (&couple, &state.reference_couple, &state.reference_frame) {
                (Some(c), Some(rc), Some(rf)) => {
                    Some(register(frame, rf, c, rc, work_roi, &cfg.reg))
                }
                _ => None,
            },
        );
    task_times.push(("REG", ms));
    schedule.serial(0, ms);
    match reg_result {
        Some(r) => {
            reg_successful = r.success;
            if r.success {
                transform = r.transform;
                state.recent_motion = r.transform.translation_magnitude();
                state.reg_failures = 0;
            } else {
                state.reg_failures += 1;
            }
        }
        None => {
            if let Some(c) = &couple {
                // first acquisition: this frame becomes the reference
                state.reference_frame = Some(frame.clone());
                state.reference_couple = Some(*c);
            }
        }
    }
    // Scripted REG switch: a forced success runs ENH/ZOOM with whatever
    // transform registration produced (identity when it did not run); a
    // forced failure skips them. Registration bookkeeping above
    // (failure counts, reference acquisition) stays natural either way.
    if let Some(f) = forced {
        reg_successful = f.reg_successful;
    }

    // --- ROI EST + GW EXT (tracking branch) ------------------------------
    // The tracking tasks run at ROI granularity, i.e. only once a region
    // of interest is established (the "ROI ESTIMATED" switch). On the
    // acquisition frame (first couple, not yet tracking) the ROI is
    // bootstrapped without running the tasks, which keeps the executed
    // task set consistent with the scenario state table.
    let mut next_roi = None;
    if let Some(c) = &couple {
        if roi_estimated {
            let (roi, ms) = time_ms(|| estimate_roi(c, state.recent_motion, w, h, &cfg.roi_est));
            task_times.push(("ROI_EST", ms));
            schedule.serial(0, ms);

            // guide-wire verification: "the guide wire can be detected by
            // a ridge filter in guide-wire extraction" (Section 3) — GW
            // runs its own ridge filter over the tracking ROI (a
            // data-partitionable streaming pass), followed by the serial
            // DP path search.
            let gw_stripes = policy.aux_stripes.max(1);
            let mut gw_serial_ms = 0.0;
            let gw_striped = gw_stripes > 1;
            let gw_rdg = if !gw_striped {
                let (out, ms) = time_ms(|| rdg_roi(frame, roi, &cfg.rdg, &mut state.rdg_bufs));
                gw_serial_ms += ms;
                schedule.serial(0, ms);
                out
            } else {
                let out =
                    rdg_parallel_pooled(pool, frame, roi, &cfg.rdg, gw_stripes, &mut state.par_gw);
                let mut jobs = Vec::with_capacity(gw_stripes);
                for (i, &ms) in state.par_gw.stripe_times_ms().iter().enumerate() {
                    gw_serial_ms += ms;
                    jobs.push(VirtualJob {
                        core: i,
                        duration_ms: ms,
                    });
                }
                run_stage(&mut schedule, &jobs, "GW_EXT", observer, frame_index);
                out
            };
            let (gw, ms) =
                time_ms(|| gw_extract_with(&gw_rdg.ridgeness, c, &cfg.gw, &mut state.gw_scratch));
            if gw_striped {
                state.par_gw.recycle(gw_rdg);
            } else {
                state.rdg_bufs.recycle(gw_rdg);
            }
            gw_serial_ms += ms;
            schedule.serial(0, ms);
            task_times.push(("GW_EXT", gw_serial_ms));

            if gw.wire_found {
                next_roi = Some(roi);
            }
        } else {
            // acquisition bootstrap: negligible cost, not a graph task
            next_roi = Some(estimate_roi(c, state.recent_motion, w, h, &cfg.roi_est));
        }
    }

    // --- switch 3: REG. SUCCESSFUL -> ENH + ZOOM ---------------------------
    let mut display = None;
    if reg_successful {
        let enh_roi = next_roi
            .or(state.current_roi)
            .unwrap_or_else(|| frame.full_roi())
            .clamp_to(w, h);
        let stripes = policy.aux_stripes.max(1);

        // ENH: the accumulation is data-partitionable over disjoint rows;
        // the readout is a cheap serial pass.
        let weight = state.enh_state.next_weight(&cfg.enh);
        let mut enh_serial_ms = 0.0;
        if stripes == 1 {
            let (_, ms) = time_ms(|| {
                state
                    .enh_state
                    .accumulate(frame, &transform, enh_roi, weight)
            });
            enh_serial_ms += ms;
            schedule.serial(0, ms);
        } else {
            let mut jobs = Vec::with_capacity(stripes);
            for (i, stripe) in enh_roi.stripes(stripes).into_iter().enumerate() {
                let (_, ms) = time_ms(|| {
                    state
                        .enh_state
                        .accumulate(frame, &transform, stripe, weight)
                });
                enh_serial_ms += ms;
                jobs.push(VirtualJob {
                    core: i,
                    duration_ms: ms,
                });
            }
            run_stage(&mut schedule, &jobs, "ENH", observer, frame_index);
        }
        state.enh_state.commit();
        // pooled readout buffer: re-created only when the ROI geometry
        // changes, so steady-state tracking frames allocate nothing here
        let mut enhanced = match state.enh_view.take() {
            Some(img) if img.dims() == (enh_roi.width, enh_roi.height) => img,
            _ => ImageU16::new(enh_roi.width, enh_roi.height),
        };
        let (_, ms) = time_ms(|| {
            state
                .enh_state
                .readout_into(enh_roi, cfg.enh.gain, &mut enhanced)
        });
        enh_serial_ms += ms;
        schedule.serial(0, ms);
        task_times.push(("ENH", enh_serial_ms));

        // ZOOM: output row bands are independent. The pooled scratch keeps
        // the per-column tap plans and the source-row cache warm across
        // bands and frames (the virtual schedule still models the bands as
        // parallel jobs; they execute serially here, so sharing is safe).
        // The output image itself is handed to the caller via `display`, so
        // it is the one per-frame allocation that cannot be pooled.
        let mut out_img = ImageU16::new(cfg.zoom.out_width, cfg.zoom.out_height);
        let src_roi = enhanced.full_roi();
        let mut zoom_serial_ms = 0.0;
        if stripes == 1 {
            let (_, ms) = time_ms(|| {
                zoom_band_with(
                    &enhanced,
                    src_roi,
                    &cfg.zoom,
                    &mut out_img,
                    0,
                    cfg.zoom.out_height,
                    &mut state.zoom_scratch,
                )
            });
            zoom_serial_ms += ms;
            schedule.serial(0, ms);
        } else {
            let band = cfg.zoom.out_height.div_ceil(stripes);
            let mut jobs = Vec::with_capacity(stripes);
            for i in 0..stripes {
                let y0 = i * band;
                let y1 = ((i + 1) * band).min(cfg.zoom.out_height);
                if y0 >= y1 {
                    continue;
                }
                let (_, ms) = time_ms(|| {
                    zoom_band_with(
                        &enhanced,
                        src_roi,
                        &cfg.zoom,
                        &mut out_img,
                        y0,
                        y1,
                        &mut state.zoom_scratch,
                    )
                });
                zoom_serial_ms += ms;
                jobs.push(VirtualJob {
                    core: i,
                    duration_ms: ms,
                });
            }
            run_stage(&mut schedule, &jobs, "ZOOM", observer, frame_index);
        }
        task_times.push(("ZOOM", zoom_serial_ms));
        state.enh_view = Some(enhanced);
        display = Some(out_img);
    }

    // --- injected stage delay ---------------------------------------------
    // Applied as a serial pseudo-task at the end of the graph: pixel
    // outputs are untouched, but the frame's measured latency inflates so
    // budget overrun and downshift policies react to it.
    if let Some((faults, _)) = recovery {
        if faults.stage_delay_ms > 0.0 {
            let (_, ms) = time_ms(|| {
                std::thread::sleep(std::time::Duration::from_secs_f64(
                    faults.stage_delay_ms / 1000.0,
                ))
            });
            task_times.push(("FAULT_DELAY", ms));
            schedule.serial(0, ms);
            emit_fault(observer, |stream| FrameEvent::Recovered {
                stream,
                frame: frame_index,
                kind: FaultKind::StageDelay,
                attempts: 0,
            });
        }
    }

    // --- bookkeeping -----------------------------------------------------
    // Armed pool faults that found no striped dispatch this frame are
    // absorbed: a zero-attempt `Recovered` keeps the fault/terminal
    // pairing 1:1 in replay logs.
    for kind in pending_pool_kinds.drain(..) {
        emit_fault(observer, |stream| FrameEvent::Recovered {
            stream,
            frame: frame_index,
            kind,
            attempts: 0,
        });
    }
    // Return the RDG output images to the pool they came from, so the next
    // frame's detection pass runs allocation free.
    if let Some(out) = rdg_out {
        if rdg_striped {
            state.par_rdg.recycle(out);
        } else {
            state.rdg_bufs.recycle(out);
        }
    }
    state.prev_couple = couple;
    if couple.is_none() || state.reg_failures > cfg.max_reg_failures {
        state.lose_tracking();
    } else {
        state.current_roi = next_roi;
    }

    let scenario = Scenario {
        rdg_active,
        roi_estimated,
        reg_successful,
    };
    let latency_ms = schedule.now();
    Ok(FrameOutput {
        record: FrameRecord {
            frame: frame_index,
            scenario: scenario.id(),
            task_times,
            latency_ms,
        },
        scenario,
        roi: state.current_roi,
        roi_kpixels,
        couple_found: couple.is_some(),
        display,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xray::{NoiseConfig, SequenceConfig, SequenceGenerator};

    fn clean_sequence(frames: usize, seed: u64) -> SequenceGenerator {
        SequenceGenerator::new(SequenceConfig {
            width: 160,
            height: 160,
            frames,
            seed,
            noise: NoiseConfig {
                quantum_scale: 0.3,
                electronic_std: 2.0,
            },
            ..Default::default()
        })
    }

    fn run(frames: usize, seed: u64, policy: ExecutionPolicy) -> Vec<FrameOutput> {
        let cfg = AppConfig::default();
        let mut state = AppState::new(160, 160);
        clean_sequence(frames, seed)
            .map(|f| process_frame(f.index, &f.image, &mut state, &cfg, &policy))
            .collect()
    }

    #[test]
    fn pipeline_acquires_and_tracks_markers() {
        let outs = run(10, 42, ExecutionPolicy::default());
        let found = outs.iter().filter(|o| o.couple_found).count();
        assert!(found >= 7, "couple found in only {found}/10 frames");
        // tracking established: later frames run at ROI granularity
        assert!(
            outs[5..].iter().any(|o| o.scenario.roi_estimated),
            "ROI never estimated"
        );
    }

    #[test]
    fn registration_eventually_succeeds_and_produces_display() {
        let outs = run(12, 43, ExecutionPolicy::default());
        let successes = outs.iter().filter(|o| o.scenario.reg_successful).count();
        assert!(successes >= 3, "registration succeeded {successes} times");
        assert!(
            outs.iter().any(|o| o.display.is_some()),
            "no display output"
        );
    }

    #[test]
    fn every_frame_records_core_tasks() {
        let outs = run(6, 44, ExecutionPolicy::default());
        for o in &outs {
            assert!(o.record.task_time("MKX_EXT").is_some());
            assert!(o.record.task_time("CPLS_SEL").is_some());
            assert!(o.record.task_time("REG").is_some());
            assert!(o.record.latency_ms > 0.0);
        }
    }

    #[test]
    fn recorded_scenario_matches_executed_tasks() {
        let outs = run(12, 45, ExecutionPolicy::default());
        for o in &outs {
            let s = o.scenario;
            assert_eq!(
                o.record.task_time("ENH").is_some(),
                s.reg_successful,
                "frame {}",
                o.record.frame
            );
            let ran_rdg =
                o.record.task_time("RDG_FULL").is_some() || o.record.task_time("RDG_ROI").is_some();
            assert_eq!(ran_rdg, s.rdg_active, "frame {}", o.record.frame);
        }
    }

    #[test]
    fn scenario_script_forces_switches() {
        use triplec::scenario::ScenarioScript;
        // thrash 0 <-> 7 every frame for 8 frames, then fall back to content
        let cfg = AppConfig {
            scenario_script: Some(ScenarioScript::thrash(&[0, 7], 1, 4)),
            ..Default::default()
        };
        let policy = ExecutionPolicy::default();
        let mut state = AppState::new(160, 160);
        let outs: Vec<FrameOutput> = clean_sequence(12, 45)
            .map(|f| process_frame(f.index, &f.image, &mut state, &cfg, &policy))
            .collect();
        for (i, o) in outs.iter().take(8).enumerate() {
            let want = if i % 2 == 0 { 0 } else { 7 };
            assert_eq!(o.scenario.id(), want, "frame {i}");
            // the forced switches actually gate the heavy branches
            assert_eq!(o.record.task_time("ENH").is_some(), want == 7, "frame {i}");
            let ran_rdg =
                o.record.task_time("RDG_FULL").is_some() || o.record.task_time("RDG_ROI").is_some();
            assert_eq!(ran_rdg, want == 7, "frame {i}");
        }
        // past the script: the switches are content-derived again
        let natural: Vec<FrameOutput> = {
            let cfg = AppConfig::default();
            let mut state = AppState::new(160, 160);
            clean_sequence(12, 45)
                .map(|f| process_frame(f.index, &f.image, &mut state, &cfg, &policy))
                .collect()
        };
        // frame 8+ RDG switch matches the unscripted probe decision
        for i in 8..12 {
            assert_eq!(
                outs[i].scenario.rdg_active, natural[i].scenario.rdg_active,
                "frame {i}"
            );
        }
    }

    #[test]
    fn roi_granularity_reduces_rdg_work() {
        let outs = run(14, 46, ExecutionPolicy::default());
        let full: Vec<f64> = outs
            .iter()
            .filter_map(|o| o.record.task_time("RDG_FULL"))
            .collect();
        let roi: Vec<f64> = outs
            .iter()
            .filter_map(|o| o.record.task_time("RDG_ROI"))
            .collect();
        if !full.is_empty() && !roi.is_empty() {
            let mf = full.iter().sum::<f64>() / full.len() as f64;
            let mr = roi.iter().sum::<f64>() / roi.len() as f64;
            assert!(mr < mf, "ROI RDG {mr} not cheaper than full {mf}");
        }
    }

    #[test]
    fn striped_rdg_lowers_effective_latency() {
        let serial = run(
            8,
            47,
            ExecutionPolicy {
                rdg_stripes: 1,
                aux_stripes: 1,
                cores: 8,
            },
        );
        let striped = run(
            8,
            47,
            ExecutionPolicy {
                rdg_stripes: 4,
                aux_stripes: 4,
                cores: 8,
            },
        );
        // compare frames where full-frame RDG ran in both runs
        let mut pairs = 0;
        let mut faster = 0;
        for (a, b) in serial.iter().zip(&striped) {
            if a.record.task_time("RDG_FULL").is_some() && b.record.task_time("RDG_FULL").is_some()
            {
                pairs += 1;
                if b.record.latency_ms < a.record.latency_ms {
                    faster += 1;
                }
            }
        }
        assert!(pairs > 0, "no comparable frames");
        assert!(
            faster * 3 >= pairs * 2,
            "striping faster in only {faster}/{pairs} frames"
        );
    }

    use std::sync::{Arc, Mutex};

    fn capture_bus() -> (EventBus, Arc<Mutex<Vec<FrameEvent>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut bus = EventBus::new();
        let sink = Arc::clone(&log);
        bus.subscribe(Box::new(move |e: &FrameEvent| {
            sink.lock().unwrap().push(e.clone())
        }));
        (bus, log)
    }

    fn striped_policy() -> ExecutionPolicy {
        ExecutionPolicy {
            rdg_stripes: 4,
            aux_stripes: 2,
            cores: 8,
        }
    }

    fn run_recovering(
        frames: usize,
        seed: u64,
        faults: FrameFaults,
        retry: StageRetry,
    ) -> (Vec<FrameOutput>, Vec<FrameEvent>) {
        let cfg = AppConfig::default();
        let mut state = AppState::new(160, 160);
        let (mut bus, log) = capture_bus();
        let outs = clean_sequence(frames, seed)
            .map(|f| {
                process_frame_recovering(
                    f.index,
                    &f.image,
                    &mut state,
                    &cfg,
                    &striped_policy(),
                    7,
                    &mut bus,
                    faults,
                    &retry,
                )
                .expect("frame failed despite serial fallback")
            })
            .collect();
        let events = log.lock().unwrap().clone();
        (outs, events)
    }

    fn assert_bit_identical(nominal: &[FrameOutput], faulted: &[FrameOutput]) {
        assert_eq!(nominal.len(), faulted.len());
        for (a, b) in nominal.iter().zip(faulted) {
            assert_eq!(a.scenario, b.scenario, "frame {}", a.record.frame);
            assert_eq!(
                a.display, b.display,
                "display differs at frame {}",
                a.record.frame
            );
            assert_eq!(a.roi, b.roi, "roi differs at frame {}", a.record.frame);
        }
    }

    #[test]
    fn recovering_without_faults_matches_nominal_and_stays_silent() {
        let nominal = run(8, 52, striped_policy());
        let (faulted, events) =
            run_recovering(8, 52, FrameFaults::default(), StageRetry::default());
        assert_bit_identical(&nominal, &faulted);
        assert!(
            events.iter().all(|e| e.replay_key().is_none()),
            "fault-family events emitted without faults armed"
        );
    }

    #[test]
    fn injected_worker_panic_recovers_bit_identically() {
        let nominal = run(8, 52, striped_policy());
        let faults = FrameFaults {
            rdg_panic_jobs: 1,
            ..Default::default()
        };
        let (faulted, events) = run_recovering(8, 52, faults, StageRetry::default());
        assert_bit_identical(&nominal, &faulted);
        // every injection is matched by a terminal Recovered on its frame
        let injected: Vec<usize> = events
            .iter()
            .filter(|e| matches!(e, FrameEvent::FaultInjected { .. }))
            .map(|e| e.frame())
            .collect();
        assert!(!injected.is_empty(), "no fault ever injected");
        for f in &injected {
            assert!(
                events.iter().any(|e| matches!(
                    e,
                    FrameEvent::Recovered { frame, kind: FaultKind::WorkerPanic, .. } if frame == f
                )),
                "frame {f} has no terminal Recovered"
            );
        }
        // frames with a striped dispatch actually retried
        assert!(
            events
                .iter()
                .any(|e| matches!(e, FrameEvent::RetryAttempted { .. })),
            "panic never triggered a retry"
        );
    }

    #[test]
    fn channel_faults_beyond_retries_degrade_to_serial_bit_identically() {
        let nominal = run(8, 52, striped_policy());
        let faults = FrameFaults {
            rdg_channel_errors: 10,
            ..Default::default()
        };
        let (faulted, events) = run_recovering(8, 52, faults, StageRetry::default());
        assert_bit_identical(&nominal, &faulted);
        assert!(
            events.iter().any(|e| matches!(
                e,
                FrameEvent::DegradedMode {
                    mode: DegradeMode::SerialFallback,
                    cause: FaultKind::ChannelError,
                    ..
                }
            )),
            "exhausted retries never degraded to serial"
        );
    }

    #[test]
    fn exhausted_retries_without_fallback_error_out() {
        let cfg = AppConfig::default();
        let mut state = AppState::new(160, 160);
        let (mut bus, _log) = capture_bus();
        let faults = FrameFaults {
            rdg_channel_errors: 10,
            ..Default::default()
        };
        let retry = StageRetry {
            max_retries: 1,
            serial_fallback: false,
        };
        let mut failures = 0;
        for f in clean_sequence(8, 53) {
            match process_frame_recovering(
                f.index,
                &f.image,
                &mut state,
                &cfg,
                &striped_policy(),
                7,
                &mut bus,
                faults,
                &retry,
            ) {
                Ok(_) => {}
                Err(e) => {
                    assert!(e.stage.starts_with("RDG"), "unexpected stage {}", e.stage);
                    assert!(e.to_string().contains("failed after retries"));
                    failures += 1;
                }
            }
        }
        assert!(failures > 0, "no frame ever failed");
    }

    #[test]
    fn stage_delay_inflates_latency_and_recovers() {
        let faults = FrameFaults {
            stage_delay_ms: 5.0,
            ..Default::default()
        };
        let (outs, events) = run_recovering(3, 54, faults, StageRetry::default());
        for o in &outs {
            let delay = o
                .record
                .task_time("FAULT_DELAY")
                .expect("delay not recorded");
            assert!(delay >= 4.0, "delay only {delay} ms");
        }
        let recovered = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    FrameEvent::Recovered {
                        kind: FaultKind::StageDelay,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(recovered, 3, "one StageDelay recovery per frame expected");
    }

    #[test]
    fn dedicated_pool_is_bit_identical_to_global_pool() {
        let policy = striped_policy();
        let global = run(8, 55, policy);
        let pool = StripePool::new(2);
        let cfg = AppConfig::default();
        let mut state = AppState::new(160, 160);
        let pinned: Vec<FrameOutput> = clean_sequence(8, 55)
            .map(|f| process_frame_on(&pool, f.index, &f.image, &mut state, &cfg, &policy))
            .collect();
        assert_bit_identical(&global, &pinned);
    }

    #[test]
    fn latency_at_most_sum_of_task_times_plus_overhead() {
        for o in run(
            6,
            48,
            ExecutionPolicy {
                rdg_stripes: 2,
                aux_stripes: 2,
                cores: 8,
            },
        ) {
            let serial_sum = o.record.total_task_time();
            assert!(
                o.record.latency_ms <= serial_sum + 1.0,
                "latency {} exceeds serial sum {}",
                o.record.latency_ms,
                serial_sum
            );
        }
    }
}
