//! Sequence-level execution: profiling runs over synthetic sequences.
//!
//! A [`ProfileRun`] executes a whole sequence (or corpus) through the
//! pipeline, collecting the per-task computation-time series, ROI-size
//! covariates and scenario sequence that the Triple-C training consumes
//! (Section 7: "Computation time statistics are obtained by profiling the
//! executed application").

use crate::app::{AppConfig, AppState};
use crate::executor::{process_frame, ExecutionPolicy, FrameOutput};
use platform::trace::TraceLog;
use std::collections::BTreeMap;
use triplec::training::TaskSeries;
use xray::{SequenceConfig, SequenceGenerator};

/// Collected results of one or more profiled sequences.
#[derive(Debug, Default)]
pub struct ProfileRun {
    /// Per-frame execution records.
    pub trace: TraceLog,
    /// Per-task `(time_ms, roi_kpixels)` samples in frame order.
    pub samples: BTreeMap<&'static str, Vec<(f64, f64)>>,
    /// Scenario id per frame.
    pub scenarios: Vec<u8>,
}

impl ProfileRun {
    /// Empty run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one frame's output.
    pub fn absorb(&mut self, out: FrameOutput) {
        for &(task, ms) in &out.record.task_times {
            self.samples
                .entry(task)
                .or_default()
                .push((ms, out.roi_kpixels));
        }
        self.scenarios.push(out.scenario.id());
        self.trace.push(out.record);
    }

    /// Converts the collected samples into training series. Tasks whose
    /// cost is granularity-dependent (the RDG variants) carry the ROI
    /// covariate.
    pub fn task_series(&self) -> Vec<TaskSeries> {
        self.samples
            .iter()
            .map(|(&task, samples)| {
                let times: Vec<f64> = samples.iter().map(|&(t, _)| t).collect();
                if task == "RDG_ROI" || task == "RDG_FULL" {
                    let rois: Vec<f64> = samples.iter().map(|&(_, r)| r).collect();
                    TaskSeries::with_roi(task, times, rois)
                } else {
                    TaskSeries::new(task, times)
                }
            })
            .collect()
    }

    /// The time series of one task.
    pub fn series_of(&self, task: &str) -> Vec<f64> {
        self.samples
            .get(task)
            .map(|s| s.iter().map(|&(t, _)| t).collect())
            .unwrap_or_default()
    }
}

/// Profiles the RDG FULL task directly on every frame of a sequence
/// (offline task profiling, as used to build the paper's Table 2(a)
/// transition matrix and the Fig. 3 trace): the content-adaptive
/// fine-scale switch is applied exactly as the pipeline executor applies
/// it, but the task runs regardless of the flow-graph switches.
pub fn profile_rdg_direct(cfg: SequenceConfig, app: &AppConfig) -> Vec<f64> {
    use imaging::ridge::{rdg_full, RdgBuffers};
    use platform::profile::time_ms;

    let mut bufs = RdgBuffers::new(cfg.width, cfg.height);
    let mut fine_active = false;
    let fine_on = app.structure_threshold * app.fine_probe_factor;
    let mut series = Vec::with_capacity(cfg.frames);
    for frame in SequenceGenerator::new(cfg) {
        let probe = crate::app::structure_probe(&frame.image, app.probe_block);
        if probe > fine_on {
            fine_active = true;
        } else if probe < fine_on * 0.9 {
            fine_active = false;
        }
        let mut rdg_cfg = app.rdg.clone();
        rdg_cfg.fine_enabled = fine_active;
        let (_, ms) = time_ms(|| rdg_full(&frame.image, &rdg_cfg, &mut bufs));
        series.push(ms);
    }
    series
}

/// Runs one sequence through the pipeline with a fixed policy.
pub fn run_sequence(cfg: SequenceConfig, app: &AppConfig, policy: &ExecutionPolicy) -> ProfileRun {
    let mut run = ProfileRun::new();
    let mut state = AppState::new(cfg.width, cfg.height);
    for frame in SequenceGenerator::new(cfg) {
        let out = process_frame(frame.index, &frame.image, &mut state, app, policy);
        run.absorb(out);
    }
    run
}

/// Runs a whole corpus (e.g. the 37-sequence training set), resetting the
/// pipeline state between sequences and concatenating the profiles.
pub fn run_corpus(
    corpus: Vec<SequenceConfig>,
    app: &AppConfig,
    policy: &ExecutionPolicy,
) -> ProfileRun {
    let mut run = ProfileRun::new();
    for cfg in corpus {
        let sub = run_sequence(cfg, app, policy);
        for (task, samples) in sub.samples {
            run.samples.entry(task).or_default().extend(samples);
        }
        run.scenarios.extend(sub.scenarios);
        for r in sub.trace.records() {
            run.trace.push(r.clone());
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use xray::NoiseConfig;

    fn small(seed: u64, frames: usize) -> SequenceConfig {
        SequenceConfig {
            width: 128,
            height: 128,
            frames,
            seed,
            noise: NoiseConfig {
                quantum_scale: 0.3,
                electronic_std: 2.0,
            },
            ..Default::default()
        }
    }

    #[test]
    fn profile_collects_all_frames() {
        let run = run_sequence(
            small(1, 8),
            &AppConfig::default(),
            &ExecutionPolicy::default(),
        );
        assert_eq!(run.trace.len(), 8);
        assert_eq!(run.scenarios.len(), 8);
        assert!(!run.samples.is_empty());
    }

    #[test]
    fn core_tasks_have_full_series() {
        let run = run_sequence(
            small(2, 8),
            &AppConfig::default(),
            &ExecutionPolicy::default(),
        );
        assert_eq!(run.series_of("MKX_EXT").len(), 8);
        assert_eq!(run.series_of("CPLS_SEL").len(), 8);
        assert!(run.series_of("NOPE").is_empty());
    }

    #[test]
    fn task_series_carry_roi_covariates_for_rdg() {
        let run = run_sequence(
            small(3, 10),
            &AppConfig::default(),
            &ExecutionPolicy::default(),
        );
        let series = run.task_series();
        for s in &series {
            if s.task.starts_with("RDG") {
                assert_eq!(s.roi_kpixels.len(), s.samples.len(), "{}", s.task);
            }
        }
    }

    #[test]
    fn corpus_run_concatenates() {
        let corpus = vec![small(4, 5), small(5, 5)];
        let run = run_corpus(corpus, &AppConfig::default(), &ExecutionPolicy::default());
        assert_eq!(run.trace.len(), 10);
        assert_eq!(run.scenarios.len(), 10);
        assert_eq!(run.series_of("MKX_EXT").len(), 10);
    }
}
