//! # triplec-pipeline
//!
//! The dynamic flow-graph engine of the motion-compensated stent
//! enhancement application (Fig. 2 of the paper): [`graph`] describes the
//! static task/switch graph, [`app`] holds configuration and cross-frame
//! state, [`executor`] walks the graph per frame (measuring every task and
//! virtual-scheduling partitioned stages onto the modelled platform),
//! [`runner`] profiles whole sequences/corpora into training series, and
//! [`latency`] implements the output delay line and jitter metrics.

pub mod app;
pub mod executor;
pub mod graph;
pub mod latency;
pub mod runner;

pub use app::{structure_probe, AppConfig, AppState};
pub use executor::{process_frame, ExecutionPolicy, FrameOutput};
pub use graph::{edge_live, flow_graph, live_tasks, GraphEdge, Node, SwitchKind};
pub use latency::{jitter, jitter_reduction, DelayLine, JitterReport};
pub use runner::{run_corpus, run_sequence, ProfileRun};
