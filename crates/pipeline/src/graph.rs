//! The static flow graph of Fig. 2.
//!
//! An explicit description of the motion-compensated feature-enhancement
//! graph: task nodes, switch nodes and data edges. The executor
//! ([`crate::executor`]) interprets this structure; the bandwidth
//! experiments print its edges with their MByte/s annotations.

use triplec::scenario::Scenario;

/// A node of the flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// The camera input stream.
    Input,
    /// A processing task (Fig. 2 naming).
    Task(&'static str),
    /// A data-dependent switch.
    Switch(SwitchKind),
    /// The display output.
    Output,
}

/// The three data-dependent switches of the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchKind {
    /// "RDG DETECTION": run ridge detection only when dominant structures
    /// are present.
    RdgDetection,
    /// "ROI ESTIMATED": process at ROI granularity once a region of
    /// interest is being tracked.
    RoiEstimated,
    /// "REG. SUCCESSFUL": run enhancement and zoom only after a successful
    /// temporal registration.
    RegSuccessful,
}

/// A directed edge with the switch conditions under which it is live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEdge {
    pub from: Node,
    pub to: Node,
    /// The switch conditions gating this edge (all must hold; empty =
    /// always live).
    pub conditions: Vec<(SwitchKind, bool)>,
}

/// The full Fig. 2 graph.
pub fn flow_graph() -> Vec<GraphEdge> {
    use Node::*;
    use SwitchKind::*;
    vec![
        GraphEdge {
            from: Input,
            to: Switch(RdgDetection),
            conditions: vec![],
        },
        GraphEdge {
            from: Switch(RdgDetection),
            to: Task("RDG_FULL"),
            conditions: vec![(RdgDetection, true), (RoiEstimated, false)],
        },
        GraphEdge {
            from: Switch(RdgDetection),
            to: Task("RDG_ROI"),
            conditions: vec![(RdgDetection, true), (RoiEstimated, true)],
        },
        GraphEdge {
            from: Switch(RdgDetection),
            to: Task("MKX_EXT"),
            conditions: vec![(RdgDetection, false)],
        },
        GraphEdge {
            from: Task("RDG_FULL"),
            to: Task("MKX_EXT"),
            conditions: vec![(RdgDetection, true), (RoiEstimated, false)],
        },
        GraphEdge {
            from: Task("RDG_ROI"),
            to: Task("MKX_EXT"),
            conditions: vec![(RdgDetection, true), (RoiEstimated, true)],
        },
        GraphEdge {
            from: Task("MKX_EXT"),
            to: Task("CPLS_SEL"),
            conditions: vec![],
        },
        GraphEdge {
            from: Task("CPLS_SEL"),
            to: Task("REG"),
            conditions: vec![],
        },
        GraphEdge {
            from: Task("REG"),
            to: Switch(RoiEstimated),
            conditions: vec![],
        },
        GraphEdge {
            from: Switch(RoiEstimated),
            to: Task("ROI_EST"),
            conditions: vec![(RoiEstimated, true)],
        },
        GraphEdge {
            from: Task("ROI_EST"),
            to: Task("GW_EXT"),
            conditions: vec![(RoiEstimated, true)],
        },
        GraphEdge {
            from: Task("GW_EXT"),
            to: Switch(RegSuccessful),
            conditions: vec![(RoiEstimated, true)],
        },
        GraphEdge {
            from: Switch(RoiEstimated),
            to: Switch(RegSuccessful),
            conditions: vec![(RoiEstimated, false)],
        },
        GraphEdge {
            from: Switch(RegSuccessful),
            to: Task("ENH"),
            conditions: vec![(RegSuccessful, true)],
        },
        GraphEdge {
            from: Task("ENH"),
            to: Task("ZOOM"),
            conditions: vec![(RegSuccessful, true)],
        },
        GraphEdge {
            from: Task("ZOOM"),
            to: Output,
            conditions: vec![(RegSuccessful, true)],
        },
        GraphEdge {
            from: Switch(RegSuccessful),
            to: Output,
            conditions: vec![(RegSuccessful, false)],
        },
    ]
}

/// Whether an edge is live under a scenario.
pub fn edge_live(edge: &GraphEdge, scenario: Scenario) -> bool {
    edge.conditions.iter().all(|&(kind, v)| match kind {
        SwitchKind::RdgDetection => scenario.rdg_active == v,
        SwitchKind::RoiEstimated => scenario.roi_estimated == v,
        SwitchKind::RegSuccessful => scenario.reg_successful == v,
    })
}

/// The task nodes reachable (live) under a scenario, in graph order.
pub fn live_tasks(scenario: Scenario) -> Vec<&'static str> {
    flow_graph()
        .iter()
        .filter(|e| edge_live(e, scenario))
        .filter_map(|e| match e.to {
            Node::Task(t) => Some(t),
            _ => None,
        })
        .fold(Vec::new(), |mut acc, t| {
            if !acc.contains(&t) {
                acc.push(t);
            }
            acc
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_all_nine_tasks() {
        let edges = flow_graph();
        for t in triplec::TASKS {
            let present = edges
                .iter()
                .any(|e| e.to == Node::Task(t) || e.from == Node::Task(t));
            assert!(present, "task {t} missing from graph");
        }
    }

    #[test]
    fn graph_live_tasks_match_scenario_state_table() {
        // the explicit graph and the scenario state table in triplec must
        // agree for every one of the eight scenarios
        for s in Scenario::all() {
            let mut from_graph = live_tasks(s);
            let mut from_table = s.active_tasks();
            from_graph.sort_unstable();
            from_table.sort_unstable();
            assert_eq!(from_graph, from_table, "scenario {:?}", s);
        }
    }

    #[test]
    fn unconditional_edges_always_live() {
        let edges = flow_graph();
        for s in Scenario::all() {
            for e in edges.iter().filter(|e| e.conditions.is_empty()) {
                assert!(edge_live(e, s));
            }
        }
    }

    #[test]
    fn output_reachable_in_every_scenario() {
        for s in Scenario::all() {
            let reached = flow_graph()
                .iter()
                .any(|e| e.to == Node::Output && edge_live(e, s));
            assert!(reached, "no output edge live in {:?}", s);
        }
    }

    #[test]
    fn rdg_variants_mutually_exclusive() {
        for s in Scenario::all() {
            let tasks = live_tasks(s);
            let full = tasks.contains(&"RDG_FULL");
            let roi = tasks.contains(&"RDG_ROI");
            assert!(!(full && roi), "both RDG variants live in {:?}", s);
        }
    }
}
