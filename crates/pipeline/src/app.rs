//! Application state and configuration of the stent-enhancement pipeline.

use imaging::couples::{Couple, CplsConfig};
use imaging::enhance::{EnhConfig, EnhState};
use imaging::guidewire::{GwConfig, GwScratch};
use imaging::image::{ImageU16, Roi};
use imaging::markers::{MkxBuffers, MkxConfig};
use imaging::parallel::ParallelRdgBuffers;
use imaging::registration::RegConfig;
use imaging::ridge::{RdgBuffers, RdgConfig};
use imaging::roi_est::RoiEstConfig;
use imaging::zoom::{ZoomConfig, ZoomScratch};
use triplec::scenario::ScenarioScript;

/// Configuration of all pipeline tasks plus the switch thresholds.
#[derive(Debug, Clone)]
pub struct AppConfig {
    pub rdg: RdgConfig,
    pub mkx: MkxConfig,
    pub cpls: CplsConfig,
    pub reg: RegConfig,
    pub roi_est: RoiEstConfig,
    pub gw: GwConfig,
    pub enh: EnhConfig,
    pub zoom: ZoomConfig,
    /// Structure-probe threshold of the "RDG DETECTION" switch: frames
    /// whose block-averaged gradient measure exceeds it run ridge
    /// detection. Calibrated for the synthetic sequences (see tests).
    pub structure_threshold: f64,
    /// Block size of the noise-suppressing probe.
    pub probe_block: usize,
    /// Consecutive registration failures before the tracking reference is
    /// dropped (forces re-acquisition).
    pub max_reg_failures: usize,
    /// Structure-probe multiple above which RDG's fine refinement scales
    /// run (the coarse-to-fine content adaptation).
    pub fine_probe_factor: f64,
    /// Optional scripted scenario storm: while a script covers a frame,
    /// the three flow-graph switches are forced to the scripted state
    /// instead of being derived from the content (used by trace-driven
    /// workloads to thrash the scenario space on a schedule). `None`
    /// (the default) leaves the data-dependent switches untouched.
    pub scenario_script: Option<ScenarioScript>,
}

impl Default for AppConfig {
    fn default() -> Self {
        Self {
            rdg: RdgConfig::default(),
            mkx: MkxConfig::default(),
            cpls: CplsConfig::default(),
            reg: RegConfig::default(),
            roi_est: RoiEstConfig::default(),
            gw: GwConfig::default(),
            enh: EnhConfig::default(),
            zoom: ZoomConfig::default(),
            structure_threshold: 26.0,
            probe_block: 4,
            max_reg_failures: 5,
            fine_probe_factor: 1.25,
            scenario_script: None,
        }
    }
}

/// Noise-robust structure probe for the RDG switch: block-averages the
/// frame (suppressing quantum noise by the block factor) and measures the
/// mean absolute gradient of the reduced image. Dominant curvilinear
/// structures (contrast-filled vessels) survive the averaging; noise does
/// not.
pub fn structure_probe(frame: &ImageU16, block: usize) -> f64 {
    assert!(block > 0);
    let (w, h) = frame.dims();
    let bw = w / block;
    let bh = h / block;
    if bw < 2 || bh < 2 {
        return 0.0;
    }
    // block-average
    let mut small = vec![0.0f64; bw * bh];
    for by in 0..bh {
        for bx in 0..bw {
            let mut sum = 0.0f64;
            for y in 0..block {
                for x in 0..block {
                    sum += frame.get(bx * block + x, by * block + y) as f64;
                }
            }
            small[by * bw + bx] = sum / (block * block) as f64;
        }
    }
    // mean absolute gradient
    let mut total = 0.0f64;
    let mut count = 0usize;
    for y in 0..bh - 1 {
        for x in 0..bw - 1 {
            let v = small[y * bw + x];
            total += (small[y * bw + x + 1] - v).abs() + (small[(y + 1) * bw + x] - v).abs();
            count += 2;
        }
    }
    total / count as f64
}

/// Mutable state of the pipeline, carried across frames.
pub struct AppState {
    /// RDG working buffers (frame-sized, reused).
    pub rdg_bufs: RdgBuffers,
    /// Striped-RDG buffers (per-stripe scratch + recycled outputs) of the
    /// main detection pass.
    pub par_rdg: ParallelRdgBuffers,
    /// Striped-RDG buffers of the guide-wire verification pass (kept
    /// separate: its ROI geometry differs from the detection pass, and
    /// sharing one set would reallocate the stripe scratch every frame).
    pub par_gw: ParallelRdgBuffers,
    /// MKX working buffers.
    pub mkx_bufs: MkxBuffers,
    /// Temporal-integration state of ENH.
    pub enh_state: EnhState,
    /// Guide-wire DP scratch, reused across frames.
    pub gw_scratch: GwScratch,
    /// Reusable ENH readout image (re-created only when the ROI geometry
    /// changes).
    pub enh_view: Option<ImageU16>,
    /// ZOOM interpolation scratch (tap plans + pooled source-row cache).
    pub zoom_scratch: ZoomScratch,
    /// Reference frame for registration (set on couple acquisition).
    pub reference_frame: Option<ImageU16>,
    /// Reference marker couple.
    pub reference_couple: Option<Couple>,
    /// Couple selected in the previous frame (temporal-consistency term).
    pub prev_couple: Option<Couple>,
    /// ROI being tracked (drives the "ROI ESTIMATED" switch).
    pub current_roi: Option<Roi>,
    /// Magnitude of the last registered motion, pixels/frame.
    pub recent_motion: f64,
    /// Consecutive registration failures.
    pub reg_failures: usize,
    /// Whether RDG's fine refinement scales are currently active (the
    /// coarse-to-fine switch, with hysteresis against probe noise).
    pub fine_active: bool,
}

impl AppState {
    /// Creates pipeline state for `width x height` frames.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            rdg_bufs: RdgBuffers::new(width, height),
            par_rdg: ParallelRdgBuffers::new(),
            par_gw: ParallelRdgBuffers::new(),
            mkx_bufs: MkxBuffers::new(width, height),
            enh_state: EnhState::new(width, height),
            gw_scratch: GwScratch::new(),
            enh_view: None,
            zoom_scratch: ZoomScratch::new(),
            reference_frame: None,
            reference_couple: None,
            prev_couple: None,
            current_roi: None,
            recent_motion: 0.0,
            reg_failures: 0,
            fine_active: false,
        }
    }

    /// Drops the tracking reference (couple lost / too many failures).
    pub fn lose_tracking(&mut self) {
        self.reference_frame = None;
        self.reference_couple = None;
        self.current_roi = None;
        self.reg_failures = 0;
        self.enh_state.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::image::Image;

    #[test]
    fn probe_separates_structured_from_flat() {
        let flat: ImageU16 = Image::filled(128, 128, 2000);
        let structured = Image::from_fn(128, 128, |x, y| {
            let d = (x as f32 - y as f32).abs() / 2.0;
            (2000.0 - 600.0 * (-d * d / 8.0).exp()) as u16
        });
        let pf = structure_probe(&flat, 4);
        let ps = structure_probe(&structured, 4);
        assert!(ps > 5.0 * (pf + 1.0), "structured {ps} flat {pf}");
    }

    #[test]
    fn probe_suppresses_noise() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        let noisy = Image::from_fn(128, 128, |_, _| {
            (2000.0 + rng.gen_range(-150.0..150.0)) as u16
        });
        let raw_grad = imaging::ridge::quick_structure_probe(&noisy, 1);
        let blocked = structure_probe(&noisy, 4);
        assert!(blocked < raw_grad / 2.0, "blocked {blocked} raw {raw_grad}");
    }

    #[test]
    fn lose_tracking_clears_state() {
        let mut s = AppState::new(32, 32);
        s.current_roi = Some(Roi::new(0, 0, 8, 8));
        s.reg_failures = 3;
        s.recent_motion = 5.0;
        s.lose_tracking();
        assert!(s.current_roi.is_none());
        assert!(s.reference_couple.is_none());
        assert_eq!(s.reg_failures, 0);
        assert_eq!(s.enh_state.frames_integrated(), 0);
    }

    #[test]
    fn probe_handles_tiny_frames() {
        let tiny: ImageU16 = Image::filled(4, 4, 100);
        assert_eq!(structure_probe(&tiny, 4), 0.0);
    }
}
