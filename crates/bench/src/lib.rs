//! # triplec-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md's experiment index):
//!
//! * [`fig2`] — inter-task bandwidth annotations of the flow graph;
//! * [`fig3`] — the RDG computation-time trace + EWMA decomposition;
//! * [`fig5`] — intra-task swap bandwidth from cache overflow;
//! * [`fig6`] — latency vs. ROI size, serial vs. striped;
//! * [`fig7`] — straightforward vs. semi-automatic-parallel latency;
//! * [`table1`] — per-task memory requirements;
//! * [`table2`] — the RDG Markov matrix + model summary;
//! * [`accuracy_exp`] — the 97% computation-time accuracy headline;
//! * [`bandwidth_accuracy`] — the 90% bandwidth-model accuracy headline;
//! * [`ablation`] — alpha / state-count / decomposition / quantization /
//!   Markov order / online training;
//! * [`partitioning`] — data- vs. function-parallel scheduling (the
//!   paper's \[17\] comparison).
//!
//! Run everything with `cargo run --release -p triplec-bench --bin repro -- all`.

pub mod ablation;
pub mod accuracy_exp;
pub mod bandwidth_accuracy;
pub mod config;
pub mod detection;
pub mod export;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod partitioning;
pub mod qos_exp;
pub mod report;
pub mod table1;
pub mod table2;

pub use config::ExperimentConfig;
