//! QoS control under platform pressure (Section 1's "QoS control with
//! shared resources"): the same dynamic sequence is run with progressively
//! fewer available cores (other functions occupying the platform). With
//! enough cores the manager holds the budget by repartitioning alone; when
//! even maximal striping cannot, the QoS controller trades algorithmic
//! quality (fine RDG scales, zoom resolution) for latency.

use crate::config::ExperimentConfig;
use crate::fig7::train_model;
use crate::report::table;
use pipeline::app::AppConfig;
use runtime::manager::{ManagerConfig, ResourceManager};
use runtime::qos::{QosController, QosLevel};
use runtime::run::run_managed_sequence_qos;
use xray::{HiddenEpisode, ScenarioConfig, SequenceConfig};

/// One pressure point.
#[derive(Debug, Clone)]
pub struct QosPoint {
    /// Cores available to the application.
    pub cores: usize,
    /// Mean effective latency, ms.
    pub mean_latency: f64,
    /// Fraction of frames spent below full quality.
    pub degraded_fraction: f64,
    /// Frames whose plan was infeasible even fully parallel.
    pub infeasible: usize,
}

/// Runs the QoS pressure sweep.
pub fn run(cfg: &ExperimentConfig) -> (Vec<QosPoint>, String) {
    let app = AppConfig::default();
    let model_template = || train_model(cfg, &app);
    let frames = cfg.fig7_frames.min(100);
    let seq = SequenceConfig {
        width: cfg.size,
        height: cfg.size,
        frames,
        seed: 777,
        scenario: ScenarioConfig {
            bolus: vec![HiddenEpisode {
                start: frames / 4,
                len: frames / 3,
            }],
            ..Default::default()
        },
        ..Default::default()
    };

    // a fixed, tight budget shared by all pressure points: what the
    // 8-core platform can comfortably sustain
    let mut results = Vec::new();
    let mut reference_budget = None;
    for &cores in &[8usize, 4, 2, 1] {
        let model = model_template();
        let mut manager = ResourceManager::new(
            model,
            ManagerConfig {
                cores,
                ..Default::default()
            },
        );
        if let Some(b) = reference_budget {
            manager.set_budget(b);
        }
        let mut controller = QosController::new(3, 10);
        let run = run_managed_sequence_qos(seq.clone(), &app, &mut manager, &mut controller);
        if reference_budget.is_none() {
            reference_budget = manager.budget();
        }
        let lat = run.inner.trace.latencies();
        let mean = lat.iter().sum::<f64>() / lat.len() as f64;
        let degraded = run.levels.iter().filter(|&&l| l != QosLevel::Full).count() as f64
            / run.levels.len() as f64;
        results.push(QosPoint {
            cores,
            mean_latency: mean,
            degraded_fraction: degraded,
            infeasible: manager.infeasible_frames(),
        });
    }

    let mut out = String::new();
    out.push_str(&format!(
        "QoS control under shrinking core budgets ({} frames at {}x{})\n\n",
        frames, cfg.size, cfg.size
    ));
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.cores),
                format!("{:.1}", p.mean_latency),
                format!("{:.0}%", p.degraded_fraction * 100.0),
                format!("{}", p.infeasible),
            ]
        })
        .collect();
    out.push_str(&table(
        &[
            "cores",
            "mean latency ms",
            "frames below full quality",
            "infeasible plans",
        ],
        &rows,
    ));
    out.push_str(
        "\nwith ample cores the budget holds by repartitioning alone; under\n\
         pressure the controller trades fine RDG scales / zoom resolution for\n\
         latency instead of dropping analysis tasks (Section 3: tasks \"cannot\n\
         be easily switched off\").\n",
    );
    (results, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_sweep_produces_all_points() {
        let cfg = ExperimentConfig {
            size: 128,
            fig7_frames: 24,
            ..Default::default()
        };
        let (r, text) = run(&cfg);
        assert_eq!(r.len(), 4);
        assert!(text.contains("cores"));
        // fewer cores can only raise (or keep) infeasibility
        assert!(r[3].infeasible >= r[0].infeasible, "{:?}", r);
    }
}
