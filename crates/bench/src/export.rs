//! CSV export of experiment data (for external plotting).
//!
//! `repro <exp> --csv <dir>` writes the figure's underlying series next to
//! the printed report, one file per curve set, with a header row.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A CSV writer rooted at an output directory.
#[derive(Debug, Clone)]
pub struct CsvExporter {
    dir: PathBuf,
}

impl CsvExporter {
    /// Creates the exporter (and the directory).
    pub fn new(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    /// Writes named columns of equal length as `<name>.csv`. Shorter
    /// columns are padded with empty cells.
    pub fn write_columns(&self, name: &str, columns: &[(&str, &[f64])]) -> io::Result<PathBuf> {
        let path = self.dir.join(format!("{name}.csv"));
        let mut f = io::BufWriter::new(std::fs::File::create(&path)?);
        let header: Vec<&str> = columns.iter().map(|(h, _)| *h).collect();
        writeln!(f, "{}", header.join(","))?;
        let rows = columns.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
        for i in 0..rows {
            let cells: Vec<String> = columns
                .iter()
                .map(|(_, c)| c.get(i).map(|v| format!("{v}")).unwrap_or_default())
                .collect();
            writeln!(f, "{}", cells.join(","))?;
        }
        f.flush()?;
        Ok(path)
    }

    /// Writes string rows as `<name>.csv` with the given header.
    pub fn write_rows(
        &self,
        name: &str,
        header: &[&str],
        rows: &[Vec<String>],
    ) -> io::Result<PathBuf> {
        let path = self.dir.join(format!("{name}.csv"));
        let mut f = io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{}", header.join(","))?;
        for row in rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()?;
        Ok(path)
    }
}

/// Parses `--csv <dir>` from the argument list.
pub fn csv_dir_from_args(args: &[String]) -> Option<PathBuf> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            return it.next().map(PathBuf::from);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        let d = std::env::temp_dir().join("triplec_csv_tests");
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn columns_round_trip() {
        let e = CsvExporter::new(&tmp()).unwrap();
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        let p = e.write_columns("test", &[("a", &a), ("b", &b)]).unwrap();
        let text = std::fs::read_to_string(p).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,10");
        assert_eq!(lines[3], "3,");
    }

    #[test]
    fn rows_round_trip() {
        let e = CsvExporter::new(&tmp()).unwrap();
        let p = e
            .write_rows("rows", &["task", "ms"], &[vec!["RDG".into(), "40".into()]])
            .unwrap();
        let text = std::fs::read_to_string(p).unwrap();
        assert!(text.contains("task,ms"));
        assert!(text.contains("RDG,40"));
    }

    #[test]
    fn csv_flag_parsed() {
        let args: Vec<String> = ["fig7", "--csv", "/tmp/x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(csv_dir_from_args(&args), Some(PathBuf::from("/tmp/x")));
        assert_eq!(csv_dir_from_args(&["fig7".to_string()]), None);
    }
}
