//! Data-parallel vs. function-parallel partitioning (the comparison the
//! paper cites as \[17\], van der Tol et al.: "For a comparison between
//! data-parallel partitioning and function-parallel partitioning, we refer
//! to \[17\]", Section 6).
//!
//! The same measured per-frame task times are scheduled three ways:
//! serial, data-parallel (striping the stripable tasks) and
//! function-parallel (a four-stage pipeline, one core per stage). The
//! expected shape: functional partitioning multiplies *throughput* but
//! cannot cut a single frame's *latency*, which is why the paper stripes
//! RDG for its latency-critical application.

use crate::config::ExperimentConfig;
use crate::report::table;
use pipeline::app::AppConfig;
use pipeline::executor::{ExecutionPolicy, STRIPABLE_TASKS};
use pipeline::runner::run_sequence;
use platform::schedule::{pipelined_schedule, stage_makespan, VirtualJob};
use platform::trace::summary_of;
use xray::SequenceConfig;

/// The four pipeline stages of the functional partitioning.
const STAGES: [&[&str]; 4] = [
    &["RDG_FULL", "RDG_ROI"],
    &["MKX_EXT", "CPLS_SEL", "REG"],
    &["ROI_EST", "GW_EXT"],
    &["ENH", "ZOOM"],
];

/// Structured result.
#[derive(Debug, Clone)]
pub struct PartitioningResult {
    /// Mean per-frame latency, ms: serial / data-parallel / functional.
    pub mean_latency: [f64; 3],
    /// Achievable throughput, frames/s: serial / data-parallel / functional.
    pub throughput: [f64; 3],
}

/// Runs the partitioning comparison.
pub fn run(cfg: &ExperimentConfig) -> (PartitioningResult, String) {
    let app = AppConfig::default();
    let seq = SequenceConfig {
        width: cfg.size,
        height: cfg.size,
        frames: 60,
        seed: 4242,
        ..Default::default()
    };
    let profile = run_sequence(seq, &app, &ExecutionPolicy::default());

    // per-frame stage times from the serial profile
    let frames: Vec<Vec<f64>> = profile
        .trace
        .records()
        .iter()
        .map(|r| {
            STAGES
                .iter()
                .map(|stage| stage.iter().filter_map(|t| r.task_time(t)).sum::<f64>())
                .collect()
        })
        .collect();

    // (1) serial: everything on one core
    let serial_lat: Vec<f64> = frames.iter().map(|f| f.iter().sum::<f64>()).collect();
    let serial_mean = summary_of(&serial_lat).mean;
    let serial_fps = 1000.0 / serial_mean;

    // (2) data-parallel: stripable work divided over 4 cores (ideal-ish,
    // with the executor's measured striping efficiency)
    let data_lat: Vec<f64> = profile
        .trace
        .records()
        .iter()
        .map(|r| {
            let stripable: f64 = r
                .task_times
                .iter()
                .filter(|(t, _)| STRIPABLE_TASKS.contains(t))
                .map(|&(_, ms)| ms)
                .sum();
            let serial: f64 = r
                .task_times
                .iter()
                .filter(|(t, _)| !STRIPABLE_TASKS.contains(t))
                .map(|&(_, ms)| ms)
                .sum();
            let jobs: Vec<VirtualJob> = (0..4)
                .map(|c| VirtualJob {
                    core: c,
                    duration_ms: stripable / (4.0 * 0.9),
                })
                .collect();
            stage_makespan(8, &jobs) + serial
        })
        .collect();
    let data_mean = summary_of(&data_lat).mean;
    let data_fps = 1000.0 / data_mean;

    // (3) function-parallel: four stages pipelined on four cores.
    // Throughput is measured at saturation (back-to-back arrivals);
    // latency at the application's 30 Hz arrival rate, where the pipe
    // does not queue (otherwise arrival queueing, not processing, would
    // dominate the latency number).
    let saturated = pipelined_schedule(&frames, &[0, 1, 2, 3], 8, 0.0);
    let func_fps = saturated.throughput_fps;
    let paced = pipelined_schedule(&frames, &[0, 1, 2, 3], 8, 1000.0 / 30.0);
    let func_mean = summary_of(&paced.latencies).mean;

    let mut out = String::new();
    out.push_str(&format!(
        "Partitioning comparison over {} frames at {}x{} (4 cores each)\n\n",
        frames.len(),
        cfg.size,
        cfg.size
    ));
    let rows = vec![
        vec![
            "serial".into(),
            format!("{serial_mean:.2}"),
            format!("{serial_fps:.1}"),
        ],
        vec![
            "data-parallel (4-stripe)".into(),
            format!("{data_mean:.2}"),
            format!("{data_fps:.1}"),
        ],
        vec![
            "function-parallel (4-stage pipe)".into(),
            format!("{func_mean:.2}"),
            format!("{func_fps:.1}"),
        ],
    ];
    out.push_str(&table(
        &["partitioning", "mean latency ms", "throughput fps"],
        &rows,
    ));
    out.push_str(
        "\nshape (van der Tol et al., the paper's [17]): functional partitioning\n\
         raises throughput but not single-frame latency; data partitioning cuts\n\
         latency — which is why the paper stripes RDG for its latency-critical\n\
         eye-hand-coordination requirement.\n",
    );

    (
        PartitioningResult {
            mean_latency: [serial_mean, data_mean, func_mean],
            throughput: [serial_fps, data_fps, func_fps],
        },
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            size: 128,
            ..Default::default()
        }
    }

    #[test]
    fn data_parallel_cuts_latency() {
        let (r, _) = run(&tiny());
        assert!(
            r.mean_latency[1] < r.mean_latency[0],
            "data-parallel {:.2} not below serial {:.2}",
            r.mean_latency[1],
            r.mean_latency[0]
        );
    }

    #[test]
    fn functional_raises_throughput_not_latency() {
        let (r, _) = run(&tiny());
        // throughput strictly better than serial
        assert!(
            r.throughput[2] > r.throughput[0],
            "functional fps {:.1} not above serial {:.1}",
            r.throughput[2],
            r.throughput[0]
        );
        // latency no better than serial (pipeline cannot shorten a frame)
        assert!(
            r.mean_latency[2] >= r.mean_latency[0] * 0.95,
            "functional latency {:.2} below serial {:.2}",
            r.mean_latency[2],
            r.mean_latency[0]
        );
    }
}
