//! Fig. 2 — the flow graph with inter-task bandwidth annotations
//! (MByte/s at 1024x1024 px, 2 B/px, 30 Hz).

use crate::report::{mbs, table};
use triplec::bandwidth_model::{scenario_edges, scenario_inter_task_bandwidth, FRAME_RATE_HZ};
use triplec::memory_model::FrameGeometry;
use triplec::scenario::Scenario;

/// Structured result: per-scenario total inter-task bandwidth, bytes/s.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// `(scenario id, total bandwidth bytes/s)` for all eight scenarios.
    pub per_scenario: Vec<(u8, f64)>,
    /// Bandwidth of the worst-case scenario.
    pub worst_case: f64,
    /// Bandwidth of the best-case scenario.
    pub best_case: f64,
}

/// Runs the Fig. 2 analysis at the paper geometry.
pub fn run(roi_fraction: f64) -> (Fig2Result, String) {
    let geom = FrameGeometry::PAPER;
    let mut out = String::new();
    out.push_str("Fig. 2 — inter-task bandwidth annotations (MB/s, 1024x1024 @ 30 Hz)\n\n");

    // the worst-case scenario edge list, like the paper's figure
    let worst = Scenario::worst_case();
    let rows: Vec<Vec<String>> = scenario_edges(worst, geom, roi_fraction)
        .iter()
        .map(|e| {
            vec![
                e.from.to_string(),
                e.to.to_string(),
                mbs(e.bandwidth(FRAME_RATE_HZ)),
            ]
        })
        .collect();
    out.push_str("Worst-case scenario edges (paper annotates 15-150 MB/s on this graph):\n");
    out.push_str(&table(&["from", "to", "MB/s"], &rows));
    out.push('\n');

    let mut per_scenario = Vec::with_capacity(8);
    let mut rows = Vec::with_capacity(8);
    for s in Scenario::all() {
        let bw = scenario_inter_task_bandwidth(s, geom, roi_fraction);
        per_scenario.push((s.id(), bw));
        rows.push(vec![
            format!("{}", s.id()),
            format!("{}", s.rdg_active as u8),
            format!("{}", s.roi_estimated as u8),
            format!("{}", s.reg_successful as u8),
            mbs(bw),
        ]);
    }
    out.push_str("All eight scenarios (the three switch statements of Section 5):\n");
    out.push_str(&table(&["id", "RDG", "ROI", "REG", "total MB/s"], &rows));

    let result = Fig2Result {
        per_scenario,
        worst_case: scenario_inter_task_bandwidth(worst, geom, roi_fraction),
        best_case: scenario_inter_task_bandwidth(Scenario::best_case(), geom, roi_fraction),
    };
    out.push_str(&format!(
        "\nworst-case {} MB/s vs best-case {} MB/s ({}x)\n",
        mbs(result.worst_case),
        mbs(result.best_case),
        (result.worst_case / result.best_case.max(1.0)).round()
    ));
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_scenarios_reported() {
        let (r, text) = run(0.1);
        assert_eq!(r.per_scenario.len(), 8);
        assert!(text.contains("MB/s"));
    }

    #[test]
    fn worst_beats_best() {
        let (r, _) = run(0.1);
        assert!(r.worst_case > 2.0 * r.best_case);
    }

    #[test]
    fn worst_case_in_paper_ballpark() {
        // the paper's Fig. 2 annotations sum to roughly 450-700 MB/s for
        // the full graph; our implementation-derived edges should land in
        // the same order of magnitude
        let (r, _) = run(0.1);
        let mbs = r.worst_case / 1e6;
        assert!(mbs > 100.0 && mbs < 2000.0, "worst case {mbs} MB/s");
    }
}
