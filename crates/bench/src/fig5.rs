//! Fig. 5 — intra-task bandwidth of RDG FULL due to limited cache storage.
//!
//! The space-time buffer occupation model predicts the swap traffic
//! between the L2 and external memory per subtask pass; the trace-driven
//! cache simulation "measures" it. Both run at the paper's platform
//! parameters (4 MB L2, 64 B lines).

use crate::report::{mbs, table};
use platform::arch::ArchModel;
use platform::spacetime::simulate_traffic;
use triplec::bandwidth_model::{
    enh_access_model, intra_task_traffic, rdg_access_model, zoom_access_model, FRAME_RATE_HZ,
};
use triplec::memory_model::FrameGeometry;

/// Structured result of the Fig. 5 analysis.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Predicted RDG FULL swap traffic, bytes/frame.
    pub rdg_predicted: u64,
    /// Simulated RDG FULL swap traffic, bytes/frame.
    pub rdg_simulated: u64,
    /// Model-vs-simulation accuracy for RDG.
    pub rdg_accuracy: f64,
    /// Predicted intra-task bandwidth of RDG at 30 Hz, bytes/s.
    pub rdg_bandwidth: f64,
}

/// Runs the Fig. 5 analysis.
pub fn run() -> (Fig5Result, String) {
    let arch = ArchModel::default();
    let geom = FrameGeometry::PAPER;
    let mut out = String::new();
    out.push_str("Fig. 5 — intra-task bandwidth from cache overflow (4 MB L2, 1024x1024)\n\n");

    let rdg = rdg_access_model(geom, 3);
    let predicted = intra_task_traffic(&rdg, arch.l2.capacity);
    let simulated = simulate_traffic(&rdg, arch.l2);

    let mut rows = Vec::new();
    for (p, s) in predicted.passes.iter().zip(simulated.passes.iter()) {
        rows.push(vec![
            p.label.to_string(),
            mbs(p.fetch_bytes as f64),
            mbs(p.writeback_bytes as f64),
            mbs(s.fetch_bytes as f64),
            mbs(s.writeback_bytes as f64),
        ]);
    }
    out.push_str("RDG FULL subtask passes (MB/frame):\n");
    out.push_str(&table(
        &["pass", "pred fetch", "pred wb", "sim fetch", "sim wb"],
        &rows,
    ));

    let rdg_predicted = predicted.total_bytes();
    let rdg_simulated = simulated.total_bytes();
    let rdg_accuracy = triplec::accuracy(rdg_predicted as f64, rdg_simulated as f64);
    let rdg_bandwidth = predicted.bandwidth(FRAME_RATE_HZ);
    out.push_str(&format!(
        "\nRDG FULL swap traffic: predicted {} MB/frame, simulated {} MB/frame \
         (model accuracy {:.1}%)\nRDG FULL intra-task bandwidth at 30 Hz: {} MB/s\n",
        mbs(rdg_predicted as f64),
        mbs(rdg_simulated as f64),
        rdg_accuracy * 100.0,
        mbs(rdg_bandwidth),
    ));

    // the other overflow tasks of Section 5
    let mut rows = Vec::new();
    for (name, model) in [
        ("ENH", enh_access_model(geom, 0.25)),
        ("ZOOM", zoom_access_model(geom, 0.25, geom.pixels() / 4)),
    ] {
        let p = intra_task_traffic(&model, arch.l2.capacity);
        let s = simulate_traffic(&model, arch.l2);
        rows.push(vec![
            name.to_string(),
            mbs(p.total_bytes() as f64),
            mbs(s.total_bytes() as f64),
            format!(
                "{:.1}%",
                triplec::accuracy(p.total_bytes() as f64, s.total_bytes() as f64) * 100.0
            ),
            mbs(p.bandwidth(FRAME_RATE_HZ)),
        ]);
    }
    out.push_str("\nOther tasks exceeding the L2 (Section 5):\n");
    out.push_str(&table(
        &[
            "task",
            "pred MB/frame",
            "sim MB/frame",
            "accuracy",
            "BW MB/s @30Hz",
        ],
        &rows,
    ));

    (
        Fig5Result {
            rdg_predicted,
            rdg_simulated,
            rdg_accuracy,
            rdg_bandwidth,
        },
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdg_overflow_traffic_is_substantial() {
        let (r, _) = run();
        // RDG intermediates are ~28 MB at 1024^2: far beyond 4 MB L2, so
        // swap traffic must exceed the compulsory input+output (~8 MB)
        assert!(
            r.rdg_predicted > 20 * 1024 * 1024,
            "predicted {}",
            r.rdg_predicted
        );
    }

    #[test]
    fn model_matches_simulation_to_90_percent() {
        // the paper's headline for the cache/bandwidth model: ~90% accuracy
        let (r, _) = run();
        assert!(
            r.rdg_accuracy > 0.85,
            "model accuracy {:.3} below the paper's 90% band",
            r.rdg_accuracy
        );
    }

    #[test]
    fn report_mentions_all_passes() {
        let (_, text) = run();
        assert!(text.contains("A: convert"));
        assert!(text.contains("C: threshold+suppress"));
        assert!(text.contains("ENH"));
    }
}
