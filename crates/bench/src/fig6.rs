//! Fig. 6 — effective latency vs. Region-Of-Interest size, for the serial
//! and striped-parallel RDG partitionings, with the linear growth fit
//! (Eq. 3: the paper reports `y = 0.067 x + 20.6` on its platform).

use crate::config::ExperimentConfig;
use crate::report::table;
use imaging::image::Roi;
use imaging::ridge::{rdg_roi, rdg_stripe, RdgBuffers, RdgConfig};
use platform::profile::time_ms;
use platform::schedule::{stage_makespan, VirtualJob};
use triplec::linear::LinearModel;
use xray::{SequenceConfig, SequenceGenerator};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// ROI size, kilopixels.
    pub roi_kpixels: f64,
    /// Effective latency per stripe count, ms (same order as the config's
    /// stripe list).
    pub latency_ms: [f64; 8],
    /// Number of valid entries in `latency_ms`.
    pub variants: usize,
}

/// Structured Fig. 6 result.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    pub points: Vec<SweepPoint>,
    /// Linear fit of the serial latency vs. ROI kilopixels.
    pub serial_fit: LinearModel,
    /// R^2 of the serial fit.
    pub r_squared: f64,
    /// Mean speedup of the 2-stripe variant over serial (if measured).
    pub two_stripe_speedup: f64,
}

/// Runs the ROI sweep on a representative frame of the synthetic sequence.
pub fn run(cfg: &ExperimentConfig) -> (Fig6Result, String) {
    // render one busy frame to process at many ROI sizes
    let seq = SequenceConfig {
        width: cfg.size,
        height: cfg.size,
        frames: 1,
        seed: 77,
        ..Default::default()
    };
    let frame = SequenceGenerator::new(seq).next().expect("one frame").image;
    let rdg_cfg = RdgConfig::default();
    let mut bufs = RdgBuffers::new(cfg.size, cfg.size);

    let stripes = &cfg.fig6_stripes;
    assert!(stripes.len() <= 8, "at most 8 stripe variants");
    let n_points = 12usize;
    let mut points = Vec::with_capacity(n_points);
    let mut serial_points = Vec::with_capacity(n_points);

    for i in 1..=n_points {
        // centered square ROI growing to the full frame
        let edge = cfg.size * i / n_points;
        let edge = edge.max(16);
        let off = (cfg.size - edge) / 2;
        let roi = Roi::new(off, off, edge, edge);
        let kpx = roi.area() as f64 / 1000.0;

        let mut latencies = [0.0f64; 8];
        for (vi, &k) in stripes.iter().enumerate() {
            let latency = if k <= 1 {
                let (_, ms) = time_ms(|| rdg_roi(&frame, roi, &rdg_cfg, &mut bufs));
                ms
            } else {
                // measure each stripe's work; effective latency = makespan
                // on the modelled platform
                let jobs: Vec<VirtualJob> = roi
                    .stripes(k)
                    .into_iter()
                    .enumerate()
                    .map(|(ci, s)| {
                        let (_, ms) = time_ms(|| rdg_stripe(&frame, s, &rdg_cfg));
                        VirtualJob {
                            core: ci,
                            duration_ms: ms,
                        }
                    })
                    .collect();
                stage_makespan(8, &jobs)
            };
            latencies[vi] = latency;
        }
        if stripes.first() == Some(&1) {
            serial_points.push((kpx, latencies[0]));
        }
        points.push(SweepPoint {
            roi_kpixels: kpx,
            latency_ms: latencies,
            variants: stripes.len(),
        });
    }

    let serial_fit = LinearModel::fit(&serial_points);
    let r_squared = serial_fit.r_squared(&serial_points);
    let two_idx = stripes.iter().position(|&k| k == 2);
    let two_stripe_speedup = match two_idx {
        Some(idx) => {
            let mut ratio = 0.0;
            let mut n = 0;
            for p in &points {
                if p.latency_ms[idx] > 0.0 {
                    ratio += p.latency_ms[0] / p.latency_ms[idx];
                    n += 1;
                }
            }
            if n > 0 {
                ratio / n as f64
            } else {
                0.0
            }
        }
        None => 0.0,
    };

    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 6 — effective latency vs. ROI size at {0}x{0} (serial vs. striped RDG)\n\n",
        cfg.size
    ));
    let headers: Vec<String> = std::iter::once("ROI kpx".to_string())
        .chain(stripes.iter().map(|k| format!("{k}-stripe ms")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            std::iter::once(format!("{:.1}", p.roi_kpixels))
                .chain((0..p.variants).map(|i| format!("{:.2}", p.latency_ms[i])))
                .collect()
        })
        .collect();
    out.push_str(&table(&header_refs, &rows));
    out.push_str(&format!(
        "\nserial linear fit: y = {:.4} x + {:.2}  (R^2 = {:.3})\n",
        serial_fit.slope, serial_fit.intercept, r_squared
    ));
    out.push_str("paper's Eq. 3 on its platform: y = 0.067 x + 20.6 (x in kpx)\n");
    if two_stripe_speedup > 0.0 {
        out.push_str(&format!(
            "mean 2-stripe speedup over serial: {:.2}x (ideal 2.0, paper's Fig. 6 shows ~1.8-2x)\n",
            two_stripe_speedup
        ));
    }

    (
        Fig6Result {
            points,
            serial_fit,
            r_squared,
            two_stripe_speedup,
        },
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            size: 128,
            fig6_stripes: vec![1, 2],
            ..Default::default()
        }
    }

    #[test]
    fn latency_grows_with_roi() {
        let (r, _) = run(&tiny());
        let first = r.points.first().unwrap();
        let last = r.points.last().unwrap();
        assert!(
            last.latency_ms[0] > first.latency_ms[0],
            "latency did not grow: {:?} -> {:?}",
            first.latency_ms[0],
            last.latency_ms[0]
        );
    }

    #[test]
    fn growth_is_roughly_linear() {
        let (r, _) = run(&tiny());
        assert!(r.serial_fit.slope > 0.0, "slope {}", r.serial_fit.slope);
        assert!(r.r_squared > 0.7, "R^2 {}", r.r_squared);
    }

    #[test]
    fn two_stripe_parallel_is_faster() {
        let (r, _) = run(&tiny());
        // the Fig. 6 separation of the two curves: virtual makespan of two
        // half-size stripes beats serial
        assert!(
            r.two_stripe_speedup > 1.2,
            "speedup {}",
            r.two_stripe_speedup
        );
    }
}
