//! `repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!   `repro <experiment> [--size N] [--frames N] [--corpus-scale X] [--stripes a,b,..]`
//!
//! Experiments: fig2 fig3 fig5 fig6 fig7 table1 table2 accuracy
//!              bandwidth-accuracy ablation-alpha ablation-states
//!              ablation-decomposition ablation-quantize ablation-order
//!              ablation-online partitioning all
//!
//! Analytic experiments (fig2, fig5, table1, bandwidth-accuracy) always use
//! the paper's 1024x1024 / 4 MB-L2 parameters; measured experiments render
//! synthetic sequences at `--size` (default 256).

use bench_harness::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(|s| s.as_str()).unwrap_or("all");
    let cfg = ExperimentConfig::from_args(&args);
    let csv = export::csv_dir_from_args(&args)
        .map(|d| export::CsvExporter::new(&d).expect("create csv dir"));

    let run_one = |name: &str| {
        println!(
            "=== {name} {}",
            "=".repeat(60_usize.saturating_sub(name.len()))
        );
        match name {
            "fig2" => println!("{}", fig2::run(0.1).1),
            "fig3" => {
                let (r, text) = fig3::run(&cfg, 0.2);
                println!("{text}");
                if let Some(e) = &csv {
                    let frames: Vec<f64> = (0..r.series.len()).map(|i| i as f64).collect();
                    let p = e
                        .write_columns(
                            "fig3",
                            &[
                                ("frame", &frames),
                                ("rdg_ms", &r.series),
                                ("lpf", &r.lpf),
                                ("hpf", &r.hpf),
                            ],
                        )
                        .expect("write csv");
                    println!("csv: {}", p.display());
                }
            }
            "fig5" => println!("{}", fig5::run().1),
            "fig6" => {
                let (r, text) = fig6::run(&cfg);
                println!("{text}");
                if let Some(e) = &csv {
                    let kpx: Vec<f64> = r.points.iter().map(|p| p.roi_kpixels).collect();
                    let mut cols: Vec<(String, Vec<f64>)> = vec![("roi_kpx".into(), kpx)];
                    for (vi, &k) in cfg.fig6_stripes.iter().enumerate() {
                        cols.push((
                            format!("stripes_{k}_ms"),
                            r.points.iter().map(|p| p.latency_ms[vi]).collect(),
                        ));
                    }
                    let col_refs: Vec<(&str, &[f64])> = cols
                        .iter()
                        .map(|(n, v)| (n.as_str(), v.as_slice()))
                        .collect();
                    let p = e.write_columns("fig6", &col_refs).expect("write csv");
                    println!("csv: {}", p.display());
                }
            }
            "fig7" => {
                let (r, text) = fig7::run(&cfg);
                println!("{text}");
                if let Some(e) = &csv {
                    let frames: Vec<f64> = (0..r.straightforward.len()).map(|i| i as f64).collect();
                    let p = e
                        .write_columns(
                            "fig7",
                            &[
                                ("frame", &frames),
                                ("straightforward_ms", &r.straightforward),
                                ("managed_ms", &r.managed),
                                ("predicted_ms", &r.predicted),
                            ],
                        )
                        .expect("write csv");
                    println!("csv: {}", p.display());
                }
            }
            "table1" => println!("{}", table1::run().1),
            "table2" => println!("{}", table2::run(&cfg).1),
            "accuracy" => println!("{}", accuracy_exp::run(&cfg).1),
            "bandwidth-accuracy" => println!("{}", bandwidth_accuracy::run().1),
            "ablation-alpha" => println!("{}", ablation::alpha_sweep(&cfg).1),
            "ablation-states" => println!("{}", ablation::state_sweep(&cfg).1),
            "ablation-decomposition" => println!("{}", ablation::decomposition(&cfg).1),
            "ablation-quantize" => println!("{}", ablation::quantization(&cfg).1),
            "ablation-order" => println!("{}", ablation::order_sweep(&cfg).1),
            "ablation-online" => println!("{}", ablation::online_training(&cfg).1),
            "partitioning" => println!("{}", partitioning::run(&cfg).1),
            "qos" => println!("{}", qos_exp::run(&cfg).1),
            "detection" => println!("{}", detection::run(&cfg).1),
            other => eprintln!("unknown experiment: {other} (see --help in source)"),
        }
    };

    if which == "all" {
        for name in [
            "table1",
            "fig2",
            "fig5",
            "bandwidth-accuracy",
            "fig3",
            "fig6",
            "table2",
            "accuracy",
            "fig7",
            "ablation-alpha",
            "ablation-states",
            "ablation-decomposition",
            "ablation-quantize",
            "ablation-order",
            "ablation-online",
            "partitioning",
            "qos",
            "detection",
        ] {
            run_one(name);
        }
    } else {
        run_one(which);
    }
}
