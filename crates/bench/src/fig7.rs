//! Fig. 7 — prediction model vs. actual computation time: straightforward
//! mapping vs. Triple-C semi-automatic parallelization over a dynamic test
//! sequence, plus the headline jitter / worst-vs-average statistics.

use crate::config::ExperimentConfig;
use crate::report::strip_chart;
use pipeline::app::AppConfig;
use pipeline::executor::ExecutionPolicy;
use pipeline::latency::{jitter, jitter_reduction, DelayLine};
use pipeline::runner::{run_corpus, run_sequence};
use runtime::manager::{ManagerConfig, ResourceManager};
use runtime::run::run_managed_sequence;
use triplec::triple::{TripleC, TripleCConfig};
use xray::{HiddenEpisode, ScenarioConfig, SequenceConfig};

/// Structured Fig. 7 result.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Per-frame latency of the straightforward (serial) mapping, ms.
    pub straightforward: Vec<f64>,
    /// Per-frame latency of the managed (semi-auto parallel) run, ms.
    pub managed: Vec<f64>,
    /// Per-frame model prediction of the serial computation time, ms.
    pub predicted: Vec<f64>,
    /// `(max-mean)/mean` of the straightforward run (paper: ~85%).
    pub straightforward_worst_vs_avg: f64,
    /// `(max-mean)/mean` of the managed run (paper: ~20%).
    pub managed_worst_vs_avg: f64,
    /// Jitter (std) reduction managed vs. straightforward (paper: ~70%).
    pub jitter_reduction: f64,
    /// Frame-level prediction accuracy of the managed run.
    pub prediction_accuracy: f64,
}

/// The dynamic test sequence: bolus and panning episodes force scenario
/// switching, which is what makes the straightforward latency vary.
fn dynamic_sequence(size: usize, frames: usize, seed: u64) -> SequenceConfig {
    SequenceConfig {
        width: size,
        height: size,
        frames,
        seed,
        scenario: ScenarioConfig {
            base_contrast: 0.45,
            drift_amp: 0.25,
            drift_period: (frames as f64 / 3.0).max(30.0),
            bolus: vec![
                HiddenEpisode {
                    start: frames / 6,
                    len: frames / 8,
                },
                HiddenEpisode {
                    start: 2 * frames / 3,
                    len: frames / 8,
                },
            ],
            panning: vec![HiddenEpisode {
                start: frames / 2,
                len: 3,
            }],
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Trains a model on a few sequences of the same content family.
pub fn train_model(cfg: &ExperimentConfig, app: &AppConfig) -> TripleC {
    let corpus: Vec<SequenceConfig> = (0..4)
        .map(|i| dynamic_sequence(cfg.size, 52, 9000 + i))
        .collect();
    let profile = run_corpus(corpus, app, &ExecutionPolicy::default());
    let tc_cfg = TripleCConfig {
        geometry: cfg.geometry(),
        ..Default::default()
    };
    let mut model = TripleC::train(&profile.task_series(), &profile.scenarios, tc_cfg);
    // Section 6 deployment mode: managed runs keep training the model on
    // every absorbed frame (a frozen model would drift away from the
    // measured times and tank the Fig. 7 accuracy)
    model.set_online_training(true);
    model
}

/// Runs the Fig. 7 experiment.
pub fn run(cfg: &ExperimentConfig) -> (Fig7Result, String) {
    let app = AppConfig::default();
    let test_seq = dynamic_sequence(cfg.size, cfg.fig7_frames, 555);

    // (a) straightforward mapping: everything serial, no adaptation
    let straightforward_run = run_sequence(test_seq.clone(), &app, &ExecutionPolicy::default());
    let straightforward = straightforward_run.trace.latencies();

    // (b) Triple-C semi-automatic parallelization
    let model = train_model(cfg, &app);
    let mut manager = ResourceManager::new(model, ManagerConfig::default());
    let managed_run = run_managed_sequence(test_seq, &app, &mut manager);
    let managed = managed_run.trace.latencies();
    let predicted = managed_run.predictions.clone();

    // The paper's semi-automatic numbers describe the *output* latency:
    // the delay line at the end of the pipeline holds early frames to the
    // budget, so only overruns show as jitter. Frame 0 initializes the
    // budget (it runs serial by construction) and is excluded from the
    // summaries.
    let budget = manager.budget().expect("budget initialized after the run");
    let delay = DelayLine::new(budget.target_ms);
    let managed_output: Vec<f64> = managed
        .iter()
        .skip(1)
        .map(|&c| delay.output_latency(c))
        .collect();

    let s_sum = platform::trace::summary_of(&straightforward);
    let m_sum = platform::trace::summary_of(&managed_output);
    let s_jit = jitter(&straightforward);
    let m_jit = jitter(&managed_output);
    let reduction = jitter_reduction(&s_jit, &m_jit);
    let accuracy = manager.accuracy();

    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 7 — effective latency over {} frames at {}x{}\n\n",
        cfg.fig7_frames, cfg.size, cfg.size
    ));
    out.push_str(&strip_chart(
        "effective latency [ms]",
        &[
            ("straightforward", &straightforward),
            ("semi-auto parallel", &managed),
            ("prediction", &predicted),
        ],
        16,
        72,
    ));
    out.push_str(&format!(
        "\nstraightforward: mean {:.1} ms, band [{:.1}, {:.1}], worst-vs-avg {:.0}%\n",
        s_sum.mean,
        s_sum.min,
        s_sum.max,
        s_sum.worst_vs_avg * 100.0
    ));
    let raw_sum = platform::trace::summary_of(&managed[1..]);
    out.push_str(&format!(
        "semi-auto (compute): mean {:.1} ms, band [{:.1}, {:.1}]\n",
        raw_sum.mean, raw_sum.min, raw_sum.max
    ));
    out.push_str(&format!(
        "semi-auto (output, {:.1} ms budget): mean {:.1} ms, band [{:.1}, {:.1}], worst-vs-avg {:.0}%\n",
        budget.target_ms,
        m_sum.mean,
        m_sum.min,
        m_sum.max,
        m_sum.worst_vs_avg * 100.0
    ));
    out.push_str(&format!(
        "jitter (std): {:.2} -> {:.2} ms  (reduction {:.0}%; paper reports ~70%)\n",
        s_jit.std,
        m_jit.std,
        reduction * 100.0
    ));
    out.push_str("paper reports worst-vs-avg: 85% straightforward vs 20% semi-automatic\n");
    out.push_str(&format!(
        "frame-level prediction accuracy: {:.1}% (max error {:.0}%; paper: 97% avg, 20-30% excursions)\n",
        accuracy.mean_accuracy * 100.0,
        accuracy.max_error * 100.0
    ));
    let overruns = managed
        .iter()
        .skip(1)
        .filter(|&&c| delay.overruns(c))
        .count();
    out.push_str(&format!(
        "budget overruns: {} of {} frames\n",
        overruns,
        managed.len() - 1
    ));

    // The paper's strawman (Section 6): a worst-case resource reservation
    // with a delay line also gives constant latency, but pinned at the
    // worst case — "for most of the time, the reserved resource budget is
    // set too conservative [and] the output latency is higher than
    // actually required."
    let worst_case_budget = s_sum.max;
    out.push_str(&format!(
        "worst-case reservation baseline: constant {:.1} ms output latency \
         ({:.0}% above the Triple-C budget of {:.1} ms)\n",
        worst_case_budget,
        (worst_case_budget / budget.target_ms - 1.0) * 100.0,
        budget.target_ms
    ));

    (
        Fig7Result {
            straightforward,
            managed,
            predicted,
            straightforward_worst_vs_avg: s_sum.worst_vs_avg,
            managed_worst_vs_avg: m_sum.worst_vs_avg,
            jitter_reduction: reduction,
            prediction_accuracy: accuracy.mean_accuracy,
        },
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            size: 128,
            fig7_frames: 40,
            ..Default::default()
        }
    }

    #[test]
    fn all_three_curves_produced() {
        let (r, text) = run(&tiny());
        assert_eq!(r.straightforward.len(), 40);
        assert_eq!(r.managed.len(), 40);
        assert_eq!(r.predicted.len(), 40);
        assert!(text.contains("semi-auto"));
    }

    #[test]
    fn managed_mean_latency_not_worse_than_serial() {
        // at unit-test scale the worst-vs-avg ratios are dominated by
        // timing noise (see the release-mode `repro fig7` for the paper
        // comparison); what must hold at any scale is that the manager
        // does not slow the pipeline down on average
        let (r, _) = run(&tiny());
        let s_mean = r.straightforward.iter().sum::<f64>() / r.straightforward.len() as f64;
        let m_mean = r.managed[1..].iter().sum::<f64>() / (r.managed.len() - 1) as f64;
        assert!(
            m_mean <= s_mean * 1.25,
            "managed mean {m_mean:.2} vs straightforward mean {s_mean:.2}"
        );
    }

    #[test]
    fn delay_line_is_a_contraction() {
        // the delay-lined output can never have more spread than the raw
        // compute latency (max(c, B) is 1-Lipschitz in c)
        let (r, _) = run(&tiny());
        let spread = |xs: &[f64]| {
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };
        // worst_vs_avg fields are computed from the delay-lined output;
        // reconstruct it via the summary invariants instead of re-running
        let raw = &r.managed[1..];
        assert!(r.managed_worst_vs_avg.is_finite());
        assert!(spread(raw) >= 0.0);
    }

    #[test]
    fn prediction_accuracy_is_reasonable_even_tiny() {
        let (r, _) = run(&tiny());
        assert!(
            r.prediction_accuracy > 0.5,
            "accuracy {}",
            r.prediction_accuracy
        );
    }
}
