//! Section 7 headline — computation-time prediction accuracy on held-out
//! test sequences ("an average prediction accuracy of 97% is reached with
//! sporadic excursions of the prediction error up to 20-30%").

use crate::config::ExperimentConfig;
use crate::report::table;
use crate::table2::profile_training_corpus;
use pipeline::app::{AppConfig, AppState};
use pipeline::executor::{process_frame, ExecutionPolicy};
use std::collections::BTreeMap;
use triplec::accuracy::{evaluate, AccuracyReport};
use triplec::predictor::PredictContext;
use triplec::triple::{TripleC, TripleCConfig};
use xray::{test_corpus, SequenceGenerator};

/// Structured accuracy result.
#[derive(Debug, Clone)]
pub struct AccuracyResult {
    /// Per-task accuracy reports.
    pub per_task: Vec<(&'static str, AccuracyReport)>,
    /// Frame-total accuracy report.
    pub frame_level: AccuracyReport,
}

/// Trains on the (scaled) training corpus and evaluates one-step-ahead
/// prediction on the held-out test corpus.
pub fn run(cfg: &ExperimentConfig) -> (AccuracyResult, String) {
    let app = AppConfig::default();
    let profile = profile_training_corpus(cfg, &app);
    let tc_cfg = TripleCConfig {
        geometry: cfg.geometry(),
        ..Default::default()
    };
    let mut model = TripleC::train(&profile.task_series(), &profile.scenarios, tc_cfg);
    // Section 6 usage: the deployed model keeps adapting to the stream
    // (a frozen model would ignore the feedback below)
    model.set_online_training(true);

    // evaluation: run the pipeline over the test corpus; before each task
    // executes, ask the model; after, feed the measurement back (the
    // runtime usage pattern of Section 6)
    let mut task_pairs: BTreeMap<&'static str, Vec<(f64, f64)>> = BTreeMap::new();
    let mut frame_pairs: Vec<(f64, f64)> = Vec::new();

    let mut corpus = test_corpus(cfg.size, cfg.size);
    if cfg.corpus_scale < 1.0 {
        let keep = ((corpus.len() as f64 * cfg.corpus_scale).ceil() as usize).max(1);
        corpus.truncate(keep);
        for c in &mut corpus {
            c.frames = ((c.frames as f64 * cfg.corpus_scale).ceil() as usize).max(10);
        }
    }

    let policy = ExecutionPolicy::default();
    for seq in corpus {
        let mut state = AppState::new(seq.width, seq.height);
        for frame in SequenceGenerator::new(seq) {
            let roi_kpixels = state
                .current_roi
                .map(|r| r.area() as f64 / 1000.0)
                .unwrap_or((frame.image.width() * frame.image.height()) as f64 / 1000.0);
            let ctx = PredictContext { roi_kpixels };

            let out = process_frame(frame.index, &frame.image, &mut state, &app, &policy);
            let mut frame_pred = 0.0;
            let mut frame_actual = 0.0;
            for &(task, actual) in &out.record.task_times {
                if let Some(pred) = model.predict_task(task, &ctx).map(|p| p.mean_ms) {
                    task_pairs.entry(task).or_default().push((pred, actual));
                    frame_pred += pred;
                    frame_actual += actual;
                }
                model.observe_task(task, actual, &ctx);
            }
            if frame_actual > 0.0 {
                frame_pairs.push((frame_pred, frame_actual));
            }
        }
    }

    let per_task: Vec<(&'static str, AccuracyReport)> = task_pairs
        .iter()
        .map(|(&t, pairs)| (t, evaluate(pairs)))
        .collect();
    let frame_level = evaluate(&frame_pairs);

    let mut out = String::new();
    out.push_str(&format!(
        "Prediction accuracy on held-out sequences ({} frames evaluated)\n\n",
        frame_level.count
    ));
    let rows: Vec<Vec<String>> = per_task
        .iter()
        .map(|(t, r)| {
            vec![
                t.to_string(),
                format!("{}", r.count),
                format!("{:.1}%", r.mean_accuracy * 100.0),
                format!("{:.0}%", r.max_error * 100.0),
                format!("{:.1}%", r.excursions_over_20pct * 100.0),
            ]
        })
        .collect();
    out.push_str(&table(
        &[
            "task",
            "samples",
            "mean accuracy",
            "max error",
            "frames >20% err",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nframe-level: mean accuracy {:.1}%, max error {:.0}%, {:.1}% of frames over 20% error\n",
        frame_level.mean_accuracy * 100.0,
        frame_level.max_error * 100.0,
        frame_level.excursions_over_20pct * 100.0
    ));
    out.push_str("paper: 97% average accuracy, sporadic excursions up to 20-30%\n");

    (
        AccuracyResult {
            per_task,
            frame_level,
        },
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            size: 128,
            corpus_scale: 0.06,
            ..Default::default()
        }
    }

    #[test]
    fn evaluation_produces_pairs() {
        let (r, text) = run(&tiny());
        assert!(
            r.frame_level.count >= 5,
            "only {} frames",
            r.frame_level.count
        );
        assert!(!r.per_task.is_empty());
        assert!(text.contains("mean accuracy"));
    }

    #[test]
    fn accuracy_clearly_above_chance() {
        let (r, _) = run(&tiny());
        // even at tiny scale the one-step predictor should be far better
        // than nothing; the full-scale run approaches the paper's 97%
        assert!(
            r.frame_level.mean_accuracy > 0.6,
            "frame accuracy {:.2}",
            r.frame_level.mean_accuracy
        );
    }
}
