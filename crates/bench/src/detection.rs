//! Substrate validation: marker-detection quality against ground truth.
//!
//! The substitution argument (DESIGN.md §2) requires the rebuilt analysis
//! chain to behave like a real one: markers must be found at their true
//! positions across the clinically relevant noise range, and tracking must
//! fail gracefully (not silently) when the device leaves the view. This
//! experiment sweeps the quantum-noise scale and reports detection
//! precision/recall and localization error against the generator's ground
//! truth.

use crate::config::ExperimentConfig;
use crate::report::table;
use imaging::couples::{cpls_select, CplsConfig};
use imaging::markers::{mkx_extract, MkxBuffers, MkxConfig};
use xray::{NoiseConfig, SequenceConfig, SequenceGenerator};

/// One noise point.
#[derive(Debug, Clone, Copy)]
pub struct DetectionPoint {
    /// Quantum-noise scale of the generator.
    pub noise_scale: f32,
    /// Fraction of frames where both true markers were matched (< 3 px).
    pub recall: f64,
    /// Fraction of selected couples whose both endpoints are true markers.
    pub precision: f64,
    /// Mean localization error of matched markers, pixels.
    pub mean_error_px: f64,
}

/// Runs the detection-quality sweep.
pub fn run(cfg: &ExperimentConfig) -> (Vec<DetectionPoint>, String) {
    let frames = 24usize;
    let mut results = Vec::new();
    for &noise_scale in &[0.3f32, 0.8, 1.2, 2.0, 3.0] {
        let seq = SequenceConfig {
            width: cfg.size,
            height: cfg.size,
            frames,
            seed: 2025,
            noise: NoiseConfig {
                quantum_scale: noise_scale,
                electronic_std: 4.0,
            },
            ..Default::default()
        };
        let mut bufs = MkxBuffers::new(cfg.size, cfg.size);
        let mkx_cfg = MkxConfig::default();
        let cpls_cfg = CplsConfig::default();

        let mut matched_frames = 0usize;
        let mut selected = 0usize;
        let mut true_selected = 0usize;
        let mut err_sum = 0.0f64;
        let mut err_n = 0usize;
        for frame in SequenceGenerator::new(seq) {
            let (Some(ta), Some(tb)) = (frame.truth.marker_a, frame.truth.marker_b) else {
                continue;
            };
            let out = mkx_extract(&frame.image, frame.image.full_roi(), &mkx_cfg, &mut bufs);
            let near = |tx: f64, ty: f64| {
                out.candidates
                    .iter()
                    .map(|m| ((m.x - tx).powi(2) + (m.y - ty).powi(2)).sqrt())
                    .fold(f64::INFINITY, f64::min)
            };
            let da = near(ta.0, ta.1);
            let db = near(tb.0, tb.1);
            if da < 3.0 && db < 3.0 {
                matched_frames += 1;
                err_sum += (da + db) * 0.5;
                err_n += 1;
            }
            if let Some(c) = cpls_select(&out.candidates, None, &cpls_cfg).couple {
                selected += 1;
                let on_truth = |x: f64, y: f64| {
                    ((x - ta.0).powi(2) + (y - ta.1).powi(2)).sqrt() < 3.0
                        || ((x - tb.0).powi(2) + (y - tb.1).powi(2)).sqrt() < 3.0
                };
                if on_truth(c.a.x, c.a.y) && on_truth(c.b.x, c.b.y) {
                    true_selected += 1;
                }
            }
        }
        results.push(DetectionPoint {
            noise_scale,
            recall: matched_frames as f64 / frames as f64,
            precision: if selected == 0 {
                0.0
            } else {
                true_selected as f64 / selected as f64
            },
            mean_error_px: if err_n == 0 {
                f64::NAN
            } else {
                err_sum / err_n as f64
            },
        });
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Marker-detection quality vs. quantum noise ({} frames/point at {}x{})\n\n",
        frames, cfg.size, cfg.size
    ));
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.noise_scale),
                format!("{:.0}%", p.recall * 100.0),
                format!("{:.0}%", p.precision * 100.0),
                format!("{:.2}", p.mean_error_px),
            ]
        })
        .collect();
    out.push_str(&table(
        &[
            "noise scale",
            "marker recall",
            "couple precision",
            "mean error px",
        ],
        &rows,
    ));
    out.push_str(
        "\n(the default corpus noise scale is 1.2; detection must be solid there\n\
         and may degrade gracefully beyond it)\n",
    );
    (results, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_solid_at_corpus_noise() {
        let cfg = ExperimentConfig {
            size: 128,
            ..Default::default()
        };
        let (r, _) = run(&cfg);
        let at_default = r
            .iter()
            .find(|p| (p.noise_scale - 1.2).abs() < 1e-6)
            .unwrap();
        assert!(
            at_default.recall > 0.7,
            "recall {:.2} at corpus noise",
            at_default.recall
        );
        assert!(
            at_default.precision > 0.7,
            "precision {:.2} at corpus noise",
            at_default.precision
        );
        assert!(
            at_default.mean_error_px < 1.5,
            "error {:.2} px",
            at_default.mean_error_px
        );
    }

    #[test]
    fn low_noise_is_at_least_as_good_as_high_noise() {
        let cfg = ExperimentConfig {
            size: 128,
            ..Default::default()
        };
        let (r, _) = run(&cfg);
        let lo = r.first().unwrap();
        let hi = r.last().unwrap();
        assert!(lo.recall >= hi.recall - 0.1, "lo {:?} hi {:?}", lo, hi);
    }
}
