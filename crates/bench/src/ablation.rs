//! Ablations of the paper's design choices (listed in DESIGN.md §5):
//! the EWMA factor, the Markov state count, the EWMA/Markov decomposition
//! itself, and the adaptive (equal-mass) quantization.

use crate::config::ExperimentConfig;
use crate::report::table;
use pipeline::app::AppConfig;
use pipeline::runner::profile_rdg_direct;
use triplec::accuracy::evaluate;
use triplec::ewma::Ewma;
use triplec::markov::MarkovChain;
use triplec::model::ResourceModel;
use triplec::predictor::{EwmaMarkovPredictor, PredictContext, Predictor};
use triplec::quantize::Quantizer;
use triplec::stats::mean;
use xray::long_trace_sequence;

/// Measures a content-dependent RDG computation-time series with the
/// pipeline's coarse-to-fine adaptation (the Fig. 3 regime).
pub fn collect_rdg_series(cfg: &ExperimentConfig, frames: usize) -> Vec<f64> {
    let seq = long_trace_sequence(cfg.size, cfg.size, frames);
    profile_rdg_direct(seq, &AppConfig::default())
}

/// One-step-ahead evaluation of any predictor over a test series.
fn one_step_accuracy(p: &mut dyn Predictor, warmup: &[f64], test: &[f64]) -> f64 {
    let ctx = PredictContext::default();
    for &x in warmup {
        p.observe(x, &ctx);
    }
    let pairs: Vec<(f64, f64)> = test
        .iter()
        .map(|&x| {
            let pred = p.predict(&ctx).mean_ms;
            p.observe(x, &ctx);
            (pred, x)
        })
        .collect();
    evaluate(&pairs).mean_accuracy
}

/// Ablation 1 — EWMA smoothing factor sweep.
pub fn alpha_sweep(cfg: &ExperimentConfig) -> (Vec<(f64, f64)>, String) {
    let series = collect_rdg_series(cfg, cfg.fig3_frames.min(300));
    let split = series.len() * 2 / 3;
    let (train, test) = series.split_at(split);
    let warm = &train[train.len().saturating_sub(20)..];

    let alphas = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    let mut results = Vec::with_capacity(alphas.len());
    for &a in &alphas {
        let mut p = EwmaMarkovPredictor::train(train, a, 24, "RDG");
        let acc = one_step_accuracy(&mut p, warm, test);
        results.push((a, acc));
    }
    let mut out = String::new();
    out.push_str("Ablation — EWMA alpha (Eq. 1; paper does not publish its value)\n\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(a, acc)| vec![format!("{a:.2}"), format!("{:.1}%", acc * 100.0)])
        .collect();
    out.push_str(&table(&["alpha", "one-step accuracy"], &rows));
    let best = results
        .iter()
        .cloned()
        .fold((0.0, 0.0), |b, r| if r.1 > b.1 { r } else { b });
    out.push_str(&format!(
        "\nbest alpha {:.2} at {:.1}% accuracy\n",
        best.0,
        best.1 * 100.0
    ));
    (results, out)
}

/// Ablation 2 — Markov state-count sweep vs. the paper's 2M heuristic.
pub fn state_sweep(cfg: &ExperimentConfig) -> (Vec<(usize, f64)>, String) {
    let series = collect_rdg_series(cfg, cfg.fig3_frames.min(300));
    let split = series.len() * 2 / 3;
    let (train, test) = series.split_at(split);
    let warm = &train[train.len().saturating_sub(20)..];

    // the paper heuristic applied to the residuals
    let (_, residuals) = triplec::ewma::decompose(train, 0.2);
    let heuristic =
        Quantizer::paper_state_count(&residuals.iter().map(|r| r.abs()).collect::<Vec<_>>(), 64);

    let counts = [1usize, 2, 4, 8, 16, 32, 64];
    let mut results = Vec::with_capacity(counts.len());
    for &n in &counts {
        let mut p = EwmaMarkovPredictor::train(train, 0.2, n, "RDG");
        let acc = one_step_accuracy(&mut p, warm, test);
        results.push((n, acc));
    }
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation — Markov state count (paper heuristic 2M = {heuristic} states here)\n\n"
    ));
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(n, acc)| vec![format!("{n}"), format!("{:.1}%", acc * 100.0)])
        .collect();
    out.push_str(&table(&["max states", "one-step accuracy"], &rows));
    (results, out)
}

/// Ablation 3 — model decomposition: constant vs. EWMA-only vs.
/// Markov-only vs. the paper's EWMA+Markov split.
pub fn decomposition(cfg: &ExperimentConfig) -> (Vec<(&'static str, f64)>, String) {
    let series = collect_rdg_series(cfg, cfg.fig3_frames.min(300));
    let split = series.len() * 2 / 3;
    let (train, test) = series.split_at(split);
    let warm = &train[train.len().saturating_sub(20)..];
    let ctx = PredictContext::default();

    let mut results: Vec<(&'static str, f64)> = Vec::new();

    // constant (global mean)
    {
        let m = mean(train);
        let pairs: Vec<(f64, f64)> = test.iter().map(|&x| (m, x)).collect();
        results.push(("constant (mean)", evaluate(&pairs).mean_accuracy));
    }
    // EWMA-only
    {
        let mut e = Ewma::new(0.2);
        for &x in train.iter().chain(warm) {
            e.update(x);
        }
        let pairs: Vec<(f64, f64)> = test
            .iter()
            .map(|&x| {
                let pred = e.value_or(x);
                e.update(x);
                (pred, x)
            })
            .collect();
        results.push(("EWMA only", evaluate(&pairs).mean_accuracy));
    }
    // Markov-only on raw values
    {
        let q = Quantizer::train(train, Quantizer::paper_state_count(train, 24).max(2));
        let seq: Vec<usize> = train.iter().map(|&v| q.state_of(v)).collect();
        let chain = MarkovChain::estimate(&seq, q.states());
        let mut state = q.state_of(*warm.last().unwrap_or(&train[0]));
        let pairs: Vec<(f64, f64)> = test
            .iter()
            .map(|&x| {
                let pred = chain.expected_next(state, |j| q.representative(j));
                state = q.state_of(x);
                (pred, x)
            })
            .collect();
        results.push(("Markov only", evaluate(&pairs).mean_accuracy));
    }
    // the paper's split
    {
        let mut p = EwmaMarkovPredictor::train(train, 0.2, 24, "RDG");
        for &x in warm {
            p.observe(x, &ctx);
        }
        let pairs: Vec<(f64, f64)> = test
            .iter()
            .map(|&x| {
                let pred = p.predict(&ctx).mean_ms;
                p.observe(x, &ctx);
                (pred, x)
            })
            .collect();
        results.push(("EWMA + Markov (paper)", evaluate(&pairs).mean_accuracy));
    }

    let mut out = String::new();
    out.push_str("Ablation — long/short-term decomposition (Section 4)\n\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(name, acc)| vec![name.to_string(), format!("{:.1}%", acc * 100.0)])
        .collect();
    out.push_str(&table(&["model", "one-step accuracy"], &rows));
    (results, out)
}

/// Ablation 4 — equal-mass (paper) vs. uniform-width quantization.
pub fn quantization(cfg: &ExperimentConfig) -> (Vec<(&'static str, f64)>, String) {
    let series = collect_rdg_series(cfg, cfg.fig3_frames.min(300));
    let split = series.len() * 2 / 3;
    let (train, test) = series.split_at(split);

    let (_, residuals) = triplec::ewma::decompose(train, 0.2);
    let states =
        Quantizer::paper_state_count(&residuals.iter().map(|r| r.abs()).collect::<Vec<_>>(), 24)
            .max(2);

    let eval_quantizer = |q: &Quantizer| {
        // evaluate via residual round-trip + chain prediction
        let seq: Vec<usize> = residuals.iter().map(|&r| q.state_of(r)).collect();
        let chain = MarkovChain::estimate(&seq, q.states());
        let mut e = Ewma::new(0.2);
        for &x in train {
            e.update(x);
        }
        let mut state = seq.last().copied().unwrap_or(0);
        let pairs: Vec<(f64, f64)> = test
            .iter()
            .map(|&x| {
                let base = e.value_or(x);
                let pred = base + chain.expected_next(state, |j| q.representative(j));
                state = q.state_of(x - base);
                e.update(x);
                (pred, x)
            })
            .collect();
        evaluate(&pairs).mean_accuracy
    };

    let adaptive = eval_quantizer(&Quantizer::train(&residuals, states));
    let uniform = eval_quantizer(&Quantizer::train_uniform(&residuals, states));

    let results = vec![("equal-mass (paper)", adaptive), ("uniform-width", uniform)];
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation — quantization intervals ({states} states)\n\n"
    ));
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(name, acc)| vec![name.to_string(), format!("{:.1}%", acc * 100.0)])
        .collect();
    out.push_str(&table(&["quantizer", "one-step accuracy"], &rows));
    (results, out)
}

/// Ablation 5 — Markov-chain order: the paper's argument that
/// higher-order chains explode the state space and starve the transition
/// estimates (Section 4), quantified.
pub fn order_sweep(cfg: &ExperimentConfig) -> (Vec<(usize, f64, f64, f64)>, String) {
    use triplec::markov_high::HigherOrderChain;
    let series = collect_rdg_series(cfg, cfg.fig3_frames.min(300));
    let split = series.len() * 2 / 3;
    let (train, test) = series.split_at(split);

    // quantize on the EWMA residuals as the real model does
    let (_, residuals) = triplec::ewma::decompose(train, 0.2);
    let states =
        Quantizer::paper_state_count(&residuals.iter().map(|r| r.abs()).collect::<Vec<_>>(), 16)
            .max(4);
    let q = Quantizer::train(&residuals, states);
    let train_states: Vec<usize> = residuals.iter().map(|&r| q.state_of(r)).collect();

    let mut results = Vec::new();
    for order in 1..=3usize {
        let chain = HigherOrderChain::estimate(&train_states, q.states(), order);
        // one-step evaluation with a running EWMA + context window
        let mut e = Ewma::new(0.2);
        for &x in train {
            e.update(x);
        }
        let mut ctx: Vec<usize> = train_states[train_states.len() - order..].to_vec();
        let pairs: Vec<(f64, f64)> = test
            .iter()
            .map(|&x| {
                let base = e.value_or(x);
                let pred = base + chain.expected_next(&ctx, |j| q.representative(j));
                let st = q.state_of(x - base);
                ctx.remove(0);
                ctx.push(st);
                e.update(x);
                (pred, x)
            })
            .collect();
        let acc = evaluate(&pairs).mean_accuracy;
        results.push((
            order,
            acc,
            chain.context_coverage(),
            chain.samples_per_context(),
        ));
    }

    let mut out = String::new();
    out.push_str("Ablation — Markov order (Section 4's state-space argument)\n\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(o, acc, cov, spc)| {
            vec![
                format!("{o}"),
                format!("{:.1}%", acc * 100.0),
                format!("{:.1}%", cov * 100.0),
                format!("{spc:.1}"),
            ]
        })
        .collect();
    out.push_str(&table(
        &[
            "order",
            "one-step accuracy",
            "context coverage",
            "samples/context",
        ],
        &rows,
    ));
    out.push_str(
        "\npaper: \"with an increasing order, the number of samples for each\n\
         estimate is very small, even for long data sets\" — first order wins\n\
         once sample starvation is accounted for.\n",
    );
    (results, out)
}

/// Ablation 6 — online model training (Section 6 "Profiling ... can be
/// used for on-line model training"): a frozen model vs. one whose
/// transition matrix keeps adapting, evaluated after a platform-load
/// regime change.
pub fn online_training(cfg: &ExperimentConfig) -> (Vec<(&'static str, f64)>, String) {
    let series = collect_rdg_series(cfg, cfg.fig3_frames.min(300));
    let split = series.len() / 2;
    let (train, test_raw) = series.split_at(split);
    // regime change: the platform is suddenly 40% more loaded
    let test: Vec<f64> = test_raw.iter().map(|&x| x * 1.4).collect();

    let eval = |online: bool| {
        let mut p = EwmaMarkovPredictor::train(train, 0.2, 24, "RDG");
        p.set_online_training(online);
        let ctx = PredictContext::default();
        for &x in &train[train.len().saturating_sub(10)..] {
            p.observe(x, &ctx);
        }
        let pairs: Vec<(f64, f64)> = test
            .iter()
            .map(|&x| {
                let pred = p.predict(&ctx).mean_ms;
                p.observe(x, &ctx);
                (pred, x)
            })
            .collect();
        evaluate(&pairs).mean_accuracy
    };

    let frozen = eval(false);
    let online = eval(true);
    let results = vec![("frozen matrix", frozen), ("online training", online)];
    let mut out = String::new();
    out.push_str("Ablation — online model training after a 1.4x load regime change\n\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(n, a)| vec![n.to_string(), format!("{:.1}%", a * 100.0)])
        .collect();
    out.push_str(&table(&["model", "one-step accuracy"], &rows));
    out.push_str(
        "\n(the EWMA absorbs most of the level shift either way; online training\n\
         additionally re-estimates the residual transitions, Section 6)\n",
    );
    (results, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            size: 96,
            fig3_frames: 60,
            ..Default::default()
        }
    }

    #[test]
    fn alpha_sweep_produces_all_points() {
        let (r, text) = alpha_sweep(&tiny());
        assert_eq!(r.len(), 7);
        assert!(r.iter().all(|&(_, acc)| (0.0..=1.0).contains(&acc)));
        assert!(text.contains("best alpha"));
    }

    #[test]
    fn state_sweep_produces_all_points() {
        let (r, _) = state_sweep(&tiny());
        assert_eq!(r.len(), 7);
    }

    #[test]
    fn decomposition_beats_constant() {
        let (r, _) = decomposition(&tiny());
        let constant = r.iter().find(|(n, _)| n.starts_with("constant")).unwrap().1;
        let paper = r.iter().find(|(n, _)| n.contains("paper")).unwrap().1;
        // on a content-driven series the composite model must beat the mean
        assert!(
            paper >= constant - 0.05,
            "paper model {:.2} worse than constant {:.2}",
            paper,
            constant
        );
    }

    #[test]
    fn quantization_comparison_runs() {
        let (r, _) = quantization(&tiny());
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|&(_, acc)| acc > 0.0));
    }

    #[test]
    fn order_sweep_shows_sample_starvation() {
        let (r, _) = order_sweep(&tiny());
        assert_eq!(r.len(), 3);
        // samples per context must shrink with the order
        assert!(r[0].3 > r[2].3, "order-1 {} vs order-3 {}", r[0].3, r[2].3);
    }

    #[test]
    fn online_training_comparison_runs() {
        let (r, _) = online_training(&tiny());
        assert_eq!(r.len(), 2);
        let frozen = r[0].1;
        let online = r[1].1;
        // online adaptation must not hurt after a regime change
        assert!(online >= frozen - 0.1, "online {online} << frozen {frozen}");
    }
}
