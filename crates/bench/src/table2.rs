//! Table 2 — (a) the RDG Markov transition matrix and (b) the per-task
//! model summary, trained on the 37-sequence / 1,921-frame corpus.

use crate::config::ExperimentConfig;
use crate::report::table;
use pipeline::app::AppConfig;
use pipeline::executor::ExecutionPolicy;
use pipeline::runner::{run_corpus, ProfileRun};
use triplec::markov::MarkovChain;
use triplec::quantize::Quantizer;
use triplec::training::ModelKind;
use triplec::triple::{TripleC, TripleCConfig};
use xray::training_corpus;

/// Structured Table 2 result.
pub struct Table2Result {
    /// The display-quantized (10-state, like the paper) RDG chain.
    pub rdg_chain: MarkovChain,
    /// The display quantizer.
    pub rdg_quantizer: Quantizer,
    /// `(task, model kind, model string)` rows of Table 2(b).
    pub summary: Vec<(&'static str, ModelKind, String)>,
    /// Frames profiled.
    pub frames: usize,
}

/// Profiles the training corpus (scaled by `corpus_scale`).
///
/// In addition to the pipeline profile (which samples each task when its
/// flow-graph switches activate it), the RDG FULL task is profiled
/// *directly* on every corpus frame — offline task profiling, which is
/// how the paper's 1,921-frame Table 2(a) matrix and Fig. 3 trace are
/// built.
pub fn profile_training_corpus(cfg: &ExperimentConfig, app: &AppConfig) -> ProfileRun {
    let mut corpus = training_corpus(cfg.size, cfg.size);
    if cfg.corpus_scale < 1.0 {
        let keep = ((corpus.len() as f64 * cfg.corpus_scale).ceil() as usize).max(2);
        corpus.truncate(keep);
        for c in &mut corpus {
            c.frames = ((c.frames as f64 * cfg.corpus_scale).ceil() as usize).max(10);
        }
    }
    let mut run = run_corpus(corpus.clone(), app, &ExecutionPolicy::default());
    // offline RDG FULL profiling over the whole corpus
    let direct: Vec<(f64, f64)> = corpus
        .into_iter()
        .flat_map(|c| {
            let px = (c.width * c.height) as f64 / 1000.0;
            pipeline::runner::profile_rdg_direct(c, app)
                .into_iter()
                .map(move |t| (t, px))
        })
        .collect();
    run.samples.insert("RDG_FULL", direct);
    run
}

/// Runs the Table 2 experiment.
pub fn run(cfg: &ExperimentConfig) -> (Table2Result, String) {
    let app = AppConfig::default();
    let profile = profile_training_corpus(cfg, &app);
    let frames = profile.scenarios.len();

    // (a): the paper shows a 10-state matrix over the RDG task's
    // computation-time states (equal-mass intervals)
    let mut rdg_series = profile.series_of("RDG_FULL");
    rdg_series.extend(profile.series_of("RDG_ROI"));
    assert!(!rdg_series.is_empty(), "corpus produced no RDG samples");
    let rdg_quantizer = Quantizer::train(&rdg_series, 10);
    let seq: Vec<usize> = rdg_series
        .iter()
        .map(|&v| rdg_quantizer.state_of(v))
        .collect();
    let rdg_chain = MarkovChain::estimate(&seq, rdg_quantizer.states());

    // (b): trained model summary
    let tc_cfg = TripleCConfig {
        geometry: cfg.geometry(),
        ..Default::default()
    };
    let model = TripleC::train(&profile.task_series(), &profile.scenarios, tc_cfg);
    let summary = model.model_summary();

    let mut out = String::new();
    out.push_str(&format!(
        "Table 2 — trained on {} frames ({} sequences scale {:.2}) at {}x{}\n\n",
        frames, 37, cfg.corpus_scale, cfg.size, cfg.size
    ));

    out.push_str("(a) RDG Markov transition matrix (equal-mass states, paper shows 10x10):\n");
    let n = rdg_chain.states();
    let headers: Vec<String> = std::iter::once("".to_string())
        .chain((0..n).map(|j| format!("s{j}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            std::iter::once(format!("s{i}"))
                .chain((0..n).map(|j| format!("{:.2}", rdg_chain.prob(i, j))))
                .collect()
        })
        .collect();
    out.push_str(&table(&header_refs, &rows));

    out.push_str("\n(b) model summary (paper's Table 2(b) for comparison):\n");
    let rows: Vec<Vec<String>> = summary
        .iter()
        .map(|(task, kind, name)| {
            let series = profile.series_of(task);
            let m = triplec::stats::mean(&series);
            let cv = if m > 0.0 {
                triplec::stats::std_dev(&series) / m
            } else {
                0.0
            };
            let lag1 = triplec::stats::autocorrelation(&series, 1)
                .get(1)
                .copied()
                .unwrap_or(0.0);
            vec![
                task.to_string(),
                format!("{:?}", kind),
                name.clone(),
                format!("{m:.2}"),
                format!("{cv:.2}"),
                format!("{lag1:.2}"),
            ]
        })
        .collect();
    out.push_str(&table(
        &[
            "Task",
            "Kind",
            "Prediction model [ms]",
            "mean ms",
            "CV",
            "lag-1 ACF",
        ],
        &rows,
    ));
    out.push_str(
        "\npaper: RDG FULL = Eq.1+Markov, RDG ROI = Eq.3+Markov, CPLS/GW = Eq.1+Markov,\n\
         MKX 2.5, REG 2, ROI EST 1, ENH 24, ZOOM 12.5 (constants in ms on its platform)\n",
    );

    (
        Table2Result {
            rdg_chain,
            rdg_quantizer,
            summary,
            frames,
        },
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            size: 128,
            corpus_scale: 0.06,
            ..Default::default()
        }
    }

    #[test]
    fn matrix_is_row_stochastic() {
        let (r, _) = run(&tiny());
        assert!(r.rdg_chain.is_row_stochastic(1e-9));
        assert!(r.rdg_chain.states() >= 2, "states {}", r.rdg_chain.states());
    }

    #[test]
    fn near_diagonal_mass_dominates() {
        // the paper's matrix concentrates probability near the diagonal
        // (positively correlated computation times); ours must too
        let (r, _) = run(&tiny());
        let n = r.rdg_chain.states();
        let mut near = 0.0;
        let mut total = 0.0;
        for i in 0..n {
            for j in 0..n {
                let p = r.rdg_chain.prob(i, j);
                total += p;
                if (i as i64 - j as i64).unsigned_abs() <= 2 {
                    near += p;
                }
            }
        }
        assert!(near / total > 0.4, "near-diagonal mass {:.2}", near / total);
    }

    #[test]
    fn summary_has_expected_model_kinds() {
        let (r, text) = run(&tiny());
        assert!(!r.summary.is_empty());
        // MKX/REG-class tasks must not come out as LinearMarkov
        for (task, kind, _) in &r.summary {
            if *task == "REG" || *task == "ROI_EST" {
                assert_ne!(*kind, ModelKind::LinearMarkov, "{task}");
            }
        }
        assert!(text.contains("(a) RDG Markov transition matrix"));
        assert!(text.contains("(b) model summary"));
    }
}
