//! Experiment configuration.
//!
//! Measured experiments render synthetic sequences at a configurable
//! geometry (default 256x256 so the whole suite runs in minutes on a
//! laptop; `--size 1024` reproduces the paper's full geometry). Analytic
//! experiments (Table 1, Fig. 2, Fig. 5) always use the paper's
//! 1024x1024 / 4 MB-L2 parameters — they cost nothing to evaluate.

/// Configuration shared by the measured experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Rendered frame edge length (frames are square).
    pub size: usize,
    /// Frame count of the long Fig. 3 trace.
    pub fig3_frames: usize,
    /// Frame count of the Fig. 7 dynamic run.
    pub fig7_frames: usize,
    /// Scale factor on corpus sizes (1.0 = the paper's 37 x ~52 frames).
    pub corpus_scale: f64,
    /// Stripe counts examined in Fig. 6.
    pub fig6_stripes: Vec<usize>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            size: 256,
            fig3_frames: 600,
            fig7_frames: 200,
            corpus_scale: 1.0,
            fig6_stripes: vec![1, 2],
        }
    }
}

impl ExperimentConfig {
    /// Parses `--size N`, `--frames N`, `--corpus-scale X`, `--stripes a,b`
    /// style flags from an argument list (unknown flags are ignored so the
    /// caller can route subcommands first).
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = Self::default();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let mut grab = |target: &mut usize| {
                if let Some(v) = it.peek().and_then(|s| s.parse::<usize>().ok()) {
                    *target = v;
                    it.next();
                }
            };
            match a.as_str() {
                "--size" => grab(&mut cfg.size),
                "--frames" => {
                    let mut v = cfg.fig3_frames;
                    grab(&mut v);
                    cfg.fig3_frames = v;
                    cfg.fig7_frames = v.min(cfg.fig7_frames.max(v.min(200)));
                    cfg.fig7_frames = v;
                }
                "--corpus-scale" => {
                    if let Some(v) = it.peek().and_then(|s| s.parse::<f64>().ok()) {
                        cfg.corpus_scale = v;
                        it.next();
                    }
                }
                "--stripes" => {
                    if let Some(v) = it.peek() {
                        let parsed: Vec<usize> =
                            v.split(',').filter_map(|s| s.parse().ok()).collect();
                        if !parsed.is_empty() {
                            cfg.fig6_stripes = parsed;
                            it.next();
                        }
                    }
                }
                _ => {}
            }
        }
        cfg
    }

    /// The triplec geometry for model configuration at the experiment size.
    pub fn geometry(&self) -> triplec::FrameGeometry {
        triplec::FrameGeometry {
            width: self.size,
            height: self.size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_sane() {
        let c = ExperimentConfig::default();
        assert_eq!(c.size, 256);
        assert!(c.fig3_frames >= 100);
    }

    #[test]
    fn parses_size_and_frames() {
        let c = ExperimentConfig::from_args(&args(&["--size", "128", "--frames", "50"]));
        assert_eq!(c.size, 128);
        assert_eq!(c.fig3_frames, 50);
        assert_eq!(c.fig7_frames, 50);
    }

    #[test]
    fn parses_stripes_list() {
        let c = ExperimentConfig::from_args(&args(&["--stripes", "1,2,4,8"]));
        assert_eq!(c.fig6_stripes, vec![1, 2, 4, 8]);
    }

    #[test]
    fn ignores_unknown_flags() {
        let c = ExperimentConfig::from_args(&args(&["fig3", "--whatever", "--size", "64"]));
        assert_eq!(c.size, 64);
    }

    #[test]
    fn corpus_scale_parsed() {
        let c = ExperimentConfig::from_args(&args(&["--corpus-scale", "0.25"]));
        assert!((c.corpus_scale - 0.25).abs() < 1e-12);
    }
}
