//! Section 5/7 headline — cache-memory and communication-bandwidth
//! prediction accuracy ("an average prediction accuracy between the
//! analysis and measured cache-memory and communication-bandwidth usage of
//! 90% is obtained").
//!
//! The analytic space-time model is compared against the trace-driven
//! cache simulation over a grid of tasks, geometries and cache sizes.

use crate::report::table;
use platform::arch::{CacheGeometry, MB};
use platform::spacetime::simulate_traffic;
use triplec::accuracy::{evaluate, AccuracyReport};
use triplec::bandwidth_model::{
    enh_access_model, intra_task_traffic, rdg_access_model, zoom_access_model,
};
use triplec::memory_model::FrameGeometry;

/// Structured result.
#[derive(Debug, Clone)]
pub struct BandwidthAccuracyResult {
    /// `(case label, predicted bytes, simulated bytes)` rows.
    pub cases: Vec<(String, u64, u64)>,
    /// Aggregate accuracy report (predicted vs. simulated).
    pub report: AccuracyReport,
}

/// Runs the model-vs-simulation comparison grid.
pub fn run() -> (BandwidthAccuracyResult, String) {
    let mut cases: Vec<(String, u64, u64)> = Vec::new();
    let l2_sizes = [2 * MB, 4 * MB, 8 * MB];
    let geoms = [
        FrameGeometry {
            width: 512,
            height: 512,
        },
        FrameGeometry {
            width: 1024,
            height: 1024,
        },
    ];
    for &geom in &geoms {
        for &cap in &l2_sizes {
            let cache = CacheGeometry {
                capacity: cap,
                line_size: 64,
                ways: 16,
            };
            for scales in [1usize, 3] {
                let m = rdg_access_model(geom, scales);
                let p = intra_task_traffic(&m, cap).total_bytes();
                let s = simulate_traffic(&m, cache).total_bytes();
                cases.push((
                    format!("RDG {}px {} scales L2={}MB", geom.width, scales, cap / MB),
                    p,
                    s,
                ));
            }
            for roi in [0.1f64, 0.5] {
                let m = enh_access_model(geom, roi);
                let p = intra_task_traffic(&m, cap).total_bytes();
                let s = simulate_traffic(&m, cache).total_bytes();
                cases.push((
                    format!("ENH {}px roi={:.1} L2={}MB", geom.width, roi, cap / MB),
                    p,
                    s,
                ));
                let m = zoom_access_model(geom, roi, geom.pixels() / 4);
                let p = intra_task_traffic(&m, cap).total_bytes();
                let s = simulate_traffic(&m, cache).total_bytes();
                cases.push((
                    format!("ZOOM {}px roi={:.1} L2={}MB", geom.width, roi, cap / MB),
                    p,
                    s,
                ));
            }
        }
    }

    let pairs: Vec<(f64, f64)> = cases
        .iter()
        .map(|&(_, p, s)| (p as f64, s as f64))
        .collect();
    let report = evaluate(&pairs);

    let mut out = String::new();
    out.push_str("Cache/bandwidth model vs. trace-driven simulation\n\n");
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|(label, p, s)| {
            vec![
                label.clone(),
                format!("{:.1}", *p as f64 / 1e6),
                format!("{:.1}", *s as f64 / 1e6),
                format!("{:.1}%", triplec::accuracy(*p as f64, *s as f64) * 100.0),
            ]
        })
        .collect();
    out.push_str(&table(&["case", "pred MB", "sim MB", "accuracy"], &rows));
    out.push_str(&format!(
        "\nmean accuracy over {} cases: {:.1}% (paper reports ~90%)\n",
        report.count,
        report.mean_accuracy * 100.0
    ));

    (BandwidthAccuracyResult { cases, report }, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_many_cases() {
        let (r, _) = run();
        assert!(r.cases.len() >= 20, "{} cases", r.cases.len());
    }

    #[test]
    fn mean_accuracy_near_paper_band() {
        let (r, text) = run();
        assert!(
            r.report.mean_accuracy > 0.8,
            "mean accuracy {:.3}:\n{text}",
            r.report.mean_accuracy
        );
    }

    #[test]
    fn every_case_has_nonzero_traffic() {
        let (r, _) = run();
        for (label, p, s) in &r.cases {
            assert!(*p > 0 && *s > 0, "case {label}: pred {p} sim {s}");
        }
    }
}
