//! Plain-text table and series rendering for the experiment reports.

/// Renders a table with a header row and aligned columns.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:<w$} ", h, w = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            out.push_str(&format!("| {:<w$} ", cell, w = widths[i]));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Renders a numeric series as a coarse ASCII strip chart (one row per
/// sample bucket), used for the Fig. 3 / Fig. 7 trace visualizations.
pub fn strip_chart(
    title: &str,
    series: &[(&str, &[f64])],
    height: usize,
    buckets: usize,
) -> String {
    let mut out = format!("{title}\n");
    let all: Vec<f64> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    if all.is_empty() || buckets == 0 || height == 0 {
        return out;
    }
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let marks = ['*', 'o', '+', 'x'];
    // bucket each series by averaging
    let bucketed: Vec<Vec<f64>> = series
        .iter()
        .map(|(_, s)| {
            (0..buckets)
                .map(|b| {
                    let start = b * s.len() / buckets;
                    let end = (((b + 1) * s.len()) / buckets).max(start + 1).min(s.len());
                    if start >= s.len() {
                        f64::NAN
                    } else {
                        s[start..end].iter().sum::<f64>() / (end - start) as f64
                    }
                })
                .collect()
        })
        .collect();
    for row in (0..height).rev() {
        let level = lo + span * (row as f64 + 0.5) / height as f64;
        let half = span / height as f64 / 2.0;
        let mut line = vec![' '; buckets];
        for (si, bs) in bucketed.iter().enumerate() {
            for (bi, &v) in bs.iter().enumerate() {
                if v.is_finite() && (v - level).abs() <= half {
                    line[bi] = marks[si % marks.len()];
                }
            }
        }
        out.push_str(&format!(
            "{:>9.2} |{}\n",
            level,
            line.iter().collect::<String>()
        ));
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(buckets)));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", marks[i % marks.len()], name))
        .collect();
    out.push_str(&format!("          {}\n", legend.join("   ")));
    out
}

/// Formats bytes as KB with thousands separators (Table 1 style).
pub fn kb(bytes: usize) -> String {
    let kb = bytes / 1024;
    let s = kb.to_string();
    let mut with_sep = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            with_sep.push(',');
        }
        with_sep.push(c);
    }
    with_sep
}

/// Formats a bandwidth in MB/s.
pub fn mbs(bytes_per_sec: f64) -> String {
    format!("{:.1}", bytes_per_sec / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["task", "ms"],
            &[
                vec!["RDG".into(), "40.0".into()],
                vec!["MKX_EXT".into(), "2.5".into()],
            ],
        );
        assert!(t.contains("| task    | ms   |"), "table:\n{t}");
        assert!(t.contains("| RDG     | 40.0 |"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn kb_formats_with_separators() {
        assert_eq!(kb(2048 * 1024), "2,048");
        assert_eq!(kb(512 * 1024), "512");
        assert_eq!(kb(7168 * 1024), "7,168");
    }

    #[test]
    fn mbs_formats() {
        assert_eq!(mbs(150.0e6), "150.0");
    }

    #[test]
    fn strip_chart_renders_without_panic() {
        let a: Vec<f64> = (0..100)
            .map(|i| 50.0 + (i as f64 / 10.0).sin() * 10.0)
            .collect();
        let b: Vec<f64> = (0..100).map(|i| 60.0 + (i % 5) as f64).collect();
        let chart = strip_chart("latency", &[("serial", &a), ("managed", &b)], 10, 40);
        assert!(chart.contains("serial"));
        assert!(chart.contains("managed"));
        assert!(chart.lines().count() >= 12);
    }

    #[test]
    fn strip_chart_empty_series_safe() {
        let chart = strip_chart("x", &[("e", &[])], 5, 10);
        assert!(chart.starts_with("x"));
    }
}
