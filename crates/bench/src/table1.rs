//! Table 1 — memory requirements for each task of Fig. 2 (KB).

use crate::report::{kb, table};
use triplec::memory_model::{implementation_table, paper_table1, FrameGeometry, TaskMemory};

/// Structured result: both tables.
#[derive(Debug, Clone)]
pub struct Table1Result {
    pub ours: Vec<TaskMemory>,
    pub paper: Vec<TaskMemory>,
}

fn rows(t: &[TaskMemory]) -> Vec<Vec<String>> {
    t.iter()
        .map(|m| {
            vec![
                m.task.to_string(),
                match m.rdg_selected {
                    None => "-".into(),
                    Some(true) => "x".into(),
                    Some(false) => "-".into(),
                },
                kb(m.input),
                kb(m.intermediate),
                kb(m.output),
            ]
        })
        .collect()
}

/// Runs the Table 1 derivation at the paper geometry.
pub fn run() -> (Table1Result, String) {
    let ours = implementation_table(FrameGeometry::PAPER, 512);
    let paper = paper_table1();
    let mut out = String::new();
    out.push_str("Table 1 — per-task memory requirements (KB) at 1024x1024, 2 B/px\n\n");
    out.push_str("This implementation (f32 intermediates, hence larger than the paper's):\n");
    out.push_str(&table(
        &["Task", "RDG sel", "Input", "Intermediate", "Output"],
        &rows(&ours),
    ));
    out.push_str("\nPaper's published Table 1 (reference implementation):\n");
    out.push_str(&table(
        &["Task", "RDG sel", "Input", "Intermediate", "Output"],
        &rows(&paper),
    ));
    out.push_str(
        "\nShape checks: MKX input grows when RDG is selected; RDG/ENH intermediates\n\
         exceed the 4 MB L2 (driving the Fig. 5 swap traffic) in both tables.\n",
    );
    (Table1Result { ours, paper }, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_tables_rendered() {
        let (r, text) = run();
        assert!(!r.ours.is_empty());
        assert_eq!(r.paper.len(), 8);
        assert!(text.contains("2,048"), "paper RDG input missing:\n{text}");
        assert!(text.contains("7,168"), "paper RDG intermediate missing");
    }

    #[test]
    fn shape_preserved_vs_paper() {
        let (r, _) = run();
        // same qualitative ordering: RDG is the biggest intermediate
        let ours_rdg = r.ours.iter().find(|m| m.task == "RDG_FULL").unwrap();
        let ours_enh = r.ours.iter().find(|m| m.task == "ENH").unwrap();
        assert!(ours_rdg.intermediate > ours_enh.intermediate);
        let paper_l2 = 4 * 1024 * 1024;
        assert!(ours_rdg.overflows(paper_l2));
    }
}
