//! Fig. 3 — computation time of the RDG FULL task over a long sequence,
//! decomposed into its low-frequency (EWMA / Eq. 1) and high-frequency
//! (Markov-modelled) parts.

use crate::config::ExperimentConfig;
use crate::report::strip_chart;
use pipeline::app::AppConfig;
use pipeline::runner::profile_rdg_direct;
use triplec::ewma::decompose;
use triplec::stats::{autocorrelation, fit_exponential_decay, mean, std_dev};
use xray::long_trace_sequence;

/// Structured result of the Fig. 3 trace.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Measured RDG FULL computation time per frame, ms.
    pub series: Vec<f64>,
    /// EWMA (LPF) component.
    pub lpf: Vec<f64>,
    /// Residual (HPF) component.
    pub hpf: Vec<f64>,
    /// Decay rate fitted to the HPF autocorrelation.
    pub hpf_decay_lambda: f64,
    /// Whether the residual passes the Markov-suitability check.
    pub markov_suitable: bool,
}

/// Runs the Fig. 3 trace: `frames` frames at `cfg.size`.
pub fn run(cfg: &ExperimentConfig, alpha: f64) -> (Fig3Result, String) {
    let seq = long_trace_sequence(cfg.size, cfg.size, cfg.fig3_frames);
    let series = profile_rdg_direct(seq, &AppConfig::default());

    let (lpf, hpf) = decompose(&series, alpha);
    let skip = (series.len() / 10)
        .max(5)
        .min(series.len().saturating_sub(2));
    let acf = autocorrelation(&hpf[skip..], 12);
    let fit = fit_exponential_decay(&acf);

    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 3 — RDG FULL computation time over {} frames at {}x{} (alpha = {alpha})\n\n",
        series.len(),
        cfg.size,
        cfg.size
    ));
    out.push_str(&strip_chart(
        "computation time [ms] (raw * / LPF o)",
        &[("RDG FULL", &series), ("LPF (EWMA)", &lpf)],
        14,
        72,
    ));
    out.push('\n');
    out.push_str(&strip_chart("HPF residual [ms]", &[("HPF", &hpf)], 8, 72));
    out.push_str(&format!(
        "\nseries: mean {:.2} ms, std {:.2} ms, min {:.2}, max {:.2}\n",
        mean(&series),
        std_dev(&series),
        series.iter().copied().fold(f64::INFINITY, f64::min),
        series.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    ));
    out.push_str(&format!(
        "HPF autocorrelation decay: lambda {:.2}, rmse {:.2} -> Markov-suitable: {}\n",
        fit.lambda, fit.rmse, fit.markov_suitable
    ));
    out.push_str("(paper: the same decomposition on its platform, 1,750 frames, 35-55 ms band)\n");

    (
        Fig3Result {
            series,
            lpf,
            hpf,
            hpf_decay_lambda: fit.lambda,
            markov_suitable: fit.markov_suitable,
        },
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            size: 96,
            fig3_frames: 40,
            ..Default::default()
        }
    }

    #[test]
    fn trace_has_requested_length_and_positive_times() {
        let (r, text) = run(&tiny(), 0.2);
        assert_eq!(r.series.len(), 40);
        assert!(r.series.iter().all(|&t| t > 0.0));
        assert!(text.contains("RDG FULL"));
    }

    #[test]
    fn decomposition_reconstructs_signal() {
        let (r, _) = run(&tiny(), 0.2);
        for i in 0..r.series.len() {
            assert!((r.lpf[i] + r.hpf[i] - r.series[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn residual_is_smaller_than_signal() {
        let (r, _) = run(&tiny(), 0.2);
        let s_std = triplec::stats::std_dev(&r.series);
        let h_std = triplec::stats::std_dev(&r.hpf);
        assert!(
            h_std <= s_std * 1.5,
            "hpf std {h_std} vs series std {s_std}"
        );
    }
}
