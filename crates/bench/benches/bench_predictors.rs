//! Distribution-aware predictor benchmark: the cost and quality of the
//! `Prediction` surface.
//!
//! Four sections, one JSON line per row:
//!
//! - `predictors/cost/<class>` — prediction cost per call, point
//!   estimate (the deprecated scalar path) versus full distribution
//!   (`{"point_ns", "distribution_ns"}`): the API redesign must not
//!   make every plan pay for quantiles it already computed.
//! - `predictors/calibration/<class>` — observed p50/p95/p99 coverage
//!   of each predictor class over a held-out seeded series (online
//!   training on, the Section 6 deployment mode).
//! - `predictors/selection/switch` — champion/challenger switch
//!   latency under a level-shift drift: frames from drift onset to
//!   promotion, plus the shadow-scoring cost per absorbed frame.
//! - `predictors/admission/storm64` — the 64-stream mean-vs-p99
//!   admission comparison from the nightly soak: the storm trace tiled
//!   to 64 streams, replayed under both policies, per-stream SLO
//!   overruns (budget-infeasible frames at the granted width) counted.
//!
//! `BENCH_predictors.json` is produced by running with
//! `PREDICTORS_JSON=BENCH_predictors.json`.

use pipeline::executor::FrameOutput;
use platform::trace::FrameRecord;
use rand::{Rng, SeedableRng};
use runtime::selection::{ModelSelector, SelectionConfig};
use runtime::workload::{Trace, TraceRunner};
use runtime::{AdmissionPolicy, BackpressurePolicy, EvictionPolicy, ServiceConfig, ShardLayout};
use std::time::Instant;
use triplec::predictor::{
    ConstantPredictor, EwmaMarkovPredictor, LinearMarkovPredictor, PredictContext, Predictor,
};
use triplec::scenario::Scenario;
use triplec::training::TaskSeries;
use triplec::triple::{TripleC, TripleCConfig};

/// Samples each predictor trains on before measurement.
const TRAIN: usize = 64;
/// Held-out samples scored for calibration coverage.
const TEST: usize = 256;

/// Dwell-4 square wave with seeded ±5 % noise — positively
/// autocorrelated with CV ~0.25, the regime the EWMA+Markov class is
/// built for.
fn wave_series(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let base = if (i / 4) % 2 == 0 { lo } else { hi };
            base * (1.0 + rng.gen_range(-0.05..0.05))
        })
        .collect()
}

/// Per-call prediction cost: the deprecated point path versus the full
/// distribution, over `iters` calls.
fn cost_row(name: &str, p: &dyn Predictor, ctx: &PredictContext, iters: usize) -> String {
    let start = Instant::now();
    for _ in 0..iters {
        #[allow(deprecated)]
        std::hint::black_box(p.predict_ms(ctx));
    }
    let point_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(p.predict(ctx));
    }
    let dist_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    format!(
        "{{\"name\": \"predictors/cost/{name}\", \"iters\": {iters}, \
         \"point_ns\": {point_ns:.1}, \"distribution_ns\": {dist_ns:.1}}}"
    )
}

/// Walks a predictor over held-out samples (observing each one — the
/// deployment mode) and reports quantile coverage.
fn calibration_row(name: &str, p: &mut dyn Predictor, samples: &[(f64, PredictContext)]) -> String {
    let (mut le50, mut le95, mut le99) = (0usize, 0usize, 0usize);
    for &(actual, ref ctx) in samples {
        let pred = p.predict(ctx);
        if actual <= pred.p50_ms {
            le50 += 1;
        }
        if actual <= pred.p95_ms {
            le95 += 1;
        }
        if actual <= pred.p99_ms {
            le99 += 1;
        }
        p.observe(actual, ctx);
    }
    let n = samples.len() as f64;
    format!(
        "{{\"name\": \"predictors/calibration/{name}\", \"frames\": {}, \
         \"p50_coverage\": {:.3}, \"p95_coverage\": {:.3}, \"p99_coverage\": {:.3}}}",
        samples.len(),
        le50 as f64 / n,
        le95 as f64 / n,
        le99 as f64 / n,
    )
}

/// Champion/challenger switch latency: a champion frozen on a 30/50 ms
/// wave, live workload level-shifted to 60/80 ms; counts frames until
/// the shadow-training challenger is promoted.
fn selection_row() -> String {
    let series = vec![
        TaskSeries::new("RDG_FULL", wave_series(200, 30.0, 50.0, 11)),
        TaskSeries::new("MKX_EXT", vec![2.5; 200]),
    ];
    let scenarios = vec![1u8; 200];
    let mut champion = TripleC::train(&series, &scenarios, TripleCConfig::default());
    let cfg = SelectionConfig {
        enabled: true,
        ..Default::default()
    };
    let mut sel = ModelSelector::new(&champion, cfg);
    let ctx = PredictContext {
        roi_kpixels: 1000.0,
    };
    let shifted = wave_series(256, 60.0, 80.0, 12);
    let mut frames_to_switch = None;
    let start = Instant::now();
    let mut absorbed = 0usize;
    for (i, &rdg_ms) in shifted.iter().enumerate() {
        let out = FrameOutput {
            record: FrameRecord {
                frame: i,
                scenario: 1,
                task_times: vec![("RDG_FULL", rdg_ms), ("MKX_EXT", 2.5)],
                latency_ms: rdg_ms + 2.5,
            },
            scenario: Scenario::from_id(1),
            roi: None,
            roi_kpixels: 1000.0,
            couple_found: true,
            display: None,
        };
        absorbed += 1;
        if sel.absorb(&mut champion, &out, &ctx).is_some() {
            frames_to_switch = Some(absorbed);
            break;
        }
    }
    let wall_ns = start.elapsed().as_nanos() as f64;
    let frames = frames_to_switch.expect("level-shift drift must promote the challenger");
    format!(
        "{{\"name\": \"predictors/selection/switch\", \
         \"frames_to_switch\": {frames}, \"absorb_ns\": {:.0}}}",
        wall_ns / absorbed as f64,
    )
}

/// The nightly soak's 64-stream admission comparison (storm trace tiled
/// to 64 streams, 36 ms SLO, p99-feasibility planning in both runs).
fn admission_row() -> String {
    let path = format!("{}/../../traces/storm.trace", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("read storm trace");
    let storm = Trace::parse(&text).expect("parse storm trace");
    let mut base = storm.streams[0].clone();
    base.budget_ms = 36.0;
    let streams = (0..64u32)
        .map(|i| {
            let mut s = base.clone();
            s.id = i;
            s.seed = base.seed + u64::from(i);
            s
        })
        .collect();
    let trace = Trace {
        version: storm.version,
        streams,
    };
    let cfg = ServiceConfig {
        total_cores: 8,
        layout: ShardLayout::Single,
        queue_capacity: 64,
        backpressure: BackpressurePolicy::Block,
        eviction: EvictionPolicy::None,
        max_concurrent: 8,
    };
    let run = |policy: AdmissionPolicy| {
        let start = Instant::now();
        let r = TraceRunner::new(trace.clone())
            .with_service_config(cfg)
            .with_admission(policy)
            .with_planning_quantile(0.99)
            .run();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let overruns: usize = r
            .report
            .session
            .streams
            .iter()
            .map(|s| s.infeasible_frames)
            .sum();
        (overruns, wall_ms)
    };
    let (mean_overruns, mean_wall_ms) = run(AdmissionPolicy::Mean);
    let (p99_overruns, p99_wall_ms) = run(AdmissionPolicy::Quantile(0.99));
    format!(
        "{{\"name\": \"predictors/admission/storm64\", \"streams\": 64, \
         \"budget_ms\": 36.0, \"mean_overruns\": {mean_overruns}, \
         \"p99_overruns\": {p99_overruns}, \"mean_wall_ms\": {mean_wall_ms:.1}, \
         \"p99_wall_ms\": {p99_wall_ms:.1}}}"
    )
}

fn main() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("# bench_predictors: {host} host core(s)");
    let mut lines = Vec::new();

    // --- prediction cost per call, point vs distribution ---
    let ctx = PredictContext {
        roi_kpixels: 1000.0,
    };
    let iters = 1_000_000usize;
    let ewma = EwmaMarkovPredictor::train(&wave_series(TRAIN, 30.0, 50.0, 1), 0.2, 24, "BENCH");
    lines.push(cost_row("ewma_markov", &ewma, &ctx, iters));
    let points: Vec<(f64, f64)> = wave_series(TRAIN, 30.0, 50.0, 2)
        .iter()
        .enumerate()
        .map(|(i, &ms)| (800.0 + (i % 8) as f64 * 50.0, ms))
        .collect();
    let linear = LinearMarkovPredictor::train(&points, 24, "BENCH");
    lines.push(cost_row("linear_markov", &linear, &ctx, iters));
    let constant = ConstantPredictor::train(&vec![40.0; TRAIN]);
    lines.push(cost_row("constant", &constant, &ctx, iters));

    // --- calibration coverage per predictor class ---
    let fixed_ctx = || PredictContext {
        roi_kpixels: 1000.0,
    };
    let mut ewma = EwmaMarkovPredictor::train(&wave_series(TRAIN, 30.0, 50.0, 3), 0.2, 24, "BENCH");
    let held_out: Vec<(f64, PredictContext)> = wave_series(TEST, 30.0, 50.0, 4)
        .into_iter()
        .map(|ms| (ms, fixed_ctx()))
        .collect();
    lines.push(calibration_row("ewma_markov", &mut ewma, &held_out));

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let roi_sample = |rng: &mut rand::rngs::StdRng| -> (f64, f64) {
        let roi = rng.gen_range(400.0..1600.0);
        let ms = 5.0 + 0.03 * roi * (1.0 + rng.gen_range(-0.05..0.05));
        (roi, ms)
    };
    let train_pts: Vec<(f64, f64)> = (0..TRAIN).map(|_| roi_sample(&mut rng)).collect();
    let mut linear = LinearMarkovPredictor::train(&train_pts, 24, "BENCH");
    let held_out: Vec<(f64, PredictContext)> = (0..TEST)
        .map(|_| {
            let (roi, ms) = roi_sample(&mut rng);
            (ms, PredictContext { roi_kpixels: roi })
        })
        .collect();
    lines.push(calibration_row("linear_markov", &mut linear, &held_out));

    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut constant = ConstantPredictor::train(
        &(0..TRAIN)
            .map(|_| 40.0 * (1.0 + rng.gen_range(-0.02..0.02)))
            .collect::<Vec<_>>(),
    );
    let held_out: Vec<(f64, PredictContext)> = (0..TEST)
        .map(|_| (40.0 * (1.0 + rng.gen_range(-0.02..0.02)), fixed_ctx()))
        .collect();
    lines.push(calibration_row("constant", &mut constant, &held_out));

    // --- champion/challenger switch latency ---
    lines.push(selection_row());

    // --- 64-stream mean-vs-p99 admission comparison ---
    lines.push(admission_row());

    for line in &lines {
        println!("{line}");
    }
    if let Ok(path) = std::env::var("PREDICTORS_JSON") {
        use std::io::Write;
        let mut f = std::fs::File::create(&path).expect("create PREDICTORS_JSON file");
        for line in &lines {
            writeln!(f, "{line}").expect("write PREDICTORS_JSON");
        }
        eprintln!("# wrote {path}");
    }
}
