//! Criterion benches of the individual image-processing tasks — the
//! per-task computation-time profile underlying Table 2(b) and Fig. 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imaging::couples::{cpls_select, CplsConfig};
use imaging::enhance::{enh_integrate, EnhConfig, EnhState};
use imaging::guidewire::{gw_extract, GwConfig};
use imaging::image::Roi;
use imaging::markers::{mkx_extract, Marker, MkxBuffers, MkxConfig};
use imaging::registration::RigidTransform;
use imaging::ridge::{rdg_full, rdg_roi, RdgBuffers, RdgConfig};
use imaging::zoom::{zoom, ZoomConfig};
use xray::{SequenceConfig, SequenceGenerator};

const SIZE: usize = 256;

fn test_frame() -> imaging::image::ImageU16 {
    let seq = SequenceConfig {
        width: SIZE,
        height: SIZE,
        frames: 1,
        seed: 7,
        ..Default::default()
    };
    SequenceGenerator::new(seq).next().unwrap().image
}

fn bench_rdg(c: &mut Criterion) {
    let frame = test_frame();
    let cfg = RdgConfig::default();
    let mut bufs = RdgBuffers::new(SIZE, SIZE);
    let mut group = c.benchmark_group("rdg");
    group.sample_size(10);
    group.bench_function("full_frame", |b| {
        b.iter(|| rdg_full(&frame, &cfg, &mut bufs));
    });
    for kpx in [8usize, 16, 32] {
        let edge = ((kpx * 1000) as f64).sqrt() as usize;
        let roi = Roi::new(8, 8, edge.min(SIZE - 8), edge.min(SIZE - 8));
        group.bench_with_input(BenchmarkId::new("roi_kpx", kpx), &roi, |b, &roi| {
            b.iter(|| rdg_roi(&frame, roi, &cfg, &mut bufs));
        });
    }
    group.finish();
}

fn bench_mkx(c: &mut Criterion) {
    let frame = test_frame();
    let cfg = MkxConfig::default();
    let mut bufs = MkxBuffers::new(SIZE, SIZE);
    let mut group = c.benchmark_group("mkx");
    group.sample_size(10);
    group.bench_function("full_frame", |b| {
        b.iter(|| mkx_extract(&frame, frame.full_roi(), &cfg, &mut bufs));
    });
    group.finish();
}

fn bench_features(c: &mut Criterion) {
    let markers: Vec<Marker> = (0..24)
        .map(|i| Marker {
            x: (i % 6) as f64 * 40.0 + 10.0,
            y: (i / 6) as f64 * 40.0 + 10.0,
            strength: 50.0 + i as f32,
            scale: 2.0,
        })
        .collect();
    let cfg = CplsConfig {
        expected_distance: 40.0,
        distance_tolerance: 5.0,
        ..Default::default()
    };
    c.bench_function("cpls_select_24_candidates", |b| {
        b.iter(|| cpls_select(&markers, None, &cfg));
    });

    let map = imaging::image::ImageF32::from_fn(SIZE, SIZE, |x, y| {
        let d = (x as f64 - y as f64).abs();
        (100.0 * (-d * d / 8.0).exp()) as f32
    });
    let couple = imaging::couples::Couple {
        a: Marker {
            x: 40.0,
            y: 40.0,
            strength: 1.0,
            scale: 2.0,
        },
        b: Marker {
            x: 180.0,
            y: 180.0,
            strength: 1.0,
            scale: 2.0,
        },
        score: 0.0,
    };
    c.bench_function("gw_extract_140px", |b| {
        b.iter(|| gw_extract(&map, &couple, &GwConfig::default()));
    });
}

fn bench_enh_zoom(c: &mut Criterion) {
    let frame = test_frame();
    let mut state = EnhState::new(SIZE, SIZE);
    let t = RigidTransform {
        theta: 0.01,
        cx: 128.0,
        cy: 128.0,
        tx: 1.5,
        ty: -0.5,
    };
    let roi = Roi::new(64, 64, 128, 128);
    let mut group = c.benchmark_group("enh_zoom");
    group.sample_size(10);
    group.bench_function("enh_integrate_roi", |b| {
        b.iter(|| enh_integrate(&frame, &t, roi, &EnhConfig::default(), &mut state));
    });
    group.bench_function("zoom_roi_to_256", |b| {
        let cfg = ZoomConfig {
            out_width: 256,
            out_height: 256,
            ..Default::default()
        };
        b.iter(|| zoom(&frame, roi, &cfg));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rdg,
    bench_mkx,
    bench_features,
    bench_enh_zoom
);
criterion_main!(benches);
