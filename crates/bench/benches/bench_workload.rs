//! Trace-driven workload benchmark: replays the checked-in trace corpus
//! (`traces/*.trace`) through the service tier with the virtual replay
//! clock and reports replay throughput, drop/fault counts, and a
//! determinism bit (two replays, ledger-diffed). A second section
//! measures the text-format plane itself: trace and ledger
//! parse/serialize round-trip throughput.
//!
//! Emits one JSON line per row:
//! `{"name": "workload/replay/<trace>", "streams", "frames", "wall_ms",
//!   "frames_per_s", "executed", "dropped", "faults", "deterministic"}`
//! and
//! `{"name": "workload/format/<what>", "iters", "wall_ms", "per_s"}`.
//! `BENCH_workload.json` is produced by running with
//! `WORKLOAD_JSON=BENCH_workload.json`.

use runtime::workload::{FrameOutcome, RunLedger, Trace, TraceRunner};
use runtime::{BackpressurePolicy, EvictionPolicy, ServiceConfig, ShardLayout};
use std::io::Write;
use std::time::Instant;

const TRACES: &[&str] = &["storm", "burst", "mixed"];

fn corpus_path(name: &str) -> String {
    format!("{}/../../traces/{name}.trace", env!("CARGO_MANIFEST_DIR"))
}

fn pinned_config() -> ServiceConfig {
    ServiceConfig {
        total_cores: 8,
        layout: ShardLayout::Single,
        queue_capacity: 4,
        backpressure: BackpressurePolicy::Block,
        eviction: EvictionPolicy::None,
        max_concurrent: 8,
    }
}

fn replay(trace: &Trace) -> (RunLedger, f64) {
    let start = Instant::now();
    let report = TraceRunner::new(trace.clone())
        .with_service_config(pinned_config())
        .run();
    (report.ledger, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("# bench_workload: {host} host core(s), corpus: {TRACES:?}");

    let mut lines = Vec::new();
    for &name in TRACES {
        let text = std::fs::read_to_string(corpus_path(name)).expect("read trace");
        let trace = Trace::parse(&text).expect("corpus trace parses");
        let (first, wall_ms) = replay(&trace);
        let (second, _) = replay(&trace);
        let deterministic = first.diff(&second).is_empty();
        let frames = trace.total_frames();
        let executed = first
            .entries
            .iter()
            .filter(|e| e.outcome == FrameOutcome::Executed)
            .count();
        let line = format!(
            "{{\"name\": \"workload/replay/{name}\", \"streams\": {}, \
             \"frames\": {frames}, \"wall_ms\": {wall_ms:.1}, \
             \"frames_per_s\": {:.1}, \"executed\": {executed}, \
             \"dropped\": {}, \"faults\": {}, \"deterministic\": {deterministic}}}",
            trace.streams.len(),
            frames as f64 / (wall_ms / 1e3),
            frames - executed,
            first.faults.len(),
        );
        println!("{line}");
        lines.push(line);
    }

    // Format-plane throughput: parse+serialize round trips over the
    // whole corpus (trace side) and over a freshly produced ledger.
    let corpus: Vec<String> = TRACES
        .iter()
        .map(|n| std::fs::read_to_string(corpus_path(n)).expect("read trace"))
        .collect();
    let iters = 2000usize;
    let start = Instant::now();
    for _ in 0..iters {
        for text in &corpus {
            let t = Trace::parse(text).expect("parses");
            std::hint::black_box(t.to_text());
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let line = format!(
        "{{\"name\": \"workload/format/trace_roundtrip\", \"iters\": {}, \
         \"wall_ms\": {wall_ms:.1}, \"per_s\": {:.0}}}",
        iters * corpus.len(),
        (iters * corpus.len()) as f64 / (wall_ms / 1e3),
    );
    println!("{line}");
    lines.push(line);

    let (ledger, _) = replay(&Trace::parse(&corpus[2]).expect("parses"));
    let ledger_text = ledger.to_text();
    let start = Instant::now();
    for _ in 0..iters {
        let l = RunLedger::parse(&ledger_text).expect("parses");
        std::hint::black_box(l.to_text());
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let line = format!(
        "{{\"name\": \"workload/format/ledger_roundtrip\", \"iters\": {iters}, \
         \"wall_ms\": {wall_ms:.1}, \"per_s\": {:.0}}}",
        iters as f64 / (wall_ms / 1e3),
    );
    println!("{line}");
    lines.push(line);

    if let Ok(path) = std::env::var("WORKLOAD_JSON") {
        let mut f = std::fs::File::create(&path).expect("create WORKLOAD_JSON file");
        for line in &lines {
            writeln!(f, "{line}").expect("write WORKLOAD_JSON");
        }
        eprintln!("# wrote {path}");
    }
}
