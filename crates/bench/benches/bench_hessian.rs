//! Multi-scale Hessian pipeline benchmarks: the fused, tiled, SIMD RDG
//! core against the reference three-pass engine, whole-frame and per
//! scale.
//!
//! The fused engine is bit-identical to the reference (pinned by the
//! `fused_rdg_identity` property tests); this bench quantifies the
//! speedup. `rdg_serial/full_frame/1024` is directly comparable to the
//! same id in `BENCH_convolve.json`, which was recorded before the fusion
//! work and therefore doubles as the historical baseline.
//! `BENCH_hessian.json` is produced by running with
//! `CRITERION_JSON=BENCH_hessian.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imaging::fused::{fused_ridge_scale, FusedScratch};
use imaging::hessian::{
    accumulate_max_response, hessian_at_scale, ridge_response, HessianImages, HessianScratch,
    KernelCache,
};
use imaging::image::{Image, ImageF32, Roi};
use imaging::ridge::{rdg_full, rdg_full_reference, RdgBuffers, RdgConfig};

const SIZE: usize = 1024;
const SCALES: [f32; 3] = [1.5, 2.5, 4.0];

fn synthetic_u16(w: usize, h: usize) -> imaging::image::ImageU16 {
    Image::from_fn(w, h, |x, y| {
        let d = (x as f32 - y as f32).abs() / 1.5;
        (2000.0 - 900.0 * (-d * d / 2.0).exp()) as u16
    })
}

fn synthetic_f32(w: usize, h: usize) -> ImageF32 {
    Image::from_fn(w, h, |x, y| {
        let d = (x as f32 - y as f32).abs() / 2.0;
        2000.0 - 700.0 * (-d * d / 8.0).exp() + ((x * 7 + y * 13) % 32) as f32
    })
}

/// Whole-frame serial RDG: fused engine (the default) vs the reference
/// three-pass engine, warm buffers, recycled outputs (steady-state loop).
fn bench_rdg_engines(c: &mut Criterion) {
    let frame = synthetic_u16(SIZE, SIZE);
    let cfg = RdgConfig::default();

    let mut group = c.benchmark_group("rdg_serial");
    group.sample_size(10);
    let mut bufs = RdgBuffers::new(SIZE, SIZE);
    group.bench_with_input(BenchmarkId::new("full_frame", SIZE), &SIZE, |b, _| {
        b.iter(|| {
            let out = rdg_full(&frame, &cfg, &mut bufs);
            let pixels = out.ridge_pixels;
            bufs.recycle(out);
            pixels
        })
    });
    let mut ref_bufs = RdgBuffers::new(SIZE, SIZE);
    group.bench_with_input(
        BenchmarkId::new("full_frame_reference", SIZE),
        &SIZE,
        |b, _| {
            b.iter(|| {
                let out = rdg_full_reference(&frame, &cfg, &mut ref_bufs);
                let pixels = out.ridge_pixels;
                ref_bufs.recycle(out);
                pixels
            })
        },
    );
    group.finish();
}

/// Single-scale Hessian ridge accumulation: the fused single-pass tile
/// sweep vs the reference separable passes + full-frame response, per
/// scale of the default set.
fn bench_hessian_scale(c: &mut Criterion) {
    let src = synthetic_f32(SIZE, SIZE);
    let roi = Roi::full(SIZE, SIZE);

    let mut group = c.benchmark_group("hessian_scale");
    group.sample_size(10);

    let mut acc = ImageF32::new(SIZE, SIZE);
    let mut scratch = FusedScratch::new();
    let mut kernels = KernelCache::new();
    for &sigma in &SCALES {
        group.bench_with_input(BenchmarkId::new("fused", sigma), &sigma, |b, &sigma| {
            b.iter(|| {
                let (g, d1, d2) = kernels.get(sigma);
                fused_ridge_scale(&src, &mut acc, &mut scratch, g, d1, d2, roi);
            })
        });
    }

    let mut hessian = HessianImages {
        ixx: ImageF32::new(SIZE, SIZE),
        iyy: ImageF32::new(SIZE, SIZE),
        ixy: ImageF32::new(SIZE, SIZE),
    };
    let mut conv = HessianScratch::new(SIZE, SIZE);
    for &sigma in &SCALES {
        group.bench_with_input(BenchmarkId::new("reference", sigma), &sigma, |b, &sigma| {
            b.iter(|| {
                hessian_at_scale(&src, &mut hessian, &mut conv, roi, sigma);
                accumulate_max_response(&hessian, &mut acc, roi, ridge_response);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rdg_engines, bench_hessian_scale);
criterion_main!(benches);
