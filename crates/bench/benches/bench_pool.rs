//! Stripe-dispatch benchmarks of the persistent worker pool.
//!
//! Measures (a) the fixed per-batch dispatch cost of `StripePool` against
//! spawning scoped threads per frame — the overhead the pool eliminates —
//! and (b) that per-frame dispatch latency stays flat as a sequence runs
//! longer (the pool does no per-frame setup, so processing N frames costs
//! N times one frame).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use imaging::image::{Image, ImageU16, Roi};
use imaging::parallel::{for_each_stripe_on, rdg_parallel_pooled, ParallelRdgBuffers, StripePool};
use imaging::ridge::RdgConfig;

const STRIPES: usize = 4;

fn busy_work(stripe: Roi) -> f64 {
    let mut acc = 0.0f64;
    for y in stripe.y..stripe.bottom() {
        for x in stripe.x..stripe.right() {
            acc += ((x * 31 + y * 17) % 101) as f64;
        }
    }
    acc
}

/// Per-frame dispatch cost: persistent pool vs scoped spawn, tiny jobs so
/// the overhead dominates the measurement.
fn bench_dispatch_overhead(c: &mut Criterion) {
    let pool = StripePool::new(STRIPES);
    let roi = Roi::full(64, 64);

    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    group.bench_function("pool", |b| {
        b.iter(|| for_each_stripe_on(&pool, roi, STRIPES, busy_work))
    });
    group.bench_function("spawn_per_frame", |b| {
        b.iter(|| {
            let parts = roi.stripes(STRIPES);
            let mut results = vec![0.0f64; parts.len()];
            std::thread::scope(|s| {
                for (slot, &part) in results.iter_mut().zip(&parts) {
                    s.spawn(move || *slot = busy_work(part));
                }
            });
            results
        })
    });
    group.finish();
}

/// Dispatch latency must not grow with sequence length: the ns/frame of an
/// N-frame striped-RDG run is flat in N (no per-frame thread or buffer
/// setup once warm).
fn bench_latency_flat_across_frames(c: &mut Criterion) {
    let size = 256usize;
    let frame: ImageU16 = Image::from_fn(size, size, |x, y| {
        let d = (x as f32 - y as f32).abs() / 1.5;
        (2000.0 - 900.0 * (-d * d / 2.0).exp()) as u16
    });
    let cfg = RdgConfig::default();
    let pool = StripePool::new(STRIPES);
    let mut bufs = ParallelRdgBuffers::new();
    // warm the buffer pools so every measured frame is steady state
    let out = rdg_parallel_pooled(&pool, &frame, frame.full_roi(), &cfg, STRIPES, &mut bufs);
    bufs.recycle(out);

    let mut group = c.benchmark_group("pool_frames");
    group.sample_size(5);
    for frames in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("rdg_striped", frames), &frames, |b, &n| {
            b.iter(|| {
                let mut pixels = 0usize;
                for _ in 0..n {
                    let out = rdg_parallel_pooled(
                        &pool,
                        &frame,
                        frame.full_roi(),
                        &cfg,
                        STRIPES,
                        &mut bufs,
                    );
                    pixels += out.ridge_pixels;
                    bufs.recycle(out);
                }
                black_box(pixels)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dispatch_overhead,
    bench_latency_flat_across_frames
);
criterion_main!(benches);
