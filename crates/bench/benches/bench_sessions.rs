//! Multi-stream session benchmark: aggregate throughput and per-stream
//! tail latency at 1, 2, 4 and 8 concurrent streams through the wave
//! scheduler, then 16, 32 and 64 streams through the sharded service
//! tier (prediction-driven admission, time-slice eviction, bounded
//! ingress queues).
//!
//! Each stream runs the same managed closed loop (own manager + model
//! instance) over its own synthetic sequence; the `SessionScheduler`
//! admits them against a shared 8-core modelled budget and executes them
//! concurrently on host threads over the shared stripe pool, while the
//! `ServiceCore` rows queue the oversubscription and report queue-depth
//! and admission-latency columns.
//!
//! Emits one JSON line per stream count:
//! `{"name", "streams", "frames", "wall_ms", "aggregate_fps",
//!   "mean_p99_ms", "p99_ms_per_stream"}`, with service rows adding
//! `{"max_queue_depth", "mean_admission_ms", "p99_admission_ms",
//!   "evictions", "shards"}`.
//! `BENCH_sessions.json` is produced by running with
//! `SESSIONS_JSON=BENCH_sessions.json`.

use pipeline::app::AppConfig;
use pipeline::executor::ExecutionPolicy;
use pipeline::runner::run_sequence;
use runtime::{
    percentile, BackpressurePolicy, EvictionPolicy, FairnessPolicy, ServiceConfig, ServiceCore,
    SessionConfig, SessionScheduler, ShardLayout, StreamSpec,
};
use std::io::Write;
use triplec::triple::{TripleC, TripleCConfig};
use xray::{NoiseConfig, SequenceConfig};

const WIDTH: usize = 128;
const HEIGHT: usize = 128;
const FRAMES: usize = 10;

fn seq(seed: u64) -> SequenceConfig {
    SequenceConfig {
        width: WIDTH,
        height: HEIGHT,
        frames: FRAMES,
        seed,
        noise: NoiseConfig {
            quantum_scale: 0.3,
            electronic_std: 2.0,
        },
        ..Default::default()
    }
}

fn trained_model() -> TripleC {
    let profile = run_sequence(seq(900), &AppConfig::default(), &ExecutionPolicy::default());
    let cfg = TripleCConfig {
        geometry: triplec::FrameGeometry {
            width: WIDTH,
            height: HEIGHT,
        },
        ..Default::default()
    };
    TripleC::train(&profile.task_series(), &profile.scenarios, cfg)
}

fn main() {
    let model = trained_model();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("# bench_sessions: {host} host core(s), {FRAMES} frames/stream");

    let mut lines = Vec::new();
    for &streams in &[1usize, 2, 4, 8] {
        let specs: Vec<StreamSpec> = (0..streams)
            .map(|i| {
                StreamSpec::builder(seq(1000 + i as u64), AppConfig::default(), model.clone())
                    .build()
            })
            .collect();
        let cfg = SessionConfig {
            total_cores: 8,
            fairness: FairnessPolicy::EqualShare,
            max_concurrent: streams,
        };
        let report = SessionScheduler::new(cfg).run(specs);
        let p99s: Vec<f64> = report.streams.iter().map(|s| s.p99_wall_ms()).collect();
        let mean_p99 = p99s.iter().sum::<f64>() / p99s.len() as f64;
        let line = format!(
            "{{\"name\": \"sessions/streams/{streams}\", \"streams\": {streams}, \
             \"frames\": {}, \"wall_ms\": {:.1}, \"aggregate_fps\": {:.2}, \
             \"mean_p99_ms\": {:.2}, \"p99_ms_per_stream\": [{}]}}",
            report.total_frames,
            report.wall_ms,
            report.aggregate_fps,
            mean_p99,
            p99s.iter()
                .map(|p| format!("{p:.2}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        println!("{line}");
        lines.push(line);
    }

    // Oversubscribed counts go through the service tier: the admission
    // loop queues what the 8-core budget cannot run, time-slice eviction
    // round-robins the backlog, and the ingress queues stay bounded.
    for &streams in &[16usize, 32, 64] {
        let specs: Vec<StreamSpec> = (0..streams)
            .map(|i| {
                StreamSpec::builder(seq(2000 + i as u64), AppConfig::default(), model.clone())
                    .build()
            })
            .collect();
        let cfg = ServiceConfig {
            total_cores: 8,
            layout: ShardLayout::PerCoreGroup,
            queue_capacity: 4,
            backpressure: BackpressurePolicy::Block,
            eviction: EvictionPolicy::TimeSlice { frames: 5 },
            max_concurrent: 8,
        };
        let report = ServiceCore::new(cfg).run_batch(specs);
        let session = &report.session;
        let p99s: Vec<f64> = session.streams.iter().map(|s| s.p99_wall_ms()).collect();
        let mean_p99 = p99s.iter().sum::<f64>() / p99s.len() as f64;
        let waits: Vec<f64> = report.streams.iter().map(|s| s.admission_wait_ms).collect();
        let mean_wait = waits.iter().sum::<f64>() / waits.len() as f64;
        let p99_wait = percentile(&waits, 0.99);
        let max_depth = report
            .streams
            .iter()
            .map(|s| s.queue.max_depth)
            .max()
            .unwrap_or(0);
        let evictions: usize = report.streams.iter().map(|s| s.evictions).sum();
        let line = format!(
            "{{\"name\": \"sessions/service/{streams}\", \"streams\": {streams}, \
             \"frames\": {}, \"wall_ms\": {:.1}, \"aggregate_fps\": {:.2}, \
             \"mean_p99_ms\": {:.2}, \"max_queue_depth\": {max_depth}, \
             \"mean_admission_ms\": {mean_wait:.2}, \"p99_admission_ms\": {p99_wait:.2}, \
             \"evictions\": {evictions}, \"shards\": {}, \"p99_ms_per_stream\": [{}]}}",
            session.total_frames,
            session.wall_ms,
            session.aggregate_fps,
            mean_p99,
            report.shards,
            p99s.iter()
                .map(|p| format!("{p:.2}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        println!("{line}");
        lines.push(line);
    }

    if let Ok(path) = std::env::var("SESSIONS_JSON") {
        let mut f = std::fs::File::create(&path).expect("create SESSIONS_JSON file");
        for line in &lines {
            writeln!(f, "{line}").expect("write SESSIONS_JSON");
        }
        eprintln!("# wrote {path}");
    }
}
