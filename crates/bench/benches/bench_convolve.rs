//! Separable-convolution micro-benchmarks: cache-aware passes vs the
//! straight per-pixel reference, plus the full serial RDG frame they feed.
//!
//! The optimized passes are bit-identical to the reference (asserted by
//! unit tests in `imaging::kernel`); this bench quantifies the speedup.
//! `BENCH_convolve.json` is produced by running with
//! `CRITERION_JSON=BENCH_convolve.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imaging::image::{Image, ImageF32, Roi};
use imaging::kernel::{
    convolve_cols, convolve_cols_reference, convolve_rows, convolve_rows_reference, Kernel1D,
};
use imaging::ridge::{rdg_full, RdgBuffers, RdgConfig};

const SIZE: usize = 1024;

fn synthetic_f32(w: usize, h: usize) -> ImageF32 {
    Image::from_fn(w, h, |x, y| {
        let d = (x as f32 - y as f32).abs() / 2.0;
        2000.0 - 700.0 * (-d * d / 8.0).exp() + ((x * 7 + y * 13) % 32) as f32
    })
}

fn synthetic_u16(w: usize, h: usize) -> imaging::image::ImageU16 {
    Image::from_fn(w, h, |x, y| {
        let d = (x as f32 - y as f32).abs() / 1.5;
        (2000.0 - 900.0 * (-d * d / 2.0).exp()) as u16
    })
}

fn bench_passes(c: &mut Criterion) {
    let src = synthetic_f32(SIZE, SIZE);
    let mut dst = ImageF32::new(SIZE, SIZE);
    let roi = Roi::full(SIZE, SIZE);
    let k = Kernel1D::gaussian(2.5);

    let mut group = c.benchmark_group("convolve");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("rows_reference", SIZE), &SIZE, |b, _| {
        b.iter(|| convolve_rows_reference(&src, &mut dst, roi, &k))
    });
    group.bench_with_input(BenchmarkId::new("rows_optimized", SIZE), &SIZE, |b, _| {
        b.iter(|| convolve_rows(&src, &mut dst, roi, &k))
    });
    group.bench_with_input(BenchmarkId::new("cols_reference", SIZE), &SIZE, |b, _| {
        b.iter(|| convolve_cols_reference(&src, &mut dst, roi, &k))
    });
    group.bench_with_input(BenchmarkId::new("cols_optimized", SIZE), &SIZE, |b, _| {
        b.iter(|| convolve_cols(&src, &mut dst, roi, &k))
    });
    group.finish();
}

fn bench_rdg_frame(c: &mut Criterion) {
    let frame = synthetic_u16(SIZE, SIZE);
    let cfg = RdgConfig::default();
    let mut bufs = RdgBuffers::new(SIZE, SIZE);

    let mut group = c.benchmark_group("rdg_serial");
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::new("full_frame", SIZE), &SIZE, |b, _| {
        b.iter(|| {
            let out = rdg_full(&frame, &cfg, &mut bufs);
            let pixels = out.ridge_pixels;
            bufs.recycle(out);
            pixels
        })
    });
    group.finish();
}

criterion_group!(benches, bench_passes, bench_rdg_frame);
criterion_main!(benches);
