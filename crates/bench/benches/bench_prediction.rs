//! Criterion benches of the Triple-C prediction models themselves.
//!
//! The prediction must be orders of magnitude cheaper than the work it
//! predicts (the resource manager runs it every frame); these benches pin
//! that property.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use triplec::ewma::Ewma;
use triplec::markov::MarkovChain;
use triplec::predictor::{EwmaMarkovPredictor, PredictContext};
use triplec::quantize::Quantizer;
use triplec::scenario::Scenario;
use triplec::training::TaskSeries;
use triplec::triple::{TripleC, TripleCConfig};

fn ar_series(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut ar = 0.0f64;
    (0..n)
        .map(|i| {
            ar = 0.85 * ar + rng.gen_range(-1.0..1.0);
            40.0 + 8.0 * (i as f64 / 90.0).sin() + 3.0 * ar
        })
        .collect()
}

fn bench_primitives(c: &mut Criterion) {
    let series = ar_series(2000, 1);
    c.bench_function("ewma_update", |b| {
        let mut e = Ewma::new(0.2);
        let mut i = 0;
        b.iter(|| {
            e.update(series[i % series.len()]);
            i += 1;
        });
    });

    let q = Quantizer::train(&series, 16);
    c.bench_function("quantizer_state_of", |b| {
        let mut i = 0;
        b.iter(|| {
            let s = q.state_of(series[i % series.len()]);
            i += 1;
            s
        });
    });

    let seq: Vec<usize> = series.iter().map(|&v| q.state_of(v)).collect();
    let chain = MarkovChain::estimate(&seq, q.states());
    c.bench_function("markov_expected_next", |b| {
        let mut i = 0;
        b.iter(|| {
            let e = chain.expected_next(seq[i % seq.len()], |j| q.representative(j));
            i += 1;
            e
        });
    });
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let series = ar_series(n, 2);
        group.bench_with_input(BenchmarkId::new("ewma_markov_train", n), &series, |b, s| {
            b.iter(|| EwmaMarkovPredictor::train(s, 0.2, 24, "RDG"));
        });
    }
    group.finish();
}

fn bench_facade(c: &mut Criterion) {
    let series = vec![
        TaskSeries::new("RDG_FULL", ar_series(1000, 3)),
        TaskSeries::new("MKX_EXT", vec![2.5; 1000]),
        TaskSeries::new(
            "CPLS_SEL",
            ar_series(1000, 4).iter().map(|v| v / 20.0).collect(),
        ),
        TaskSeries::new("REG", vec![2.0; 1000]),
        TaskSeries::new("ENH", vec![24.0; 1000]),
        TaskSeries::new("ZOOM", vec![12.5; 1000]),
    ];
    let scenarios: Vec<u8> = (0..1000).map(|i| if i % 40 < 30 { 5 } else { 7 }).collect();
    let model = TripleC::train(&series, &scenarios, TripleCConfig::default());
    let ctx = PredictContext { roi_kpixels: 100.0 };

    c.bench_function("triplec_predict_frame_time", |b| {
        b.iter(|| model.predict_frame_time(Scenario::worst_case(), &ctx));
    });
    c.bench_function("triplec_predict_frame_full", |b| {
        b.iter(|| model.predict_frame(Scenario::worst_case(), &ctx, 0.1));
    });
}

criterion_group!(benches, bench_primitives, bench_training, bench_facade);
criterion_main!(benches);
