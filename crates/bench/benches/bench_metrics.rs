//! Observability self-overhead benchmark: the same multi-stream session
//! run bare and with the full [`platform::metrics::Observability`] bundle
//! (metrics registry + span tracer) attached, at 1, 2, 4 and 8 streams.
//!
//! Runs are interleaved (off, on, off, on, ...) and each configuration
//! keeps the minimum of three wall times, so host noise hits both sides
//! equally. The headline number is `overhead_pct` — the relative wall-time
//! cost of instrumenting every frame, stage, fault and retry — which the
//! final assertion pins under 2% in aggregate.
//!
//! Emits one JSON line per stream count:
//! `{"name", "streams", "frames", "wall_off_ms", "wall_on_ms",
//!   "overhead_pct", "self_ms", "spans", "samples"}`.
//! `BENCH_metrics.json` is produced by running with
//! `METRICS_JSON=BENCH_metrics.json`.

use pipeline::app::AppConfig;
use pipeline::executor::ExecutionPolicy;
use pipeline::runner::run_sequence;
use platform::metrics::Observability;
use runtime::{FairnessPolicy, SessionConfig, SessionScheduler, StreamSpec};
use std::io::Write;
use triplec::triple::{TripleC, TripleCConfig};
use xray::{NoiseConfig, SequenceConfig};

const WIDTH: usize = 128;
const HEIGHT: usize = 128;
const FRAMES: usize = 10;
const REPS: usize = 3;

fn seq(seed: u64) -> SequenceConfig {
    SequenceConfig {
        width: WIDTH,
        height: HEIGHT,
        frames: FRAMES,
        seed,
        noise: NoiseConfig {
            quantum_scale: 0.3,
            electronic_std: 2.0,
        },
        ..Default::default()
    }
}

fn trained_model() -> TripleC {
    let profile = run_sequence(seq(900), &AppConfig::default(), &ExecutionPolicy::default());
    let cfg = TripleCConfig {
        geometry: triplec::FrameGeometry {
            width: WIDTH,
            height: HEIGHT,
        },
        ..Default::default()
    };
    TripleC::train(&profile.task_series(), &profile.scenarios, cfg)
}

fn specs(model: &TripleC, streams: usize) -> Vec<StreamSpec> {
    (0..streams)
        .map(|i| {
            StreamSpec::builder(seq(1000 + i as u64), AppConfig::default(), model.clone()).build()
        })
        .collect()
}

fn session_cfg(streams: usize) -> SessionConfig {
    SessionConfig {
        total_cores: 8,
        fairness: FairnessPolicy::EqualShare,
        max_concurrent: streams,
    }
}

/// One timed run; returns (wall_ms, self_ms, spans) with zeros for the
/// bare configuration.
fn run_once(model: &TripleC, streams: usize, observed: bool) -> (f64, f64, usize) {
    let scheduler = SessionScheduler::new(session_cfg(streams));
    if observed {
        let obs = Observability::new();
        let report = scheduler
            .with_observability(obs.clone())
            .run(specs(model, streams));
        assert_eq!(report.total_frames, streams * FRAMES);
        (report.wall_ms, obs.self_overhead_ms(), obs.spans().len())
    } else {
        let report = scheduler.run(specs(model, streams));
        assert_eq!(report.total_frames, streams * FRAMES);
        (report.wall_ms, 0.0, 0)
    }
}

fn main() {
    let model = trained_model();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("# bench_metrics: {host} host core(s), {FRAMES} frames/stream, min of {REPS}");

    let mut lines = Vec::new();
    let mut total_off = 0.0f64;
    let mut total_on = 0.0f64;
    for &streams in &[1usize, 2, 4, 8] {
        let mut wall_off = f64::INFINITY;
        let mut wall_on = f64::INFINITY;
        let mut self_ms = 0.0;
        let mut spans = 0;
        for _ in 0..REPS {
            // interleave so drift hits both configurations equally
            let (off, _, _) = run_once(&model, streams, false);
            let (on, s_ms, s_n) = run_once(&model, streams, true);
            wall_off = wall_off.min(off);
            if on < wall_on {
                wall_on = on;
                self_ms = s_ms;
                spans = s_n;
            }
        }
        total_off += wall_off;
        total_on += wall_on;
        let overhead_pct = (wall_on - wall_off) / wall_off * 100.0;
        let line = format!(
            "{{\"name\": \"metrics/streams/{streams}\", \"streams\": {streams}, \
             \"frames\": {}, \"wall_off_ms\": {wall_off:.1}, \"wall_on_ms\": {wall_on:.1}, \
             \"overhead_pct\": {overhead_pct:.2}, \"self_ms\": {self_ms:.3}, \
             \"spans\": {spans}, \"samples\": {REPS}}}",
            streams * FRAMES,
        );
        println!("{line}");
        lines.push(line);
    }

    let aggregate_pct = (total_on - total_off) / total_off * 100.0;
    eprintln!("# aggregate overhead: {aggregate_pct:.2}%");
    assert!(
        aggregate_pct < 2.0,
        "observability overhead {aggregate_pct:.2}% exceeds the 2% budget"
    );

    if let Ok(path) = std::env::var("METRICS_JSON") {
        let mut f = std::fs::File::create(&path).expect("create METRICS_JSON file");
        for line in &lines {
            writeln!(f, "{line}").expect("write METRICS_JSON");
        }
        eprintln!("# wrote {path}");
    }
}
