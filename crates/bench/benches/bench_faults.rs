//! Fault-injection soak benchmark: a 4-stream session swept across fault
//! rates, measuring recovery overhead and event volume.
//!
//! The `off` row runs with no `FaultInjector` hooked in — the unhooked
//! hot path — and is the baseline the graceful-degradation machinery is
//! judged against (the hook is zero-cost when disabled). Each faulted row
//! arms worker panics, transient channel errors, inflated stage times,
//! frame drops, and snapshot corruption at the given rate against a tight
//! latency budget, so every recovery policy (retry, serial fallback,
//! stripe downshift, model quarantine) gets exercised.
//!
//! Emits one JSON line per rate:
//! `{"name", "streams", "frames", "rate", "wall_ms", "aggregate_fps",
//!   "injected", "recovered", "degraded", "retries", "dropped_frames"}`.
//! `BENCH_faults.json` is produced by running with
//! `FAULTS_JSON=BENCH_faults.json`.

use pipeline::app::AppConfig;
use pipeline::executor::ExecutionPolicy;
use pipeline::runner::run_sequence;
use platform::bus::FrameEvent;
use runtime::{
    FairnessPolicy, FaultPlan, FaultPlanConfig, LatencyBudget, SessionConfig, SessionScheduler,
    StreamSpec,
};
use std::io::Write;
use std::sync::Arc;
use triplec::triple::{TripleC, TripleCConfig};
use xray::{NoiseConfig, SequenceConfig};

const WIDTH: usize = 128;
const HEIGHT: usize = 128;
const FRAMES: usize = 20;
const STREAMS: usize = 4;
const SEED: u64 = 0xFA17;

fn seq(seed: u64) -> SequenceConfig {
    SequenceConfig {
        width: WIDTH,
        height: HEIGHT,
        frames: FRAMES,
        seed,
        noise: NoiseConfig {
            quantum_scale: 0.3,
            electronic_std: 2.0,
        },
        ..Default::default()
    }
}

fn trained_model() -> TripleC {
    let mut train = seq(900);
    train.frames = 10;
    let profile = run_sequence(train, &AppConfig::default(), &ExecutionPolicy::default());
    let cfg = TripleCConfig {
        geometry: triplec::FrameGeometry {
            width: WIDTH,
            height: HEIGHT,
        },
        ..Default::default()
    };
    TripleC::train(&profile.task_series(), &profile.scenarios, cfg)
}

fn main() {
    // injected stripe-worker panics are caught by the pool but still hit
    // the panic hook; silence exactly those so the report stays readable
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("injected stripe-worker fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let model = trained_model();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("# bench_faults: {host} host core(s), {STREAMS} streams x {FRAMES} frames");

    let mut lines = Vec::new();
    for &rate in &[0.0f64, 0.1, 0.3, 0.6] {
        let plan = FaultPlan::new(
            SEED,
            FaultPlanConfig {
                panic_rate: rate,
                channel_rate: rate,
                delay_rate: rate,
                delay_ms: 2.0,
                drop_rate: rate * 0.25,
                corrupt_rate: rate * 0.25,
            },
        );
        let specs: Vec<StreamSpec> = (0..STREAMS)
            .map(|i| {
                let b =
                    StreamSpec::builder(seq(1000 + i as u64), AppConfig::default(), model.clone())
                        .budget(LatencyBudget::new(5.0, 0.1));
                if rate > 0.0 {
                    b.faults(Arc::new(plan)).build()
                } else {
                    b.build()
                }
            })
            .collect();
        let cfg = SessionConfig {
            total_cores: 8,
            fairness: FairnessPolicy::EqualShare,
            max_concurrent: STREAMS,
        };
        let report = SessionScheduler::new(cfg).run(specs);
        assert!(
            report.is_clean(),
            "faulted soak run had stream failures: {:?}",
            report.failures
        );

        let mut injected = 0usize;
        let mut recovered = 0usize;
        let mut degraded = 0usize;
        let mut retries = 0usize;
        let mut dropped = 0usize;
        for s in &report.streams {
            dropped += s.dropped_frames;
            for e in &s.fault_events {
                match e {
                    FrameEvent::FaultInjected { .. } => injected += 1,
                    FrameEvent::Recovered { .. } => recovered += 1,
                    FrameEvent::DegradedMode { .. } => degraded += 1,
                    FrameEvent::RetryAttempted { .. } => retries += 1,
                    _ => {}
                }
            }
        }

        let name = if rate == 0.0 {
            "faults/off".to_string()
        } else {
            format!("faults/rate/{rate}")
        };
        let line = format!(
            "{{\"name\": \"{name}\", \"streams\": {STREAMS}, \"frames\": {}, \
             \"rate\": {rate}, \"wall_ms\": {:.1}, \"aggregate_fps\": {:.2}, \
             \"injected\": {injected}, \"recovered\": {recovered}, \
             \"degraded\": {degraded}, \"retries\": {retries}, \
             \"dropped_frames\": {dropped}}}",
            report.total_frames, report.wall_ms, report.aggregate_fps,
        );
        println!("{line}");
        lines.push(line);
    }

    if let Ok(path) = std::env::var("FAULTS_JSON") {
        let mut f = std::fs::File::create(&path).expect("create FAULTS_JSON file");
        for line in &lines {
            writeln!(f, "{line}").expect("write FAULTS_JSON");
        }
        eprintln!("# wrote {path}");
    }
}
