//! Per-stage frame-path benchmarks: RDG, ENH, ZOOM, guide-wire and
//! registration at 512x512 and 1024x1024, with the SIMD paths measured
//! against their exported scalar references where both exist.
//!
//! Every fast path is bit-identical to its reference (enforced by
//! `tests/simd_stage_identity.rs` and `tests/fused_rdg_identity.rs`);
//! this bench quantifies the speedup. `BENCH_frame.json` is produced by
//! running with `CRITERION_JSON=BENCH_frame.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imaging::couples::Couple;
use imaging::enhance::EnhState;
use imaging::guidewire::{gw_extract_reference, gw_extract_with, GwConfig, GwScratch};
use imaging::image::{Image, ImageF32, ImageU16, Roi};
use imaging::markers::Marker;
use imaging::registration::{temporal_difference, RigidTransform};
use imaging::ridge::{rdg_full, RdgBuffers, RdgConfig};
use imaging::zoom::{zoom_band_reference, zoom_band_with, ZoomConfig, ZoomFilter, ZoomScratch};

const SIZES: [usize; 2] = [512, 1024];

fn synthetic_u16(w: usize, h: usize) -> ImageU16 {
    Image::from_fn(w, h, |x, y| {
        let d = (x as f32 - y as f32).abs() / 1.5;
        (2000.0 - 900.0 * (-d * d / 2.0).exp()) as u16 + ((x * 7 + y * 13) % 32) as u16
    })
}

/// A mild rotation + translation, representative of tracked motion.
fn motion(n: usize) -> RigidTransform {
    RigidTransform {
        theta: 0.02,
        cx: n as f64 / 2.0,
        cy: n as f64 / 2.0,
        tx: 1.3,
        ty: -0.7,
    }
}

fn bench_rdg(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_rdg");
    group.sample_size(10);
    for n in SIZES {
        let src = synthetic_u16(n, n);
        let mut bufs = RdgBuffers::new(n, n);
        let cfg = RdgConfig::default();
        group.bench_with_input(BenchmarkId::new("fused_full", n), &n, |b, _| {
            b.iter(|| rdg_full(&src, &cfg, &mut bufs));
        });
    }
    group.finish();
}

fn bench_enh(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_enh_accumulate");
    group.sample_size(10);
    for n in SIZES {
        let src = synthetic_u16(n, n);
        let region = Roi {
            x: 0,
            y: 0,
            width: n,
            height: n,
        };
        let t = motion(n);
        let mut state = EnhState::new(n, n);
        group.bench_with_input(BenchmarkId::new("simd", n), &n, |b, _| {
            b.iter(|| state.accumulate(&src, &t, region, 0.125));
        });
        let mut state = EnhState::new(n, n);
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| state.accumulate_reference(&src, &t, region, 0.125));
        });
        let mut state = EnhState::new(n, n);
        let identity = RigidTransform::identity();
        group.bench_with_input(BenchmarkId::new("simd_identity", n), &n, |b, _| {
            b.iter(|| state.accumulate(&src, &identity, region, 0.125));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("frame_enh_readout");
    group.sample_size(10);
    for n in SIZES {
        let src = synthetic_u16(n, n);
        let region = Roi {
            x: 0,
            y: 0,
            width: n,
            height: n,
        };
        let mut state = EnhState::new(n, n);
        state.accumulate(&src, &RigidTransform::identity(), region, 1.0);
        let mut out = ImageU16::new(n, n);
        group.bench_with_input(BenchmarkId::new("simd", n), &n, |b, _| {
            b.iter(|| state.readout_into(region, 1.4, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| state.readout_into_reference(region, 1.4, &mut out));
        });
    }
    group.finish();
}

fn bench_zoom(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_zoom");
    group.sample_size(10);
    for n in SIZES {
        // the pipeline shape: enhanced ROI zoomed up to a display buffer
        let src = synthetic_u16(n / 2, n / 2);
        let roi = src.full_roi();
        for (filter, label) in [
            (ZoomFilter::Bilinear, "bilinear"),
            (ZoomFilter::Bicubic, "bicubic"),
        ] {
            let cfg = ZoomConfig {
                out_width: n,
                out_height: n,
                filter,
            };
            let mut out = ImageU16::new(n, n);
            let mut scratch = ZoomScratch::new();
            group.bench_with_input(BenchmarkId::new(format!("simd_{label}"), n), &n, |b, _| {
                b.iter(|| zoom_band_with(&src, roi, &cfg, &mut out, 0, n, &mut scratch));
            });
            group.bench_with_input(
                BenchmarkId::new(format!("reference_{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| zoom_band_reference(&src, roi, &cfg, &mut out, 0, n));
                },
            );
        }
    }
    group.finish();
}

fn bench_guidewire(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_guidewire");
    group.sample_size(10);
    for n in SIZES {
        let ridgeness: ImageF32 = Image::from_fn(n, n, |x, y| {
            let d = (x as f32 - y as f32).abs();
            900.0 * (-d * d / 3.0).exp() + ((x * 31 + y * 17) % 13) as f32
        });
        let marker = |x: f64, y: f64| Marker {
            x,
            y,
            strength: 1.0,
            scale: 2.0,
        };
        let couple = Couple {
            a: marker(n as f64 * 0.1, n as f64 * 0.1),
            b: marker(n as f64 * 0.9, n as f64 * 0.9),
            score: 0.0,
        };
        let cfg = GwConfig {
            corridor_half_width: 12,
            ..GwConfig::default()
        };
        let mut scratch = GwScratch::new();
        group.bench_with_input(BenchmarkId::new("simd", n), &n, |b, _| {
            b.iter(|| gw_extract_with(&ridgeness, &couple, &cfg, &mut scratch));
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| gw_extract_reference(&ridgeness, &couple, &cfg));
        });
    }
    group.finish();
}

fn bench_registration(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_registration");
    group.sample_size(10);
    for n in SIZES {
        let a = synthetic_u16(n, n);
        let b_img = synthetic_u16(n, n);
        let t = motion(n);
        let roi = a.full_roi();
        group.bench_with_input(BenchmarkId::new("temporal_difference", n), &n, |b, _| {
            b.iter(|| temporal_difference(&a, &b_img, &t, roi, 4));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rdg,
    bench_enh,
    bench_zoom,
    bench_guidewire,
    bench_registration
);
criterion_main!(benches);
