//! Criterion benches of whole-frame pipeline execution: serial vs. striped
//! policies and the managed planning step (the per-frame overhead of
//! semi-automatic parallelization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipeline::app::{AppConfig, AppState};
use pipeline::executor::{process_frame, ExecutionPolicy};
use pipeline::runner::run_sequence;
use runtime::manager::{ManagerConfig, ResourceManager};
use triplec::triple::{TripleC, TripleCConfig};
use xray::{Frame, SequenceConfig, SequenceGenerator};

const SIZE: usize = 192;

fn frames(n: usize, seed: u64) -> Vec<Frame> {
    let seq = SequenceConfig {
        width: SIZE,
        height: SIZE,
        frames: n,
        seed,
        ..Default::default()
    };
    SequenceGenerator::new(seq).collect()
}

fn bench_process_frame(c: &mut Criterion) {
    let fs = frames(4, 11);
    let app = AppConfig::default();
    let mut group = c.benchmark_group("process_frame");
    group.sample_size(10);
    for stripes in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("stripes", stripes),
            &stripes,
            |b, &stripes| {
                let policy = ExecutionPolicy {
                    rdg_stripes: stripes,
                    aux_stripes: stripes,
                    cores: 8,
                };
                let mut state = AppState::new(SIZE, SIZE);
                let mut i = 0;
                b.iter(|| {
                    let f = &fs[i % fs.len()];
                    i += 1;
                    process_frame(f.index, &f.image, &mut state, &app, &policy)
                });
            },
        );
    }
    group.finish();
}

fn bench_manager_plan(c: &mut Criterion) {
    // train a model once from a short profiled run
    let app = AppConfig::default();
    let seq = SequenceConfig {
        width: SIZE,
        height: SIZE,
        frames: 12,
        seed: 12,
        ..Default::default()
    };
    let profile = run_sequence(seq, &app, &ExecutionPolicy::default());
    let cfg = TripleCConfig {
        geometry: triplec::FrameGeometry {
            width: SIZE,
            height: SIZE,
        },
        ..Default::default()
    };
    let model = TripleC::train(&profile.task_series(), &profile.scenarios, cfg);
    let mut mgr = ResourceManager::new(model, ManagerConfig::default());
    mgr.set_budget(runtime::budget::LatencyBudget::new(40.0, 0.15));

    c.bench_function("manager_plan", |b| {
        b.iter(|| mgr.plan(30.0));
    });
}

criterion_group!(benches, bench_process_frame, bench_manager_plan);
criterion_main!(benches);
