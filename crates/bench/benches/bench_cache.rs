//! Criterion benches of the cache simulator and the space-time model —
//! the Fig. 5 machinery. The analytic model must be effectively free
//! compared to the trace-driven simulation it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use platform::arch::{ArchModel, MB};
use platform::cache::CacheSim;
use platform::spacetime::{predict_traffic, simulate_traffic};
use triplec::bandwidth_model::rdg_access_model;
use triplec::memory_model::FrameGeometry;

fn bench_cache_sim(c: &mut Criterion) {
    let arch = ArchModel::default();
    let mut group = c.benchmark_group("cache_sim");
    group.sample_size(10);
    for mb in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("linear_scan_mb", mb), &mb, |b, &mb| {
            let mut sim = CacheSim::new(arch.l2);
            b.iter(|| sim.linear_scan(0, mb * MB, false));
        });
    }
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let geom = FrameGeometry {
        width: 512,
        height: 512,
    };
    let model = rdg_access_model(geom, 3);
    c.bench_function("spacetime_predict_rdg", |b| {
        b.iter(|| predict_traffic(&model, 4 * MB));
    });
    let mut group = c.benchmark_group("spacetime_simulate");
    group.sample_size(10);
    group.bench_function("rdg_512px", |b| {
        let arch = ArchModel::default();
        b.iter(|| simulate_traffic(&model, arch.l2));
    });
    group.finish();
}

criterion_group!(benches, bench_cache_sim, bench_models);
criterion_main!(benches);
