//! Quality-of-Service control.
//!
//! The paper's stated aim is "QoS control with shared resources" (Section
//! 1): when even the maximally parallel partitioning cannot hold the
//! latency budget — e.g. because other functions share the platform — the
//! controller degrades algorithmic quality instead of latency. Quality
//! levels trade RDG filter scales and enhancement for computation time,
//! while "tasks in the image analysis cannot be easily switched off, since
//! that would lead to an incomplete or unacceptable result" (Section 3) —
//! the mandatory analysis chain always runs.

use pipeline::app::AppConfig;

/// Algorithmic quality levels, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QosLevel {
    /// Full quality: all RDG scales, enhancement enabled.
    Full,
    /// Fine refinement scales disabled (faster ridge filter, slightly
    /// worse suppression of thick structures).
    ReducedScales,
    /// Additionally halve the zoom output resolution.
    ReducedZoom,
}

impl QosLevel {
    /// All levels, best first.
    pub fn all() -> [QosLevel; 3] {
        [
            QosLevel::Full,
            QosLevel::ReducedScales,
            QosLevel::ReducedZoom,
        ]
    }

    /// The next lower quality level, if any.
    pub fn degrade(self) -> Option<QosLevel> {
        match self {
            QosLevel::Full => Some(QosLevel::ReducedScales),
            QosLevel::ReducedScales => Some(QosLevel::ReducedZoom),
            QosLevel::ReducedZoom => None,
        }
    }

    /// The next higher quality level, if any.
    pub fn improve(self) -> Option<QosLevel> {
        match self {
            QosLevel::Full => None,
            QosLevel::ReducedScales => Some(QosLevel::Full),
            QosLevel::ReducedZoom => Some(QosLevel::ReducedScales),
        }
    }

    /// Numeric severity for event payloads: 0 = full quality, higher =
    /// more degraded.
    pub fn severity(self) -> u8 {
        match self {
            QosLevel::Full => 0,
            QosLevel::ReducedScales => 1,
            QosLevel::ReducedZoom => 2,
        }
    }

    /// Applies the level to a full-quality configuration.
    pub fn apply(self, base: &AppConfig) -> AppConfig {
        let mut cfg = base.clone();
        match self {
            QosLevel::Full => {}
            QosLevel::ReducedScales => {
                cfg.rdg.fine_scales.clear();
            }
            QosLevel::ReducedZoom => {
                cfg.rdg.fine_scales.clear();
                cfg.zoom.out_width /= 2;
                cfg.zoom.out_height /= 2;
            }
        }
        cfg
    }
}

/// Hysteresis-based QoS controller: degrades after `degrade_after`
/// consecutive infeasible frames, recovers after `improve_after`
/// consecutive comfortable frames.
#[derive(Debug, Clone)]
pub struct QosController {
    level: QosLevel,
    degrade_after: usize,
    improve_after: usize,
    pressure: usize,
    comfort: usize,
}

impl QosController {
    /// Creates a controller at full quality.
    pub fn new(degrade_after: usize, improve_after: usize) -> Self {
        assert!(degrade_after > 0 && improve_after > 0);
        Self {
            level: QosLevel::Full,
            degrade_after,
            improve_after,
            pressure: 0,
            comfort: 0,
        }
    }

    /// Current level.
    pub fn level(&self) -> QosLevel {
        self.level
    }

    /// Feeds one frame's feasibility; returns the (possibly new) level.
    /// `comfortable` means the frame met the budget with margin.
    pub fn update(&mut self, feasible: bool, comfortable: bool) -> QosLevel {
        if !feasible {
            self.pressure += 1;
            self.comfort = 0;
            if self.pressure >= self.degrade_after {
                if let Some(next) = self.level.degrade() {
                    self.level = next;
                }
                self.pressure = 0;
            }
        } else if comfortable {
            self.comfort += 1;
            self.pressure = 0;
            if self.comfort >= self.improve_after {
                if let Some(next) = self.level.improve() {
                    self.level = next;
                }
                self.comfort = 0;
            }
        } else {
            self.pressure = 0;
            self.comfort = 0;
        }
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_transitions() {
        assert_eq!(QosLevel::Full.degrade(), Some(QosLevel::ReducedScales));
        assert_eq!(QosLevel::ReducedZoom.degrade(), None);
        assert_eq!(
            QosLevel::ReducedZoom.improve(),
            Some(QosLevel::ReducedScales)
        );
        assert_eq!(QosLevel::Full.improve(), None);
    }

    #[test]
    fn apply_reduces_work() {
        let base = AppConfig::default();
        let reduced = QosLevel::ReducedScales.apply(&base);
        assert!(reduced.rdg.fine_scales.is_empty());
        assert!(!base.rdg.fine_scales.is_empty());
        let zoomed = QosLevel::ReducedZoom.apply(&base);
        assert_eq!(zoomed.zoom.out_width, base.zoom.out_width / 2);
        let full = QosLevel::Full.apply(&base);
        assert_eq!(full.rdg.fine_scales.len(), base.rdg.fine_scales.len());
    }

    #[test]
    fn controller_degrades_under_sustained_pressure() {
        let mut c = QosController::new(3, 5);
        assert_eq!(c.update(false, false), QosLevel::Full);
        assert_eq!(c.update(false, false), QosLevel::Full);
        assert_eq!(c.update(false, false), QosLevel::ReducedScales);
    }

    #[test]
    fn single_glitch_does_not_degrade() {
        let mut c = QosController::new(3, 5);
        c.update(false, false);
        c.update(true, false); // pressure resets
        c.update(false, false);
        c.update(false, false);
        assert_eq!(c.level(), QosLevel::Full);
    }

    #[test]
    fn controller_recovers_when_comfortable() {
        let mut c = QosController::new(1, 3);
        c.update(false, false); // -> ReducedScales
        assert_eq!(c.level(), QosLevel::ReducedScales);
        for _ in 0..3 {
            c.update(true, true);
        }
        assert_eq!(c.level(), QosLevel::Full);
    }

    #[test]
    fn controller_saturates_at_bottom() {
        let mut c = QosController::new(1, 3);
        for _ in 0..10 {
            c.update(false, false);
        }
        assert_eq!(c.level(), QosLevel::ReducedZoom);
    }
}
