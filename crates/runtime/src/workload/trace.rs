//! The trace file format: versioned, hand-editable text describing a
//! replayable workload.
//!
//! A trace declares one or more streams, each with a frame-arrival
//! schedule (fixed cadence, bursty, or Poisson), a resolution, a content
//! profile (stent / surveillance / zoom-only), an optional scripted
//! scenario storm, and an optional seeded fault-plan overlay. The format
//! is line oriented:
//!
//! ```text
//! triplec-trace v1
//! # comments and blank lines are ignored
//! stream 0 profile=stent width=512 height=512 frames=40 seed=7 budget_ms=80
//! arrival 0 fixed period_ms=33.33
//! scenario 0 hold id=7 frames=10
//! scenario 0 thrash ids=0,7 period=1 cycles=8
//! faults 0 seed=99 drop_rate=0.05 delay_rate=0.02 delay_ms=5
//! ```
//!
//! `scenario … thrash` is authoring sugar: it expands into one held
//! segment per switch at parse time, so the canonical serialized form
//! ([`Trace::to_text`]) uses only `hold` lines and parsing a serialized
//! trace reproduces the parsed form exactly (property-tested).
//!
//! Every malformed, truncated, or version-skewed input is rejected with
//! a typed [`TraceError`] — parsing never panics.

use platform::bus::StreamId;
use rand::{Rng, SeedableRng};
use triplec::scenario::ScriptSegment;

/// The format version this build reads and writes.
pub const TRACE_VERSION: u32 = 1;

/// Header magic of a trace file.
pub const TRACE_MAGIC: &str = "triplec-trace";

/// Typed parse/validation error for traces and ledgers. Carries the
/// 1-based line number where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The input is empty or its first line is not a `triplec-trace`
    /// (or `triplec-ledger`) header.
    MissingHeader,
    /// The header names a version this build does not read.
    UnsupportedVersion {
        /// The version token found in the header.
        found: String,
    },
    /// A line could not be tokenized into the expected shape.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A directive referenced a stream that was never declared.
    UnknownStream {
        /// 1-based line number.
        line: usize,
        /// The undeclared stream id.
        stream: StreamId,
    },
    /// A stream id was declared twice.
    DuplicateStream {
        /// 1-based line number.
        line: usize,
        /// The re-declared stream id.
        stream: StreamId,
    },
    /// A well-formed line carried a semantically invalid value.
    Invalid {
        /// 1-based line number.
        line: usize,
        /// What was invalid.
        message: String,
    },
    /// The trace ended without the named stream getting an arrival model
    /// (a truncated file).
    MissingArrival {
        /// The stream lacking an `arrival` line.
        stream: StreamId,
    },
    /// The trace declares no streams at all.
    Empty,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::MissingHeader => write!(f, "missing trace header"),
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace version {found:?}")
            }
            TraceError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            TraceError::UnknownStream { line, stream } => {
                write!(f, "line {line}: undeclared stream {stream}")
            }
            TraceError::DuplicateStream { line, stream } => {
                write!(f, "line {line}: duplicate stream {stream}")
            }
            TraceError::Invalid { line, message } => write!(f, "line {line}: {message}"),
            TraceError::MissingArrival { stream } => {
                write!(f, "stream {stream} has no arrival model (truncated trace?)")
            }
            TraceError::Empty => write!(f, "trace declares no streams"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Content profile of a stream: which synthetic sequence shape and
/// application configuration the replay uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamProfile {
    /// The paper's stent-enhancement workload (default synthetic
    /// angiography content).
    Stent,
    /// Surveillance-style content: lower contrast with a hidden-device
    /// episode mid-sequence, so tracking is lost and re-acquired.
    Surveillance,
    /// Zoom-only service: registration is forced successful so ENH/ZOOM
    /// run every frame (scenario 4 held for the whole stream unless the
    /// trace scripts something else).
    ZoomOnly,
}

impl StreamProfile {
    /// Stable name used in trace files.
    pub fn name(&self) -> &'static str {
        match self {
            StreamProfile::Stent => "stent",
            StreamProfile::Surveillance => "surveillance",
            StreamProfile::ZoomOnly => "zoom_only",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "stent" => Some(StreamProfile::Stent),
            "surveillance" => Some(StreamProfile::Surveillance),
            "zoom_only" => Some(StreamProfile::ZoomOnly),
            _ => None,
        }
    }
}

/// When frames of one stream arrive at the service ingress.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalModel {
    /// Fixed cadence: frame `i` arrives at `i * period_ms`.
    Fixed {
        /// Inter-frame period, ms.
        period_ms: f64,
    },
    /// Bursty / VBR: `burst_len` frames at `period_ms` spacing, then a
    /// `gap_ms` pause, repeating.
    Burst {
        /// Intra-burst inter-frame period, ms.
        period_ms: f64,
        /// Frames per burst.
        burst_len: usize,
        /// Pause between bursts, ms.
        gap_ms: f64,
    },
    /// Poisson arrivals: seeded exponential inter-arrival times at
    /// `rate_hz` (times are quantized to 1 µs so serialized schedules
    /// replay identically).
    Poisson {
        /// Mean arrival rate, Hz.
        rate_hz: f64,
        /// Seed of the inter-arrival draw.
        seed: u64,
    },
}

impl ArrivalModel {
    /// Expands the model into per-frame arrival times (ms, ascending,
    /// quantized to 1 µs). Deterministic per model + seed.
    pub fn arrival_times_ms(&self, frames: usize) -> Vec<f64> {
        let quant = |t: f64| (t * 1000.0).round() / 1000.0;
        match *self {
            ArrivalModel::Fixed { period_ms } => {
                (0..frames).map(|i| quant(i as f64 * period_ms)).collect()
            }
            ArrivalModel::Burst {
                period_ms,
                burst_len,
                gap_ms,
            } => {
                let burst_len = burst_len.max(1);
                (0..frames)
                    .map(|i| {
                        let burst = i / burst_len;
                        let within = i % burst_len;
                        quant(
                            burst as f64 * (burst_len as f64 * period_ms + gap_ms)
                                + within as f64 * period_ms,
                        )
                    })
                    .collect()
            }
            ArrivalModel::Poisson { rate_hz, seed } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut t = 0.0f64;
                (0..frames)
                    .map(|_| {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        t += -(1.0 - u).ln() / rate_hz * 1000.0;
                        quant(t)
                    })
                    .collect()
            }
        }
    }
}

/// A seeded fault-plan overlay on one stream (all rates in `[0, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOverlay {
    /// Seed of the deterministic fault plan.
    pub seed: u64,
    /// Worker-panic rate per striped dispatch.
    pub panic_rate: f64,
    /// Channel-error rate per striped dispatch.
    pub channel_rate: f64,
    /// Stage-delay rate per frame.
    pub delay_rate: f64,
    /// Injected delay, ms.
    pub delay_ms: f64,
    /// Frame-drop rate.
    pub drop_rate: f64,
    /// Snapshot-corruption rate.
    pub corrupt_rate: f64,
}

impl Default for FaultOverlay {
    fn default() -> Self {
        Self {
            seed: 0,
            panic_rate: 0.0,
            channel_rate: 0.0,
            delay_rate: 0.0,
            delay_ms: 0.0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }
}

/// One stream's declaration within a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamTrace {
    /// Stream id (dense, ascending from 0 — the service tier's order).
    pub id: StreamId,
    /// Content profile.
    pub profile: StreamProfile,
    /// Frame width, pixels.
    pub width: usize,
    /// Frame height, pixels.
    pub height: usize,
    /// Number of frames.
    pub frames: usize,
    /// Sequence seed.
    pub seed: u64,
    /// Explicit latency budget, ms (keeps planning deterministic — the
    /// profiled first-frame budget depends on wall time).
    pub budget_ms: f64,
    /// Arrival schedule.
    pub arrival: ArrivalModel,
    /// Scripted scenario storm (empty = content-derived switches).
    pub script: Vec<ScriptSegment>,
    /// Seeded fault overlay (None = clean run).
    pub faults: Option<FaultOverlay>,
}

/// A parsed workload trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Format version (currently always [`TRACE_VERSION`]).
    pub version: u32,
    /// Streams in id order.
    pub streams: Vec<StreamTrace>,
}

/// One scheduled frame arrival of the merged, cross-stream schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Scheduled arrival time, ms from trace start.
    pub at_ms: f64,
    /// Target stream.
    pub stream: StreamId,
    /// Frame index within the stream.
    pub frame: usize,
}

impl Trace {
    /// Total frames across all streams.
    pub fn total_frames(&self) -> usize {
        self.streams.iter().map(|s| s.frames).sum()
    }

    /// The merged arrival schedule, sorted by `(time, stream, frame)`:
    /// the deterministic global submit order replays follow.
    pub fn schedule(&self) -> Vec<Arrival> {
        let mut all = Vec::with_capacity(self.total_frames());
        for s in &self.streams {
            for (frame, at_ms) in s.arrival.arrival_times_ms(s.frames).into_iter().enumerate() {
                all.push(Arrival {
                    at_ms,
                    stream: s.id,
                    frame,
                });
            }
        }
        all.sort_by(|a, b| {
            a.at_ms
                .total_cmp(&b.at_ms)
                .then(a.stream.cmp(&b.stream))
                .then(a.frame.cmp(&b.frame))
        });
        all
    }

    /// Serializes to the canonical text form (only `hold` scenario
    /// lines; all optional fields written out). `parse(to_text(t)) == t`
    /// for every valid trace (property-tested).
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{TRACE_MAGIC} v{}", self.version);
        for s in &self.streams {
            let _ = writeln!(
                out,
                "stream {} profile={} width={} height={} frames={} seed={} budget_ms={}",
                s.id,
                s.profile.name(),
                s.width,
                s.height,
                s.frames,
                s.seed,
                s.budget_ms
            );
            match &s.arrival {
                ArrivalModel::Fixed { period_ms } => {
                    let _ = writeln!(out, "arrival {} fixed period_ms={}", s.id, period_ms);
                }
                ArrivalModel::Burst {
                    period_ms,
                    burst_len,
                    gap_ms,
                } => {
                    let _ = writeln!(
                        out,
                        "arrival {} burst period_ms={} burst_len={} gap_ms={}",
                        s.id, period_ms, burst_len, gap_ms
                    );
                }
                ArrivalModel::Poisson { rate_hz, seed } => {
                    let _ = writeln!(
                        out,
                        "arrival {} poisson rate_hz={} seed={}",
                        s.id, rate_hz, seed
                    );
                }
            }
            for seg in &s.script {
                let _ = writeln!(
                    out,
                    "scenario {} hold id={} frames={}",
                    s.id, seg.scenario, seg.frames
                );
            }
            if let Some(f) = &s.faults {
                let _ = writeln!(
                    out,
                    "faults {} seed={} panic_rate={} channel_rate={} delay_rate={} \
                     delay_ms={} drop_rate={} corrupt_rate={}",
                    s.id,
                    f.seed,
                    f.panic_rate,
                    f.channel_rate,
                    f.delay_rate,
                    f.delay_ms,
                    f.drop_rate,
                    f.corrupt_rate
                );
            }
        }
        out
    }

    /// Parses the text form. Rejects malformed, truncated, and
    /// version-skewed input with a typed [`TraceError`]; never panics.
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .by_ref()
            .find(|(_, l)| !ignorable(l))
            .ok_or(TraceError::MissingHeader)?;
        let version = parse_header(header, TRACE_MAGIC)?;

        let mut streams: Vec<StreamTrace> = Vec::new();
        let mut arrivals_seen: Vec<bool> = Vec::new();
        for (i, raw) in lines {
            let line = i + 1; // 1-based for messages
            if ignorable(raw) {
                continue;
            }
            let mut toks = raw.split_whitespace();
            let directive = toks.next().expect("non-blank line has a first token");
            let id = parse_id(toks.next(), line)?;
            let kv: Vec<&str> = toks.collect();
            match directive {
                "stream" => {
                    if streams.iter().any(|s| s.id == id) {
                        return Err(TraceError::DuplicateStream { line, stream: id });
                    }
                    if id as usize != streams.len() {
                        return Err(TraceError::Invalid {
                            line,
                            message: format!(
                                "stream ids must be dense and ascending (expected {}, got {id})",
                                streams.len()
                            ),
                        });
                    }
                    let fields = Fields::new(&kv, line)?;
                    let profile_name = fields.get_str("profile", line)?;
                    let profile =
                        StreamProfile::from_name(profile_name).ok_or(TraceError::Invalid {
                            line,
                            message: format!("unknown profile {profile_name:?}"),
                        })?;
                    let st = StreamTrace {
                        id,
                        profile,
                        width: fields.get_usize("width", line)?,
                        height: fields.get_usize("height", line)?,
                        frames: fields.get_usize("frames", line)?,
                        seed: fields.get_u64("seed", line)?,
                        budget_ms: fields.get_f64_or("budget_ms", 80.0, line)?,
                        arrival: ArrivalModel::Fixed { period_ms: 0.0 }, // placeholder
                        script: Vec::new(),
                        faults: None,
                    };
                    if st.width < 32 || st.height < 32 {
                        return Err(TraceError::Invalid {
                            line,
                            message: "frame dimensions must be at least 32x32".into(),
                        });
                    }
                    if st.frames == 0 {
                        return Err(TraceError::Invalid {
                            line,
                            message: "stream must have at least one frame".into(),
                        });
                    }
                    if st.budget_ms <= 0.0 || st.budget_ms.is_nan() {
                        return Err(TraceError::Invalid {
                            line,
                            message: "budget_ms must be positive".into(),
                        });
                    }
                    streams.push(st);
                    arrivals_seen.push(false);
                }
                "arrival" => {
                    let idx = stream_index(&streams, id, line)?;
                    let kind = kv.first().copied().ok_or_else(|| TraceError::Syntax {
                        line,
                        message: "arrival needs a model kind".into(),
                    })?;
                    let fields = Fields::new(&kv[1..], line)?;
                    let model = match kind {
                        "fixed" => ArrivalModel::Fixed {
                            period_ms: fields.get_f64("period_ms", line)?,
                        },
                        "burst" => ArrivalModel::Burst {
                            period_ms: fields.get_f64("period_ms", line)?,
                            burst_len: fields.get_usize("burst_len", line)?,
                            gap_ms: fields.get_f64("gap_ms", line)?,
                        },
                        "poisson" => ArrivalModel::Poisson {
                            rate_hz: fields.get_f64("rate_hz", line)?,
                            seed: fields.get_u64("seed", line)?,
                        },
                        other => {
                            return Err(TraceError::Syntax {
                                line,
                                message: format!("unknown arrival model {other:?}"),
                            })
                        }
                    };
                    let ok = match &model {
                        ArrivalModel::Fixed { period_ms } => *period_ms >= 0.0,
                        ArrivalModel::Burst {
                            period_ms,
                            burst_len,
                            gap_ms,
                        } => *period_ms >= 0.0 && *burst_len > 0 && *gap_ms >= 0.0,
                        ArrivalModel::Poisson { rate_hz, .. } => *rate_hz > 0.0,
                    };
                    if !ok {
                        return Err(TraceError::Invalid {
                            line,
                            message: "arrival model parameters out of range".into(),
                        });
                    }
                    streams[idx].arrival = model;
                    arrivals_seen[idx] = true;
                }
                "scenario" => {
                    let idx = stream_index(&streams, id, line)?;
                    let kind = kv.first().copied().ok_or_else(|| TraceError::Syntax {
                        line,
                        message: "scenario needs hold or thrash".into(),
                    })?;
                    let fields = Fields::new(&kv[1..], line)?;
                    match kind {
                        "hold" => {
                            let sid = fields.get_u64("id", line)? as u8;
                            let frames = fields.get_usize("frames", line)?;
                            push_segment(&mut streams[idx].script, sid, frames, line)?;
                        }
                        "thrash" => {
                            let ids_raw = fields.get_str("ids", line)?;
                            let period = fields.get_usize("period", line)?;
                            let cycles = fields.get_usize("cycles", line)?;
                            let mut ids = Vec::new();
                            for part in ids_raw.split(',') {
                                let v: u8 = part.parse().map_err(|_| TraceError::Syntax {
                                    line,
                                    message: format!("bad scenario id {part:?}"),
                                })?;
                                ids.push(v);
                            }
                            if ids.is_empty() || cycles == 0 {
                                return Err(TraceError::Invalid {
                                    line,
                                    message: "thrash needs ids and at least one cycle".into(),
                                });
                            }
                            for _ in 0..cycles {
                                for &sid in &ids {
                                    push_segment(&mut streams[idx].script, sid, period, line)?;
                                }
                            }
                        }
                        other => {
                            return Err(TraceError::Syntax {
                                line,
                                message: format!("unknown scenario directive {other:?}"),
                            })
                        }
                    }
                }
                "faults" => {
                    let idx = stream_index(&streams, id, line)?;
                    let fields = Fields::new(&kv, line)?;
                    let f = FaultOverlay {
                        seed: fields.get_u64("seed", line)?,
                        panic_rate: fields.get_f64_or("panic_rate", 0.0, line)?,
                        channel_rate: fields.get_f64_or("channel_rate", 0.0, line)?,
                        delay_rate: fields.get_f64_or("delay_rate", 0.0, line)?,
                        delay_ms: fields.get_f64_or("delay_ms", 0.0, line)?,
                        drop_rate: fields.get_f64_or("drop_rate", 0.0, line)?,
                        corrupt_rate: fields.get_f64_or("corrupt_rate", 0.0, line)?,
                    };
                    for (name, rate) in [
                        ("panic_rate", f.panic_rate),
                        ("channel_rate", f.channel_rate),
                        ("delay_rate", f.delay_rate),
                        ("drop_rate", f.drop_rate),
                        ("corrupt_rate", f.corrupt_rate),
                    ] {
                        if !(0.0..=1.0).contains(&rate) {
                            return Err(TraceError::Invalid {
                                line,
                                message: format!("{name} must be within [0, 1]"),
                            });
                        }
                    }
                    if f.delay_ms < 0.0 {
                        return Err(TraceError::Invalid {
                            line,
                            message: "delay_ms must be non-negative".into(),
                        });
                    }
                    streams[idx].faults = Some(f);
                }
                other => {
                    return Err(TraceError::Syntax {
                        line,
                        message: format!("unknown directive {other:?}"),
                    })
                }
            }
        }
        if streams.is_empty() {
            return Err(TraceError::Empty);
        }
        for (idx, seen) in arrivals_seen.iter().enumerate() {
            if !seen {
                return Err(TraceError::MissingArrival {
                    stream: streams[idx].id,
                });
            }
        }
        Ok(Trace { version, streams })
    }
}

fn ignorable(line: &str) -> bool {
    let t = line.trim();
    t.is_empty() || t.starts_with('#')
}

/// Parses a `"<magic> v<N>"` header shared by traces and ledgers.
pub(crate) fn parse_header(header: &str, magic: &str) -> Result<u32, TraceError> {
    let mut toks = header.split_whitespace();
    if toks.next() != Some(magic) {
        return Err(TraceError::MissingHeader);
    }
    let vtok = toks.next().unwrap_or("");
    let version: u32 = vtok
        .strip_prefix('v')
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| TraceError::UnsupportedVersion {
            found: vtok.to_string(),
        })?;
    if version != TRACE_VERSION {
        return Err(TraceError::UnsupportedVersion {
            found: vtok.to_string(),
        });
    }
    Ok(version)
}

fn parse_id(tok: Option<&str>, line: usize) -> Result<StreamId, TraceError> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| TraceError::Syntax {
            line,
            message: "directive needs a stream id".into(),
        })
}

fn stream_index(streams: &[StreamTrace], id: StreamId, line: usize) -> Result<usize, TraceError> {
    streams
        .iter()
        .position(|s| s.id == id)
        .ok_or(TraceError::UnknownStream { line, stream: id })
}

fn push_segment(
    script: &mut Vec<ScriptSegment>,
    scenario: u8,
    frames: usize,
    line: usize,
) -> Result<(), TraceError> {
    if scenario >= 8 {
        return Err(TraceError::Invalid {
            line,
            message: format!("scenario id {scenario} out of range (0..8)"),
        });
    }
    if frames == 0 {
        return Err(TraceError::Invalid {
            line,
            message: "zero-length scenario segment".into(),
        });
    }
    script.push(ScriptSegment { scenario, frames });
    Ok(())
}

/// Key=value field list of one directive line.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn new(tokens: &[&'a str], line: usize) -> Result<Self, TraceError> {
        let mut pairs = Vec::with_capacity(tokens.len());
        for t in tokens {
            let (k, v) = t.split_once('=').ok_or_else(|| TraceError::Syntax {
                line,
                message: format!("expected key=value, got {t:?}"),
            })?;
            pairs.push((k, v));
        }
        Ok(Self { pairs })
    }

    fn raw(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn get_str(&self, key: &str, line: usize) -> Result<&'a str, TraceError> {
        self.raw(key).ok_or_else(|| TraceError::Syntax {
            line,
            message: format!("missing field {key}"),
        })
    }

    fn get_usize(&self, key: &str, line: usize) -> Result<usize, TraceError> {
        self.parse_field(key, line)
    }

    fn get_u64(&self, key: &str, line: usize) -> Result<u64, TraceError> {
        self.parse_field(key, line)
    }

    fn get_f64(&self, key: &str, line: usize) -> Result<f64, TraceError> {
        let v: f64 = self.parse_field(key, line)?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(TraceError::Invalid {
                line,
                message: format!("{key} must be finite"),
            })
        }
    }

    fn get_f64_or(&self, key: &str, default: f64, line: usize) -> Result<f64, TraceError> {
        match self.raw(key) {
            None => Ok(default),
            Some(_) => self.get_f64(key, line),
        }
    }

    fn parse_field<T: std::str::FromStr>(&self, key: &str, line: usize) -> Result<T, TraceError> {
        let raw = self.get_str(key, line)?;
        raw.parse().map_err(|_| TraceError::Syntax {
            line,
            message: format!("bad value for {key}: {raw:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> &'static str {
        "triplec-trace v1\n\
         # demo\n\
         stream 0 profile=stent width=128 height=128 frames=6 seed=7 budget_ms=80\n\
         arrival 0 fixed period_ms=33.33\n\
         scenario 0 thrash ids=0,7 period=1 cycles=2\n\
         stream 1 profile=zoom_only width=64 height=64 frames=4 seed=3\n\
         arrival 1 poisson rate_hz=30 seed=5\n\
         faults 1 seed=9 drop_rate=0.25\n"
    }

    #[test]
    fn parses_and_round_trips() {
        let t = Trace::parse(sample()).unwrap();
        assert_eq!(t.streams.len(), 2);
        assert_eq!(t.streams[0].script.len(), 4); // thrash expanded
        assert_eq!(t.streams[1].budget_ms, 80.0); // default
        assert_eq!(t.streams[1].faults.as_ref().unwrap().drop_rate, 0.25);
        let t2 = Trace::parse(&t.to_text()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn schedule_is_sorted_and_complete() {
        let t = Trace::parse(sample()).unwrap();
        let sched = t.schedule();
        assert_eq!(sched.len(), t.total_frames());
        for w in sched.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms);
        }
        // per-stream frames appear in index order
        for s in &t.streams {
            let frames: Vec<usize> = sched
                .iter()
                .filter(|a| a.stream == s.id)
                .map(|a| a.frame)
                .collect();
            assert_eq!(frames, (0..s.frames).collect::<Vec<_>>());
        }
    }

    #[test]
    fn poisson_arrivals_are_deterministic() {
        let m = ArrivalModel::Poisson {
            rate_hz: 30.0,
            seed: 11,
        };
        assert_eq!(m.arrival_times_ms(20), m.arrival_times_ms(20));
        let times = m.arrival_times_ms(20);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rejects_bad_input_with_typed_errors() {
        assert_eq!(Trace::parse(""), Err(TraceError::MissingHeader));
        assert_eq!(
            Trace::parse("triplec-trace v9\n"),
            Err(TraceError::UnsupportedVersion { found: "v9".into() })
        );
        assert_eq!(Trace::parse("triplec-trace v1\n"), Err(TraceError::Empty));
        // truncated: stream without arrival
        let truncated = "triplec-trace v1\n\
                         stream 0 profile=stent width=64 height=64 frames=2 seed=1\n";
        assert_eq!(
            Trace::parse(truncated),
            Err(TraceError::MissingArrival { stream: 0 })
        );
        // sparse ids
        let sparse = "triplec-trace v1\n\
                      stream 3 profile=stent width=64 height=64 frames=2 seed=1\n";
        assert!(matches!(
            Trace::parse(sparse),
            Err(TraceError::Invalid { .. })
        ));
        // unknown stream reference
        let unknown = "triplec-trace v1\n\
                       stream 0 profile=stent width=64 height=64 frames=2 seed=1\n\
                       arrival 1 fixed period_ms=10\n";
        assert_eq!(
            Trace::parse(unknown),
            Err(TraceError::UnknownStream { line: 3, stream: 1 })
        );
        // garbage value
        let garbage = "triplec-trace v1\n\
                       stream 0 profile=stent width=wat height=64 frames=2 seed=1\n";
        assert!(matches!(
            Trace::parse(garbage),
            Err(TraceError::Syntax { line: 2, .. })
        ));
    }
}
