//! The trace runner: deterministic replay of a workload trace through
//! the service tier.
//!
//! [`TraceRunner`] expands a parsed [`Trace`] into service
//! [`StreamSpec`]s (per-profile sequence content, scripted scenario
//! storms, synthetic analytic prediction models, explicit budgets,
//! seeded fault plans), feeds the merged arrival schedule through
//! [`ServiceHandle::submit`](crate::service::ServiceHandle::submit) in
//! global `(time, stream, frame)` order,
//! and assembles a [`RunLedger`] from the resulting [`ServiceReport`].
//!
//! Two replays of the same trace produce ledger-identical runs because
//! every diffable ledger field is derived from the deterministic plane:
//!
//! - the submit order and arrival times come from the trace itself;
//! - prediction models are *synthetic* (per-task cost series scaled by
//!   resolution with a fixed cyclic fluctuation, scenario chain trained
//!   on a fixed sequence) with online training off — a frozen model
//!   ignores observations entirely, so plans (and the admission-quantile
//!   costs derived from them) never depend on measured wall time;
//! - every stream carries an explicit [`LatencyBudget`], which disables
//!   the first-frame (wall-clock) budget initialization;
//! - fault plans are seeded and keyed on `(stream, frame)`.
//!
//! Measured timing still exists — it lands in the ledger's `#` notes,
//! which diffs ignore.

use super::ledger::{
    latency_class, pixel_digest, FrameOutcome, LedgerEntry, RunLedger, SubmitClass,
};
use super::trace::{StreamProfile, StreamTrace, Trace};
use crate::budget::LatencyBudget;
use crate::faults::{FaultPlan, FaultPlanConfig};
use crate::manager::ManagerConfig;
use crate::recovery::RecoveryPolicy;
use crate::service::{AdmissionPolicy, ServiceConfig, ServiceCore, ServiceReport};
use crate::session::{StreamResult, StreamSpec};
use platform::bus::{EventBus, FrameEvent, StreamId};
use platform::metrics::Observability;
use std::sync::Arc;
use std::time::Instant;
use triplec::scenario::ScenarioScript;
use triplec::training::TaskSeries;
use triplec::triple::{TripleC, TripleCConfig};
use triplec::{FrameGeometry, TASKS};
use xray::{ScenarioConfig, SequenceConfig, SequenceGenerator};

/// How replay time maps to host time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayClock {
    /// Arrival times are bookkeeping only: frames are submitted as fast
    /// as backpressure allows (tests; time-compressed).
    Virtual,
    /// The runner sleeps until each frame's scheduled arrival
    /// (benches; real-time pacing).
    RealTime,
}

/// Replays traces through the service tier.
pub struct TraceRunner {
    trace: Trace,
    clock: ReplayClock,
    service_cfg: ServiceConfig,
    obs: Option<Observability>,
    drift: Option<(f64, usize)>,
    admission: AdmissionPolicy,
    planning_quantile: Option<f64>,
}

impl TraceRunner {
    /// A runner over a parsed trace (virtual clock, default service
    /// configuration, p99 tail-driven admission).
    pub fn new(trace: Trace) -> Self {
        Self {
            trace,
            clock: ReplayClock::Virtual,
            service_cfg: ServiceConfig::default(),
            obs: None,
            drift: None,
            admission: AdmissionPolicy::default(),
            planning_quantile: None,
        }
    }

    /// Overrides the admission policy every stream is scheduled under
    /// (the quantile of the predicted cost distribution that demand,
    /// placement and latency classification are computed from).
    #[must_use = "builders do nothing until `run()`"]
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Overrides every stream's per-frame planning quantile (the point
    /// of the cost distribution the manager partitions against). Holding
    /// this fixed while varying [`with_admission`](Self::with_admission)
    /// isolates the grant-sizing decision: a frame is counted
    /// infeasible exactly when the planning-quantile cost cannot be
    /// held at the granted width.
    #[must_use = "builders do nothing until `run()`"]
    pub fn with_planning_quantile(mut self, quantile: f64) -> Self {
        self.planning_quantile = Some(quantile);
        self
    }

    /// Overrides the service-tier configuration.
    #[must_use = "builders do nothing until `run()`"]
    pub fn with_service_config(mut self, cfg: ServiceConfig) -> Self {
        self.service_cfg = cfg;
        self
    }

    /// Selects the replay clock.
    #[must_use = "builders do nothing until `run()`"]
    pub fn with_clock(mut self, clock: ReplayClock) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches observability: stream buses and the runner's own
    /// phase-marker bus feed the instance.
    #[must_use = "builders do nothing until `run()`"]
    pub fn with_observability(mut self, obs: Observability) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Arms prediction-drift quarantine on every stream: when the
    /// Markov scenario prediction hit rate over the last `window` frames
    /// falls below `threshold`, the stream quarantines its model and
    /// retrains the scenario chain from recent observations.
    #[must_use = "builders do nothing until `run()`"]
    pub fn with_drift(mut self, threshold: f64, window: usize) -> Self {
        self.drift = Some((threshold, window));
        self
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Expands the trace into the service specs the replay will run —
    /// public so reference tests can run the identical specs through
    /// other schedulers (e.g. a serial session) and compare outputs.
    pub fn specs(&self) -> Vec<StreamSpec> {
        self.trace
            .streams
            .iter()
            .map(|s| self.spec_for(s))
            .collect()
    }

    fn spec_for(&self, s: &StreamTrace) -> StreamSpec {
        let seq = sequence_for(s);
        let app = pipeline::app::AppConfig {
            scenario_script: scenario_script_for(s),
            ..Default::default()
        };
        let model = synthetic_model(s);
        let mut builder = StreamSpec::builder(seq, app, model)
            .budget(LatencyBudget::new(s.budget_ms, 0.1))
            .admission(self.admission);
        if let Some(q) = self.planning_quantile {
            builder = builder.manager_cfg(ManagerConfig {
                planning_quantile: q,
                ..ManagerConfig::default()
            });
        }
        let mut recovery = RecoveryPolicy::default();
        if let Some((threshold, window)) = self.drift {
            recovery.drift_threshold = Some(threshold);
            recovery.drift_window = window;
        }
        builder = builder.recovery(recovery);
        if let Some(f) = &s.faults {
            let plan = FaultPlan::new(
                f.seed,
                FaultPlanConfig {
                    panic_rate: f.panic_rate,
                    channel_rate: f.channel_rate,
                    delay_rate: f.delay_rate,
                    delay_ms: f.delay_ms,
                    drop_rate: f.drop_rate,
                    corrupt_rate: f.corrupt_rate,
                },
            );
            builder = builder.faults(Arc::new(plan));
        }
        builder.build()
    }

    /// Replays the trace: spawns the service, submits every frame in
    /// global schedule order, and assembles the run ledger. Two runs of
    /// the same trace yield ledgers with an empty
    /// [`diff`](RunLedger::diff).
    pub fn run(self) -> ReplayReport {
        let specs = self.specs();
        let schedule = self.trace.schedule();

        // runner-side phase markers flow through their own bus
        let mut phase_bus = EventBus::default();
        if let Some(obs) = &self.obs {
            obs.attach(&mut phase_bus);
        }
        let mut core = ServiceCore::new(self.service_cfg);
        if let Some(obs) = &self.obs {
            core = core.with_observability(obs.clone());
        }
        let handle = core.spawn(specs);

        // per-stream frame sources, pulled lazily in index order
        let mut sources: Vec<SequenceGenerator> = self
            .trace
            .streams
            .iter()
            .map(|s| SequenceGenerator::new(sequence_for(s)))
            .collect();

        let t0 = Instant::now();
        let mut submits: Vec<SubmitClass> = Vec::with_capacity(schedule.len());
        for arrival in &schedule {
            if self.clock == ReplayClock::RealTime {
                let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0;
                let wait = arrival.at_ms - elapsed_ms;
                if wait > 0.0 {
                    std::thread::sleep(std::time::Duration::from_secs_f64(wait / 1000.0));
                }
            }
            let frame = sources[arrival.stream as usize]
                .next()
                .expect("schedule never outruns the sequence");
            debug_assert_eq!(frame.index, arrival.frame);
            phase_bus.emit(FrameEvent::TracePhase {
                stream: arrival.stream,
                frame: arrival.frame,
                phase: "submit",
            });
            let outcome = handle.submit(arrival.stream, arrival.frame, frame.image);
            submits.push(match outcome {
                crate::service::SubmitOutcome::Accepted => SubmitClass::Accepted,
                crate::service::SubmitOutcome::DroppedOldest => SubmitClass::DroppedOldest,
                crate::service::SubmitOutcome::Rejected
                | crate::service::SubmitOutcome::UnknownStream => SubmitClass::Rejected,
            });
        }
        phase_bus.emit(FrameEvent::TracePhase {
            stream: platform::bus::DEFAULT_STREAM,
            frame: schedule.len(),
            phase: "drain",
        });
        handle.close_all();
        let report = handle.finish();
        let replay_wall_ms = t0.elapsed().as_secs_f64() * 1000.0;

        let ledger = assemble_ledger(&self.trace, &schedule, &submits, &report, replay_wall_ms);
        ReplayReport { ledger, report }
    }
}

/// Result of one replay: the deterministic ledger plus the full service
/// report it was distilled from.
pub struct ReplayReport {
    /// The diffable run record.
    pub ledger: RunLedger,
    /// The underlying service report (wall times, metrics, service-tier
    /// statistics — the nondeterministic plane).
    pub report: ServiceReport,
}

fn sequence_for(s: &StreamTrace) -> SequenceConfig {
    let base = SequenceConfig {
        width: s.width,
        height: s.height,
        frames: s.frames,
        seed: s.seed,
        ..Default::default()
    };
    match s.profile {
        StreamProfile::Stent => base,
        StreamProfile::Surveillance => {
            // low-contrast content with a hidden-device episode mid-stream:
            // tracking is lost and re-acquired
            let mut scenario = ScenarioConfig::default();
            scenario.base_contrast *= 0.6;
            scenario.hidden = vec![xray::HiddenEpisode {
                start: s.frames / 3,
                len: (s.frames / 4).max(1),
            }];
            SequenceConfig { scenario, ..base }
        }
        StreamProfile::ZoomOnly => base,
    }
}

fn scenario_script_for(s: &StreamTrace) -> Option<ScenarioScript> {
    if !s.script.is_empty() {
        return Some(ScenarioScript::new(s.script.clone()));
    }
    match s.profile {
        // zoom-only service: registration always succeeds, nothing else
        StreamProfile::ZoomOnly => Some(ScenarioScript::hold(4, s.frames)),
        _ => None,
    }
}

/// A synthetic analytic prediction model: per-task cost series scaled by
/// frame area (quadratic tasks dominate) with a fixed triangular
/// fluctuation, scenario chain trained on a fixed cyclic sequence.
/// Entirely input-independent, so plans are deterministic and identical
/// across replays.
///
/// The fluctuation is what makes quantile admission meaningful: its
/// coefficient of variation (~0.12) and positive lag-1 autocorrelation
/// (~0.67) select the adaptive EWMA+Markov model class, whose residual
/// window spreads the predicted distribution so p99 > mean. Training
/// keeps the models frozen (online off), so the distribution — like the
/// mean before it — never moves during replay.
fn synthetic_model(s: &StreamTrace) -> TripleC {
    // per-megapixel base costs, ms (ordered as TASKS) — sized so the
    // full-service scenario at 96² predicts ~50 ms: tight trace budgets
    // genuinely engage striping and the over/tight/ok latency classes
    const BASE_MS_PER_MPIX: [f64; 9] = [
        2400.0, 300.0, 160.0, 500.0, 600.0, 200.0, 120.0, 800.0, 400.0,
    ];
    // one period of the triangular fluctuation, ±20 % around the base
    const WAVE: [f64; 8] = [-1.0, -0.5, 0.0, 0.5, 1.0, 0.5, 0.0, -0.5];
    const WAVE_AMP: f64 = 0.2;
    let mpix = (s.width * s.height) as f64 / 1.0e6;
    let series: Vec<TaskSeries> = TASKS
        .iter()
        .zip(BASE_MS_PER_MPIX)
        .map(|(&task, base)| {
            let values: Vec<f64> = (0..64)
                .map(|i| base * mpix * (1.0 + WAVE_AMP * WAVE[i % WAVE.len()]))
                .collect();
            TaskSeries::new(task, values)
        })
        .collect();
    // dwelling blocks visit every scenario with dominant self-transitions:
    // the chain predicts "stay", so plans track the executing scenario and
    // a scripted storm produces genuinely varying plans (and, with drift
    // detection armed, genuine mispredictions)
    let scenarios: Vec<u8> = (0..8u8).flat_map(|s| [s; 6]).collect();
    let cfg = TripleCConfig {
        geometry: FrameGeometry {
            width: s.width,
            height: s.height,
        },
        ..Default::default()
    };
    let mut model = TripleC::train(&series, &scenarios, cfg);
    model.set_online_training(false);
    model
}

fn assemble_ledger(
    trace: &Trace,
    schedule: &[super::trace::Arrival],
    submits: &[SubmitClass],
    report: &ServiceReport,
    replay_wall_ms: f64,
) -> RunLedger {
    let mut ledger = RunLedger::default();
    let by_stream = |id: StreamId| -> Option<&StreamResult> {
        report.session.streams.iter().find(|r| r.stream == id)
    };
    // executed-record position per (stream, frame)
    let record_pos = |id: StreamId, frame: usize| -> Option<usize> {
        by_stream(id)?
            .trace
            .records()
            .iter()
            .position(|r| r.frame == frame)
    };
    for (seq, (arrival, submit)) in schedule.iter().zip(submits).enumerate() {
        let budget_ms = trace.streams[arrival.stream as usize].budget_ms;
        let entry = match record_pos(arrival.stream, arrival.frame) {
            Some(k) => {
                let r = by_stream(arrival.stream).expect("stream has records");
                // classify against the cost the stream was actually
                // admitted on (the policy's quantile of the predicted
                // distribution), not the planning mean
                let planned = r.planned_cost_ms[k];
                LedgerEntry {
                    stream: arrival.stream,
                    frame: arrival.frame,
                    seq,
                    arrival_ms: arrival.at_ms,
                    submit: *submit,
                    outcome: FrameOutcome::Executed,
                    scenario: Some(r.scenarios[k]),
                    predicted_ms: Some(round3(r.predictions[k])),
                    stripes: Some(r.stripes[k]),
                    class: latency_class(planned, budget_ms),
                    quantile: r.admission.label(),
                    digest: r.displays[k]
                        .as_ref()
                        .map(|img| pixel_digest(img.as_slice())),
                }
            }
            None => LedgerEntry {
                stream: arrival.stream,
                frame: arrival.frame,
                seq,
                arrival_ms: arrival.at_ms,
                submit: *submit,
                outcome: FrameOutcome::Dropped,
                scenario: None,
                predicted_ms: None,
                stripes: None,
                class: "-",
                quantile: "-".to_string(),
                digest: None,
            },
        };
        ledger.entries.push(entry);
    }
    for r in &report.session.streams {
        for key in r.fault_events.iter().filter_map(|e| e.replay_key()) {
            ledger.faults.push(key);
        }
    }
    for f in &report.session.failures {
        ledger
            .notes
            .push(format!("failure s{}: {}", f.stream, f.message));
    }
    for r in &report.session.streams {
        ledger
            .notes
            .push(format!("wall_ms s{} {:.1}", r.stream, r.wall_ms));
    }
    for r in &report.session.streams {
        let c = r.calibration;
        if c.frames > 0 {
            ledger.notes.push(format!(
                "calibration s{} frames={} p50={:.3} p95={:.3} p99={:.3}",
                r.stream, c.frames, c.p50_coverage, c.p95_coverage, c.p99_coverage
            ));
        }
    }
    ledger
        .notes
        .push(format!("replay_wall_ms {replay_wall_ms:.1}"));
    ledger
}

/// Rounds a prediction to the ledger's serialized precision so parsed
/// goldens compare equal to fresh runs.
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::trace::TraceError;

    fn small_trace() -> Trace {
        Trace::parse(
            "triplec-trace v1\n\
             stream 0 profile=stent width=96 height=96 frames=5 seed=21 budget_ms=200\n\
             arrival 0 fixed period_ms=10\n\
             stream 1 profile=zoom_only width=64 height=64 frames=4 seed=22 budget_ms=200\n\
             arrival 1 burst period_ms=5 burst_len=2 gap_ms=30\n",
        )
        .unwrap()
    }

    #[test]
    fn replay_is_ledger_deterministic() {
        let a = TraceRunner::new(small_trace()).run();
        let b = TraceRunner::new(small_trace()).run();
        let diff = a.ledger.diff(&b.ledger);
        assert!(diff.is_empty(), "replay diverged: {diff:?}");
        assert_eq!(a.ledger.entries.len(), 9);
        // ...and the text form round-trips through parse to an equal diff
        let parsed = RunLedger::parse(&a.ledger.to_text()).unwrap();
        assert!(parsed.diff(&b.ledger).is_empty());
    }

    #[test]
    fn zoom_only_profile_reports_scenario_4() {
        let out = TraceRunner::new(small_trace()).run();
        for e in out.ledger.entries.iter().filter(|e| e.stream == 1) {
            assert_eq!(e.scenario, Some(4), "frame {}", e.frame);
            assert!(e.digest.is_some(), "zoom-only frames always display");
        }
    }

    #[test]
    fn synthetic_models_make_deterministic_predictions() {
        // a plan is made before its frame runs, from the previous frame's
        // scenario (the dwelling chain predicts "stay"): equal predecessors
        // must yield equal plans
        let t = small_trace();
        let out = TraceRunner::new(t).run();
        let frames: Vec<(Option<u8>, f64)> = {
            let mut prev: Option<u8> = None;
            out.ledger
                .entries
                .iter()
                .filter(|e| e.stream == 0)
                .map(|e| {
                    let pair = (prev, e.predicted_ms.expect("clean run executes"));
                    prev = e.scenario;
                    pair
                })
                .collect()
        };
        for (prev_a, pred_a) in &frames {
            for (prev_b, pred_b) in &frames {
                if prev_a == prev_b {
                    assert_eq!(pred_a, pred_b, "same predecessor, same plan");
                }
            }
        }
    }

    #[test]
    fn runner_rejects_nothing_it_parsed() {
        // guard: the runner's own sample must stay parseable
        assert!(matches!(
            Trace::parse("triplec-trace v1\nnothing 0\n"),
            Err(TraceError::Syntax { .. })
        ));
    }
}
