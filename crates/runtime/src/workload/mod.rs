//! Trace-driven workload harness: replayable scenario storms,
//! mixed-resolution stream fleets, and golden-trace regression records.
//!
//! Three pieces (DESIGN.md §4j):
//!
//! - [`trace`]: the versioned, hand-editable trace file format — streams,
//!   arrival schedules, resolution mixes, scripted scenario storms, fault
//!   overlays — with typed-error parsing and canonical serialization.
//! - [`runner`]: [`TraceRunner`] replays a trace deterministically
//!   through the service tier ([`ServiceHandle`]-driven, virtual-clock
//!   compressed for tests, real-time paced for benches).
//! - [`ledger`]: [`RunLedger`], the per-frame replay record whose
//!   diffable plane is deterministic under a fixed trace — the substrate
//!   of the golden-trace regression tests in `tests/golden_traces.rs`.
//!
//! [`ServiceHandle`]: crate::service::ServiceHandle

pub mod ledger;
pub mod runner;
pub mod trace;

pub use ledger::{latency_class, pixel_digest, FrameOutcome, LedgerEntry, RunLedger, SubmitClass};
pub use runner::{ReplayClock, ReplayReport, TraceRunner};
pub use trace::{
    Arrival, ArrivalModel, FaultOverlay, StreamProfile, StreamTrace, Trace, TraceError,
};
