//! The run ledger: per-frame replay outcomes in a diffable text form.
//!
//! A [`RunLedger`] records, for every frame a [`super::TraceRunner`]
//! submitted, the facts of the replay that are deterministic under a
//! fixed trace + seed: global submit order, scheduled arrival time,
//! admission outcome, executed-vs-dropped, reported scenario, planned
//! (predicted) frame time and stripe count, latency classification
//! against the stream's budget, and a digest of the display output.
//! Fault-injection replay keys ride along as their own record family.
//!
//! Measured wall-clock timing is inherently nondeterministic, so it is
//! written only as `#`-prefixed note lines, which the parser — and
//! therefore [`RunLedger::diff`] — ignores. Golden-ledger tests compare
//! only the deterministic plane.
//!
//! ```text
//! triplec-ledger v1
//! frame s0/f0 seq=0 arrival_ms=0 submit=accepted outcome=executed scenario=1 predicted_ms=41.2 stripes=4 class=ok quantile=p99 digest=9e3779b97f4a7c15
//! fault s0/f3/inject/frame-drop
//! # wall_ms s0 412.7
//! ```

use super::trace::{parse_header, TraceError, TRACE_VERSION};
use crate::service::admission::AdmissionPolicy;
use platform::bus::StreamId;

/// Header magic of a ledger file.
pub const LEDGER_MAGIC: &str = "triplec-ledger";

/// How the service admitted a submitted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitClass {
    /// Queued (possibly after blocking on backpressure).
    Accepted,
    /// Admitted by evicting the oldest queued frame.
    DroppedOldest,
    /// Refused by admission control.
    Rejected,
}

impl SubmitClass {
    fn name(&self) -> &'static str {
        match self {
            SubmitClass::Accepted => "accepted",
            SubmitClass::DroppedOldest => "dropped_oldest",
            SubmitClass::Rejected => "rejected",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "accepted" => Some(SubmitClass::Accepted),
            "dropped_oldest" => Some(SubmitClass::DroppedOldest),
            "rejected" => Some(SubmitClass::Rejected),
            _ => None,
        }
    }
}

/// Whether the frame ultimately produced output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOutcome {
    /// The frame ran the pipeline and appears in the stream trace log.
    Executed,
    /// The frame was dropped (fault injection or eviction) and never ran.
    Dropped,
}

impl FrameOutcome {
    fn name(&self) -> &'static str {
        match self {
            FrameOutcome::Executed => "executed",
            FrameOutcome::Dropped => "dropped",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "executed" => Some(FrameOutcome::Executed),
            "dropped" => Some(FrameOutcome::Dropped),
            _ => None,
        }
    }
}

/// One frame's deterministic replay record.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Stream the frame belongs to.
    pub stream: StreamId,
    /// Frame index within the stream.
    pub frame: usize,
    /// Position in the global submit order.
    pub seq: usize,
    /// Scheduled arrival time, ms from trace start.
    pub arrival_ms: f64,
    /// Admission outcome.
    pub submit: SubmitClass,
    /// Executed or dropped.
    pub outcome: FrameOutcome,
    /// Reported scenario id (0-7), or `None` for dropped frames.
    pub scenario: Option<u8>,
    /// Planned (predicted) frame time, ms, or `None` for dropped frames.
    pub predicted_ms: Option<f64>,
    /// Planned RDG stripe count, or `None` for dropped frames.
    pub stripes: Option<usize>,
    /// Latency class of the planned scheduling cost (the admission
    /// policy's point of the predicted distribution) against the stream
    /// budget: `"ok"` (≤ 80% of budget), `"tight"` (≤ budget), `"over"`,
    /// or `"-"` for dropped frames.
    pub class: &'static str,
    /// Admission-policy label the classification was made against
    /// (`"mean"`, `"p99"`, ...; `"-"` for dropped frames).
    pub quantile: String,
    /// FNV-1a 64 digest of the display output pixels, or `None` when the
    /// frame produced no display.
    pub digest: Option<u64>,
}

impl LedgerEntry {
    /// Stable replay key of this frame (`s{stream}/f{frame}`), the same
    /// keyspace fault replay keys extend.
    pub fn replay_key(&self) -> String {
        format!("s{}/f{}", self.stream, self.frame)
    }
}

/// Classifies a predicted frame time against a latency budget.
pub fn latency_class(predicted_ms: f64, budget_ms: f64) -> &'static str {
    if predicted_ms <= 0.8 * budget_ms {
        "ok"
    } else if predicted_ms <= budget_ms {
        "tight"
    } else {
        "over"
    }
}

/// A complete replay record: frame entries in submit order, fault replay
/// keys, and free-form notes (excluded from diffs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunLedger {
    /// Frame records, ordered by `seq`.
    pub entries: Vec<LedgerEntry>,
    /// Fault-injection replay keys, in `(stream, emission)` order.
    pub faults: Vec<String>,
    /// Non-diffed annotations (measured wall times and the like).
    pub notes: Vec<String>,
}

impl RunLedger {
    /// Serializes to the canonical text form. Notes become `#` lines.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{LEDGER_MAGIC} v{TRACE_VERSION}");
        for e in &self.entries {
            let scenario = e
                .scenario
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into());
            let predicted = e
                .predicted_ms
                .map(|p| format!("{p:.3}"))
                .unwrap_or_else(|| "-".into());
            let stripes = e
                .stripes
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into());
            let digest = e
                .digest
                .map(|d| format!("{d:016x}"))
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "frame {} seq={} arrival_ms={} submit={} outcome={} scenario={} \
                 predicted_ms={} stripes={} class={} quantile={} digest={}",
                e.replay_key(),
                e.seq,
                e.arrival_ms,
                e.submit.name(),
                e.outcome.name(),
                scenario,
                predicted,
                stripes,
                e.class,
                e.quantile,
                digest
            );
        }
        for key in &self.faults {
            let _ = writeln!(out, "fault {key}");
        }
        for note in &self.notes {
            let _ = writeln!(out, "# {note}");
        }
        out
    }

    /// Parses the text form (dropping `#` notes). Typed errors, no
    /// panics.
    pub fn parse(text: &str) -> Result<RunLedger, TraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .by_ref()
            .find(|(_, l)| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .ok_or(TraceError::MissingHeader)?;
        parse_header(header, LEDGER_MAGIC)?;

        let mut ledger = RunLedger::default();
        for (i, raw) in lines {
            let line = i + 1;
            let t = raw.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let mut toks = t.split_whitespace();
            match toks.next() {
                Some("frame") => {
                    let key = toks.next().ok_or_else(|| TraceError::Syntax {
                        line,
                        message: "frame record needs a replay key".into(),
                    })?;
                    let (stream, frame) = parse_replay_key(key, line)?;
                    let mut entry = LedgerEntry {
                        stream,
                        frame,
                        seq: 0,
                        arrival_ms: 0.0,
                        submit: SubmitClass::Accepted,
                        outcome: FrameOutcome::Executed,
                        scenario: None,
                        predicted_ms: None,
                        stripes: None,
                        class: "-",
                        quantile: "-".to_string(),
                        digest: None,
                    };
                    for tok in toks {
                        let (k, v) = tok.split_once('=').ok_or_else(|| TraceError::Syntax {
                            line,
                            message: format!("expected key=value, got {tok:?}"),
                        })?;
                        let bad = |message: String| TraceError::Syntax { line, message };
                        match k {
                            "seq" => {
                                entry.seq = v.parse().map_err(|_| bad(format!("bad seq {v:?}")))?;
                            }
                            "arrival_ms" => {
                                entry.arrival_ms = v
                                    .parse()
                                    .map_err(|_| bad(format!("bad arrival_ms {v:?}")))?;
                            }
                            "submit" => {
                                entry.submit = SubmitClass::from_name(v)
                                    .ok_or_else(|| bad(format!("bad submit {v:?}")))?;
                            }
                            "outcome" => {
                                entry.outcome = FrameOutcome::from_name(v)
                                    .ok_or_else(|| bad(format!("bad outcome {v:?}")))?;
                            }
                            "scenario" => {
                                entry.scenario =
                                    parse_opt(v).map_err(|_| bad(format!("bad scenario {v:?}")))?;
                            }
                            "predicted_ms" => {
                                entry.predicted_ms = parse_opt(v)
                                    .map_err(|_| bad(format!("bad predicted_ms {v:?}")))?;
                            }
                            "stripes" => {
                                entry.stripes =
                                    parse_opt(v).map_err(|_| bad(format!("bad stripes {v:?}")))?;
                            }
                            "class" => {
                                entry.class = match v {
                                    "ok" => "ok",
                                    "tight" => "tight",
                                    "over" => "over",
                                    "-" => "-",
                                    other => return Err(bad(format!("bad class {other:?}"))),
                                };
                            }
                            "quantile" => {
                                if v != "-" && AdmissionPolicy::from_label(v).is_none() {
                                    return Err(bad(format!("bad quantile {v:?}")));
                                }
                                entry.quantile = v.to_string();
                            }
                            "digest" => {
                                entry.digest = if v == "-" {
                                    None
                                } else {
                                    Some(
                                        u64::from_str_radix(v, 16)
                                            .map_err(|_| bad(format!("bad digest {v:?}")))?,
                                    )
                                };
                            }
                            other => return Err(bad(format!("unknown ledger field {other:?}"))),
                        }
                    }
                    ledger.entries.push(entry);
                }
                Some("fault") => {
                    let key = toks.next().ok_or_else(|| TraceError::Syntax {
                        line,
                        message: "fault record needs a replay key".into(),
                    })?;
                    ledger.faults.push(key.to_string());
                }
                Some(other) => {
                    return Err(TraceError::Syntax {
                        line,
                        message: format!("unknown ledger record {other:?}"),
                    })
                }
                None => unreachable!("non-blank line has a first token"),
            }
        }
        Ok(ledger)
    }

    /// Compares the diffable plane of two ledgers: a human-readable list
    /// of differences, empty when they replay identically. Notes are
    /// never compared.
    pub fn diff(&self, other: &RunLedger) -> Vec<String> {
        let mut out = Vec::new();
        if self.entries.len() != other.entries.len() {
            out.push(format!(
                "entry count: {} vs {}",
                self.entries.len(),
                other.entries.len()
            ));
        }
        for (a, b) in self.entries.iter().zip(&other.entries) {
            if a == b {
                continue;
            }
            if a.replay_key() != b.replay_key() || a.seq != b.seq {
                out.push(format!(
                    "order: {} seq={} vs {} seq={}",
                    a.replay_key(),
                    a.seq,
                    b.replay_key(),
                    b.seq
                ));
                continue;
            }
            let key = a.replay_key();
            if a.arrival_ms != b.arrival_ms {
                out.push(format!(
                    "{key}: arrival_ms {} vs {}",
                    a.arrival_ms, b.arrival_ms
                ));
            }
            if a.submit != b.submit {
                out.push(format!(
                    "{key}: submit {} vs {}",
                    a.submit.name(),
                    b.submit.name()
                ));
            }
            if a.outcome != b.outcome {
                out.push(format!(
                    "{key}: outcome {} vs {}",
                    a.outcome.name(),
                    b.outcome.name()
                ));
            }
            if a.scenario != b.scenario {
                out.push(format!(
                    "{key}: scenario {:?} vs {:?}",
                    a.scenario, b.scenario
                ));
            }
            if a.predicted_ms != b.predicted_ms {
                out.push(format!(
                    "{key}: predicted_ms {:?} vs {:?}",
                    a.predicted_ms, b.predicted_ms
                ));
            }
            if a.stripes != b.stripes {
                out.push(format!("{key}: stripes {:?} vs {:?}", a.stripes, b.stripes));
            }
            if a.class != b.class {
                out.push(format!("{key}: class {} vs {}", a.class, b.class));
            }
            if a.quantile != b.quantile {
                out.push(format!("{key}: quantile {} vs {}", a.quantile, b.quantile));
            }
            if a.digest != b.digest {
                out.push(format!("{key}: digest {:?} vs {:?}", a.digest, b.digest));
            }
        }
        if self.faults != other.faults {
            out.push(format!(
                "fault keys: {:?} vs {:?}",
                self.faults, other.faults
            ));
        }
        out
    }
}

fn parse_replay_key(key: &str, line: usize) -> Result<(StreamId, usize), TraceError> {
    let bad = || TraceError::Syntax {
        line,
        message: format!("bad replay key {key:?}"),
    };
    let (s, f) = key.split_once('/').ok_or_else(bad)?;
    let stream = s.strip_prefix('s').and_then(|v| v.parse().ok());
    let frame = f.strip_prefix('f').and_then(|v| v.parse().ok());
    match (stream, frame) {
        (Some(stream), Some(frame)) => Ok((stream, frame)),
        _ => Err(bad()),
    }
}

fn parse_opt<T: std::str::FromStr>(v: &str) -> Result<Option<T>, ()> {
    if v == "-" {
        Ok(None)
    } else {
        v.parse().map(Some).map_err(|_| ())
    }
}

/// FNV-1a 64 digest of a display buffer (stable across platforms).
pub fn pixel_digest(pixels: &[u16]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in pixels {
        for byte in p.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(stream: StreamId, frame: usize, seq: usize) -> LedgerEntry {
        LedgerEntry {
            stream,
            frame,
            seq,
            arrival_ms: seq as f64 * 33.33,
            submit: SubmitClass::Accepted,
            outcome: FrameOutcome::Executed,
            scenario: Some(7),
            predicted_ms: Some(41.25),
            stripes: Some(4),
            class: "ok",
            quantile: "p99".to_string(),
            digest: Some(0x9e37_79b9_7f4a_7c15),
        }
    }

    #[test]
    fn round_trips_through_text() {
        let mut ledger = RunLedger::default();
        ledger.entries.push(entry(0, 0, 0));
        ledger.entries.push(LedgerEntry {
            outcome: FrameOutcome::Dropped,
            scenario: None,
            predicted_ms: None,
            stripes: None,
            class: "-",
            quantile: "-".to_string(),
            digest: None,
            ..entry(1, 0, 1)
        });
        ledger.faults.push("s1/f0/inject/frame-drop".into());
        ledger.notes.push("wall_ms s0 412.7".into());
        let text = ledger.to_text();
        let parsed = RunLedger::parse(&text).unwrap();
        assert_eq!(parsed.entries, ledger.entries);
        assert_eq!(parsed.faults, ledger.faults);
        assert!(parsed.notes.is_empty()); // notes drop on parse
        assert!(parsed.diff(&ledger).is_empty()); // ...and never diff
    }

    #[test]
    fn diff_reports_changed_fields() {
        let mut a = RunLedger::default();
        a.entries.push(entry(0, 0, 0));
        let mut b = a.clone();
        b.entries[0].stripes = Some(2);
        b.entries[0].class = "over";
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert!(d[0].contains("stripes"));
        assert!(d[1].contains("class"));
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn rejects_malformed_ledgers() {
        assert_eq!(RunLedger::parse(""), Err(TraceError::MissingHeader));
        assert!(matches!(
            RunLedger::parse("triplec-ledger v2\n"),
            Err(TraceError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            RunLedger::parse("triplec-ledger v1\nframe nonsense seq=0\n"),
            Err(TraceError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            RunLedger::parse("triplec-ledger v1\nwidget s0/f0\n"),
            Err(TraceError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            RunLedger::parse("triplec-ledger v1\nframe s0/f0 quantile=median\n"),
            Err(TraceError::Syntax { line: 2, .. })
        ));
        assert!(RunLedger::parse("triplec-ledger v1\nframe s0/f0 quantile=p97.5\n").is_ok());
    }

    #[test]
    fn latency_classes() {
        assert_eq!(latency_class(10.0, 100.0), "ok");
        assert_eq!(latency_class(80.0, 100.0), "ok");
        assert_eq!(latency_class(90.0, 100.0), "tight");
        assert_eq!(latency_class(100.5, 100.0), "over");
    }

    #[test]
    fn pixel_digest_is_stable() {
        assert_eq!(pixel_digest(&[]), 0xcbf2_9ce4_8422_2325);
        let a = pixel_digest(&[1, 2, 3]);
        assert_eq!(a, pixel_digest(&[1, 2, 3]));
        assert_ne!(a, pixel_digest(&[1, 2, 4]));
    }
}
