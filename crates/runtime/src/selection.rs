//! Online champion/challenger model selection.
//!
//! The manager's live model (the *champion*) plans every frame; a
//! *challenger* — a clone of the champion with online training forced on
//! — shadow-trains off the same event stream without ever touching a
//! scheduling decision. Each absorbed frame, both models predict the
//! executed scenario's total task cost from the same pre-observation
//! state, and the absolute errors against the measured total are scored
//! into per-scenario rolling windows. When the challenger sustains a
//! clear accuracy win (a streak of strictly better frames *and* a
//! windowed mean error below `win_ratio` of the champion's), it is
//! promoted: the models swap, a fresh challenger is cloned from the new
//! champion, and a [`FrameEvent::ChallengerPromoted`] event is emitted.
//!
//! Demotion needs no machinery of its own: a champion whose accuracy
//! degrades is caught by the existing drift-quarantine path (the
//! recovery tier quarantines and re-trains a model whose predictions
//! drift), and the next challenger takes over through the same
//! promotion rule. Selection is scoped per scenario because the paper's
//! per-task predictors are scenario-conditioned: a challenger can be
//! better in the thrashing scenarios while the champion still wins the
//! steady ones, and a promotion should only fire on evidence from the
//! scenarios actually being executed.
//!
//! [`FrameEvent::ChallengerPromoted`]: platform::bus::FrameEvent::ChallengerPromoted

use pipeline::executor::FrameOutput;
use triplec::predictor::PredictContext;
use triplec::triple::TripleC;

/// Number of switch scenarios (the paper's 3-bit scenario space).
const NUM_SCENARIOS: usize = 8;

/// Per-scenario rolling-window capacity for error scoring.
const ERR_WINDOW: usize = 32;

/// Champion/challenger selection parameters (part of
/// [`ManagerConfig`](crate::manager::ManagerConfig)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionConfig {
    /// Master switch; selection is off by default (zero overhead and
    /// byte-identical behavior to a selector-less manager).
    pub enabled: bool,
    /// Promotion requires the challenger's windowed mean error to be
    /// below `win_ratio * champion_mean_error` (strictly): 0.9 demands a
    /// sustained ≥10 % accuracy win, not a statistical tie.
    pub win_ratio: f64,
    /// Minimum scored frames in the executed scenario's window before a
    /// promotion can fire (guards against small-sample flukes).
    pub min_frames: u32,
    /// Consecutive frames (any scenario) the challenger must win
    /// outright before a promotion can fire.
    pub streak: u32,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            win_ratio: 0.9,
            min_frames: 16,
            streak: 8,
        }
    }
}

/// A promotion decision, reported back to the manager for event
/// emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Promotion {
    /// Windowed mean absolute error of the (demoted) champion, ms.
    pub champion_err_ms: f64,
    /// Windowed mean absolute error of the promoted challenger, ms.
    pub challenger_err_ms: f64,
}

/// Bounded ring of `(champion_err, challenger_err)` pairs for one
/// scenario.
#[derive(Debug, Clone, Default)]
struct ErrWindow {
    pairs: Vec<(f64, f64)>,
    cursor: usize,
}

impl ErrWindow {
    fn push(&mut self, champ: f64, chall: f64) {
        if self.pairs.len() < ERR_WINDOW {
            self.pairs.push((champ, chall));
        } else {
            self.pairs[self.cursor] = (champ, chall);
            self.cursor = (self.cursor + 1) % ERR_WINDOW;
        }
    }

    fn len(&self) -> usize {
        self.pairs.len()
    }

    fn means(&self) -> (f64, f64) {
        if self.pairs.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.pairs.len() as f64;
        let (sc, sl) = self
            .pairs
            .iter()
            .fold((0.0, 0.0), |(ac, al), &(c, l)| (ac + c, al + l));
        (sc / n, sl / n)
    }
}

/// The shadow-training challenger and its scoring state.
pub struct ModelSelector {
    cfg: SelectionConfig,
    challenger: TripleC,
    windows: Vec<ErrWindow>,
    win_streak: u32,
    promotions: u32,
}

impl ModelSelector {
    /// Clones the champion into a fresh challenger with online training
    /// forced on.
    pub fn new(champion: &TripleC, cfg: SelectionConfig) -> Self {
        let mut challenger = champion.clone();
        challenger.set_online_training(true);
        Self {
            cfg,
            challenger,
            windows: vec![ErrWindow::default(); NUM_SCENARIOS],
            win_streak: 0,
            promotions: 0,
        }
    }

    /// Promotions performed so far.
    pub fn promotions(&self) -> u32 {
        self.promotions
    }

    /// Read access to the shadow challenger (tests, benchmarks).
    pub fn challenger(&self) -> &TripleC {
        &self.challenger
    }

    /// Scores one absorbed frame and shadow-trains the challenger.
    ///
    /// Must run *before* the champion observes the frame's task times,
    /// so both models predict from the same pre-observation state. On a
    /// sustained challenger win the models are swapped in place and the
    /// promotion is returned for event emission.
    pub fn absorb(
        &mut self,
        champion: &mut TripleC,
        out: &FrameOutput,
        ctx: &PredictContext,
    ) -> Option<Promotion> {
        let actual: f64 = out.record.task_times.iter().map(|&(_, ms)| ms).sum();
        let predict_total = |model: &TripleC| -> f64 {
            out.record
                .task_times
                .iter()
                .map(|&(task, _)| model.predict_task(task, ctx).map_or(0.0, |p| p.mean_ms))
                .sum()
        };
        let champ_err = (predict_total(champion) - actual).abs();
        let chall_err = (predict_total(&self.challenger) - actual).abs();

        // shadow-train the challenger on the measured times (the
        // champion trains afterwards, under its own training switch)
        for &(task, ms) in &out.record.task_times {
            self.challenger.observe_task(task, ms, ctx);
        }

        let scenario = out.scenario.id() as usize;
        let window = &mut self.windows[scenario.min(NUM_SCENARIOS - 1)];
        window.push(champ_err, chall_err);
        if chall_err < champ_err {
            self.win_streak += 1;
        } else {
            self.win_streak = 0;
        }

        let (champ_mean, chall_mean) = window.means();
        let sustained = window.len() as u32 >= self.cfg.min_frames
            && self.win_streak >= self.cfg.streak
            && chall_mean < self.cfg.win_ratio * champ_mean;
        if !sustained {
            return None;
        }

        // promote: swap in place, re-arm a fresh challenger from the new
        // champion, reset all scoring state
        std::mem::swap(champion, &mut self.challenger);
        self.challenger = champion.clone();
        self.challenger.set_online_training(true);
        for w in &mut self.windows {
            *w = ErrWindow::default();
        }
        self.win_streak = 0;
        self.promotions += 1;
        Some(Promotion {
            champion_err_ms: champ_mean,
            challenger_err_ms: chall_mean,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::trace::FrameRecord;
    use triplec::scenario::Scenario;
    use triplec::training::TaskSeries;
    use triplec::triple::TripleCConfig;

    /// Dwell-4 square wave between 30 and 50 ms: CV 0.25 and positive
    /// lag-1 autocorrelation, so training selects the adaptive
    /// EWMA+Markov model (a constant model never adapts and cannot be
    /// differentiated by shadow training).
    fn square_wave(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if (i / 4) % 2 == 0 { 30.0 } else { 50.0 })
            .collect()
    }

    fn model() -> TripleC {
        let series = vec![
            TaskSeries::new("RDG_FULL", square_wave(200)),
            TaskSeries::new("MKX_EXT", vec![2.5; 200]),
        ];
        let scenarios = vec![1u8; 200];
        TripleC::train(&series, &scenarios, TripleCConfig::default())
    }

    fn frame(rdg_ms: f64) -> FrameOutput {
        FrameOutput {
            record: FrameRecord {
                frame: 0,
                scenario: 1,
                task_times: vec![("RDG_FULL", rdg_ms), ("MKX_EXT", 2.5)],
                latency_ms: rdg_ms + 2.5,
            },
            scenario: Scenario::from_id(1),
            roi: None,
            roi_kpixels: 1000.0,
            couple_found: true,
            display: None,
        }
    }

    #[test]
    fn stale_champion_gets_replaced_after_sustained_win() {
        // champion frozen near 40 ms while the workload drifts to 80 ms:
        // the shadow-training challenger adapts and must be promoted
        let mut champion = model();
        let cfg = SelectionConfig {
            enabled: true,
            ..Default::default()
        };
        let mut sel = ModelSelector::new(&champion, cfg);
        let ctx = PredictContext {
            roi_kpixels: 1000.0,
        };
        let mut promoted = None;
        for _ in 0..64 {
            if let Some(p) = sel.absorb(&mut champion, &frame(80.0), &ctx) {
                promoted = Some(p);
                break;
            }
        }
        let p = promoted.expect("drifted workload must promote the adaptive challenger");
        assert!(
            p.challenger_err_ms < p.champion_err_ms,
            "promotion with challenger err {} >= champion err {}",
            p.challenger_err_ms,
            p.champion_err_ms
        );
        assert_eq!(sel.promotions(), 1);
        // the promoted champion now tracks the drifted cost
        let pred = champion
            .predict_task("RDG_FULL", &ctx)
            .expect("promoted champion predicts")
            .mean_ms;
        assert!(
            (pred - 80.0).abs() < 20.0,
            "promoted champion still predicts {pred} ms for an 80 ms task"
        );
    }

    #[test]
    fn exact_champion_is_never_demoted() {
        // every frame lands exactly on the champion's prediction: its
        // error is zero, the challenger can never win strictly, and the
        // champion must stay untouched
        let mut champion = model();
        let ctx = PredictContext {
            roi_kpixels: 1000.0,
        };
        let before = champion.predict_task("RDG_FULL", &ctx).unwrap();
        let mut sel = ModelSelector::new(&champion, SelectionConfig::default());
        let rdg = before.mean_ms;
        let mkx = champion.predict_task("MKX_EXT", &ctx).unwrap().mean_ms;
        for _ in 0..64 {
            let out = FrameOutput {
                record: FrameRecord {
                    frame: 0,
                    scenario: 1,
                    task_times: vec![("RDG_FULL", rdg), ("MKX_EXT", mkx)],
                    latency_ms: rdg + mkx,
                },
                scenario: Scenario::from_id(1),
                roi: None,
                roi_kpixels: 1000.0,
                couple_found: true,
                display: None,
            };
            assert!(sel.absorb(&mut champion, &out, &ctx).is_none());
        }
        assert_eq!(sel.promotions(), 0);
        let after = champion.predict_task("RDG_FULL", &ctx).unwrap();
        assert_eq!(before, after, "champion was mutated");
    }
}
