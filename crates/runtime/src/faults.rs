//! Deterministic fault injection for soak and property testing.
//!
//! A [`FaultPlan`] is a pure function from `(seed, stream, frame)` to the
//! faults armed for that frame: stripe-worker panics, transient
//! pool-channel errors, inflated stage times, dropped input frames, and
//! forced model-snapshot corruption. Draws are hash-based (splitmix64)
//! rather than sequential-RNG based, so the plan is *order independent*:
//! concurrent streams, retried frames, and replayed runs all see exactly
//! the same faults for the same coordinates. Replaying a seed therefore
//! reproduces a faulted session event-for-event.
//!
//! Sessions consume plans through the [`FaultInjector`] trait object hook
//! on [`StreamSpec`](crate::session::StreamSpec); when the hook is absent
//! the session runs the unhooked hot path, so the harness is zero-cost
//! when disabled.

use pipeline::executor::FrameFaults;
use platform::bus::StreamId;

/// splitmix64: a tiny, high-quality bijective mixer (public domain
/// constants from Steele et al.); one round per draw keeps plan lookups
/// branch-free and allocation-free.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One deterministic draw for `(seed, stream, frame, salt)` in `[0, 1)`.
#[inline]
fn draw(seed: u64, stream: StreamId, frame: usize, salt: u64) -> f64 {
    let mut h = splitmix64(seed ^ salt.wrapping_mul(0xa076_1d64_78bd_642f));
    h = splitmix64(h ^ (stream as u64).wrapping_mul(0xe703_7ed1_a0b4_28db));
    h = splitmix64(h ^ (frame as u64).wrapping_mul(0x8ebc_6af0_9c88_c6e3));
    // take the top 53 bits for an unbiased f64 in [0, 1)
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Raw 64-bit hash for `(seed, stream, frame, salt)` (e.g. to pick the
/// byte a corrupted snapshot garbles).
#[inline]
pub fn fault_hash(seed: u64, stream: StreamId, frame: usize, salt: u64) -> u64 {
    let mut h = splitmix64(seed ^ salt.wrapping_mul(0xa076_1d64_78bd_642f));
    h = splitmix64(h ^ (stream as u64).wrapping_mul(0xe703_7ed1_a0b4_28db));
    splitmix64(h ^ (frame as u64).wrapping_mul(0x8ebc_6af0_9c88_c6e3))
}

const SALT_PANIC: u64 = 1;
const SALT_CHANNEL: u64 = 2;
const SALT_DELAY: u64 = 3;
const SALT_DROP: u64 = 4;
const SALT_CORRUPT: u64 = 5;

/// Per-fault-kind injection rates (probability per frame, in `[0, 1]`).
/// The default arms nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlanConfig {
    /// Probability a frame's striped RDG dispatch gets one panicking job.
    pub panic_rate: f64,
    /// Probability a frame's first dispatch fails with a transient
    /// pool-channel error.
    pub channel_rate: f64,
    /// Probability a frame's stage times are inflated by `delay_ms`.
    pub delay_rate: f64,
    /// The injected inflation, milliseconds.
    pub delay_ms: f64,
    /// Probability a frame is dropped at the session input (never
    /// planned or executed; the stream's output for it is suppressed).
    pub drop_rate: f64,
    /// Probability a completed frame's model-snapshot checkpoint is
    /// corrupted before restore.
    pub corrupt_rate: f64,
}

/// A seeded, order-independent fault schedule over all streams and frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultPlanConfig,
}

impl FaultPlan {
    /// A plan drawing from `seed` at the given rates.
    pub fn new(seed: u64, cfg: FaultPlanConfig) -> Self {
        Self { seed, cfg }
    }

    /// The plan's seed (for replay recipes).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured rates.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.cfg
    }
}

/// Hook consumed by stream sessions: decides, per `(stream, frame)`, what
/// faults to arm. Implementations must be pure functions of their inputs
/// (no interior mutability affecting results) so that concurrent streams
/// and replays observe identical schedules.
pub trait FaultInjector: Send + Sync {
    /// Executor-level faults for this frame (pool panics, channel errors,
    /// stage-time inflation).
    fn frame_faults(&self, stream: StreamId, frame: usize) -> FrameFaults;

    /// Whether the frame is dropped at the session input.
    fn drops_frame(&self, _stream: StreamId, _frame: usize) -> bool {
        false
    }

    /// Whether the frame's model-snapshot checkpoint is corrupted.
    fn corrupts_snapshot(&self, _stream: StreamId, _frame: usize) -> bool {
        false
    }

    /// Seed for deriving deterministic corruption payloads (which byte of
    /// a snapshot to garble). Defaults to a fixed constant so stateless
    /// injectors stay reproducible.
    fn seed(&self) -> u64 {
        0
    }
}

impl FaultInjector for FaultPlan {
    fn frame_faults(&self, stream: StreamId, frame: usize) -> FrameFaults {
        let mut f = FrameFaults::default();
        if self.cfg.panic_rate > 0.0
            && draw(self.seed, stream, frame, SALT_PANIC) < self.cfg.panic_rate
        {
            f.rdg_panic_jobs = 1;
        }
        if self.cfg.channel_rate > 0.0
            && draw(self.seed, stream, frame, SALT_CHANNEL) < self.cfg.channel_rate
        {
            f.rdg_channel_errors = 1;
        }
        if self.cfg.delay_rate > 0.0
            && self.cfg.delay_ms > 0.0
            && draw(self.seed, stream, frame, SALT_DELAY) < self.cfg.delay_rate
        {
            f.stage_delay_ms = self.cfg.delay_ms;
        }
        f
    }

    fn drops_frame(&self, stream: StreamId, frame: usize) -> bool {
        self.cfg.drop_rate > 0.0 && draw(self.seed, stream, frame, SALT_DROP) < self.cfg.drop_rate
    }

    fn corrupts_snapshot(&self, stream: StreamId, frame: usize) -> bool {
        self.cfg.corrupt_rate > 0.0
            && draw(self.seed, stream, frame, SALT_CORRUPT) < self.cfg.corrupt_rate
    }

    fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_on(seed: u64) -> FaultPlan {
        FaultPlan::new(
            seed,
            FaultPlanConfig {
                panic_rate: 0.3,
                channel_rate: 0.3,
                delay_rate: 0.3,
                delay_ms: 5.0,
                drop_rate: 0.3,
                corrupt_rate: 0.3,
            },
        )
    }

    #[test]
    fn plan_is_deterministic_and_order_independent() {
        let plan = all_on(42);
        // evaluate coordinates in two different orders: same answers
        let fwd: Vec<FrameFaults> = (0..64).map(|f| plan.frame_faults(1, f)).collect();
        let rev: Vec<FrameFaults> = (0..64).rev().map(|f| plan.frame_faults(1, f)).collect();
        let rev_fixed: Vec<FrameFaults> = rev.into_iter().rev().collect();
        assert_eq!(fwd, rev_fixed);
        // and a second plan with the same seed agrees exactly
        let again = all_on(42);
        for f in 0..64 {
            assert_eq!(plan.frame_faults(3, f), again.frame_faults(3, f));
            assert_eq!(plan.drops_frame(3, f), again.drops_frame(3, f));
            assert_eq!(plan.corrupts_snapshot(3, f), again.corrupts_snapshot(3, f));
        }
    }

    #[test]
    fn different_seeds_and_streams_decorrelate() {
        let a = all_on(1);
        let b = all_on(2);
        let mut differs = 0;
        for f in 0..256 {
            if a.frame_faults(0, f) != b.frame_faults(0, f) {
                differs += 1;
            }
            if a.frame_faults(0, f) != a.frame_faults(1, f) {
                differs += 1;
            }
        }
        assert!(differs > 50, "only {differs}/512 draws differ");
    }

    #[test]
    fn rates_are_respected_approximately() {
        let plan = FaultPlan::new(
            7,
            FaultPlanConfig {
                panic_rate: 0.25,
                ..Default::default()
            },
        );
        let n = 4000;
        let hits = (0..n)
            .filter(|&f| plan.frame_faults(0, f).rdg_panic_jobs > 0)
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "observed rate {rate}");
        // zero-rate kinds never fire
        assert!((0..n).all(|f| !plan.drops_frame(0, f)));
        assert!((0..n).all(|f| !plan.corrupts_snapshot(0, f)));
    }

    #[test]
    fn zero_config_plan_arms_nothing() {
        let plan = FaultPlan::new(9, FaultPlanConfig::default());
        for f in 0..128 {
            assert!(!plan.frame_faults(0, f).any());
            assert!(!plan.drops_frame(0, f));
            assert!(!plan.corrupts_snapshot(0, f));
        }
    }

    #[test]
    fn fault_hash_is_stable() {
        assert_eq!(fault_hash(1, 2, 3, 4), fault_hash(1, 2, 3, 4));
        assert_ne!(fault_hash(1, 2, 3, 4), fault_hash(1, 2, 3, 5));
    }
}
