//! Graceful-degradation policies for faulted streams.
//!
//! Complements the executor-level stage retry (`pipeline::executor::
//! StageRetry`) with session-level policies:
//!
//! * **stripe downshift** — after N consecutive budget overruns the
//!   stream caps its stripe counts (halving, floored at
//!   [`RecoveryPolicy::min_stripes`]) and emits
//!   [`DegradeMode::StripeDownshift`]; after N consecutive clean frames
//!   the cap lifts again with a `Recovered` event;
//! * **model quarantine** — a corrupted model-snapshot checkpoint is
//!   rejected (restore returns `Err`, never panics), online training is
//!   suspended for [`RecoveryPolicy::quarantine_frames`] frames
//!   ([`DegradeMode::ModelQuarantine`]), then re-enabled with a
//!   `Recovered` event (re-train);
//! * **frame deadline** — a frame whose host wall time exceeds
//!   [`RecoveryPolicy::frame_deadline_ms`] has its output replaced by the
//!   stream's last good display ([`DegradeMode::OutputDropped`]). Wall
//!   time is not reproducible, so this policy defaults to off and is
//!   excluded from replay-determinism guarantees;
//! * **prediction-drift quarantine** — when the rolling hit-rate of
//!   scenario predictions over [`RecoveryPolicy::drift_window`] frames
//!   falls below [`RecoveryPolicy::drift_threshold`] (scenario storms
//!   thrash transitions the training chain has never seen), the model is
//!   quarantined ([`DegradeMode::ModelQuarantine`] with cause
//!   `PredictionDrift`), its scenario chain is re-estimated from the
//!   recent actual-scenario window, and a `Recovered` event fires when
//!   the quarantine lifts. Off by default (`drift_threshold: None`).

use pipeline::executor::{ExecutionPolicy, StageRetry};
use platform::bus::DegradeMode;

/// Session-level degradation policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Per-stage retry/fallback policy handed to the executor.
    pub retry: StageRetry,
    /// Consecutive budget overruns that trigger a stripe downshift, and
    /// consecutive clean frames that lift it again.
    pub overrun_downshift: u32,
    /// Stripe floor the downshift never goes below.
    pub min_stripes: usize,
    /// Frames online training stays suspended after a corrupted
    /// snapshot checkpoint.
    pub quarantine_frames: u32,
    /// Host wall-clock deadline per frame, ms (None = no deadline).
    pub frame_deadline_ms: Option<f64>,
    /// Rolling window (frames) over which scenario-prediction hit-rate
    /// is measured for drift detection.
    pub drift_window: usize,
    /// Hit-rate floor below which the model is quarantined and its
    /// scenario chain re-estimated (None = drift detection off).
    pub drift_threshold: Option<f64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            retry: StageRetry::default(),
            overrun_downshift: 3,
            min_stripes: 1,
            quarantine_frames: 2,
            frame_deadline_ms: None,
            drift_window: 8,
            drift_threshold: None,
        }
    }
}

/// What the per-frame bookkeeping decided (so the session can emit the
/// matching bus events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Nothing changed.
    None,
    /// The stripe cap tightened to the contained value.
    Downshift(usize),
    /// A previously applied degradation lifted.
    Lift(DegradeMode),
}

/// Mutable per-stream recovery state.
#[derive(Debug, Clone, Default)]
pub struct RecoveryState {
    consecutive_overruns: u32,
    clean_since_downshift: u32,
    stripe_cap: Option<usize>,
    quarantine_left: u32,
    online_before_quarantine: bool,
    drift_hits: std::collections::VecDeque<bool>,
}

impl RecoveryState {
    /// Fresh state: no cap, no quarantine.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stripe cap currently in force, if any.
    pub fn stripe_cap(&self) -> Option<usize> {
        self.stripe_cap
    }

    /// Whether the model is currently quarantined.
    pub fn quarantined(&self) -> bool {
        self.quarantine_left > 0
    }

    /// Clamps a planned policy to the current stripe cap.
    pub fn apply_cap(&self, policy: &mut ExecutionPolicy) {
        if let Some(cap) = self.stripe_cap {
            policy.rdg_stripes = policy.rdg_stripes.min(cap).max(1);
            policy.aux_stripes = policy.aux_stripes.min(cap).max(1);
        }
    }

    /// Books one executed frame: `overrun` is whether it exceeded the
    /// latency budget, `planned_stripes` the stripe count it ran with.
    /// Returns the downshift/lift decision for the session to act on.
    pub fn note_frame(
        &mut self,
        overrun: bool,
        planned_stripes: usize,
        policy: &RecoveryPolicy,
    ) -> RecoveryAction {
        if overrun {
            self.consecutive_overruns += 1;
            self.clean_since_downshift = 0;
            if self.consecutive_overruns >= policy.overrun_downshift.max(1) {
                self.consecutive_overruns = 0;
                let current = self.stripe_cap.unwrap_or(planned_stripes.max(1));
                let next = (current / 2).max(policy.min_stripes.max(1));
                if self.stripe_cap != Some(next) && next < current {
                    self.stripe_cap = Some(next);
                    return RecoveryAction::Downshift(next);
                }
                self.stripe_cap = Some(next);
            }
        } else {
            self.consecutive_overruns = 0;
            if self.stripe_cap.is_some() {
                self.clean_since_downshift += 1;
                if self.clean_since_downshift >= policy.overrun_downshift.max(1) {
                    self.stripe_cap = None;
                    self.clean_since_downshift = 0;
                    return RecoveryAction::Lift(DegradeMode::StripeDownshift);
                }
            }
        }
        RecoveryAction::None
    }

    /// Enters model quarantine (online training already suspended by the
    /// caller); remembers whether it must be re-enabled on release.
    pub fn enter_quarantine(&mut self, online_before: bool, policy: &RecoveryPolicy) {
        self.quarantine_left = policy.quarantine_frames.max(1);
        self.online_before_quarantine = online_before || self.online_before_quarantine;
    }

    /// Counts one frame spent in quarantine; returns `true` exactly when
    /// the quarantine lifts (the caller re-enables online training if
    /// [`Self::resume_online`] says so).
    pub fn tick_quarantine(&mut self) -> bool {
        if self.quarantine_left == 0 {
            return false;
        }
        self.quarantine_left -= 1;
        self.quarantine_left == 0
    }

    /// Whether online training was active before quarantine began.
    pub fn resume_online(&self) -> bool {
        self.online_before_quarantine
    }

    /// Books one scenario prediction/actual pair for drift detection.
    ///
    /// Returns `true` exactly when the rolling hit-rate over a full
    /// [`RecoveryPolicy::drift_window`] falls below
    /// [`RecoveryPolicy::drift_threshold`] and the model is not already
    /// quarantined — the signal for the caller to quarantine and
    /// re-estimate the scenario chain. The window resets on trigger so
    /// one storm produces one quarantine, not one per frame.
    pub fn note_scenario(&mut self, predicted: u8, actual: u8, policy: &RecoveryPolicy) -> bool {
        let Some(threshold) = policy.drift_threshold else {
            return false;
        };
        let window = policy.drift_window.max(1);
        self.drift_hits.push_back(predicted == actual);
        while self.drift_hits.len() > window {
            self.drift_hits.pop_front();
        }
        if self.quarantine_left > 0 || self.drift_hits.len() < window {
            return false;
        }
        let hits = self.drift_hits.iter().filter(|&&h| h).count();
        let rate = hits as f64 / window as f64;
        if rate < threshold {
            self.drift_hits.clear();
            return true;
        }
        false
    }

    /// The current drift hit-rate over the partially or fully filled
    /// window (`None` while empty).
    pub fn drift_hit_rate(&self) -> Option<f64> {
        if self.drift_hits.is_empty() {
            return None;
        }
        let hits = self.drift_hits.iter().filter(|&&h| h).count();
        Some(hits as f64 / self.drift_hits.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downshift_after_consecutive_overruns_then_lift() {
        let policy = RecoveryPolicy {
            overrun_downshift: 2,
            ..Default::default()
        };
        let mut st = RecoveryState::new();
        assert_eq!(st.note_frame(true, 8, &policy), RecoveryAction::None);
        assert_eq!(
            st.note_frame(true, 8, &policy),
            RecoveryAction::Downshift(4)
        );
        assert_eq!(st.stripe_cap(), Some(4));
        // further overruns halve again
        assert_eq!(st.note_frame(true, 4, &policy), RecoveryAction::None);
        assert_eq!(
            st.note_frame(true, 4, &policy),
            RecoveryAction::Downshift(2)
        );
        // two clean frames lift the cap
        assert_eq!(st.note_frame(false, 2, &policy), RecoveryAction::None);
        assert_eq!(
            st.note_frame(false, 2, &policy),
            RecoveryAction::Lift(DegradeMode::StripeDownshift)
        );
        assert_eq!(st.stripe_cap(), None);
    }

    #[test]
    fn downshift_respects_min_stripes() {
        let policy = RecoveryPolicy {
            overrun_downshift: 1,
            min_stripes: 2,
            ..Default::default()
        };
        let mut st = RecoveryState::new();
        assert_eq!(
            st.note_frame(true, 4, &policy),
            RecoveryAction::Downshift(2)
        );
        // already at the floor: no further downshift event
        assert_eq!(st.note_frame(true, 2, &policy), RecoveryAction::None);
        assert_eq!(st.stripe_cap(), Some(2));
    }

    #[test]
    fn cap_clamps_policy() {
        let mut st = RecoveryState::new();
        let policy = RecoveryPolicy {
            overrun_downshift: 1,
            ..Default::default()
        };
        st.note_frame(true, 8, &policy);
        let mut exec = ExecutionPolicy {
            rdg_stripes: 8,
            aux_stripes: 6,
            cores: 8,
        };
        st.apply_cap(&mut exec);
        assert_eq!(exec.rdg_stripes, 4);
        assert_eq!(exec.aux_stripes, 4);
    }

    #[test]
    fn interleaved_overruns_do_not_downshift() {
        let policy = RecoveryPolicy {
            overrun_downshift: 2,
            ..Default::default()
        };
        let mut st = RecoveryState::new();
        for _ in 0..6 {
            assert_eq!(st.note_frame(true, 8, &policy), RecoveryAction::None);
            assert_eq!(st.note_frame(false, 8, &policy), RecoveryAction::None);
        }
        assert_eq!(st.stripe_cap(), None);
    }

    #[test]
    fn drift_detection_fires_once_per_storm() {
        let policy = RecoveryPolicy {
            drift_window: 4,
            drift_threshold: Some(0.5),
            ..Default::default()
        };
        let mut st = RecoveryState::new();
        // all hits: no trigger
        for _ in 0..6 {
            assert!(!st.note_scenario(7, 7, &policy));
        }
        assert_eq!(st.drift_hit_rate(), Some(1.0));
        // all misses: trigger exactly once the window fills with misses
        let mut fired = 0;
        for _ in 0..4 {
            if st.note_scenario(7, 0, &policy) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1);
        // window was reset on trigger: takes a full window to fire again
        assert!(!st.note_scenario(7, 0, &policy));
    }

    #[test]
    fn drift_detection_off_by_default() {
        let policy = RecoveryPolicy::default();
        let mut st = RecoveryState::new();
        for _ in 0..32 {
            assert!(!st.note_scenario(1, 2, &policy));
        }
        assert_eq!(st.drift_hit_rate(), None);
    }

    #[test]
    fn drift_detection_suppressed_while_quarantined() {
        let policy = RecoveryPolicy {
            drift_window: 2,
            drift_threshold: Some(0.9),
            quarantine_frames: 3,
            ..Default::default()
        };
        let mut st = RecoveryState::new();
        st.enter_quarantine(true, &policy);
        for _ in 0..6 {
            assert!(!st.note_scenario(0, 5, &policy));
        }
    }

    #[test]
    fn quarantine_counts_down_and_releases_once() {
        let policy = RecoveryPolicy {
            quarantine_frames: 2,
            ..Default::default()
        };
        let mut st = RecoveryState::new();
        assert!(!st.quarantined());
        st.enter_quarantine(true, &policy);
        assert!(st.quarantined());
        assert!(!st.tick_quarantine());
        assert!(st.tick_quarantine(), "second tick releases");
        assert!(!st.quarantined());
        assert!(st.resume_online());
        assert!(!st.tick_quarantine(), "no double release");
    }
}
