//! Repartitioning policy: predicted resource usage → execution policy.
//!
//! "Based on the outcome from the resource predictions for subsequent
//! frames, the resource manager can decide to repartition the flow-graph
//! to handle an increase or decrease of resource consumption, to keep the
//! output latency stable at the initialized (average-case) value."
//! (Section 6). The RDG tasks are data-partitioned (striped); the feature
//! tasks stay serial (they would be partitioned functionally across
//! frames, which does not change single-frame latency).

use crate::budget::LatencyBudget;
use pipeline::executor::ExecutionPolicy;
use platform::schedule::DISPATCH_OVERHEAD_MS;

/// Predicted per-frame cost split used by the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPrediction {
    /// Predicted computation time of the data-partitionable tasks
    /// (RDG, GW EXT's ridge filter, ENH, ZOOM), ms.
    pub stripable_ms: f64,
    /// Predicted time of the remaining (serial, feature-level) tasks, ms.
    pub serial_ms: f64,
}

impl CostPrediction {
    /// Predicted serial-frame latency.
    pub fn total(&self) -> f64 {
        self.stripable_ms + self.serial_ms
    }
}

/// Striping efficiency: a stripe of `1/k` of the rows costs slightly more
/// than `1/k` of the full-frame time because of the convolution halo.
pub const STRIPE_EFFICIENCY: f64 = 0.9;

/// Predicted effective latency when the stripable tasks run with
/// `stripes` stripes.
pub fn predicted_latency(cost: &CostPrediction, stripes: usize) -> f64 {
    let stripes = stripes.max(1);
    let stripable = if stripes == 1 {
        cost.stripable_ms
    } else {
        cost.stripable_ms / (stripes as f64 * STRIPE_EFFICIENCY)
    };
    let dispatch = DISPATCH_OVERHEAD_MS * (stripes as f64 + 4.0);
    stripable + cost.serial_ms + dispatch
}

/// Picks the smallest stripe count that meets the planning target, capped
/// by the core count. Returns the chosen policy and whether the target is
/// achievable at all.
pub fn choose_policy(
    cost: &CostPrediction,
    budget: &LatencyBudget,
    cores: usize,
) -> (ExecutionPolicy, bool) {
    let cores = cores.max(1);
    let target = budget.planning_target();
    for stripes in 1..=cores {
        if predicted_latency(cost, stripes) <= target {
            return (
                ExecutionPolicy {
                    rdg_stripes: stripes,
                    aux_stripes: stripes,
                    cores,
                },
                true,
            );
        }
    }
    // infeasible: run maximally parallel anyway
    (
        ExecutionPolicy {
            rdg_stripes: cores,
            aux_stripes: cores,
            cores,
        },
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_frame_stays_serial() {
        let cost = CostPrediction {
            stripable_ms: 10.0,
            serial_ms: 10.0,
        };
        let budget = LatencyBudget::new(40.0, 0.1);
        let (p, ok) = choose_policy(&cost, &budget, 8);
        assert!(ok);
        assert_eq!(p.rdg_stripes, 1);
    }

    #[test]
    fn expensive_frame_gets_striped() {
        let cost = CostPrediction {
            stripable_ms: 60.0,
            serial_ms: 10.0,
        };
        let budget = LatencyBudget::new(45.0, 0.1);
        let (p, ok) = choose_policy(&cost, &budget, 8);
        assert!(ok);
        assert!(p.rdg_stripes >= 2, "stripes {}", p.rdg_stripes);
        // the chosen policy indeed meets the target
        assert!(predicted_latency(&cost, p.rdg_stripes) <= budget.planning_target());
    }

    #[test]
    fn minimal_sufficient_parallelism_chosen() {
        let cost = CostPrediction {
            stripable_ms: 40.0,
            serial_ms: 5.0,
        };
        let budget = LatencyBudget::new(40.0, 0.1);
        let (p, ok) = choose_policy(&cost, &budget, 8);
        assert!(ok);
        // stripes-1 must NOT meet the target (minimality)
        if p.rdg_stripes > 1 {
            assert!(predicted_latency(&cost, p.rdg_stripes - 1) > budget.planning_target());
        }
    }

    #[test]
    fn infeasible_budget_reports_false_and_maxes_out() {
        let cost = CostPrediction {
            stripable_ms: 30.0,
            serial_ms: 100.0,
        };
        let budget = LatencyBudget::new(50.0, 0.1);
        let (p, ok) = choose_policy(&cost, &budget, 4);
        assert!(!ok);
        assert_eq!(p.rdg_stripes, 4);
    }

    #[test]
    fn latency_decreases_with_stripes() {
        let cost = CostPrediction {
            stripable_ms: 80.0,
            serial_ms: 10.0,
        };
        let mut prev = predicted_latency(&cost, 1);
        for k in 2..=8 {
            let cur = predicted_latency(&cost, k);
            assert!(cur < prev, "stripes {k}: {cur} >= {prev}");
            prev = cur;
        }
    }

    #[test]
    fn striping_overhead_modelled() {
        // with tiny RDG the dispatch overhead makes striping useless
        let cost = CostPrediction {
            stripable_ms: 0.2,
            serial_ms: 1.0,
        };
        let l1 = predicted_latency(&cost, 1);
        let l8 = predicted_latency(&cost, 8);
        assert!(l8 > l1 - 0.15, "l1 {l1} l8 {l8}");
    }
}
