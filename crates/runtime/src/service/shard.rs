//! Pool sharding: partitioning the core budget into placement domains.
//!
//! Instead of every stream contending on the one process-global
//! [`StripePool`], the service core partitions the modelled core budget
//! into *shards* — one dedicated stripe pool per core group — and places
//! each admitted stream onto a single shard. The default grouping follows
//! the platform's cache hierarchy ([`ArchModel::cores_per_l2`]): streams
//! sharing a shard share an L2 domain, streams on different shards never
//! contend for stripe workers.

use imaging::parallel::StripePool;
use platform::arch::ArchModel;
use std::sync::Arc;

/// How the modelled core budget is partitioned into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardLayout {
    /// One shard spanning the whole budget, backed by the process-global
    /// pool (the pre-sharding behaviour).
    Single,
    /// One shard per L2 core group of the platform's [`ArchModel`]
    /// (Blackford: 2 cores per L2 ⇒ 4 shards on the 8-core budget).
    PerCoreGroup,
    /// Fixed-width groups of `group` cores.
    Grouped {
        /// Cores per shard (clamped to `1..=total_cores`).
        group: usize,
    },
}

impl ShardLayout {
    /// The width of (the widest) shard this layout produces over a given
    /// core budget — the ceiling on any single stream's core grant.
    pub fn shard_width(&self, total_cores: usize) -> usize {
        let total = total_cores.max(1);
        match *self {
            ShardLayout::Single => total,
            ShardLayout::PerCoreGroup => ArchModel::default().cores_per_l2.clamp(1, total),
            ShardLayout::Grouped { group } => group.clamp(1, total),
        }
    }
}

struct Shard {
    cores: usize,
    free: usize,
    /// `None` = the process-global pool (single-shard layout).
    pool: Option<Arc<StripePool>>,
}

/// The instantiated shard set: per-shard pools and capacity headroom.
///
/// Dropping the topology joins every per-shard pool worker (the global
/// pool, when used, is process-wide and stays).
pub struct ShardTopology {
    shards: Vec<Shard>,
}

impl ShardTopology {
    /// Partitions `total_cores` according to the layout. A layout whose
    /// group width covers the whole budget degenerates to one shard on
    /// the process-global pool — no extra threads.
    pub fn new(layout: ShardLayout, total_cores: usize) -> Self {
        let total = total_cores.max(1);
        let width = layout.shard_width(total);
        if width >= total {
            return Self {
                shards: vec![Shard {
                    cores: total,
                    free: total,
                    pool: None,
                }],
            };
        }
        let mut shards = Vec::new();
        let mut remaining = total;
        while remaining > 0 {
            let w = width.min(remaining);
            shards.push(Shard {
                cores: w,
                free: w,
                pool: Some(Arc::new(StripePool::new(w))),
            });
            remaining -= w;
        }
        Self { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total cores across all shards.
    pub fn total_cores(&self) -> usize {
        self.shards.iter().map(|s| s.cores).sum()
    }

    /// Width of the widest shard.
    pub fn widest_cores(&self) -> usize {
        self.shards.iter().map(|s| s.cores).max().unwrap_or(1)
    }

    /// Cores owned by one shard.
    pub fn shard_cores(&self, shard: usize) -> usize {
        self.shards[shard].cores
    }

    /// Unreserved cores on one shard.
    pub fn free_cores(&self, shard: usize) -> usize {
        self.shards[shard].free
    }

    /// Best-fit placement: the feasible shard with the least free
    /// headroom (ties broken by lowest index, so placement is
    /// deterministic). `None` when no shard currently fits `cores`.
    pub(crate) fn place(&self, cores: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for (i, s) in self.shards.iter().enumerate() {
            if s.free >= cores {
                let better = match best {
                    None => true,
                    Some((_, free)) => s.free < free,
                };
                if better {
                    best = Some((i, s.free));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Reserves `cores` on a shard (placement must have succeeded).
    pub(crate) fn admit(&mut self, shard: usize, cores: usize) {
        let s = &mut self.shards[shard];
        debug_assert!(s.free >= cores, "admitting past shard capacity");
        s.free = s.free.saturating_sub(cores);
    }

    /// Returns `cores` to a shard's headroom.
    pub(crate) fn release(&mut self, shard: usize, cores: usize) {
        let s = &mut self.shards[shard];
        s.free = (s.free + cores).min(s.cores);
    }

    /// The shard's dedicated pool (`None` = use the process-global pool).
    pub(crate) fn pool(&self, shard: usize) -> Option<Arc<StripePool>> {
        self.shards[shard].pool.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layout_uses_the_global_pool() {
        let t = ShardTopology::new(ShardLayout::Single, 8);
        assert_eq!(t.shard_count(), 1);
        assert_eq!(t.total_cores(), 8);
        assert!(t.pool(0).is_none(), "single shard must not spawn a pool");
    }

    #[test]
    fn grouped_layout_splits_evenly_with_remainder() {
        let t = ShardTopology::new(ShardLayout::Grouped { group: 3 }, 8);
        assert_eq!(t.shard_count(), 3);
        assert_eq!(t.shard_cores(0), 3);
        assert_eq!(t.shard_cores(1), 3);
        assert_eq!(t.shard_cores(2), 2);
        assert_eq!(t.total_cores(), 8);
        assert_eq!(t.widest_cores(), 3);
        assert!(t.pool(0).is_some());
    }

    #[test]
    fn per_core_group_follows_the_arch_model() {
        let arch = ArchModel::default();
        let t = ShardTopology::new(ShardLayout::PerCoreGroup, arch.cores);
        assert_eq!(t.shard_count(), arch.cores / arch.cores_per_l2);
        assert!(t.shards.iter().all(|s| s.cores == arch.cores_per_l2));
    }

    #[test]
    fn place_is_best_fit_and_deterministic() {
        let mut t = ShardTopology::new(ShardLayout::Grouped { group: 4 }, 8);
        // shard 0 gets 3/4 reserved: 1 free; shard 1 fully free
        t.admit(0, 3);
        assert_eq!(t.place(1), Some(0), "least headroom wins");
        assert_eq!(t.place(2), Some(1));
        assert_eq!(t.place(5), None, "wider than any shard");
        t.release(0, 3);
        // equal headroom: lowest index wins
        assert_eq!(t.place(4), Some(0));
    }

    #[test]
    fn dropping_the_topology_joins_shard_pools() {
        let global = StripePool::global();
        let before = global.live_threads();
        {
            let t = ShardTopology::new(ShardLayout::Grouped { group: 2 }, 8);
            assert_eq!(t.shard_count(), 4);
        }
        assert_eq!(global.live_threads(), before, "global pool perturbed");
    }
}
