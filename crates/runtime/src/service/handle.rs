//! The ingestion front-end: driving the service like a service.
//!
//! [`ServiceHandle`] is what a load generator (or a live detector feed)
//! holds: it submits frames into per-stream bounded queues, polls
//! completion notices, scrapes a point-in-time [`MetricsSnapshot`], and
//! finally joins the service thread for the full [`ServiceReport`].

use platform::bus::StreamId;
use platform::metrics::{MetricsSnapshot, Observability};
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc, Mutex};

use super::core::{ServiceReport, StreamCompletion};
use super::queue::{FrameQueue, PushOutcome};

/// Result of a [`ServiceHandle::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The frame was accepted (possibly after blocking on backpressure).
    Accepted,
    /// The frame was accepted; the oldest queued frame was discarded to
    /// make room (drop-oldest backpressure).
    DroppedOldest,
    /// The stream's ingress is closed (stream finished or failed).
    Rejected,
    /// No stream with that id was registered.
    UnknownStream,
}

/// Handle to a running service core (from
/// [`ServiceCore::spawn`](super::ServiceCore::spawn)).
///
/// Dropping the handle closes every ingress queue and joins the service
/// thread, so no worker outlives it; call [`finish`](Self::finish)
/// instead to also receive the report.
pub struct ServiceHandle {
    queues: BTreeMap<StreamId, Arc<FrameQueue>>,
    completions: Mutex<mpsc::Receiver<StreamCompletion>>,
    obs: Option<Observability>,
    join: Option<std::thread::JoinHandle<ServiceReport>>,
}

impl ServiceHandle {
    pub(crate) fn new(
        queues: BTreeMap<StreamId, Arc<FrameQueue>>,
        completions: mpsc::Receiver<StreamCompletion>,
        obs: Option<Observability>,
        join: std::thread::JoinHandle<ServiceReport>,
    ) -> Self {
        Self {
            queues,
            completions: Mutex::new(completions),
            obs,
            join: Some(join),
        }
    }

    /// The registered stream ids, ascending.
    pub fn streams(&self) -> Vec<StreamId> {
        self.queues.keys().copied().collect()
    }

    /// Current depth of one stream's ingress queue.
    pub fn queue_depth(&self, stream: StreamId) -> Option<usize> {
        self.queues.get(&stream).map(|q| q.depth())
    }

    /// Submits one frame to a stream's ingress queue. Under blocking
    /// backpressure this call blocks while the queue is full.
    pub fn submit(
        &self,
        stream: StreamId,
        index: usize,
        image: imaging::image::ImageU16,
    ) -> SubmitOutcome {
        let Some(queue) = self.queues.get(&stream) else {
            return SubmitOutcome::UnknownStream;
        };
        match queue.push(index, image) {
            PushOutcome::Enqueued => SubmitOutcome::Accepted,
            PushOutcome::DroppedOldest => SubmitOutcome::DroppedOldest,
            PushOutcome::Closed => SubmitOutcome::Rejected,
        }
    }

    /// Declares one stream's input finished: its worker drains the queue
    /// and completes. Returns false for unknown streams.
    pub fn close_stream(&self, stream: StreamId) -> bool {
        match self.queues.get(&stream) {
            Some(q) => {
                q.close();
                true
            }
            None => false,
        }
    }

    /// Declares every stream's input finished.
    pub fn close_all(&self) {
        for q in self.queues.values() {
            q.close();
        }
    }

    /// Non-blocking poll for the next stream-completion notice.
    pub fn try_poll(&self) -> Option<StreamCompletion> {
        self.completions.lock().unwrap().try_recv().ok()
    }

    /// Point-in-time metrics scrape (None without attached
    /// observability).
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.obs.as_ref().map(|o| o.snapshot())
    }

    /// Closes every ingress queue, waits for all streams to complete, and
    /// returns the full report. All service-owned threads (workers, shard
    /// pools, the admission loop) are joined before this returns.
    pub fn finish(mut self) -> ServiceReport {
        self.close_all();
        let join = self.join.take().expect("service thread still attached");
        join.join().expect("service thread never panics")
    }

    pub(crate) fn queue(&self, stream: StreamId) -> Option<Arc<FrameQueue>> {
        self.queues.get(&stream).cloned()
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.close_all();
            let _ = join.join();
        }
    }
}
