//! The service tier: sharded pools, prediction-driven admission, bounded
//! ingress with backpressure.
//!
//! This module re-architects the former monolithic session loop into
//! composable pieces (ISSUE 7 / ROADMAP item 1):
//!
//! * [`engine`] — [`StreamEngine`], one stream's resumable per-frame
//!   stepper (plan → execute → absorb → recover), parkable between
//!   frames;
//! * [`shard`] — [`ShardTopology`], the core budget partitioned into
//!   per-core-group stripe pools with best-fit placement;
//! * [`queue`] — [`FrameQueue`], bounded per-stream ingress with
//!   [`BackpressurePolicy::Block`] or
//!   [`BackpressurePolicy::DropOldest`];
//! * [`admission`] — [`predict_demand`], Triple-C predictions turned
//!   into admission input (cores + latency per stream), and the
//!   [`EvictionPolicy`] for time-sliced yielding;
//! * [`core`] — [`ServiceCore`], the admission loop tying it together,
//!   emitting `StreamAdmitted` / `StreamQueued` / `StreamEvicted` /
//!   `ShardRebalanced` bus events;
//! * [`handle`] — [`ServiceHandle`], the ingestion front-end (submit
//!   frames, poll completions, scrape metrics).
//!
//! The legacy wave scheduler
//! ([`SessionScheduler`](crate::session::SessionScheduler)) remains the
//! stable compatibility surface; it drives the same [`StreamEngine`]
//! building block, so outputs are bit-identical across both modes.

pub mod admission;
pub mod core;
pub mod engine;
pub mod handle;
pub mod queue;
pub mod shard;

pub use admission::{predict_demand, AdmissionPolicy, EvictionPolicy, StreamDemand};
pub use engine::StreamEngine;
pub use handle::{ServiceHandle, SubmitOutcome};
pub use queue::{BackpressurePolicy, FrameQueue, PushOutcome, QueueStats};
pub use shard::{ShardLayout, ShardTopology};

pub use self::core::{
    ServiceConfig, ServiceCore, ServiceReport, StreamCompletion, StreamServiceStats,
};

pub(crate) use self::core::run_waves;
