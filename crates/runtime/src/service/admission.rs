//! Prediction-driven admission: Triple-C demand estimates as scheduler
//! input.
//!
//! The paper's predictions drive the per-frame repartitioning loop; the
//! service tier reuses the same model queries one level up, *before* a
//! stream runs: [`predict_demand`] asks the stream's own trained model
//! for its worst-case-scenario per-task costs and converts them — through
//! the identical [`choose_policy`] partitioning rule the runtime uses —
//! into a core demand and predicted frame latency. The admission loop
//! compares that demand against per-shard capacity headroom instead of
//! admitting blindly and discovering contention after the fact.

use crate::adaptation::{choose_policy, predicted_latency, CostPrediction};
use crate::session::StreamSpec;
use pipeline::executor::STRIPABLE_TASKS;
use triplec::predictor::{PredictContext, Prediction};
use triplec::scenario::Scenario;

/// Which point of the predicted cost distribution scheduling decisions
/// are made against.
///
/// [`predict_demand`] (and through it shard placement) sizes a stream's
/// core grant from its predicted per-task costs; this policy selects the
/// scalar those [`Prediction`] distributions collapse to. `Mean`
/// reproduces the historical point-estimate behavior; `Quantile(q)`
/// admits against the upper tail, reserving headroom for the cost
/// fluctuations the mean hides (the default is p99 — the service tier's
/// per-stream SLOs are tail guarantees, so admission is tail-driven).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Schedule against the predicted mean cost.
    Mean,
    /// Schedule against the predicted quantile `q` in `(0, 1]`
    /// (e.g. `0.99` for p99).
    Quantile(f64),
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy::Quantile(0.99)
    }
}

impl AdmissionPolicy {
    /// Collapses a predicted distribution to this policy's scheduling
    /// cost.
    pub fn cost(&self, p: &Prediction) -> f64 {
        match *self {
            AdmissionPolicy::Mean => p.mean_ms,
            AdmissionPolicy::Quantile(q) => p.quantile(q),
        }
    }

    /// The quantile scheduled against (`None` for mean admission).
    pub fn quantile(&self) -> Option<f64> {
        match *self {
            AdmissionPolicy::Mean => None,
            AdmissionPolicy::Quantile(q) => Some(q),
        }
    }

    /// Canonical text label (`"mean"`, `"p99"`, `"p97.5"`), the form the
    /// run ledger's `quantile=` column records.
    pub fn label(&self) -> String {
        match *self {
            AdmissionPolicy::Mean => "mean".to_string(),
            AdmissionPolicy::Quantile(q) => {
                let pct = q * 100.0;
                if (pct - pct.round()).abs() < 1e-9 {
                    format!("p{}", pct.round() as u32)
                } else {
                    format!("p{pct}")
                }
            }
        }
    }

    /// Parses a canonical label back into a policy (`None` on anything
    /// that is not `"mean"` or `"p<percent>"` with a percent in (0, 100]).
    pub fn from_label(s: &str) -> Option<Self> {
        if s == "mean" {
            return Some(AdmissionPolicy::Mean);
        }
        let pct: f64 = s.strip_prefix('p')?.parse().ok()?;
        if pct.is_finite() && pct > 0.0 && pct <= 100.0 {
            Some(AdmissionPolicy::Quantile(pct / 100.0))
        } else {
            None
        }
    }
}

/// A stream's predicted steady-state resource demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamDemand {
    /// Cores the stream wants (the stripe width [`choose_policy`] picks
    /// for its predicted worst-case frame under its budget; 1 when the
    /// stream has no fixed budget and initializes serially).
    pub cores: usize,
    /// Predicted per-frame latency at that width, ms (at the policy's
    /// scheduling cost).
    pub predicted_ms: f64,
    /// The distribution point the demand was sized against.
    pub policy: AdmissionPolicy,
}

/// Predicts a stream's demand from its spec, before it has run a frame.
///
/// Uses the worst-case scenario (all tasks active — the same conservative
/// anchor `ResourceManager` plans its first frame from) over the full
/// frame as ROI, collapses each task's predicted cost distribution to the
/// [`AdmissionPolicy`]'s scheduling point, splits the costs into
/// stripable and serial parts, and applies the runtime's own partitioning
/// rule capped at `max_cores` (the widest shard: a stream can never be
/// granted more). Summing per-task quantiles upper-bounds the frame
/// quantile (exact under comonotone task costs), which is the
/// conservative direction for admission.
pub fn predict_demand(
    spec: &StreamSpec,
    max_cores: usize,
    policy: AdmissionPolicy,
) -> StreamDemand {
    let max_cores = max_cores.max(1);
    let roi_kpixels = (spec.seq.width * spec.seq.height) as f64 / 1000.0;
    let ctx = PredictContext { roi_kpixels };
    let scenario = spec.model.predict_next_scenario(Scenario::worst_case());
    let mut stripable_ms = 0.0;
    let mut serial_ms = 0.0;
    for task in scenario.active_tasks() {
        let ms = spec
            .model
            .predict_task(task, &ctx)
            .map_or(0.0, |p| policy.cost(&p));
        if STRIPABLE_TASKS.contains(&task) {
            stripable_ms += ms;
        } else {
            serial_ms += ms;
        }
    }
    let cost = CostPrediction {
        stripable_ms,
        serial_ms,
    };
    match spec.budget {
        // no fixed budget: the first frame runs serial to initialize the
        // budget, so the stream enters with minimal demand
        None => StreamDemand {
            cores: 1,
            predicted_ms: stripable_ms + serial_ms,
            policy,
        },
        Some(budget) => {
            let (partitioning, _feasible) = choose_policy(&cost, &budget, max_cores);
            let cores = partitioning
                .rdg_stripes
                .max(partitioning.aux_stripes)
                .max(1);
            StreamDemand {
                cores,
                predicted_ms: predicted_latency(&cost, cores),
                policy,
            }
        }
    }
}

/// When a running stream is forced to yield its shard reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Admitted streams run to completion (no preemption).
    None,
    /// A stream yields after `frames` executed frames whenever other
    /// streams are waiting for admission; its engine (model, tracking
    /// state, recovery bookkeeping) is parked and re-queued, and it
    /// resumes — possibly on a different shard — exactly where it left
    /// off.
    TimeSlice {
        /// Frames per slice (clamped to ≥ 1).
        frames: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::LatencyBudget;
    use pipeline::app::AppConfig;
    use pipeline::executor::ExecutionPolicy;
    use pipeline::runner::run_sequence;
    use triplec::triple::{TripleC, TripleCConfig};
    use xray::{NoiseConfig, SequenceConfig};

    fn seq(seed: u64, frames: usize) -> SequenceConfig {
        SequenceConfig {
            width: 128,
            height: 128,
            frames,
            seed,
            noise: NoiseConfig {
                quantum_scale: 0.3,
                electronic_std: 2.0,
            },
            ..Default::default()
        }
    }

    fn trained_model() -> TripleC {
        let profile = run_sequence(
            seq(100, 10),
            &AppConfig::default(),
            &ExecutionPolicy::default(),
        );
        let cfg = TripleCConfig {
            geometry: triplec::FrameGeometry {
                width: 128,
                height: 128,
            },
            ..Default::default()
        };
        TripleC::train(&profile.task_series(), &profile.scenarios, cfg)
    }

    #[test]
    fn unbudgeted_stream_demands_one_core() {
        let spec = StreamSpec::builder(seq(1, 4), AppConfig::default(), trained_model()).build();
        let d = predict_demand(&spec, 8, AdmissionPolicy::default());
        assert_eq!(d.cores, 1);
        assert!(d.predicted_ms > 0.0);
        assert_eq!(d.policy, AdmissionPolicy::Quantile(0.99));
    }

    #[test]
    fn tight_budget_demands_more_cores_capped_at_shard_width() {
        let model = trained_model();
        let spec = StreamSpec::builder(seq(1, 4), AppConfig::default(), model)
            .budget(LatencyBudget::new(0.001, 0.0))
            .build();
        let wide = predict_demand(&spec, 8, AdmissionPolicy::Mean);
        assert!(wide.cores > 1, "infeasible budget must stripe aggressively");
        assert!(wide.cores <= 8);
        let narrow = predict_demand(&spec, 2, AdmissionPolicy::Mean);
        assert!(narrow.cores <= 2, "demand exceeds the shard width");
        assert!(
            narrow.predicted_ms >= wide.predicted_ms,
            "fewer cores cannot predict faster frames"
        );
    }

    #[test]
    fn generous_budget_demands_few_cores() {
        let spec = StreamSpec::builder(seq(1, 4), AppConfig::default(), trained_model())
            .budget(LatencyBudget::new(10_000.0, 0.1))
            .build();
        let d = predict_demand(&spec, 8, AdmissionPolicy::default());
        assert_eq!(d.cores, 1, "a huge budget needs no striping");
    }

    #[test]
    fn quantile_admission_never_demands_less_than_mean() {
        let spec = StreamSpec::builder(seq(1, 4), AppConfig::default(), trained_model())
            .budget(LatencyBudget::new(5.0, 0.0))
            .build();
        let mean = predict_demand(&spec, 8, AdmissionPolicy::Mean);
        let p99 = predict_demand(&spec, 8, AdmissionPolicy::Quantile(0.99));
        assert!(
            p99.cores >= mean.cores,
            "tail admission must not shrink the grant: p99 {} < mean {}",
            p99.cores,
            mean.cores
        );
    }

    #[test]
    fn policy_labels_round_trip() {
        for policy in [
            AdmissionPolicy::Mean,
            AdmissionPolicy::Quantile(0.5),
            AdmissionPolicy::Quantile(0.95),
            AdmissionPolicy::Quantile(0.99),
            AdmissionPolicy::Quantile(0.975),
        ] {
            let label = policy.label();
            let parsed = AdmissionPolicy::from_label(&label)
                .unwrap_or_else(|| panic!("label {label} did not parse"));
            match (policy, parsed) {
                (AdmissionPolicy::Mean, AdmissionPolicy::Mean) => {}
                (AdmissionPolicy::Quantile(a), AdmissionPolicy::Quantile(b)) => {
                    assert!((a - b).abs() < 1e-9, "{a} vs {b}");
                }
                other => panic!("policy changed shape through its label: {other:?}"),
            }
        }
        assert_eq!(AdmissionPolicy::Mean.label(), "mean");
        assert_eq!(AdmissionPolicy::Quantile(0.99).label(), "p99");
        assert_eq!(AdmissionPolicy::Quantile(0.975).label(), "p97.5");
        assert!(AdmissionPolicy::from_label("p0").is_none());
        assert!(AdmissionPolicy::from_label("p101").is_none());
        assert!(AdmissionPolicy::from_label("median").is_none());
    }
}
