//! Prediction-driven admission: Triple-C demand estimates as scheduler
//! input.
//!
//! The paper's predictions drive the per-frame repartitioning loop; the
//! service tier reuses the same model queries one level up, *before* a
//! stream runs: [`predict_demand`] asks the stream's own trained model
//! for its worst-case-scenario per-task costs and converts them — through
//! the identical [`choose_policy`] partitioning rule the runtime uses —
//! into a core demand and predicted frame latency. The admission loop
//! compares that demand against per-shard capacity headroom instead of
//! admitting blindly and discovering contention after the fact.

use crate::adaptation::{choose_policy, predicted_latency, CostPrediction};
use crate::session::StreamSpec;
use pipeline::executor::STRIPABLE_TASKS;
use triplec::predictor::PredictContext;
use triplec::scenario::Scenario;

/// A stream's predicted steady-state resource demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamDemand {
    /// Cores the stream wants (the stripe width [`choose_policy`] picks
    /// for its predicted worst-case frame under its budget; 1 when the
    /// stream has no fixed budget and initializes serially).
    pub cores: usize,
    /// Predicted per-frame latency at that width, ms.
    pub predicted_ms: f64,
}

/// Predicts a stream's demand from its spec, before it has run a frame.
///
/// Uses the worst-case scenario (all tasks active — the same conservative
/// anchor `ResourceManager` plans its first frame from) over the full
/// frame as ROI, splits predicted task costs into stripable and serial
/// parts, and applies the runtime's own partitioning rule capped at
/// `max_cores` (the widest shard: a stream can never be granted more).
pub fn predict_demand(spec: &StreamSpec, max_cores: usize) -> StreamDemand {
    let max_cores = max_cores.max(1);
    let roi_kpixels = (spec.seq.width * spec.seq.height) as f64 / 1000.0;
    let ctx = PredictContext { roi_kpixels };
    let scenario = spec.model.predict_next_scenario(Scenario::worst_case());
    let mut stripable_ms = 0.0;
    let mut serial_ms = 0.0;
    for task in scenario.active_tasks() {
        let ms = spec.model.predict_task(task, &ctx).unwrap_or(0.0);
        if STRIPABLE_TASKS.contains(&task) {
            stripable_ms += ms;
        } else {
            serial_ms += ms;
        }
    }
    let cost = CostPrediction {
        stripable_ms,
        serial_ms,
    };
    match spec.budget {
        // no fixed budget: the first frame runs serial to initialize the
        // budget, so the stream enters with minimal demand
        None => StreamDemand {
            cores: 1,
            predicted_ms: stripable_ms + serial_ms,
        },
        Some(budget) => {
            let (policy, _feasible) = choose_policy(&cost, &budget, max_cores);
            let cores = policy.rdg_stripes.max(policy.aux_stripes).max(1);
            StreamDemand {
                cores,
                predicted_ms: predicted_latency(&cost, cores),
            }
        }
    }
}

/// When a running stream is forced to yield its shard reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Admitted streams run to completion (no preemption).
    None,
    /// A stream yields after `frames` executed frames whenever other
    /// streams are waiting for admission; its engine (model, tracking
    /// state, recovery bookkeeping) is parked and re-queued, and it
    /// resumes — possibly on a different shard — exactly where it left
    /// off.
    TimeSlice {
        /// Frames per slice (clamped to ≥ 1).
        frames: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::LatencyBudget;
    use pipeline::app::AppConfig;
    use pipeline::executor::ExecutionPolicy;
    use pipeline::runner::run_sequence;
    use triplec::triple::{TripleC, TripleCConfig};
    use xray::{NoiseConfig, SequenceConfig};

    fn seq(seed: u64, frames: usize) -> SequenceConfig {
        SequenceConfig {
            width: 128,
            height: 128,
            frames,
            seed,
            noise: NoiseConfig {
                quantum_scale: 0.3,
                electronic_std: 2.0,
            },
            ..Default::default()
        }
    }

    fn trained_model() -> TripleC {
        let profile = run_sequence(
            seq(100, 10),
            &AppConfig::default(),
            &ExecutionPolicy::default(),
        );
        let cfg = TripleCConfig {
            geometry: triplec::FrameGeometry {
                width: 128,
                height: 128,
            },
            ..Default::default()
        };
        TripleC::train(&profile.task_series(), &profile.scenarios, cfg)
    }

    #[test]
    fn unbudgeted_stream_demands_one_core() {
        let spec = StreamSpec::builder(seq(1, 4), AppConfig::default(), trained_model()).build();
        let d = predict_demand(&spec, 8);
        assert_eq!(d.cores, 1);
        assert!(d.predicted_ms > 0.0);
    }

    #[test]
    fn tight_budget_demands_more_cores_capped_at_shard_width() {
        let model = trained_model();
        let spec = StreamSpec::builder(seq(1, 4), AppConfig::default(), model)
            .budget(LatencyBudget::new(0.001, 0.0))
            .build();
        let wide = predict_demand(&spec, 8);
        assert!(wide.cores > 1, "infeasible budget must stripe aggressively");
        assert!(wide.cores <= 8);
        let narrow = predict_demand(&spec, 2);
        assert!(narrow.cores <= 2, "demand exceeds the shard width");
        assert!(
            narrow.predicted_ms >= wide.predicted_ms,
            "fewer cores cannot predict faster frames"
        );
    }

    #[test]
    fn generous_budget_demands_few_cores() {
        let spec = StreamSpec::builder(seq(1, 4), AppConfig::default(), trained_model())
            .budget(LatencyBudget::new(10_000.0, 0.1))
            .build();
        let d = predict_demand(&spec, 8);
        assert_eq!(d.cores, 1, "a huge budget needs no striping");
    }
}
